// Explore, log, then reuse the logs — the full §4.1 randomness story.
//
// A server-selection service runs an epsilon-decay bandit in production:
// it learns which server is fastest while paying a shrinking exploration
// tax, and every decision is logged with its exact propensity. Months
// later, two candidate policies are vetted *offline* against those same
// logs with the DR estimator — no new experiment needed — and the
// estimates are checked against ground truth that a real operator would
// not have.
#include <cstdio>
#include <memory>

#include "bandit/agents.h"
#include "bandit/run.h"
#include "core/environment.h"
#include "core/evaluator.h"
#include "core/policy.h"
#include "netsim/assignment_env.h"
#include "stats/rng.h"

using namespace dre;

int main() {
    const netsim::ServerSelectionEnv env(/*num_zones=*/4, /*num_servers=*/4,
                                         /*seed=*/77);
    stats::Rng rng(42);

    // Phase 1 — online: a contextual epsilon-decay bandit (one learner per
    // zone) picks servers, learns, and logs propensities as it goes.
    bandit::ContextualAgent agent(
        [] {
            return std::make_unique<bandit::EpsilonDecayAgent>(
                4, bandit::EpsilonDecayAgent::Schedule{1.0, 0.5, 0.05});
        },
        // Key learners on the zone, not the full context — the quality
        // feature is continuous, so the raw fingerprint never repeats.
        [](const ClientContext& c) {
            return static_cast<std::uint64_t>(c.categorical[0]);
        });
    const bandit::BanditRunResult run = bandit::run_bandit(env, agent, 6000, rng);
    const double best = bandit::best_fixed_arm_value(env, 50000, rng);
    std::printf("online phase: %zu requests, avg reward %.4f "
                "(best fixed server %.4f), %zu zones discovered,\n"
                "min logged propensity %.4f (the support left for reuse)\n\n",
                run.trace.size(), run.average_reward, best,
                agent.num_contexts_seen(), run.min_logged_propensity);

    // Phase 2 — offline: vet two candidates against the logged trace.
    const core::DeterministicPolicy per_zone(4, [](const ClientContext& c) {
        return static_cast<Decision>(c.categorical[0] % 4);
    });
    const core::DeterministicPolicy all_zero(4, [](const ClientContext&) {
        return Decision{0};
    });

    core::EvaluationConfig config;
    config.reward_model = core::RewardModelKind::kKnn;
    core::Evaluator evaluator(run.trace, config, stats::Rng(7));

    for (const auto& [name, policy] :
         {std::pair<const char*, const core::Policy*>{"zone-affinity", &per_zone},
          {"all->server-0", &all_zero}}) {
        const core::PolicyEvaluation eval = evaluator.evaluate(*policy);
        const double truth = core::true_policy_value(env, *policy, 50000, rng);
        std::printf("%-14s DR=%8.4f  DM=%8.4f  IPS=%8.4f  truth=%8.4f  "
                    "(ESS %.0f)\n",
                    name, eval.dr.value, eval.dm.value, eval.ips.value, truth,
                    eval.overlap.effective_sample_size);
    }

    std::printf(
        "\nBecause the bandit kept a 5%% exploration floor, the logs retain\n"
        "support everywhere and both candidates get accurate DR estimates\n"
        "from data that was collected for a different purpose entirely.\n");
    return 0;
}
