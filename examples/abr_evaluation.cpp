// Evaluating a new ABR algorithm from one logged streaming session.
//
// Workflow of Fig. 2 / Fig. 7b: a video provider streamed a session with a
// buffer-based ABR (slightly randomized), and wants to know how FastMPC
// would have done on the same session — without deploying it. We show the
// naive replay estimate (biased by the throughput/bitrate coupling), the
// DR estimate, and the ground truth.
#include <cstdio>

#include "core/environment.h"
#include "core/estimators.h"
#include "video/evaluation.h"
#include "video/session.h"

using namespace dre;

int main() {
    // World: 2 Mbps link, 100 four-second chunks, 5-level bitrate ladder.
    video::SimulatorConfig config;
    config.session.chunks = 100;
    config.epsilon = 0.1; // the logging ABR explores 10% of chunks
    const video::SessionSimulator simulator(config,
                                            video::BitrateLadder::standard5());
    const video::ConstantBandwidth bandwidth(2.0);
    stats::Rng rng(7);

    // The deployed (old) algorithm logs one session.
    const video::BufferBasedAbr deployed;
    const video::SessionRecord session = simulator.simulate(deployed, bandwidth, rng);

    double logged_qoe = 0.0, rebuffer_s = 0.0;
    for (const auto& chunk : session) {
        logged_qoe += chunk.qoe;
        rebuffer_s += chunk.rebuffer_s;
    }
    std::printf("logged session: mean QoE %.3f, total rebuffering %.1fs\n",
                logged_qoe / static_cast<double>(session.size()), rebuffer_s);

    // Candidate: FastMPC with a 3-chunk lookahead.
    const video::MpcAbr candidate(3);

    // (a) The traditional evaluator: replay against observed throughputs.
    const double naive = video::replay_session_naive(
        session, candidate, simulator.ladder(), config.session, config.qoe);

    // (b) Doubly robust: naive per-chunk model + importance-weighted
    //     correction on chunks whose logged bitrate matches the candidate's.
    const Trace trace = video::to_trace(session);
    const video::NaiveChunkModel model(simulator.ladder(), config.session,
                                       config.qoe);
    const video::AbrPolicyAdapter target(candidate, simulator.ladder(),
                                         config.session, config.qoe);
    const core::EstimateResult dr = core::doubly_robust(trace, target, model);

    // (c) Ground truth: actually run the candidate in the simulator.
    const double truth = simulator.true_mean_qoe(candidate, bandwidth, rng, 128);

    std::printf("\nhow would FastMPC have done on this session?\n");
    std::printf("  naive replay estimate   %8.4f  (rel. err %5.1f%%)\n", naive,
                100.0 * core::relative_error(truth, naive));
    std::printf("  doubly robust estimate  %8.4f  (rel. err %5.1f%%)\n",
                dr.value, 100.0 * core::relative_error(truth, dr.value));
    std::printf("  ground truth            %8.4f\n", truth);
    std::printf(
        "\nThe replay assumes a chunk's observed throughput is what any\n"
        "bitrate would have achieved; because observed throughput grows with\n"
        "the chosen bitrate (TCP never ramps up on small chunks), that\n"
        "systematically misjudges the candidate (paper Fig. 2).\n");
    return 0;
}
