// Quickstart: trace-driven evaluation in ~80 lines.
//
// We model a tiny server-selection problem, log a trace under a randomized
// "old" policy, and use the one-call Evaluator to estimate how a smarter
// "new" policy would have performed — then check against the ground truth
// that only the simulation can see.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "core/environment.h"
#include "core/evaluator.h"

using namespace dre;

namespace {

// Two servers; clients in zone 0 are close to server 0, zone 1 to server 1.
// Reward = -latency/100 (higher is better).
class TinyWorld final : public core::Environment {
public:
    ClientContext sample_context(stats::Rng& rng) const override {
        ClientContext c;
        c.categorical = {rng.bernoulli(0.5) ? 1 : 0}; // zone
        return c;
    }
    Reward sample_reward(const ClientContext& c, Decision d,
                         stats::Rng& rng) const override {
        const bool near = c.categorical[0] == d;
        const double latency_ms = (near ? 30.0 : 90.0) * rng.lognormal(0.0, 0.1);
        return -latency_ms / 100.0;
    }
    std::size_t num_decisions() const noexcept override { return 2; }
};

} // namespace

int main() {
    TinyWorld world;
    stats::Rng rng(1);

    // 1. The operator logged traffic under a uniformly random old policy
    //    (randomization is what makes offline evaluation possible — §4.1).
    core::UniformRandomPolicy old_policy(2);
    const Trace trace = core::collect_trace(world, old_policy, 5000, rng);
    std::printf("logged %zu tuples under the old policy\n", trace.size());

    // 2. Candidate new policy: send every client to its nearest server.
    core::DeterministicPolicy new_policy(2, [](const ClientContext& c) {
        return static_cast<Decision>(c.categorical.at(0));
    });

    // 3. Trace-driven evaluation: DM, IPS, SNIPS, DR in one call.
    core::EvaluationConfig config;
    config.reward_model = core::RewardModelKind::kTabular;
    config.ci_replicates = 1000; // bootstrap CI on the DR estimate
    const core::Evaluator evaluator(trace, config, rng.split());
    const core::PolicyEvaluation result = evaluator.evaluate(new_policy);

    std::printf("\nestimates of V(new policy):\n");
    std::printf("  direct method (DM)   %8.4f\n", result.dm.value);
    std::printf("  IPS                  %8.4f\n", result.ips.value);
    std::printf("  self-normalized IPS  %8.4f\n", result.snips.value);
    std::printf("  doubly robust (DR)   %8.4f", result.dr.value);
    if (result.dr_ci)
        std::printf("   95%% CI [%.4f, %.4f]", result.dr_ci->lower,
                    result.dr_ci->upper);
    std::printf("\n  effective sample size %.0f of %zu\n",
                result.overlap.effective_sample_size, trace.size());

    // 4. Ground truth (only the simulator can do this).
    const double truth = core::true_policy_value(world, new_policy, 200000, rng);
    std::printf("\nground truth V(new policy) = %.4f\n", truth);
    std::printf("DR relative error          = %.2f%%\n",
                100.0 * core::relative_error(truth, result.dr.value));
    return 0;
}
