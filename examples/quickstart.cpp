// Quickstart: trace-driven evaluation in ~80 lines.
//
// We model a tiny server-selection problem, log a trace under a randomized
// "old" policy, and use the one-call Evaluator to estimate how a smarter
// "new" policy would have performed — then check against the ground truth
// that only the simulation can see.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "core/environment.h"
#include "core/evaluator.h"
#include "obs/obs.h"

using namespace dre;

namespace {

// Two servers; clients in zone 0 are close to server 0, zone 1 to server 1.
// Reward = -latency/100 (higher is better).
class TinyWorld final : public core::Environment {
public:
    ClientContext sample_context(stats::Rng& rng) const override {
        ClientContext c;
        c.categorical = {rng.bernoulli(0.5) ? 1 : 0}; // zone
        return c;
    }
    Reward sample_reward(const ClientContext& c, Decision d,
                         stats::Rng& rng) const override {
        const bool near = c.categorical[0] == d;
        const double latency_ms = (near ? 30.0 : 90.0) * rng.lognormal(0.0, 0.1);
        return -latency_ms / 100.0;
    }
    std::size_t num_decisions() const noexcept override { return 2; }
};

} // namespace

int main() {
    TinyWorld world;
    stats::Rng rng(1);

    // 1. The operator logged traffic under a uniformly random old policy
    //    (randomization is what makes offline evaluation possible — §4.1).
    core::UniformRandomPolicy old_policy(2);
    const Trace trace = core::collect_trace(world, old_policy, 5000, rng);
    std::printf("logged %zu tuples under the old policy\n", trace.size());

    // 2. Candidate new policy: send every client to its nearest server.
    core::DeterministicPolicy new_policy(2, [](const ClientContext& c) {
        return static_cast<Decision>(c.categorical.at(0));
    });

    // 3. Trace-driven evaluation: DM, IPS, SNIPS, DR in one call.
    core::EvaluationConfig config;
    config.reward_model = core::RewardModelKind::kTabular;
    config.ci_replicates = 1000; // bootstrap CI on the DR estimate
    const core::Evaluator evaluator(trace, config, rng.split());
    const core::PolicyEvaluation result = evaluator.evaluate(new_policy);

    // 4. Ground truth (only the simulator can do this).
    const double truth = core::true_policy_value(world, new_policy, 200000, rng);

    // Diagnostics go through the same obs::Report the CLI uses, so the
    // example's output format matches `dre_eval` exactly.
    obs::Report out;
    out.set("estimates of V(new policy)", "direct method (DM)", result.dm.value);
    out.set("estimates of V(new policy)", "IPS", result.ips.value);
    out.set("estimates of V(new policy)", "self-normalized IPS",
            result.snips.value);
    if (result.dr_ci) {
        char dr_row[128];
        std::snprintf(dr_row, sizeof(dr_row), "%10.4f   95%% CI [%.4f, %.4f]",
                      result.dr.value, result.dr_ci->lower,
                      result.dr_ci->upper);
        out.set("estimates of V(new policy)", "doubly robust (DR)", dr_row);
    } else {
        out.set("estimates of V(new policy)", "doubly robust (DR)",
                result.dr.value);
    }
    out.set("estimates of V(new policy)", "effective sample size",
            result.overlap.effective_sample_size);
    out.set("ground truth", "V(new policy)", truth);
    char err_row[64];
    std::snprintf(err_row, sizeof(err_row), "%.2f%%",
                  100.0 * core::relative_error(truth, result.dr.value));
    out.set("ground truth", "DR relative error", err_row);
    out.print(stdout);
    return 0;
}
