// What if we relayed *every* VoIP call? (the Fig. 3 scenario)
//
// The deployed policy relays only NAT-ed calls. We ask what relaying every
// call would do to quality, showing how the hidden NAT confounder fools
// matching-style evaluation, and persist the trace to CSV for external
// analysis.
#include <cstdio>

#include "core/environment.h"
#include "core/estimators.h"
#include "core/reward_model.h"
#include "relay/scenario.h"
#include "trace/csv.h"

using namespace dre;

int main() {
    const relay::RelayWorldConfig config;
    relay::RelayEnv world(config);
    stats::Rng rng(21);

    // Deployed policy: NAT-ed calls -> relay; public calls -> direct; with
    // 15% exploration so offline evaluation is possible at all.
    const auto deployed = relay::make_nat_logging_policy(config, 0.15);
    const Trace trace = core::collect_trace(world, *deployed, 6000, rng);

    std::size_t relayed = 0, nat = 0;
    for (const auto& t : trace) {
        relayed += t.decision != 0;
        nat += t.context.categorical.at(2) != 0;
    }
    std::printf("logged %zu calls: %.0f%% NAT-ed, %.0f%% relayed\n", trace.size(),
                100.0 * static_cast<double>(nat) / static_cast<double>(trace.size()),
                100.0 * static_cast<double>(relayed) /
                    static_cast<double>(trace.size()));

    // Candidate: relay every call via its best relay.
    const auto candidate = relay::make_relay_all_policy(config);

    // Naive matching (VIA-style, NAT ignored) vs DR.
    const double via = relay::via_matching_estimate(trace, *candidate);
    core::TabularRewardModel model(world.num_decisions());
    model.fit(trace);
    const double dr = core::doubly_robust(trace, *candidate, model).value;
    const double truth = core::true_policy_value(world, *candidate, 200000, rng);

    std::printf("\nwhat if we relayed every call?\n");
    std::printf("  VIA-style matching estimate  %7.4f (rel. err %4.1f%%)\n", via,
                100.0 * core::relative_error(truth, via));
    std::printf("  doubly robust estimate       %7.4f (rel. err %4.1f%%)\n", dr,
                100.0 * core::relative_error(truth, dr));
    std::printf("  ground truth                 %7.4f\n", truth);
    std::printf(
        "\nMatching re-uses relayed-call measurements that all come from\n"
        "NAT-ed users with bad last miles, so it underestimates relaying\n"
        "for everyone else (paper Fig. 3).\n");

    // Persist the logged trace for external tools.
    const std::string path = "relay_trace.csv";
    write_csv_file(trace, path);
    std::printf("\nwrote the logged trace to %s (%zu rows)\n", path.c_str(),
                trace.size());
    return 0;
}
