// Picking the best CDN/bitrate assignment policy from one logged trace.
//
// The CFA workflow (§2.2.2 / Fig. 7c): clients were randomly assigned to
// (CDN, bitrate) pairs; we compare several candidate assignment policies
// offline and pick the winner — "Which policy is the best?" from Fig. 1.
#include <cstdio>
#include <memory>
#include <vector>

#include "cdn/scenario.h"
#include "core/environment.h"
#include "core/evaluator.h"

using namespace dre;

int main() {
    const cdn::CdnWorldConfig world_config;
    cdn::VideoQualityEnv world(world_config);
    stats::Rng rng(11);

    // Random logging assignment (as in CFA's data collection).
    core::UniformRandomPolicy logging(world.num_decisions());
    const Trace trace = core::collect_trace(world, logging, 8000, rng);

    // Candidate policies.
    // 1. Keep everything on CDN 0 at a middle bitrate.
    auto fixed = std::make_shared<core::DeterministicPolicy>(
        world.num_decisions(), [&](const ClientContext&) {
            return cdn::encode_decision(world_config, 0, 1);
        });
    // 2. Highest bitrate on CDN 1 for everyone.
    auto aggressive = std::make_shared<core::DeterministicPolicy>(
        world.num_decisions(), [&](const ClientContext&) {
            return cdn::encode_decision(world_config, 1,
                                        world_config.num_bitrates - 1);
        });
    // 3. A data-driven per-ASN assignment learned from a probe split.
    auto [probe, rest] = trace.split(0.25, rng);
    auto learned = cdn::make_greedy_policy(world, probe);

    core::EvaluationConfig config;
    config.reward_model = core::RewardModelKind::kKnn;
    const core::Evaluator evaluator(rest, config, rng.split());

    const std::vector<const core::Policy*> candidates{fixed.get(),
                                                      aggressive.get(),
                                                      learned.get()};
    const auto comparison = evaluator.compare(candidates);
    const char* names[] = {"fixed (CDN0, mid bitrate)",
                           "aggressive (CDN1, top bitrate)",
                           "learned per-ASN assignment"};

    std::printf("%-32s %10s %10s %10s %8s\n", "candidate", "DM", "IPS", "DR",
                "ESS");
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const auto& e = comparison.evaluations[i];
        std::printf("%-32s %10.4f %10.4f %10.4f %8.0f\n", names[i], e.dm.value,
                    e.ips.value, e.dr.value,
                    e.overlap.effective_sample_size);
    }
    std::printf("\ntrace-driven winner: %s\n", names[comparison.best_index]);

    // Sanity-check against ground truth.
    std::printf("\nground truth:\n");
    for (std::size_t i = 0; i < candidates.size(); ++i)
        std::printf("%-32s %10.4f\n", names[i],
                    core::true_policy_value(world, *candidates[i], 100000, rng));
    return 0;
}
