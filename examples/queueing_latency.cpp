// Queueing dynamics and why they break naive trace-driven evaluation.
//
// We dispatch requests to two servers through a discrete-event FIFO queue
// simulator. A randomized dispatcher's logs make the fast server look
// uniformly great — but a policy that sends *everyone* to the fast server
// changes the queueing state that produced those logs (§4.1's
// decision-reward coupling). Ground-truth simulation shows the herding
// policy's real latency, and the gap to the trace-driven estimate is the
// coupling bias, measured.
#include <cstdio>
#include <vector>

#include "core/environment.h"
#include "core/estimators.h"
#include "core/reward_model.h"
#include "netsim/queue_sim.h"
#include "stats/summary.h"

using namespace dre;

namespace {

// Dispatch `n` Poisson arrivals using per-request probabilities `p_fast`,
// returning the logged trace (reward = -sojourn seconds) under the real
// queueing dynamics.
Trace run_dispatch(const netsim::QueueSimulator& queues, double arrival_rate,
                   double horizon_s, double p_fast, stats::Rng& rng) {
    // Build the arrival sequence and the decisions first.
    std::vector<netsim::QueueRequest> requests;
    std::vector<double> propensities;
    double t = 0.0;
    while (true) {
        t += rng.exponential(arrival_rate);
        if (t >= horizon_s) break;
        const bool fast = rng.bernoulli(p_fast);
        requests.push_back({t, fast ? 0u : 1u});
        propensities.push_back(fast ? p_fast : 1.0 - p_fast);
    }
    const std::vector<netsim::QueueOutcome> outcomes = queues.run(requests, rng);

    Trace trace;
    trace.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        LoggedTuple tuple;
        tuple.context.numeric = {requests[i].arrival_time};
        tuple.decision = static_cast<Decision>(requests[i].server);
        tuple.reward = -outcomes[i].sojourn_s();
        tuple.propensity = propensities[i];
        trace.add(std::move(tuple));
    }
    return trace;
}

double mean_reward(const Trace& trace) {
    return stats::mean(trace.rewards());
}

} // namespace

int main() {
    // Server 0 serves 12 req/s, server 1 only 8 req/s. At 11 req/s the
    // split load is comfortable, but one server alone runs at 92%
    // utilization — stable, yet an order of magnitude slower.
    const netsim::QueueSimulator queues({12.0, 8.0});
    constexpr double kArrivalRate = 11.0;
    constexpr double kHorizon = 2000.0;
    stats::Rng rng(61);

    // Logs under a balanced randomized dispatcher (60% to the fast server).
    const Trace logs = run_dispatch(queues, kArrivalRate, kHorizon, 0.6, rng);
    std::printf("logged %zu requests; mean reward (-sojourn s) = %.3f\n",
                logs.size(), mean_reward(logs));

    // Trace-driven estimate of "send everyone to the fast server".
    core::DeterministicPolicy herd(2, [](const ClientContext&) { return Decision{0}; });
    core::TabularRewardModel model(2);
    model.fit(logs);
    const double dr_estimate = core::doubly_robust(logs, herd, model).value;

    // Ground truth: actually herd everyone and watch the queue build up.
    const Trace herd_world = run_dispatch(queues, kArrivalRate, kHorizon, 1.0, rng);
    const double truth = mean_reward(herd_world);

    std::printf("\npolicy 'all requests -> fast server':\n");
    std::printf("  trace-driven DR estimate  %8.3f\n", dr_estimate);
    std::printf("  ground truth              %8.3f\n", truth);
    std::printf("  coupling bias             %8.3f (optimism)\n",
                dr_estimate - truth);
    std::printf(
        "\nIn the logs, the fast server was fast *because* 40%% of traffic\n"
        "went elsewhere. Herding 11 req/s onto a 12 req/s server pushes it\n"
        "to 92%% utilization — a queueing regime the trace never observed\n"
        "and no reweighting of logged tuples can reveal (§4.1, hidden\n"
        "decision-reward coupling). Remedies in bench/ablation_coupling.\n");
    return 0;
}
