// The trace doctor: run the §4.1 pitfall audit over four traces — one
// healthy, three sick in ways the paper catalogues — and see what an
// automated check can and *cannot* catch.
//
//   1. Honest randomized logs           -> clean bill of health
//   2. Deterministic production logs    -> critical: no off-policy support
//   3. Self-induced load coupling       -> within-decision reward shift
//   4. Hidden NAT confounder (VIA)      -> silence. A confounder that was
//      never measured leaves no statistical fingerprint in the trace
//      itself; this is why the paper insists on *logging propensities at
//      decision time* rather than reconstructing them later.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/audit.h"
#include "core/environment.h"
#include "core/policy.h"
#include "netsim/assignment_env.h"
#include "netsim/server.h"
#include "obs/obs.h"
#include "relay/scenario.h"
#include "stats/rng.h"

using namespace dre;

namespace {

// Each audit becomes one section of a shared obs::Report, so the doctor's
// findings render (and serialize) in the same format as `dre_eval --audit`.
void report(obs::Report& out, const char* title,
            const std::vector<core::AuditFinding>& findings) {
    if (findings.empty()) {
        out.set(title, "audit", "no pitfalls detected");
        return;
    }
    for (const auto& f : findings) {
        const std::string key =
            std::string("[") + core::to_string(f.severity) + "] " + f.code;
        out.set(title, key, f.message);
    }
}

} // namespace

int main() {
    stats::Rng rng(64);
    obs::Report out;
    const netsim::ServerSelectionEnv env(3, 3, 11);
    const core::DeterministicPolicy target(
        3, [](const ClientContext& c) {
            return static_cast<Decision>(c.categorical[0] % 3);
        });

    // 1. Honest logs: epsilon-greedy with a healthy floor.
    auto base = std::make_shared<core::DeterministicPolicy>(
        3, [](const ClientContext&) { return Decision{0}; });
    const core::EpsilonGreedyPolicy honest(base, 0.3);
    const Trace healthy = core::collect_trace(env, honest, 1500, rng);
    report(out, "honest randomized logs", core::audit_trace(healthy, &target));

    // 2. The same world logged by the deterministic production policy.
    Trace deterministic = core::collect_trace(env, honest, 1500, rng);
    for (std::size_t i = 0; i < deterministic.size(); ++i)
        deterministic[i].propensity = 1.0; // "we always pick what we pick"
    report(out, "deterministic production logs",
           core::audit_trace(deterministic, &target));

    // 3. Decision-reward coupling: a herding dispatcher slowly saturates its
    // favourite server, so that server's own rewards rot over the trace.
    // (Small per-client load and slow decay make the congestion build over
    // hundreds of clients instead of saturating instantly.)
    netsim::CoupledAssignmentSimulator coupled(
        {netsim::ServerConfig{20.0, 60.0, 0.002},
         netsim::ServerConfig{25.0, 300.0, 0.05}},
        0.15);
    auto herd_base = std::make_shared<core::DeterministicPolicy>(
        2, [](const ClientContext&) { return Decision{0}; });
    const core::EpsilonGreedyPolicy herding(herd_base, 0.2);
    const Trace coupled_trace = coupled.run(herding, 1200, rng);
    report(out, "self-induced load coupling", core::audit_trace(coupled_trace));

    // 4. VIA's hidden confounder: NAT drives both the relay decision and the
    // reward, but the evaluator's trace never recorded NAT-ness.
    relay::RelayWorldConfig world;
    const relay::RelayEnv relay_env(world);
    const auto nat_logging = relay::make_nat_logging_policy(world, 0.1);
    const Trace nat_blind = relay::without_nat_feature(
        core::collect_trace(relay_env, *nat_logging, 1500, rng));
    report(out, "hidden NAT confounder (VIA, Fig. 3)",
           core::audit_trace(nat_blind));
    out.print(stdout);
    std::printf(
        "\nThe confounded trace passes every statistical check: once the\n"
        "NAT flag is gone, nothing in the logs distinguishes it from an\n"
        "honest experiment. The audit can catch what the logs betray —\n"
        "missing support, drifting worlds, coupled rewards — but the only\n"
        "defence against unmeasured confounders is to log decisions'\n"
        "propensities (and the features behind them) at decision time, as\n"
        "the paper argues in SS2.1. See bench/fig3_relay_bias for how the\n"
        "logged propensities rescue DR where matching fails.\n");
    return 0;
}
