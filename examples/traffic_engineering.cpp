// Tail-aware traffic engineering from logged flow records.
//
// A network operator logged flows routed by an epsilon-greedy version of
// the current egress policy and wants to evaluate a candidate policy that
// routes elephants over the high-capacity transit path — caring about p95
// completion cost, not just the mean. Demonstrates the routing substrate,
// off-policy quantiles/CVaR, and improvement certification.
#include <cstdio>
#include <memory>

#include "core/environment.h"
#include "core/policy_learning.h"
#include "core/quantile_estimators.h"
#include "netsim/routing_env.h"

using namespace dre;

int main() {
    const netsim::RoutingEnv world = netsim::RoutingEnv::standard3();
    stats::Rng rng(41);

    // Incumbent: always the short peering path (path 0), 20% exploration.
    auto incumbent_base = std::make_shared<core::DeterministicPolicy>(
        world.num_decisions(), [](const ClientContext&) { return Decision{0}; });
    core::EpsilonGreedyPolicy incumbent(incumbent_base, 0.2);

    const Trace trace = core::collect_trace(world, incumbent, 10000, rng);
    std::printf("logged %zu flows under the incumbent egress policy\n",
                trace.size());

    // Candidate: elephants (> 30 Mbps) take the clean transit path.
    core::DeterministicPolicy candidate(
        world.num_decisions(), [](const ClientContext& c) {
            return static_cast<Decision>(c.numeric.at(0) > 30.0 ? 1 : 0);
        });

    core::TabularRewardModel model(world.num_decisions());
    model.fit(trace);

    // Mean comparison with certification.
    const core::ImprovementReport report =
        core::certify_improvement(trace, incumbent, candidate, model, rng);
    std::printf("\nmean reward (-cost/100):\n");
    std::printf("  incumbent  %8.4f\n", report.incumbent_value);
    std::printf("  candidate  %8.4f\n", report.candidate_value);
    std::printf("  lift       %8.4f  95%% CI [%.4f, %.4f]  -> %s\n",
                report.estimated_lift, report.lift_ci.lower,
                report.lift_ci.upper,
                report.certified ? "CERTIFIED improvement"
                                 : "not certified, keep incumbent");

    // Tail comparison: p95 cost and CVaR of the worst 5% of flows.
    const core::OffPolicyDistribution incumbent_dist(trace, incumbent);
    const core::OffPolicyDistribution candidate_dist(trace, candidate);
    std::printf("\ntail behaviour (reward = -cost/100, lower = worse):\n");
    std::printf("  %-22s %12s %12s\n", "", "incumbent", "candidate");
    std::printf("  %-22s %12.4f %12.4f\n", "p5 reward (p95 cost)",
                incumbent_dist.quantile(0.05), candidate_dist.quantile(0.05));
    std::printf("  %-22s %12.4f %12.4f\n", "CVaR (worst 5%)",
                incumbent_dist.cvar_lower(0.05),
                candidate_dist.cvar_lower(0.05));

    // Sanity check against ground truth.
    std::printf("\nground-truth means:\n");
    std::printf("  incumbent  %8.4f\n",
                core::true_policy_value(world, incumbent, 200000, rng));
    std::printf("  candidate  %8.4f\n",
                core::true_policy_value(world, candidate, 200000, rng));
    return 0;
}
