// Closing the loop: log -> evaluate -> learn -> certify -> deploy -> repeat.
//
// The paper's Fig. 1 workflow run for several rounds on the CDN/bitrate
// world. Each round we (1) log traffic under the current policy (kept
// epsilon-greedy, per §4.1's plea for randomness), (2) learn a greedy
// candidate from the logs, (3) certify the candidate's DR lift with a
// paired bootstrap CI, and (4) deploy it only if certified. Ground-truth
// values show the loop actually improving the system.
#include <cstdio>
#include <memory>

#include "cdn/scenario.h"
#include "core/environment.h"
#include "core/policy_learning.h"

using namespace dre;

int main() {
    cdn::VideoQualityEnv world{cdn::CdnWorldConfig{}};
    stats::Rng rng(51);
    constexpr double kExploration = 0.1;
    constexpr int kRounds = 4;
    constexpr std::size_t kClientsPerRound = 6000;

    // Round 0 incumbent: uniform random (a fresh deployment).
    std::shared_ptr<core::Policy> incumbent =
        std::make_shared<core::UniformRandomPolicy>(world.num_decisions());

    std::printf("%6s %18s %18s %10s %10s\n", "round", "incumbent (true)",
                "candidate (true)", "DR lift", "deploy?");
    for (int round = 0; round < kRounds; ++round) {
        // 1. Log a round of traffic under the incumbent.
        const Trace trace =
            core::collect_trace(world, *incumbent, kClientsPerRound, rng);

        // Split the logs: learn on one half, certify on the other. Learning
        // and certifying on the same tuples would let the candidate surf the
        // split's noise and produce falsely-certified "improvements"
        // (winner's curse) — the offline cousin of §2.2's pitfalls.
        const auto [learn_split, certify_split] = trace.split(0.5, rng);

        // 2. Learn a candidate: greedy over a k-NN reward model, wrapped
        //    epsilon-greedy so the *next* round still explores.
        const auto candidate = core::learn_greedy_policy(
            learn_split, core::RewardModelKind::kKnn, world.num_decisions(),
            kExploration);

        // 3. Certify the candidate offline, on data it has never seen.
        core::KnnRewardModel model(world.num_decisions(), 10);
        model.fit(certify_split);
        const core::ImprovementReport report = core::certify_improvement(
            certify_split, *incumbent, *candidate, model, rng, 500);

        // Ground truth for the printout only — a real operator cannot do this.
        const double incumbent_truth =
            core::true_policy_value(world, *incumbent, 60000, rng);
        const double candidate_truth =
            core::true_policy_value(world, *candidate, 60000, rng);

        std::printf("%6d %18.4f %18.4f %10.4f %10s\n", round, incumbent_truth,
                    candidate_truth, report.estimated_lift,
                    report.certified ? "yes" : "no");

        // 4. Deploy only certified improvements.
        if (report.certified) incumbent = candidate;
    }

    std::printf("\nfinal policy true value: %.4f (uniform baseline was %.4f)\n",
                core::true_policy_value(world, *incumbent, 100000, rng),
                core::true_policy_value(
                    world, core::UniformRandomPolicy(world.num_decisions()),
                    100000, rng));
    std::printf("\nNote the loop keeps epsilon=%.0f%% exploration in every\n"
                "deployed policy — without it, the next round's logs could\n"
                "not evaluate anything (the §4.1 coverage argument).\n",
                100.0 * kExploration);
    return 0;
}
