// WISE-style what-if deployment questions (Fig. 4 / Fig. 7a).
//
// A CDN operator wants to know the response-time impact of re-routing half
// of ISP-1's requests onto (FE-1, BE-2) — a combination barely present in
// the trace. We show the learned causal model's answer, why it is wrong,
// and the DR-corrected answer.
#include <cstdio>

#include "core/environment.h"
#include "core/estimators.h"
#include "wise/bayes_net.h"
#include "wise/scenario.h"

using namespace dre;

int main() {
    wise::RequestRoutingEnv world{wise::WiseWorldConfig{}};
    stats::Rng rng(31);

    // Trace skewed exactly as in the paper: 500 requests per observed
    // routing arrow, 5 per remaining (FE, BE) choice.
    const auto deployed = wise::make_logging_policy(2);
    const Trace trace = core::collect_trace(world, *deployed, 2060, rng);

    // First, what dependence structure does the trace itself support?
    // A Chow-Liu tree over (ISP, FE, BE) recovers how the *logging policy*
    // couples configuration variables — exactly the skew a careless
    // what-if analysis inherits.
    std::vector<wise::Assignment> rows;
    for (const auto& t : trace)
        rows.push_back({t.context.categorical.at(0),
                        static_cast<std::int32_t>(wise::frontend_of(t.decision)),
                        static_cast<std::int32_t>(wise::backend_of(t.decision))});
    const wise::BayesianNetwork structure =
        wise::learn_chow_liu_tree(rows, {2, 2, 2});
    const char* var_names[] = {"ISP", "FE", "BE"};
    std::printf("Chow-Liu structure of the logged configuration:\n");
    for (std::size_t v = 0; v < 3; ++v)
        for (const std::size_t p : structure.parents(v))
            std::printf("  %s -> %s\n", var_names[p], var_names[v]);
    std::printf("(the logging policy makes FE/BE follow the ISP almost "
                "deterministically)\n\n");

    // Learn the WISE-style causal model from the trace.
    wise::WiseCbnRewardModel cbn;
    cbn.fit(trace);

    std::printf("learned CBN parents of response time (greedy order):");
    for (const std::size_t parent : cbn.cbn().parent_order())
        std::printf(" %s", parent == 0 ? "ISP" : (parent == 1 ? "FE" : "BE"));
    std::printf("\n\nper-cell what-if answers for ISP-1 (reward = -RT/100):\n");
    const ClientContext isp1({}, {0});
    for (std::size_t fe = 0; fe < wise::kNumFrontends; ++fe) {
        for (std::size_t be = 0; be < wise::kNumBackends; ++be) {
            const Decision d = wise::encode_decision(fe, be);
            const wise::Assignment assignment = {
                0, static_cast<std::int32_t>(fe), static_cast<std::int32_t>(be)};
            std::printf(
                "  (FE-%zu, BE-%zu): model %7.3f   truth %7.3f   (cell support %zu)\n",
                fe + 1, be + 1, cbn.predict(isp1, d),
                world.expected_reward(isp1, d, rng, 1),
                cbn.cbn().support(assignment));
        }
    }
    std::printf(
        "\nCells with only ~5 logged requests fall below the CBN's\n"
        "reliability threshold; the model backs off to a coarser conditional\n"
        "and inherits the wrong response time for some what-if cell(s).\n");

    // The full what-if: move 50% of ISP-1 traffic onto (FE-1, BE-2).
    const auto candidate = wise::make_new_policy(2, 0.5);
    const double wise_answer =
        core::direct_method(trace, *candidate, cbn).value;
    const double dr_answer = core::doubly_robust(trace, *candidate, cbn).value;
    const double truth = core::true_policy_value(world, *candidate, 300000, rng);

    std::printf("\naverage reward if the new routing were deployed:\n");
    std::printf("  WISE (model only)  %8.4f (rel. err %5.1f%%)\n", wise_answer,
                100.0 * core::relative_error(truth, wise_answer));
    std::printf("  doubly robust      %8.4f (rel. err %5.1f%%)\n", dr_answer,
                100.0 * core::relative_error(truth, dr_answer));
    std::printf("  ground truth       %8.4f\n", truth);
    return 0;
}
