#include "netsim/assignment_env.h"

#include <cmath>
#include <stdexcept>

namespace dre::netsim {

ServerSelectionEnv::ServerSelectionEnv(std::size_t num_zones,
                                       std::size_t num_servers, std::uint64_t seed)
    : num_zones_(num_zones), num_servers_(num_servers) {
    if (num_zones_ == 0 || num_servers_ == 0)
        throw std::invalid_argument("ServerSelectionEnv: empty zones or servers");
    // Random but fixed zone/server latency affinities in [20, 120] ms.
    stats::Rng rng(seed);
    affinity_.resize(num_zones_ * num_servers_);
    for (double& a : affinity_) a = rng.uniform(20.0, 120.0);
}

double ServerSelectionEnv::mean_latency_ms(std::int32_t zone, Decision server) const {
    if (zone < 0 || static_cast<std::size_t>(zone) >= num_zones_)
        throw std::out_of_range("ServerSelectionEnv: zone out of range");
    if (server < 0 || static_cast<std::size_t>(server) >= num_servers_)
        throw std::out_of_range("ServerSelectionEnv: server out of range");
    return affinity_[static_cast<std::size_t>(zone) * num_servers_ +
                     static_cast<std::size_t>(server)];
}

ClientContext ServerSelectionEnv::sample_context(stats::Rng& rng) const {
    ClientContext context;
    context.categorical = {static_cast<std::int32_t>(rng.uniform_index(num_zones_))};
    // A per-client "access quality" multiplier in [0.8, 1.2].
    context.numeric = {rng.uniform(0.8, 1.2)};
    return context;
}

Reward ServerSelectionEnv::sample_reward(const ClientContext& context, Decision d,
                                         stats::Rng& rng) const {
    const double mean =
        mean_latency_ms(context.categorical.at(0), d) * context.numeric.at(0);
    const double latency = mean * rng.lognormal(0.0, 0.2);
    return -latency / 100.0;
}

double ServerSelectionEnv::expected_reward(const ClientContext& context, Decision d,
                                           stats::Rng&, int) const {
    const double mean =
        mean_latency_ms(context.categorical.at(0), d) * context.numeric.at(0);
    // E[lognormal(0, .2)] = exp(.02).
    return -(mean * std::exp(0.02)) / 100.0;
}

CoupledAssignmentSimulator::CoupledAssignmentSimulator(
    std::vector<ServerConfig> servers, double load_per_client)
    : server_configs_(std::move(servers)), load_per_client_(load_per_client) {
    if (server_configs_.empty())
        throw std::invalid_argument("CoupledAssignmentSimulator: no servers");
    if (load_per_client_ <= 0.0)
        throw std::invalid_argument("CoupledAssignmentSimulator: load must be > 0");
}

Trace CoupledAssignmentSimulator::run_once(const core::Policy& policy, std::size_t n,
                                           stats::Rng& rng, bool record_history) {
    if (policy.num_decisions() != server_configs_.size())
        throw std::invalid_argument(
            "CoupledAssignmentSimulator: policy/server-count mismatch");
    ServerPool pool(server_configs_);
    if (record_history) {
        utilization_history_.clear();
        utilization_history_.reserve(n);
    }

    Trace trace;
    trace.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        LoggedTuple t;
        t.context.numeric = {rng.uniform(0.8, 1.2)};
        t.context.categorical = {};
        const std::vector<double> probs = policy.action_probabilities(t.context);
        t.decision = static_cast<Decision>(rng.categorical(probs));
        t.propensity = probs[static_cast<std::size_t>(t.decision)];

        Server& chosen = pool.server(static_cast<std::size_t>(t.decision));
        chosen.add_load(load_per_client_);
        t.reward = -chosen.sample_latency_ms(rng) * t.context.numeric[0] / 100.0;
        if (record_history) {
            double mean_utilization = 0.0;
            for (std::size_t s = 0; s < pool.size(); ++s)
                mean_utilization += pool.server(s).utilization();
            utilization_history_.push_back(mean_utilization /
                                           static_cast<double>(pool.size()));
        }
        pool.tick();
        trace.add(std::move(t));
    }
    return trace;
}

Trace CoupledAssignmentSimulator::run(const core::Policy& policy, std::size_t n,
                                      stats::Rng& rng) {
    return run_once(policy, n, rng, /*record_history=*/true);
}

double CoupledAssignmentSimulator::true_value(const core::Policy& policy,
                                              std::size_t n, stats::Rng& rng,
                                              int replicates) {
    if (replicates <= 0)
        throw std::invalid_argument("CoupledAssignmentSimulator: replicates <= 0");
    double total = 0.0;
    for (int r = 0; r < replicates; ++r) {
        const Trace t = run_once(policy, n, rng, /*record_history=*/false);
        double sum = 0.0;
        for (const auto& tuple : t) sum += tuple.reward;
        total += sum / static_cast<double>(t.size());
    }
    return total / replicates;
}

} // namespace dre::netsim
