// Traffic-engineering environment over an explicit link-level topology.
//
// Flows between an ingress/egress pair choose among the k loop-free
// candidate paths (the decision space). The reward combines the chosen
// path's propagation delay with the flow's max-min fair throughput given a
// random level of background traffic — so "short" paths are only good when
// their links aren't busy, and the right choice depends on both the flow's
// demand and the congestion state.
#ifndef DRE_NETSIM_TE_ENV_H
#define DRE_NETSIM_TE_ENV_H

#include <vector>

#include "core/environment.h"
#include "netsim/topology.h"
#include "stats/rng.h"

namespace dre::netsim {

struct TeWorldConfig {
    std::size_t max_hops = 3;            // candidate-path hop budget
    double background_max_flows = 12.0;  // mean background flows at peak
    double background_demand_mbps = 30.0;
    double delay_cost_per_ms = 1.0;      // reward weights
    double throughput_gain_per_mbps = 2.0;
    std::uint64_t seed = 29;
};

class TopologyTeEnv final : public core::Environment {
public:
    // Candidate paths are enumerated from `topology` between src and dst,
    // ordered by propagation delay (shortest first).
    TopologyTeEnv(Topology topology, NodeId src, NodeId dst, TeWorldConfig config);

    // Context numeric = {demand_mbps, congestion in [0,1]}.
    ClientContext sample_context(stats::Rng& rng) const override;
    Reward sample_reward(const ClientContext& context, Decision d,
                         stats::Rng& rng) const override;
    std::size_t num_decisions() const noexcept override { return paths_.size(); }

    const std::vector<std::vector<LinkId>>& candidate_paths() const noexcept {
        return paths_;
    }
    const Topology& topology() const noexcept { return topology_; }

    // A classic 5-node US-ish backbone with one short congested route and
    // longer clean detours between nodes 0 and 4.
    static TopologyTeEnv backbone(TeWorldConfig config = {});

private:
    Topology topology_;
    TeWorldConfig config_;
    std::vector<std::vector<LinkId>> paths_;
};

} // namespace dre::netsim

#endif // DRE_NETSIM_TE_ENV_H
