#include "netsim/workload.h"

#include <stdexcept>

namespace dre::netsim {

DiurnalCycle::DiurnalCycle(std::vector<Phase> phases) : phases_(std::move(phases)) {
    if (phases_.empty()) throw std::invalid_argument("DiurnalCycle: no phases");
    for (const auto& phase : phases_) {
        if (phase.clients == 0)
            throw std::invalid_argument("DiurnalCycle: zero-length phase");
        period_ += phase.clients;
    }
}

std::int32_t DiurnalCycle::state_at(std::size_t client_index) const {
    std::size_t offset = client_index % period_;
    for (const auto& phase : phases_) {
        if (offset < phase.clients) return phase.state;
        offset -= phase.clients;
    }
    return phases_.back().state; // unreachable; keeps the compiler happy
}

double DiurnalCycle::fraction_in(std::int32_t state) const {
    std::size_t matching = 0;
    for (const auto& phase : phases_)
        if (phase.state == state) matching += phase.clients;
    return static_cast<double>(matching) / static_cast<double>(period_);
}

DiurnalCycle DiurnalCycle::day_night(std::size_t off_peak, std::size_t peak) {
    return DiurnalCycle({{StatefulSelectionEnv::kOffPeak, off_peak},
                         {StatefulSelectionEnv::kPeak, peak}});
}

Trace collect_diurnal_trace(StatefulSelectionEnv& env,
                            const core::Policy& logging_policy, std::size_t n,
                            const DiurnalCycle& cycle, stats::Rng& rng) {
    if (logging_policy.num_decisions() != env.num_decisions())
        throw std::invalid_argument("collect_diurnal_trace: decision-space mismatch");
    const std::int32_t saved = env.state();
    Trace trace;
    trace.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t state = cycle.state_at(i);
        env.set_state(state);
        LoggedTuple t;
        t.context = env.sample_context(rng);
        const std::vector<double> probs =
            logging_policy.action_probabilities(t.context);
        t.decision = static_cast<Decision>(rng.categorical(probs));
        t.propensity = probs[static_cast<std::size_t>(t.decision)];
        t.reward = env.sample_reward(t.context, t.decision, rng);
        t.state = state;
        trace.add(std::move(t));
    }
    env.set_state(saved);
    return trace;
}

} // namespace dre::netsim
