#include "netsim/te_env.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dre::netsim {

TopologyTeEnv::TopologyTeEnv(Topology topology, NodeId src, NodeId dst,
                             TeWorldConfig config)
    : topology_(std::move(topology)), config_(config) {
    paths_ = topology_.k_paths(src, dst, config_.max_hops);
    if (paths_.empty())
        throw std::invalid_argument("TopologyTeEnv: no candidate paths");
    std::sort(paths_.begin(), paths_.end(),
              [this](const auto& a, const auto& b) {
                  return topology_.path_delay_ms(a) < topology_.path_delay_ms(b);
              });
}

TopologyTeEnv TopologyTeEnv::backbone(TeWorldConfig config) {
    // 0 --(5ms, 40)-- 1 --(5ms, 40)-- 4     (short, tight capacity)
    // 0 --(12ms,200)-- 2 --(12ms,200)-- 4   (long, roomy)
    // 1 --(4ms, 80)-- 3 --(6ms, 80)-- 4     (medium detour)
    Topology topo(5);
    topo.add_link(0, 1, 5.0, 40.0);
    topo.add_link(1, 4, 5.0, 40.0);
    topo.add_link(0, 2, 12.0, 200.0);
    topo.add_link(2, 4, 12.0, 200.0);
    topo.add_link(1, 3, 4.0, 80.0);
    topo.add_link(3, 4, 6.0, 80.0);
    return TopologyTeEnv(std::move(topo), 0, 4, config);
}

ClientContext TopologyTeEnv::sample_context(stats::Rng& rng) const {
    ClientContext context;
    // Heavy-tailed demand (mice & elephants), clamped for sanity.
    const double demand = std::min(rng.pareto(3.0, 1.4), 150.0);
    // Congestion state in [0, 1] drives the background-flow intensity.
    context.numeric = {demand, rng.uniform(0.0, 1.0)};
    return context;
}

Reward TopologyTeEnv::sample_reward(const ClientContext& context, Decision d,
                                    stats::Rng& rng) const {
    if (d < 0 || static_cast<std::size_t>(d) >= paths_.size())
        throw std::out_of_range("TopologyTeEnv: decision out of range");
    if (context.numeric.size() < 2)
        throw std::invalid_argument("TopologyTeEnv: malformed context");
    const double demand = context.numeric[0];
    const double congestion = context.numeric[1];

    // Background flows ride the *shortest* path (what everyone defaults to).
    std::vector<Flow> flows;
    const auto background = static_cast<std::size_t>(
        rng.poisson(congestion * config_.background_max_flows));
    for (std::size_t i = 0; i < background; ++i)
        flows.push_back({paths_.front(), config_.background_demand_mbps});
    // Our flow, on the chosen path.
    flows.push_back({paths_[static_cast<std::size_t>(d)], demand});

    const std::vector<double> rates = max_min_fair_rates(topology_, flows);
    const double achieved = rates.back();
    const double delay =
        topology_.path_delay_ms(paths_[static_cast<std::size_t>(d)]);

    // Reward: throughput utility minus delay cost, mildly noisy.
    const double reward = config_.throughput_gain_per_mbps * std::log1p(achieved) -
                          config_.delay_cost_per_ms * delay / 10.0;
    return reward + rng.normal(0.0, 0.05);
}

} // namespace dre::netsim
