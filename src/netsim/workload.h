// Workload shaping: diurnal state cycles over sequential clients.
//
// Real traces interleave system states (§4.1): morning lull, evening peak.
// DiurnalCycle assigns a state label to each client index so stateful
// environments can produce realistically mixed traces, and so experiments
// can slice them back apart (state-matched DR, §4.3).
#ifndef DRE_NETSIM_WORKLOAD_H
#define DRE_NETSIM_WORKLOAD_H

#include <cstdint>
#include <vector>

#include "core/policy.h"
#include "netsim/state_env.h"
#include "stats/rng.h"
#include "trace/trace.h"

namespace dre::netsim {

// Deterministic repeating cycle of (state, duration) phases.
class DiurnalCycle {
public:
    struct Phase {
        std::int32_t state = 0;
        std::size_t clients = 1; // how many consecutive clients see it
    };

    explicit DiurnalCycle(std::vector<Phase> phases);

    // State label for the i-th client in the trace.
    std::int32_t state_at(std::size_t client_index) const;

    std::size_t period() const noexcept { return period_; }

    // Fraction of a full cycle spent in `state`.
    double fraction_in(std::int32_t state) const;

    // The classic two-phase day: `off_peak` clients off-peak, then `peak`.
    static DiurnalCycle day_night(std::size_t off_peak, std::size_t peak);

private:
    std::vector<Phase> phases_;
    std::size_t period_ = 0;
};

// Collect a trace whose clients traverse a diurnal cycle over the stateful
// environment; every tuple is labelled with its phase's state.
Trace collect_diurnal_trace(StatefulSelectionEnv& env,
                            const core::Policy& logging_policy, std::size_t n,
                            const DiurnalCycle& cycle, stats::Rng& rng);

} // namespace dre::netsim

#endif // DRE_NETSIM_WORKLOAD_H
