#include "netsim/server.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dre::netsim {

Server::Server(ServerConfig config) : config_(config) {
    if (config_.base_latency_ms <= 0.0)
        throw std::invalid_argument("Server: base latency must be > 0");
    if (config_.capacity <= 0.0)
        throw std::invalid_argument("Server: capacity must be > 0");
    if (config_.load_decay < 0.0 || config_.load_decay > 1.0)
        throw std::invalid_argument("Server: load_decay outside [0,1]");
}

void Server::add_load(double amount) noexcept {
    load_ = std::max(0.0, load_ + amount);
}

void Server::tick() noexcept {
    load_ *= (1.0 - config_.load_decay);
}

double Server::utilization() const noexcept {
    return load_ / config_.capacity;
}

double Server::expected_latency_ms() const noexcept {
    // M/M/1-style latency blow-up, clamped at 95% utilization so latencies
    // stay finite under overload (a saturated server is just very slow).
    const double rho = std::min(utilization(), 0.95);
    return config_.base_latency_ms / (1.0 - rho);
}

double Server::sample_latency_ms(stats::Rng& rng) const {
    // Lognormal multiplicative jitter with sigma=0.25 (median = expectation).
    return expected_latency_ms() * rng.lognormal(0.0, 0.25);
}

ServerPool::ServerPool(std::vector<ServerConfig> configs) {
    if (configs.empty()) throw std::invalid_argument("ServerPool: no servers");
    servers_.reserve(configs.size());
    for (const auto& config : configs) servers_.emplace_back(config);
}

Server& ServerPool::server(std::size_t i) {
    if (i >= servers_.size()) throw std::out_of_range("ServerPool::server");
    return servers_[i];
}

const Server& ServerPool::server(std::size_t i) const {
    if (i >= servers_.size()) throw std::out_of_range("ServerPool::server");
    return servers_[i];
}

void ServerPool::tick() noexcept {
    for (Server& s : servers_) s.tick();
}

std::size_t ServerPool::least_loaded() const noexcept {
    std::size_t best = 0;
    for (std::size_t i = 1; i < servers_.size(); ++i)
        if (servers_[i].utilization() < servers_[best].utilization()) best = i;
    return best;
}

} // namespace dre::netsim
