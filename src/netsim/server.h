// Minimal server/load model.
//
// Each server is an M/M/1-flavoured resource: response time grows
// hyperbolically as utilization approaches capacity. Assigning a client
// adds load that decays over time — the mechanism behind the paper's
// "hidden decision-reward coupling" ("if we assign clients to a specific
// server ... the performance of future clients using that server instance
// may be degraded due to increased load", §4.1).
#ifndef DRE_NETSIM_SERVER_H
#define DRE_NETSIM_SERVER_H

#include <cstddef>
#include <string>
#include <vector>

#include "stats/rng.h"

namespace dre::netsim {

struct ServerConfig {
    double base_latency_ms = 20.0; // service time at zero load
    double capacity = 100.0;       // requests/sec before saturation
    double load_decay = 0.05;      // fraction of load shed per tick
};

class Server {
public:
    explicit Server(ServerConfig config);

    // Add one request's worth of instantaneous load.
    void add_load(double amount = 1.0) noexcept;

    // Advance time one tick: load decays exponentially.
    void tick() noexcept;

    // Expected response time at current load: base / (1 - utilization),
    // clamped before saturation to stay finite.
    double expected_latency_ms() const noexcept;

    // Stochastic response time (lognormal jitter around the expectation).
    double sample_latency_ms(stats::Rng& rng) const;

    double load() const noexcept { return load_; }
    double utilization() const noexcept;
    const ServerConfig& config() const noexcept { return config_; }

private:
    ServerConfig config_;
    double load_ = 0.0;
};

// A small fleet with shared tick().
class ServerPool {
public:
    explicit ServerPool(std::vector<ServerConfig> configs);

    std::size_t size() const noexcept { return servers_.size(); }
    Server& server(std::size_t i);
    const Server& server(std::size_t i) const;

    void tick() noexcept;

    // Index of the least-utilized server.
    std::size_t least_loaded() const noexcept;

private:
    std::vector<Server> servers_;
};

} // namespace dre::netsim

#endif // DRE_NETSIM_SERVER_H
