#include "netsim/routing_env.h"

#include <cmath>
#include <stdexcept>

namespace dre::netsim {

RoutingEnv::RoutingEnv(RoutingWorldConfig config, std::vector<PathConfig> paths)
    : config_(config),
      paths_(std::move(paths)),
      zone_sampler_(config.num_zones, config.zone_zipf_exponent) {
    if (paths_.empty()) throw std::invalid_argument("RoutingEnv: no paths");
    if (config_.num_zones == 0) throw std::invalid_argument("RoutingEnv: no zones");
    for (const auto& p : paths_) {
        if (p.base_rtt_ms <= 0.0 || p.capacity_mbps <= 0.0 || p.loss_rate < 0.0 ||
            p.loss_rate >= 1.0)
            throw std::invalid_argument("RoutingEnv: bad path config");
    }
    stats::Rng rng(config_.seed);
    zone_rtt_offset_.resize(config_.num_zones);
    for (double& offset : zone_rtt_offset_) offset = rng.uniform(0.0, 30.0);
}

RoutingEnv RoutingEnv::standard3(RoutingWorldConfig config) {
    return RoutingEnv(config, {
        {.base_rtt_ms = 25.0, .loss_rate = 0.02, .capacity_mbps = 200.0},
        {.base_rtt_ms = 80.0, .loss_rate = 0.0005, .capacity_mbps = 400.0},
        {.base_rtt_ms = 45.0, .loss_rate = 0.004, .capacity_mbps = 40.0},
    });
}

ClientContext RoutingEnv::sample_context(stats::Rng& rng) const {
    ClientContext context;
    context.categorical = {
        static_cast<std::int32_t>(zone_sampler_.sample(rng))};
    // Heavy-tailed flow demand in Mbps (mice and elephants).
    context.numeric = {std::min(rng.pareto(2.0, 1.3), 500.0)};
    return context;
}

double RoutingEnv::mean_cost_ms(const ClientContext& context, Decision d) const {
    if (d < 0 || static_cast<std::size_t>(d) >= paths_.size())
        throw std::out_of_range("RoutingEnv: path out of range");
    const auto zone = static_cast<std::size_t>(context.categorical.at(0));
    if (zone >= config_.num_zones)
        throw std::out_of_range("RoutingEnv: zone out of range");
    const PathConfig& path = paths_[static_cast<std::size_t>(d)];
    const double demand = context.numeric.at(0);

    double cost = path.base_rtt_ms + zone_rtt_offset_[zone];
    // Congestion: demand beyond capacity stretches completion time.
    const double overload = demand / path.capacity_mbps;
    if (overload > 1.0) cost *= overload;
    // Loss translates to retransmission delay.
    cost += config_.loss_penalty_ms * path.loss_rate;
    return cost;
}

Reward RoutingEnv::sample_reward(const ClientContext& context, Decision d,
                                 stats::Rng& rng) const {
    const double cost =
        mean_cost_ms(context, d) * rng.lognormal(0.0, config_.noise_sigma);
    return -cost / 100.0;
}

double RoutingEnv::expected_reward(const ClientContext& context, Decision d,
                                   stats::Rng&, int) const {
    const double jitter_mean = std::exp(0.5 * config_.noise_sigma * config_.noise_sigma);
    return -mean_cost_ms(context, d) * jitter_mean / 100.0;
}

} // namespace dre::netsim
