// Environment with explicit system states ("state of the world", §4.1).
//
// A server-selection world whose rewards depend on a global load regime
// (e.g., kOffPeak vs kPeak): peak-hour rewards are uniformly degraded by a
// multiplicative factor. Traces can be collected in one regime and policies
// evaluated against another — the exact mismatch the paper describes
// ("evaluate ... during peak hours, but the trace ... was collected during
// early morning hours").
#ifndef DRE_NETSIM_STATE_ENV_H
#define DRE_NETSIM_STATE_ENV_H

#include <vector>

#include "core/environment.h"
#include "stats/rng.h"
#include "trace/trace.h"

namespace dre::netsim {

class StatefulSelectionEnv final : public core::Environment {
public:
    static constexpr std::int32_t kOffPeak = 0;
    static constexpr std::int32_t kPeak = 1;

    // `peak_degradation` multiplies rewards in the peak state (rewards are
    // negative latencies, so values > 1 mean "worse"). Paper's example: 20%
    // worse => 1.2.
    StatefulSelectionEnv(std::size_t num_zones, std::size_t num_servers,
                         double peak_degradation, std::uint64_t seed);

    // The Environment interface operates in the currently-selected state.
    ClientContext sample_context(stats::Rng& rng) const override;
    Reward sample_reward(const ClientContext& context, Decision d,
                         stats::Rng& rng) const override;
    double expected_reward(const ClientContext& context, Decision d,
                           stats::Rng& rng, int samples) const override;
    std::size_t num_decisions() const noexcept override { return num_servers_; }

    void set_state(std::int32_t state);
    std::int32_t state() const noexcept { return state_; }
    double degradation(std::int32_t state) const noexcept;

    // Collect a trace in `state`, labelling every tuple with it.
    Trace collect_in_state(const core::Policy& logging_policy, std::size_t n,
                           std::int32_t state, stats::Rng& rng);

private:
    double mean_latency_ms(std::int32_t zone, Decision server) const;

    std::size_t num_zones_;
    std::size_t num_servers_;
    double peak_degradation_;
    std::int32_t state_ = kOffPeak;
    std::vector<double> affinity_;
};

} // namespace dre::netsim

#endif // DRE_NETSIM_STATE_ENV_H
