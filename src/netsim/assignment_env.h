// Server-selection environments.
//
// ServerSelectionEnv: a stateless contextual environment (reward depends on
// client context and server choice only) used as a clean baseline.
//
// CoupledAssignmentSimulator: a *stateful* sequential simulator where each
// assignment adds load to the chosen server and degrades future clients —
// the §4.1 "hidden decision-reward coupling". It produces traces whose
// rewards depend on the decision history, deliberately violating the DR
// assumptions so the coupling ablation (E11) can quantify the damage and
// the change-point remedy.
#ifndef DRE_NETSIM_ASSIGNMENT_ENV_H
#define DRE_NETSIM_ASSIGNMENT_ENV_H

#include <vector>

#include "core/environment.h"
#include "core/policy.h"
#include "netsim/server.h"
#include "stats/rng.h"
#include "trace/trace.h"

namespace dre::netsim {

// Stateless server-selection environment. Context = (client_zone one-hot
// carried as a categorical, client quality numeric); reward = -latency/100
// with per-(zone, server) affinities.
class ServerSelectionEnv final : public core::Environment {
public:
    ServerSelectionEnv(std::size_t num_zones, std::size_t num_servers,
                       std::uint64_t seed);

    ClientContext sample_context(stats::Rng& rng) const override;
    Reward sample_reward(const ClientContext& context, Decision d,
                         stats::Rng& rng) const override;
    double expected_reward(const ClientContext& context, Decision d,
                           stats::Rng& rng, int samples) const override;
    std::size_t num_decisions() const noexcept override { return num_servers_; }

    std::size_t num_zones() const noexcept { return num_zones_; }

private:
    double mean_latency_ms(std::int32_t zone, Decision server) const;

    std::size_t num_zones_;
    std::size_t num_servers_;
    std::vector<double> affinity_; // [zone * num_servers + server]
};

// Sequential simulator with self-induced load. Not an Environment: rewards
// depend on simulator state, which is the point.
class CoupledAssignmentSimulator {
public:
    CoupledAssignmentSimulator(std::vector<ServerConfig> servers,
                               double load_per_client = 4.0);

    // Run `policy` over `n` sequential clients; returns the logged trace
    // (contexts carry the client's zone; rewards are -latency/100).
    Trace run(const core::Policy& policy, std::size_t n, stats::Rng& rng);

    // Average reward achieved by `policy` over `n` fresh clients (ground
    // truth including coupling), averaged over `replicates` runs.
    double true_value(const core::Policy& policy, std::size_t n, stats::Rng& rng,
                      int replicates = 16);

    // Per-client utilization snapshots of the last run() (for change-point
    // analysis of the self-induced state change).
    const std::vector<double>& utilization_history() const noexcept {
        return utilization_history_;
    }

private:
    Trace run_once(const core::Policy& policy, std::size_t n, stats::Rng& rng,
                   bool record_history);

    std::vector<ServerConfig> server_configs_;
    double load_per_client_;
    std::vector<double> utilization_history_;
};

} // namespace dre::netsim

#endif // DRE_NETSIM_ASSIGNMENT_ENV_H
