#include "netsim/state_env.h"

#include <cmath>
#include <stdexcept>

namespace dre::netsim {

StatefulSelectionEnv::StatefulSelectionEnv(std::size_t num_zones,
                                           std::size_t num_servers,
                                           double peak_degradation,
                                           std::uint64_t seed)
    : num_zones_(num_zones),
      num_servers_(num_servers),
      peak_degradation_(peak_degradation) {
    if (num_zones_ == 0 || num_servers_ == 0)
        throw std::invalid_argument("StatefulSelectionEnv: empty zones or servers");
    if (peak_degradation_ <= 0.0)
        throw std::invalid_argument("StatefulSelectionEnv: degradation must be > 0");
    stats::Rng rng(seed);
    affinity_.resize(num_zones_ * num_servers_);
    for (double& a : affinity_) a = rng.uniform(20.0, 120.0);
}

void StatefulSelectionEnv::set_state(std::int32_t state) {
    if (state != kOffPeak && state != kPeak)
        throw std::invalid_argument("StatefulSelectionEnv: unknown state");
    state_ = state;
}

double StatefulSelectionEnv::degradation(std::int32_t state) const noexcept {
    return state == kPeak ? peak_degradation_ : 1.0;
}

double StatefulSelectionEnv::mean_latency_ms(std::int32_t zone, Decision server) const {
    if (zone < 0 || static_cast<std::size_t>(zone) >= num_zones_)
        throw std::out_of_range("StatefulSelectionEnv: zone out of range");
    if (server < 0 || static_cast<std::size_t>(server) >= num_servers_)
        throw std::out_of_range("StatefulSelectionEnv: server out of range");
    return affinity_[static_cast<std::size_t>(zone) * num_servers_ +
                     static_cast<std::size_t>(server)];
}

ClientContext StatefulSelectionEnv::sample_context(stats::Rng& rng) const {
    ClientContext context;
    context.categorical = {static_cast<std::int32_t>(rng.uniform_index(num_zones_))};
    context.numeric = {rng.uniform(0.8, 1.2)};
    return context;
}

Reward StatefulSelectionEnv::sample_reward(const ClientContext& context, Decision d,
                                           stats::Rng& rng) const {
    const double mean =
        mean_latency_ms(context.categorical.at(0), d) * context.numeric.at(0);
    const double latency = mean * degradation(state_) * rng.lognormal(0.0, 0.2);
    return -latency / 100.0;
}

double StatefulSelectionEnv::expected_reward(const ClientContext& context, Decision d,
                                             stats::Rng&, int) const {
    const double mean =
        mean_latency_ms(context.categorical.at(0), d) * context.numeric.at(0);
    return -(mean * degradation(state_) * std::exp(0.02)) / 100.0;
}

Trace StatefulSelectionEnv::collect_in_state(const core::Policy& logging_policy,
                                             std::size_t n, std::int32_t state,
                                             stats::Rng& rng) {
    const std::int32_t saved = state_;
    set_state(state);
    Trace trace = core::collect_trace(*this, logging_policy, n, rng);
    for (auto& t : trace) t.state = state;
    state_ = saved;
    return trace;
}

} // namespace dre::netsim
