#include "netsim/topology.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>
#include <stdexcept>

namespace dre::netsim {

Topology::Topology(std::size_t num_nodes)
    : num_nodes_(num_nodes), outgoing_(num_nodes) {
    if (num_nodes_ == 0) throw std::invalid_argument("Topology: no nodes");
}

LinkId Topology::add_link(NodeId a, NodeId b, double delay_ms,
                          double capacity_mbps) {
    if (a >= num_nodes_ || b >= num_nodes_)
        throw std::invalid_argument("Topology::add_link: node out of range");
    if (a == b) throw std::invalid_argument("Topology::add_link: self-loop");
    if (delay_ms < 0.0 || capacity_mbps <= 0.0)
        throw std::invalid_argument("Topology::add_link: bad delay/capacity");
    const LinkId forward = links_.size();
    links_.push_back({a, b, delay_ms, capacity_mbps});
    outgoing_[a].push_back(forward);
    links_.push_back({b, a, delay_ms, capacity_mbps});
    outgoing_[b].push_back(forward + 1);
    return forward;
}

const Link& Topology::link(LinkId id) const {
    if (id >= links_.size()) throw std::out_of_range("Topology::link");
    return links_[id];
}

std::vector<LinkId> Topology::shortest_path(NodeId src, NodeId dst) const {
    if (src >= num_nodes_ || dst >= num_nodes_)
        throw std::invalid_argument("Topology::shortest_path: node out of range");
    if (src == dst) return {};

    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> distance(num_nodes_, kInf);
    std::vector<LinkId> via(num_nodes_, std::numeric_limits<LinkId>::max());
    using Entry = std::pair<double, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
    distance[src] = 0.0;
    frontier.push({0.0, src});

    while (!frontier.empty()) {
        const auto [dist, node] = frontier.top();
        frontier.pop();
        if (dist > distance[node]) continue;
        if (node == dst) break;
        for (const LinkId id : outgoing_[node]) {
            const Link& l = links_[id];
            const double candidate = dist + l.delay_ms;
            if (candidate < distance[l.to]) {
                distance[l.to] = candidate;
                via[l.to] = id;
                frontier.push({candidate, l.to});
            }
        }
    }
    if (distance[dst] == kInf) return {};

    std::vector<LinkId> path;
    for (NodeId node = dst; node != src;) {
        const LinkId id = via[node];
        path.push_back(id);
        node = links_[id].from;
    }
    std::reverse(path.begin(), path.end());
    return path;
}

double Topology::path_delay_ms(const std::vector<LinkId>& path) const {
    double total = 0.0;
    for (const LinkId id : path) total += link(id).delay_ms;
    return total;
}

std::vector<std::vector<LinkId>> Topology::k_paths(NodeId src, NodeId dst,
                                                   std::size_t max_hops) const {
    if (src >= num_nodes_ || dst >= num_nodes_)
        throw std::invalid_argument("Topology::k_paths: node out of range");
    std::vector<std::vector<LinkId>> results;
    std::vector<LinkId> current;
    std::vector<bool> visited(num_nodes_, false);
    visited[src] = true;

    // Depth-first enumeration of loop-free paths.
    const std::function<void(NodeId)> explore = [&](NodeId node) {
        if (node == dst) {
            results.push_back(current);
            return;
        }
        if (current.size() >= max_hops) return;
        for (const LinkId id : outgoing_[node]) {
            const Link& l = links_[id];
            if (visited[l.to]) continue;
            visited[l.to] = true;
            current.push_back(id);
            explore(l.to);
            current.pop_back();
            visited[l.to] = false;
        }
    };
    explore(src);
    return results;
}

std::vector<double> max_min_fair_rates(const Topology& topology,
                                       const std::vector<Flow>& flows) {
    const std::size_t f = flows.size();
    for (const Flow& flow : flows) {
        if (flow.demand_mbps <= 0.0)
            throw std::invalid_argument("max_min_fair_rates: demand must be > 0");
        for (const LinkId id : flow.path) topology.link(id); // bounds check
    }

    std::vector<double> rates(f, 0.0);
    std::vector<bool> frozen(f, false);
    std::vector<double> residual(topology.num_links());
    for (std::size_t l = 0; l < topology.num_links(); ++l)
        residual[l] = topology.link(l).capacity_mbps;

    // Progressive filling: repeatedly find the bottleneck link, freeze its
    // flows at the fair share, and continue with the rest.
    while (true) {
        // Count active flows per link.
        std::vector<std::size_t> active(topology.num_links(), 0);
        bool any_active = false;
        for (std::size_t i = 0; i < f; ++i) {
            if (frozen[i]) continue;
            any_active = true;
            for (const LinkId id : flows[i].path) ++active[id];
        }
        if (!any_active) break;

        // The tightest constraint: min over links of residual/active, and
        // min over unfrozen flows of (demand - rate).
        double increment = std::numeric_limits<double>::infinity();
        for (std::size_t l = 0; l < topology.num_links(); ++l)
            if (active[l] > 0)
                increment = std::min(increment,
                                     residual[l] / static_cast<double>(active[l]));
        for (std::size_t i = 0; i < f; ++i)
            if (!frozen[i])
                increment = std::min(increment, flows[i].demand_mbps - rates[i]);
        if (!(increment > 0.0) || !std::isfinite(increment)) break;

        // Raise all unfrozen flows by the increment; charge the links.
        for (std::size_t i = 0; i < f; ++i) {
            if (frozen[i]) continue;
            rates[i] += increment;
            for (const LinkId id : flows[i].path) residual[id] -= increment;
        }
        // Freeze flows that hit demand or a saturated link.
        for (std::size_t i = 0; i < f; ++i) {
            if (frozen[i]) continue;
            if (rates[i] >= flows[i].demand_mbps - 1e-12) {
                frozen[i] = true;
                continue;
            }
            for (const LinkId id : flows[i].path) {
                if (residual[id] <= 1e-12) {
                    frozen[i] = true;
                    break;
                }
            }
        }
    }
    return rates;
}

} // namespace dre::netsim
