// Discrete-event queueing simulator.
//
// The analytic M/M/1 curve in netsim::Server is fine for coarse rewards,
// but §1 reminds us trace-driven evaluation exists because real systems
// have "complex interactions that ... might be intractable to simulate
// analytically". This module simulates actual FIFO queues per server with
// exponential service times, producing per-request sojourn times that
// include genuine queueing transients (bursts, idle periods, build-ups).
#ifndef DRE_NETSIM_QUEUE_SIM_H
#define DRE_NETSIM_QUEUE_SIM_H

#include <cstddef>
#include <vector>

#include "stats/rng.h"

namespace dre::netsim {

struct QueueRequest {
    double arrival_time = 0.0; // seconds since simulation start (ascending)
    std::size_t server = 0;
};

struct QueueOutcome {
    double wait_s = 0.0;    // time spent queued before service
    double service_s = 0.0; // service time
    double sojourn_s() const noexcept { return wait_s + service_s; }
};

// FIFO multi-queue simulator: one unbounded single-server FIFO queue per
// server, exponential service with per-server rates (requests/second).
class QueueSimulator {
public:
    explicit QueueSimulator(std::vector<double> service_rates);

    std::size_t num_servers() const noexcept { return service_rates_.size(); }

    // Simulate all requests (must be sorted by arrival time). Returns one
    // outcome per request, in input order.
    std::vector<QueueOutcome> run(const std::vector<QueueRequest>& requests,
                                  stats::Rng& rng) const;

    // Convenience: Poisson arrivals at `arrival_rate` split uniformly across
    // servers over `horizon_s` seconds; returns outcomes.
    std::vector<QueueOutcome> run_poisson(double arrival_rate, double horizon_s,
                                          stats::Rng& rng) const;

private:
    std::vector<double> service_rates_;
};

} // namespace dre::netsim

#endif // DRE_NETSIM_QUEUE_SIM_H
