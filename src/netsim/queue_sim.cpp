#include "netsim/queue_sim.h"

#include <algorithm>
#include <stdexcept>

namespace dre::netsim {

QueueSimulator::QueueSimulator(std::vector<double> service_rates)
    : service_rates_(std::move(service_rates)) {
    if (service_rates_.empty())
        throw std::invalid_argument("QueueSimulator: no servers");
    for (double rate : service_rates_)
        if (rate <= 0.0)
            throw std::invalid_argument("QueueSimulator: service rate must be > 0");
}

std::vector<QueueOutcome> QueueSimulator::run(
    const std::vector<QueueRequest>& requests, stats::Rng& rng) const {
    // Per-server time at which the server next becomes free.
    std::vector<double> free_at(service_rates_.size(), 0.0);
    std::vector<QueueOutcome> outcomes;
    outcomes.reserve(requests.size());

    double previous_arrival = 0.0;
    for (const QueueRequest& request : requests) {
        if (request.server >= service_rates_.size())
            throw std::invalid_argument("QueueSimulator: server out of range");
        if (request.arrival_time < previous_arrival)
            throw std::invalid_argument(
                "QueueSimulator: requests must be sorted by arrival time");
        previous_arrival = request.arrival_time;

        QueueOutcome outcome;
        const double start =
            std::max(request.arrival_time, free_at[request.server]);
        outcome.wait_s = start - request.arrival_time;
        outcome.service_s = rng.exponential(service_rates_[request.server]);
        free_at[request.server] = start + outcome.service_s;
        outcomes.push_back(outcome);
    }
    return outcomes;
}

std::vector<QueueOutcome> QueueSimulator::run_poisson(double arrival_rate,
                                                      double horizon_s,
                                                      stats::Rng& rng) const {
    if (arrival_rate <= 0.0)
        throw std::invalid_argument("QueueSimulator: arrival rate must be > 0");
    if (horizon_s <= 0.0)
        throw std::invalid_argument("QueueSimulator: horizon must be > 0");
    std::vector<QueueRequest> requests;
    double t = 0.0;
    while (true) {
        t += rng.exponential(arrival_rate);
        if (t >= horizon_s) break;
        requests.push_back(
            {t, static_cast<std::size_t>(rng.uniform_index(num_servers()))});
    }
    return run(requests, rng);
}

} // namespace dre::netsim
