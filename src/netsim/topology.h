// Link-level network topology: nodes, capacitated links, shortest-path
// routing, and flow-level max-min fair bandwidth sharing.
//
// This gives the routing/TE scenarios a physically-grounded substrate: a
// path's latency is the sum of its links' propagation delays, and a flow's
// throughput is its max-min fair share across every link it crosses given
// the other flows in the network (the classic water-filling allocation).
#ifndef DRE_NETSIM_TOPOLOGY_H
#define DRE_NETSIM_TOPOLOGY_H

#include <cstddef>
#include <limits>
#include <vector>

namespace dre::netsim {

using NodeId = std::size_t;
using LinkId = std::size_t;

struct Link {
    NodeId from = 0;
    NodeId to = 0;
    double delay_ms = 1.0;
    double capacity_mbps = 100.0;
};

// A flow pinned to an explicit path (sequence of link ids).
struct Flow {
    std::vector<LinkId> path;
    double demand_mbps = std::numeric_limits<double>::infinity();
};

class Topology {
public:
    explicit Topology(std::size_t num_nodes);

    // Adds a bidirectional link (two directed links); returns the id of the
    // forward direction (reverse is id + 1).
    LinkId add_link(NodeId a, NodeId b, double delay_ms, double capacity_mbps);

    std::size_t num_nodes() const noexcept { return num_nodes_; }
    std::size_t num_links() const noexcept { return links_.size(); }
    const Link& link(LinkId id) const;

    // Dijkstra by propagation delay. Returns the link ids along the best
    // path, empty if unreachable (or src == dst).
    std::vector<LinkId> shortest_path(NodeId src, NodeId dst) const;

    // Total propagation delay of a path.
    double path_delay_ms(const std::vector<LinkId>& path) const;

    // All loop-free paths from src to dst up to `max_hops` links (for small
    // topologies / candidate-path enumeration in TE).
    std::vector<std::vector<LinkId>> k_paths(NodeId src, NodeId dst,
                                             std::size_t max_hops) const;

private:
    std::size_t num_nodes_;
    std::vector<Link> links_;
    std::vector<std::vector<LinkId>> outgoing_; // per node
};

// Progressive-filling max-min fair allocation: returns each flow's rate.
// Flows with finite demand are capped at their demand. Throws on invalid
// link references.
std::vector<double> max_min_fair_rates(const Topology& topology,
                                       const std::vector<Flow>& flows);

} // namespace dre::netsim

#endif // DRE_NETSIM_TOPOLOGY_H
