// Path-selection / traffic-engineering environment.
//
// The paper lists traffic engineering and routing among the trace-driven
// evaluation use cases (§2.1). This environment models flows choosing one
// of K candidate paths: each path has a base RTT, a loss rate, and a
// capacity; large flows suffer on low-capacity paths. Client populations
// are Zipf-skewed across source zones (realistic trace skew).
#ifndef DRE_NETSIM_ROUTING_ENV_H
#define DRE_NETSIM_ROUTING_ENV_H

#include <vector>

#include "core/environment.h"
#include "stats/rng.h"
#include "stats/zipf.h"

namespace dre::netsim {

struct PathConfig {
    double base_rtt_ms = 40.0;
    double loss_rate = 0.001;     // per-packet loss probability
    double capacity_mbps = 100.0; // flows demanding more than this suffer
};

struct RoutingWorldConfig {
    std::size_t num_zones = 6;
    double zone_zipf_exponent = 1.1; // population skew across zones
    double loss_penalty_ms = 800.0;  // latency-equivalent cost of loss
    double noise_sigma = 0.1;        // lognormal RTT jitter
    std::uint64_t seed = 23;
};

// Context: categorical = {zone}; numeric = {flow demand in Mbps}.
// Decision: path index. Reward: -(effective completion cost in ms)/100.
class RoutingEnv final : public core::Environment {
public:
    RoutingEnv(RoutingWorldConfig config, std::vector<PathConfig> paths);

    ClientContext sample_context(stats::Rng& rng) const override;
    Reward sample_reward(const ClientContext& context, Decision d,
                         stats::Rng& rng) const override;
    double expected_reward(const ClientContext& context, Decision d,
                           stats::Rng& rng, int samples) const override;
    std::size_t num_decisions() const noexcept override { return paths_.size(); }

    // Mean cost in ms for a context/path pair (the reward is -cost/100).
    double mean_cost_ms(const ClientContext& context, Decision d) const;

    const RoutingWorldConfig& config() const noexcept { return config_; }
    const std::vector<PathConfig>& paths() const noexcept { return paths_; }

    // A plausible default 3-path world: short lossy peering path, long clean
    // transit path, medium path with limited capacity.
    static RoutingEnv standard3(RoutingWorldConfig config = {});

private:
    RoutingWorldConfig config_;
    std::vector<PathConfig> paths_;
    std::vector<double> zone_rtt_offset_; // per-zone additive RTT
    stats::ZipfSampler zone_sampler_;
};

} // namespace dre::netsim

#endif // DRE_NETSIM_ROUTING_ENV_H
