// Deterministic fault injection (`dre::fault`).
//
// The robustness counterpart of dre::obs: named *fault points* threaded
// through the store → streaming → estimator stack fire seeded, fully
// reproducible failures so that every hardened path (retry, quarantine,
// checkpoint/resume) can be exercised — in tests, in CI chaos runs, and
// from the CLI — without ever depending on real hardware misbehaving.
//
// Design rules:
//
//  * A fault decision is a pure function of (seed, point name, logical
//    index, attempt). The logical index is supplied by the caller (row
//    group id, chunk id, tuple id, open sequence), never a shared
//    execution-order counter, so the schedule is bit-identical for any
//    DRE_THREADS — the same property the rest of the repo builds on
//    (Rng::split(stream_id)-keyed child streams, see core/parallel.h).
//  * Firing means throwing FaultError from the instrumented point; the
//    consumer's classification (transient → retry, permanent → fail,
//    corruption → quarantine) is what is actually under test.
//  * Compile-time gate: built with -DDRE_FAULT_ENABLED=0 (CMake option
//    DRE_FAULT_ENABLED=OFF) the DRE_FAULT_INJECT macro expands to a no-op
//    statement — no registry lookup, no atomic load, nothing in the hot
//    path. The Injector class itself stays available (spec parsing is
//    used by dre_eval's flag validation either way).
//
// Schedules are configured in code (Injector::configure) or from a spec
// string (--fault-spec):
//
//   store.read:p=0.01,kind=transient;store.crc:nth=7
//
//   <point>:<key>=<value>[,<key>=<value>...][;<point>:...]
//     p=<prob>      fire with probability p at each logical index, decided
//                   by the child stream Rng(seed).split(hash(point), index)
//     nth=<k>       fire exactly at the k-th logical index (1-based)
//     every=<k>     fire at every k-th logical index (1-based)
//     kind=<k>      transient | permanent | corruption | slow (default
//                   transient)
//     attempts=<a>  transient faults keep firing for the first `a` retry
//                   attempts (default 1: the first retry succeeds); set
//                   a >= the consumer's retry budget to exhaust it
//
// Registered fault points (logical index in parentheses):
//   store.open    (process-wide open sequence)  StoreReader constructor
//   store.read    (global row-group id)         row-group fetch, pre-CRC
//   store.crc     (global row-group id)         row-group CRC validation
//   stream.chunk  (global reduction-chunk id)   evaluate_streaming chunk
//   env.step      (tuple index)                 collect_trace interaction
//   serve.accept  (accept sequence)             EvalServer connection accept
//   serve.read    (read sequence)               EvalServer session recv
//   serve.write   (write sequence)              EvalServer frame send
//   serve.dispatch(dispatched-job sequence)     EvalServer dispatcher pickup
//
// The serve.* points are network-side: transient/permanent simulate the
// peer (or the path to it) dying — the connection is dropped; corruption
// flips a byte in flight; `kind=slow` is advisory-only and models a slow
// peer / partial writes: the server feeds reads byte-at-a-time and breaks
// writes into tiny chunked sends, exercising reassembly on both ends
// without changing any delivered byte. maybe_inject (the throwing macro)
// ignores slow faults entirely — only call sites that query the schedule
// via DRE_FAULT_CHECK can honor them.
#ifndef DRE_FAULT_FAULT_H
#define DRE_FAULT_FAULT_H

#ifndef DRE_FAULT_ENABLED
#define DRE_FAULT_ENABLED 1
#endif

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dre::fault {

enum class FaultKind {
    kTransient,  // goes away on retry (once `attempts` is exhausted)
    kPermanent,  // fails every attempt — retrying is futile
    kCorruption, // data is damaged: not retryable, quarantineable
    kSlow,       // advisory: peer is slow / writes are partial, no error
};

const char* to_string(FaultKind kind) noexcept;

// Thrown by an armed fault point. Consumers catch it exactly like the
// organic error it stands in for (store::StoreError carries the same kind
// taxonomy).
class FaultError : public std::runtime_error {
public:
    FaultError(FaultKind kind, std::string point, std::uint64_t index);
    FaultKind kind() const noexcept { return kind_; }
    const std::string& point() const noexcept { return point_; }
    std::uint64_t index() const noexcept { return index_; }

private:
    FaultKind kind_;
    std::string point_;
    std::uint64_t index_;
};

// One point's schedule. Exactly one of {probability, nth, every} should be
// set; `configure` rejects specs that set none or several.
struct PointSpec {
    std::string point;
    double probability = 0.0;  // p= (0 disables)
    std::uint64_t nth = 0;     // nth= (1-based; 0 disables)
    std::uint64_t every = 0;   // every= (1-based period; 0 disables)
    FaultKind kind = FaultKind::kTransient;
    std::uint64_t attempts = 1; // transient: fire while attempt < attempts
};

// Parses a --fault-spec string into point schedules. Throws
// std::invalid_argument naming the offending token on malformed input.
std::vector<PointSpec> parse_fault_spec(const std::string& spec);

// Process-wide injector. Disabled (zero overhead beyond one relaxed atomic
// load per armed macro) until configure() installs a non-empty schedule.
// Configuration is not thread-safe; do it before spawning evaluation work
// (tests and the CLI configure at startup).
class Injector {
public:
    static Injector& global() noexcept;

    // Installs `specs` with the given schedule seed, replacing any prior
    // configuration. An empty vector disables injection entirely.
    void configure(std::vector<PointSpec> specs, std::uint64_t seed);
    void configure_spec(const std::string& spec, std::uint64_t seed);
    void reset(); // disable and forget the schedule

    bool enabled() const noexcept;

    // The pure decision function: should the `attempt`-th try of logical
    // invocation `index` of `point` fail, and how? Thread-safe once
    // configured.
    std::optional<FaultKind> check(std::string_view point,
                                   std::uint64_t index,
                                   std::uint64_t attempt) const noexcept;

    // check() + throw FaultError (and bump the obs fault counters) when a
    // fault fires. The macro below routes here. Slow faults are advisory
    // and never thrown; maybe_inject skips them.
    void maybe_inject(std::string_view point, std::uint64_t index,
                      std::uint64_t attempt) const;

    // check() + bump the obs fault counters, but never throw: the caller
    // acts on the returned kind itself (drop the connection, chunk the
    // write, flip a byte). This is the only way slow faults fire. The
    // DRE_FAULT_CHECK macro routes here.
    std::optional<FaultKind> fire(std::string_view point, std::uint64_t index,
                                  std::uint64_t attempt) const;

private:
    Injector() = default;
    std::vector<PointSpec> specs_;
    std::uint64_t seed_ = 0;
};

// Convenience for instrumented code (used by the macros).
void maybe_inject(std::string_view point, std::uint64_t index,
                  std::uint64_t attempt);
std::optional<FaultKind> fire(std::string_view point, std::uint64_t index,
                              std::uint64_t attempt);

} // namespace dre::fault

#if DRE_FAULT_ENABLED

// Fault point: throws dre::fault::FaultError when the configured schedule
// fires for (point, index, attempt). `point` must be a string literal.
#define DRE_FAULT_INJECT(point, index, attempt)                               \
    ::dre::fault::maybe_inject(point, static_cast<std::uint64_t>(index),      \
                               static_cast<std::uint64_t>(attempt))

// Non-throwing fault point: evaluates to std::optional<FaultKind> so the
// call site decides how the fault manifests (close the socket, chunk the
// write, corrupt a byte, feed bytes one at a time).
#define DRE_FAULT_CHECK(point, index, attempt)                                \
    ::dre::fault::fire(point, static_cast<std::uint64_t>(index),              \
                       static_cast<std::uint64_t>(attempt))

#else // !DRE_FAULT_ENABLED

#define DRE_FAULT_INJECT(point, index, attempt)                               \
    do {                                                                      \
        (void)sizeof(index);                                                  \
        (void)sizeof(attempt);                                                \
    } while (0)

// Always-empty optional; the operands still typecheck but emit no code.
#define DRE_FAULT_CHECK(point, index, attempt)                                \
    ((void)sizeof(index), (void)sizeof(attempt),                              \
     ::std::optional<::dre::fault::FaultKind>{})

#endif // DRE_FAULT_ENABLED

#endif // DRE_FAULT_FAULT_H
