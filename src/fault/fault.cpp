#include "fault/fault.h"

#include <atomic>
#include <cstdlib>

#include "obs/obs.h"
#include "stats/rng.h"

namespace dre::fault {

namespace {

// Armed/disarmed latch read by every macro hit; relaxed is enough because
// configure() happens-before the work it influences (single-threaded
// startup by contract).
std::atomic<bool> g_enabled{false};

// FNV-1a 64 over the point name — the Rng::split stream id for the point.
std::uint64_t hash_point(std::string_view point) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : point) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

FaultKind parse_kind(const std::string& value, const std::string& token) {
    if (value == "transient") return FaultKind::kTransient;
    if (value == "permanent") return FaultKind::kPermanent;
    if (value == "corruption") return FaultKind::kCorruption;
    if (value == "slow") return FaultKind::kSlow;
    throw std::invalid_argument("fault spec: unknown kind '" + value +
                                "' in '" + token + "'");
}

double parse_probability(const std::string& value, const std::string& token) {
    char* end = nullptr;
    const double p = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || !(p >= 0.0) || p > 1.0)
        throw std::invalid_argument("fault spec: p must be in [0, 1] in '" +
                                    token + "'");
    return p;
}

std::uint64_t parse_count(const std::string& value, const char* key,
                          const std::string& token) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || v == 0)
        throw std::invalid_argument(std::string("fault spec: ") + key +
                                    " must be a positive integer in '" +
                                    token + "'");
    return static_cast<std::uint64_t>(v);
}

} // namespace

const char* to_string(FaultKind kind) noexcept {
    switch (kind) {
        case FaultKind::kTransient: return "transient";
        case FaultKind::kPermanent: return "permanent";
        case FaultKind::kCorruption: return "corruption";
        case FaultKind::kSlow: return "slow";
    }
    return "unknown";
}

FaultError::FaultError(FaultKind kind, std::string point, std::uint64_t index)
    : std::runtime_error("injected " + std::string(to_string(kind)) +
                         " fault at " + point + " (index " +
                         std::to_string(index) + ")"),
      kind_(kind),
      point_(std::move(point)),
      index_(index) {}

std::vector<PointSpec> parse_fault_spec(const std::string& spec) {
    std::vector<PointSpec> out;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t semi = spec.find(';', pos);
        const std::string token =
            spec.substr(pos, semi == std::string::npos ? semi : semi - pos);
        pos = semi == std::string::npos ? spec.size() : semi + 1;
        if (token.empty()) continue;

        const std::size_t colon = token.find(':');
        if (colon == std::string::npos || colon == 0)
            throw std::invalid_argument(
                "fault spec: expected '<point>:<key>=<value>,...' in '" +
                token + "'");
        PointSpec p;
        p.point = token.substr(0, colon);

        std::size_t kv_pos = colon + 1;
        while (kv_pos <= token.size()) {
            const std::size_t comma = token.find(',', kv_pos);
            const std::string kv = token.substr(
                kv_pos, comma == std::string::npos ? comma : comma - kv_pos);
            kv_pos = comma == std::string::npos ? token.size() + 1 : comma + 1;
            if (kv.empty()) continue;
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0)
                throw std::invalid_argument(
                    "fault spec: expected '<key>=<value>' in '" + token + "'");
            const std::string key = kv.substr(0, eq);
            const std::string value = kv.substr(eq + 1);
            if (key == "p") {
                p.probability = parse_probability(value, token);
            } else if (key == "nth") {
                p.nth = parse_count(value, "nth", token);
            } else if (key == "every") {
                p.every = parse_count(value, "every", token);
            } else if (key == "kind") {
                p.kind = parse_kind(value, token);
            } else if (key == "attempts") {
                p.attempts = parse_count(value, "attempts", token);
            } else {
                throw std::invalid_argument("fault spec: unknown key '" + key +
                                            "' in '" + token + "'");
            }
        }

        const int triggers = (p.probability > 0.0 ? 1 : 0) +
                             (p.nth != 0 ? 1 : 0) + (p.every != 0 ? 1 : 0);
        if (triggers != 1)
            throw std::invalid_argument(
                "fault spec: set exactly one of p=/nth=/every= in '" + token +
                "'");
        out.push_back(std::move(p));
    }
    return out;
}

Injector& Injector::global() noexcept {
    static Injector instance;
    return instance;
}

void Injector::configure(std::vector<PointSpec> specs, std::uint64_t seed) {
    specs_ = std::move(specs);
    seed_ = seed;
    g_enabled.store(!specs_.empty(), std::memory_order_release);
}

void Injector::configure_spec(const std::string& spec, std::uint64_t seed) {
    configure(parse_fault_spec(spec), seed);
}

void Injector::reset() {
    g_enabled.store(false, std::memory_order_release);
    specs_.clear();
    seed_ = 0;
}

bool Injector::enabled() const noexcept {
    return g_enabled.load(std::memory_order_acquire);
}

std::optional<FaultKind> Injector::check(std::string_view point,
                                         std::uint64_t index,
                                         std::uint64_t attempt) const noexcept {
    if (!enabled()) return std::nullopt;
    for (const PointSpec& spec : specs_) {
        if (spec.point != point) continue;
        // A transient fault clears once the consumer has burnt `attempts`
        // retries on it; permanent and corruption faults never clear.
        if (spec.kind == FaultKind::kTransient && attempt >= spec.attempts)
            continue;
        bool fires = false;
        if (spec.nth != 0) {
            fires = index + 1 == spec.nth;
        } else if (spec.every != 0) {
            fires = (index + 1) % spec.every == 0;
        } else if (spec.probability > 0.0) {
            // Pure child stream of (seed, point, index): the schedule never
            // depends on invocation order, thread count, or retries.
            stats::Rng child =
                stats::Rng(seed_).split(hash_point(point)).split(index);
            fires = child.uniform() < spec.probability;
        }
        if (fires) return spec.kind;
    }
    return std::nullopt;
}

void Injector::maybe_inject(std::string_view point, std::uint64_t index,
                            std::uint64_t attempt) const {
    const std::optional<FaultKind> kind = check(point, index, attempt);
    // Slow faults carry no error to throw; only call sites that consult
    // fire()/DRE_FAULT_CHECK can slow themselves down.
    if (!kind || *kind == FaultKind::kSlow) return;
#if DRE_OBS_ENABLED
    // Runtime-named counters (one per point) — registry lookup is fine
    // here, the fault path is not a hot path.
    obs::registry().counter("fault.injected").add(1);
    obs::registry()
        .counter("fault.injected." + std::string(point))
        .add(1);
#endif
    throw FaultError(*kind, std::string(point), index);
}

std::optional<FaultKind> Injector::fire(std::string_view point,
                                        std::uint64_t index,
                                        std::uint64_t attempt) const {
    const std::optional<FaultKind> kind = check(point, index, attempt);
    if (!kind) return std::nullopt;
#if DRE_OBS_ENABLED
    obs::registry().counter("fault.injected").add(1);
    obs::registry()
        .counter("fault.injected." + std::string(point))
        .add(1);
#endif
    return kind;
}

void maybe_inject(std::string_view point, std::uint64_t index,
                  std::uint64_t attempt) {
    Injector::global().maybe_inject(point, index, attempt);
}

std::optional<FaultKind> fire(std::string_view point, std::uint64_t index,
                              std::uint64_t attempt) {
    return Injector::global().fire(point, index, attempt);
}

} // namespace dre::fault
