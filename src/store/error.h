// Typed store errors with a retry-oriented classification.
//
// Every failure the .drt stack can surface carries a fault::FaultKind:
//
//   kTransient   the operation may succeed if repeated (EINTR/EAGAIN/EIO
//                class errnos, injected transient faults). StoreReader's
//                retry policy absorbs these up to `max_attempts`.
//   kPermanent   repeating is futile (missing file, malformed header,
//                truncation, out-of-range request).
//   kCorruption  the bytes are present but wrong (CRC mismatch, injected
//                corruption). Never retried; the quarantine path in
//                core::evaluate_streaming can skip the damaged row group.
//
// StoreError derives from std::runtime_error, so existing catch sites keep
// working; hardened consumers catch StoreError and branch on kind()/group().
#ifndef DRE_STORE_ERROR_H
#define DRE_STORE_ERROR_H

#include <cstdint>
#include <stdexcept>
#include <string>

#include "fault/fault.h"

namespace dre::store {

using ErrorKind = fault::FaultKind;

class StoreError : public std::runtime_error {
public:
    // `group` is the file-local row-group index, or -1 when the failure is
    // not attributable to one (open/header/footer errors).
    StoreError(ErrorKind kind, const std::string& message,
               std::int64_t group = -1)
        : std::runtime_error(message), kind_(kind), group_(group) {}

    ErrorKind kind() const noexcept { return kind_; }
    std::int64_t group() const noexcept { return group_; }

    // Stable reason code shared with core::QuarantineReport.
    const char* reason_code() const noexcept {
        switch (kind_) {
            case ErrorKind::kTransient: return "store-io-transient";
            case ErrorKind::kPermanent: return "store-io-permanent";
            case ErrorKind::kCorruption: return "store-corruption";
            // Slow faults are advisory (serve-side io pacing) and never
            // materialize as a StoreError; the arm exists for -Wswitch.
            case ErrorKind::kSlow: return "store-slow";
        }
        return "store-error";
    }

private:
    ErrorKind kind_;
    std::int64_t group_;
};

} // namespace dre::store

#endif // DRE_STORE_ERROR_H
