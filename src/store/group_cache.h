// GroupCache — a bounded LRU of decoded, CRC-validated row-group buffers,
// shareable across StoreReaders.
//
// The pread backend's out-of-core memory bound is this cache's capacity.
// Historically every StoreReader owned a private LRU, so a server holding
// one reader per session (or one per shard) multiplied the bound by the
// number of connections. Extracting the cache lets ShardedStore create one
// instance for its whole shard set and lets dre::serve share that instance
// across every session evaluating the same store — the bound then holds per
// *store*, as documented, no matter how many clients are connected.
//
// Entries are keyed (path, group index), so readers of different files can
// share one cache without collisions. Buffers are immutable shared_ptrs:
// eviction never invalidates a RowGroup handle that still pins one.
//
// lookup() and insert() are individually thread-safe; the miss-then-fetch
// window is deliberately outside the lock, so two threads missing the same
// group may both read it from disk. That duplicate work is benign (both
// insert identical bytes) and keeps disk I/O out of the shared critical
// section.
#ifndef DRE_STORE_GROUP_CACHE_H
#define DRE_STORE_GROUP_CACHE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dre::store {

class GroupCache {
public:
    using Buffer = std::shared_ptr<const std::vector<unsigned char>>;

    // Capacity in decoded row groups; 0 caches nothing (every lookup
    // misses, insert is a no-op).
    explicit GroupCache(std::size_t capacity) : capacity_(capacity) {}
    GroupCache(const GroupCache&) = delete;
    GroupCache& operator=(const GroupCache&) = delete;

    // The cached buffer for (path, group), moved to the LRU front; null on
    // miss. Counts a hit or miss either way.
    Buffer lookup(const std::string& path, std::size_t group);

    // Inserts (or refreshes) an entry and evicts past capacity.
    void insert(const std::string& path, std::size_t group, Buffer buffer);

    std::size_t capacity() const noexcept { return capacity_; }
    std::size_t size() const;

    // Obs-independent counters, so tests can assert sharing behavior even
    // in a DRE_OBS_ENABLED=0 build (the obs counters store.cache_hits /
    // store.cache_misses are updated alongside these).
    std::uint64_t hits() const noexcept {
        return hits_.load(std::memory_order_relaxed);
    }
    std::uint64_t misses() const noexcept {
        return misses_.load(std::memory_order_relaxed);
    }

private:
    struct Entry {
        std::string path;
        std::size_t group;
        Buffer buffer;
    };

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::list<Entry> entries_; // front = most recently used
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

} // namespace dre::store

#endif // DRE_STORE_GROUP_CACHE_H
