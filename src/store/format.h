// On-disk layout of the .drt columnar trace format (version 1).
//
// A .drt file holds one logged trace (trace/types.h tuples) in columnar row
// groups so that scans touch only contiguous arrays and evaluation can
// proceed one row group at a time with bounded memory:
//
//   ┌────────────────────┐ offset 0
//   │ Header   (40 B)    │ magic, version, endian check, schema, counts
//   ├────────────────────┤
//   │ Row group 0        │ per-column contiguous arrays (layout below)
//   │ Row group 1        │
//   │ …                  │
//   ├────────────────────┤ footer_offset
//   │ Footer             │ row-group index: {offset, rows, crc32c}*, + CRC
//   ├────────────────────┤ file_size - 16
//   │ Tail     (16 B)    │ footer_offset, end magic
//   └────────────────────┘
//
// Inside a row group of m rows every column is a contiguous array, each
// padded to an 8-byte boundary so doubles are always naturally aligned
// (both for mmap'd zero-copy spans and for pread buffers):
//
//   decision  i32[m]   reward f64[m]   propensity f64[m]   state i32[m]
//   numeric_0 f64[m] … numeric_{nd-1}  categorical_0 i32[m] … cat_{cd-1}
//
// Integrity: each row group carries a CRC-32C over its padded payload,
// recorded in the footer; the footer itself is checksummed; the tail's end
// magic catches truncation before the footer is even located. Writers
// produce the file at `<path>.tmp` and rename into place on finalize, so a
// crashed run never leaves a half-written .drt behind (see writer.h).
//
// All multi-byte fields are stored in host byte order; the header's
// endian-check word rejects files from a foreign-endian host with a clear
// error instead of decoding garbage.
#ifndef DRE_STORE_FORMAT_H
#define DRE_STORE_FORMAT_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace dre::store {

// File magic, PNG-style: a non-ASCII lead byte (catches text-mode
// corruption), the format name, CRLF + ^Z + LF (catch newline translation).
inline constexpr unsigned char kMagic[8] = {0x89, 'D', 'R', 'T',
                                            '\r', '\n', 0x1a, '\n'};
// Trailing magic closing the tail; a file without it is truncated.
inline constexpr unsigned char kEndMagic[8] = {'D', 'R', 'T', 'E',
                                               'N', 'D', '.', '\n'};

inline constexpr std::uint32_t kFormatVersion = 1;
// Written as a 32-bit word; reads back permuted on a foreign-endian host.
inline constexpr std::uint32_t kEndianCheck = 0x01020304u;
inline constexpr std::uint32_t kDefaultRowGroupRows = 16384;

inline constexpr std::size_t kHeaderBytes = 40;
inline constexpr std::size_t kTailBytes = 16;
// Footer: u64 group count + 16 B per group + u32 CRC + u32 zero pad.
inline constexpr std::size_t kFooterEntryBytes = 16;
inline constexpr std::size_t kFooterFixedBytes = 16;

// Context column widths; two traces are store-compatible iff these match.
struct StoreSchema {
    std::uint32_t numeric_dims = 0;
    std::uint32_t categorical_dims = 0;
    bool operator==(const StoreSchema&) const = default;
};

// Decoded header. `num_decisions` and `num_tuples` are back-patched by the
// writer at finalize time (they are not known while appending).
struct StoreHeader {
    std::uint32_t version = kFormatVersion;
    std::uint32_t endian_check = kEndianCheck;
    StoreSchema schema;
    std::uint32_t row_group_rows = kDefaultRowGroupRows;
    std::uint32_t num_decisions = 0;
    std::uint64_t num_tuples = 0;
};

// One footer index entry.
struct RowGroupInfo {
    std::uint64_t offset = 0; // absolute file offset of the group payload
    std::uint32_t rows = 0;
    std::uint32_t crc = 0; // CRC-32C of the padded payload
};

inline constexpr std::size_t align8(std::size_t x) {
    return (x + 7) & ~std::size_t{7};
}

// Byte offsets of each column inside a row group of `rows` rows.
struct RowGroupLayout {
    std::size_t rows = 0;
    std::size_t i32_col_bytes = 0; // padded size of one i32 column
    std::size_t f64_col_bytes = 0;
    std::size_t decision_off = 0;
    std::size_t reward_off = 0;
    std::size_t propensity_off = 0;
    std::size_t state_off = 0;
    std::size_t numeric_off = 0;     // nd consecutive f64 columns
    std::size_t categorical_off = 0; // cd consecutive i32 columns
    std::size_t bytes = 0;           // total padded payload size

    static RowGroupLayout compute(const StoreSchema& schema, std::size_t rows) {
        RowGroupLayout l;
        l.rows = rows;
        l.i32_col_bytes = align8(rows * sizeof(std::int32_t));
        l.f64_col_bytes = rows * sizeof(double); // already 8-aligned
        l.decision_off = 0;
        l.reward_off = l.decision_off + l.i32_col_bytes;
        l.propensity_off = l.reward_off + l.f64_col_bytes;
        l.state_off = l.propensity_off + l.f64_col_bytes;
        l.numeric_off = l.state_off + l.i32_col_bytes;
        l.categorical_off = l.numeric_off + schema.numeric_dims * l.f64_col_bytes;
        l.bytes = l.categorical_off + schema.categorical_dims * l.i32_col_bytes;
        return l;
    }

    std::size_t numeric_col_off(std::size_t j) const {
        return numeric_off + j * f64_col_bytes;
    }
    std::size_t categorical_col_off(std::size_t j) const {
        return categorical_off + j * i32_col_bytes;
    }
};

// Zero-copy typed views over one row group's columns. In mmap mode the
// spans alias the mapping directly; in pread mode they alias a cached
// buffer pinned by the owning StoreReader::RowGroup handle.
struct RowGroupView {
    std::size_t rows = 0;
    std::span<const std::int32_t> decision;
    std::span<const double> reward;
    std::span<const double> propensity;
    std::span<const std::int32_t> state;
    std::vector<std::span<const double>> numeric;
    std::vector<std::span<const std::int32_t>> categorical;
};

// --- Fixed-field serialization --------------------------------------------
// Host byte order throughout (see the endian check above); memcpy keeps the
// accesses alignment-safe.

template <typename T>
inline void encode_value(unsigned char* out, std::size_t& pos, T value) {
    std::memcpy(out + pos, &value, sizeof(T));
    pos += sizeof(T);
}

template <typename T>
inline T decode_value(const unsigned char* in, std::size_t& pos) {
    T value;
    std::memcpy(&value, in + pos, sizeof(T));
    pos += sizeof(T);
    return value;
}

inline void encode_header(const StoreHeader& h,
                          unsigned char out[kHeaderBytes]) {
    std::size_t pos = 0;
    std::memcpy(out, kMagic, sizeof(kMagic));
    pos += sizeof(kMagic);
    encode_value(out, pos, h.version);
    encode_value(out, pos, h.endian_check);
    encode_value(out, pos, h.schema.numeric_dims);
    encode_value(out, pos, h.schema.categorical_dims);
    encode_value(out, pos, h.row_group_rows);
    encode_value(out, pos, h.num_decisions);
    encode_value(out, pos, h.num_tuples);
}

// Decodes the fixed fields only; magic/version/endian validation belongs to
// the reader, which owns the error messages.
inline StoreHeader decode_header(const unsigned char in[kHeaderBytes]) {
    StoreHeader h;
    std::size_t pos = sizeof(kMagic);
    h.version = decode_value<std::uint32_t>(in, pos);
    h.endian_check = decode_value<std::uint32_t>(in, pos);
    h.schema.numeric_dims = decode_value<std::uint32_t>(in, pos);
    h.schema.categorical_dims = decode_value<std::uint32_t>(in, pos);
    h.row_group_rows = decode_value<std::uint32_t>(in, pos);
    h.num_decisions = decode_value<std::uint32_t>(in, pos);
    h.num_tuples = decode_value<std::uint64_t>(in, pos);
    return h;
}

inline std::size_t footer_bytes(std::size_t num_row_groups) {
    return kFooterFixedBytes + num_row_groups * kFooterEntryBytes;
}

} // namespace dre::store

#endif // DRE_STORE_FORMAT_H
