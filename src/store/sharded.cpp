#include "store/sharded.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace dre::store {

ShardedStore::ShardedStore(std::vector<std::string> paths,
                           StoreReader::Options options) {
    if (paths.empty())
        throw std::invalid_argument("ShardedStore: empty shard list");
    std::sort(paths.begin(), paths.end());
    // One group cache for the whole shard set, so the pread memory bound
    // (`pread_cache_groups` decoded groups) holds per store rather than per
    // shard — and per connection, when serve sessions share this store.
    if (!options.shared_group_cache)
        options.shared_group_cache =
            std::make_shared<GroupCache>(options.pread_cache_groups);
    shards_.reserve(paths.size());
    row_offset_.reserve(paths.size() + 1);
    row_offset_.push_back(0);
    // Fault-point indices are global across the shard set (shard index for
    // store.open, cumulative row-group id for store.read/store.crc), so a
    // seeded schedule addresses "the 7th row group of the logical trace"
    // regardless of how it is sharded or which thread touches it.
    std::uint64_t group_offset = 0;
    for (const std::string& path : paths) {
        options.fault_shard_index = shards_.size();
        options.fault_group_offset = group_offset;
        auto reader = std::make_unique<StoreReader>(path, options);
        group_offset += reader->num_row_groups();
        if (!shards_.empty() && !(reader->schema() == shards_[0]->schema()))
            throw std::runtime_error(
                "ShardedStore: shard " + path + " schema (" +
                std::to_string(reader->schema().numeric_dims) + " numeric, " +
                std::to_string(reader->schema().categorical_dims) +
                " categorical) does not match shard " + shards_[0]->path());
        row_offset_.push_back(row_offset_.back() + reader->num_tuples());
        shards_.push_back(std::move(reader));
    }
}

StoreSchema ShardedStore::schema() const noexcept {
    return shards_[0]->schema();
}

std::size_t ShardedStore::num_decisions() const noexcept {
    std::size_t decisions = 0;
    for (const auto& shard : shards_)
        decisions = std::max(decisions, shard->num_decisions());
    return decisions;
}

std::uint64_t ShardedStore::num_tuples() const noexcept {
    return row_offset_.back();
}

void ShardedStore::read_rows(std::uint64_t begin, std::uint64_t count,
                             std::vector<LoggedTuple>& out) const {
    out.clear();
    if (begin + count > num_tuples())
        throw std::out_of_range(
            "ShardedStore: read_rows range [" + std::to_string(begin) + ", " +
            std::to_string(begin + count) + ") exceeds " +
            std::to_string(num_tuples()) + " tuples");
    if (count == 0) return;
    out.reserve(count);
    const auto it =
        std::upper_bound(row_offset_.begin(), row_offset_.end(), begin);
    std::size_t s = static_cast<std::size_t>(it - row_offset_.begin()) - 1;
    std::uint64_t row = begin;
    const std::uint64_t end = begin + count;
    std::vector<LoggedTuple> shard_rows;
    while (row < end) {
        const std::uint64_t shard_begin = row_offset_[s];
        const std::uint64_t local_begin = row - shard_begin;
        const std::uint64_t local_end =
            std::min<std::uint64_t>(end - shard_begin,
                                    shards_[s]->num_tuples());
        shards_[s]->read_rows(local_begin, local_end - local_begin,
                              shard_rows);
        for (LoggedTuple& t : shard_rows) out.push_back(std::move(t));
        row = shard_begin + local_end;
        ++s;
    }
}

void ShardedStore::read_rows_tolerant(std::uint64_t begin, std::uint64_t count,
                                      std::vector<LoggedTuple>& out,
                                      std::vector<ReadFailure>& failures) const {
    out.clear();
    if (begin + count > num_tuples())
        throw std::out_of_range(
            "ShardedStore: read_rows range [" + std::to_string(begin) + ", " +
            std::to_string(begin + count) + ") exceeds " +
            std::to_string(num_tuples()) + " tuples");
    if (count == 0) return;
    out.reserve(count);
    const auto it =
        std::upper_bound(row_offset_.begin(), row_offset_.end(), begin);
    std::size_t s = static_cast<std::size_t>(it - row_offset_.begin()) - 1;
    std::uint64_t row = begin;
    const std::uint64_t end = begin + count;
    std::vector<LoggedTuple> shard_rows;
    std::vector<ReadFailure> shard_failures;
    while (row < end) {
        const std::uint64_t shard_begin = row_offset_[s];
        const std::uint64_t local_begin = row - shard_begin;
        const std::uint64_t local_end =
            std::min<std::uint64_t>(end - shard_begin,
                                    shards_[s]->num_tuples());
        shard_failures.clear();
        shards_[s]->read_rows_tolerant(local_begin, local_end - local_begin,
                                       shard_rows, shard_failures);
        for (LoggedTuple& t : shard_rows) out.push_back(std::move(t));
        for (ReadFailure& f : shard_failures) {
            f.begin += shard_begin; // shard-local -> global coordinates
            f.shard = static_cast<std::int64_t>(s);
            failures.push_back(std::move(f));
        }
        row = shard_begin + local_end;
        ++s;
    }
}

Trace ShardedStore::read_all() const {
    std::vector<LoggedTuple> tuples;
    read_rows(0, num_tuples(), tuples);
    return Trace(std::move(tuples));
}

std::vector<std::string> find_shards(const std::string& prefix) {
    namespace fs = std::filesystem;
    const fs::path prefix_path(prefix);
    fs::path dir = prefix_path.parent_path();
    if (dir.empty()) dir = ".";
    const std::string stem = prefix_path.filename().string();
    std::vector<std::string> shards;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file()) continue;
        const std::string name = entry.path().filename().string();
        if (name.size() < stem.size() + 4) continue;
        if (name.compare(0, stem.size(), stem) != 0) continue;
        if (name.compare(name.size() - 4, 4, ".drt") != 0) continue;
        shards.push_back((dir / name).string());
    }
    std::sort(shards.begin(), shards.end());
    return shards;
}

namespace {

// Streams rows [begin, end) of `in` into `writer` in bounded batches.
void copy_rows(const ShardedStore& in, StoreWriter& writer,
               std::uint64_t begin, std::uint64_t end) {
    constexpr std::uint64_t kBatch = 16384;
    std::vector<LoggedTuple> batch;
    for (std::uint64_t row = begin; row < end; row += kBatch) {
        const std::uint64_t count = std::min(kBatch, end - row);
        in.read_rows(row, count, batch);
        for (const LoggedTuple& t : batch) writer.append(t);
    }
}

} // namespace

std::vector<std::string> split_store(const ShardedStore& in,
                                     const std::string& out_prefix,
                                     std::size_t num_shards,
                                     StoreWriter::Options options) {
    if (num_shards == 0)
        throw std::invalid_argument("split_store: need >= 1 output shard");
    const std::uint64_t n = in.num_tuples();
    std::vector<std::string> paths;
    paths.reserve(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
        char suffix[16];
        std::snprintf(suffix, sizeof(suffix), "%05zu.drt", s);
        const std::string path = out_prefix + suffix;
        const std::uint64_t begin = n * s / num_shards;
        const std::uint64_t end = n * (s + 1) / num_shards;
        StoreWriter writer(path, in.schema(), options);
        copy_rows(in, writer, begin, end);
        writer.finalize();
        paths.push_back(path);
    }
    return paths;
}

void concat_stores(const ShardedStore& in, const std::string& out_path,
                   StoreWriter::Options options) {
    StoreWriter writer(out_path, in.schema(), options);
    copy_rows(in, writer, 0, in.num_tuples());
    writer.finalize();
}

} // namespace dre::store
