#include "store/crc32c.h"

#include "simd/simd.h"

namespace dre::store {

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) {
    return simd::ops().crc32c(data, size, seed);
}

} // namespace dre::store
