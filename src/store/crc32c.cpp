#include "store/crc32c.h"

#include <array>
#include <bit>
#include <cstring>

namespace dre::store {
namespace {

// Reflected CRC-32C polynomial.
constexpr std::uint32_t kPoly = 0x82f63b78u;

struct Tables {
    // table[0] is the classic byte-at-a-time table; table[k] advances a byte
    // that sits k positions deeper in the message, enabling 8-byte strides.
    std::array<std::array<std::uint32_t, 256>, 8> table;

    Tables() {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t crc = i;
            for (int bit = 0; bit < 8; ++bit)
                crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
            table[0][i] = crc;
        }
        for (std::size_t k = 1; k < 8; ++k)
            for (std::uint32_t i = 0; i < 256; ++i)
                table[k][i] =
                    (table[k - 1][i] >> 8) ^ table[0][table[k - 1][i] & 0xffu];
    }
};

const Tables& tables() {
    static const Tables t;
    return t;
}

} // namespace

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) {
    const auto& t = tables().table;
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t crc = ~seed;
    // The 8-byte stride folds two 32-bit words at once; the word-extraction
    // below assumes little-endian layout, so other hosts take the (equally
    // correct, slower) byte loop. Cross-endian files are rejected by the
    // header's endian check anyway (format.h).
    if constexpr (std::endian::native == std::endian::little) {
        while (size >= 8) {
            std::uint32_t lo, hi;
            std::memcpy(&lo, p, 4);
            std::memcpy(&hi, p + 4, 4);
            lo ^= crc;
            crc = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^
                  t[5][(lo >> 16) & 0xffu] ^ t[4][lo >> 24] ^
                  t[3][hi & 0xffu] ^ t[2][(hi >> 8) & 0xffu] ^
                  t[1][(hi >> 16) & 0xffu] ^ t[0][hi >> 24];
            p += 8;
            size -= 8;
        }
    }
    while (size-- != 0) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xffu];
    return ~crc;
}

} // namespace dre::store
