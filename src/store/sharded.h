// ShardedStore — one logical trace over a set of .drt shard files.
//
// A shard set is just N .drt files with identical schemas; the global
// tuple ordering is *shard-index-major* (all of shard 0, then all of shard
// 1, …) with shards ordered lexicographically by path — deterministic for
// a given file set, independent of directory enumeration order. A single
// .drt file is the trivial one-shard case, so every consumer (dre_eval,
// streaming evaluation, the convert utilities) handles both uniformly.
//
// Because evaluate_streaming addresses tuples by global index and its
// reduction chunks are fixed by par::kReduceChunk, re-sharding a trace
// (split/concat below) never changes any estimate — see core/streaming.h.
#ifndef DRE_STORE_SHARDED_H
#define DRE_STORE_SHARDED_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/streaming.h"
#include "store/reader.h"
#include "store/writer.h"
#include "trace/trace.h"

namespace dre::store {

class ShardedStore {
public:
    // Opens every path as a shard, in lexicographic path order. Throws if
    // the list is empty, a file fails validation, or schemas disagree.
    explicit ShardedStore(std::vector<std::string> paths,
                          StoreReader::Options options = {});

    std::size_t num_shards() const noexcept { return shards_.size(); }
    const StoreReader& shard(std::size_t i) const { return *shards_.at(i); }
    StoreSchema schema() const noexcept;
    // Max over shards (each shard header records its own decision count).
    std::size_t num_decisions() const noexcept;
    std::uint64_t num_tuples() const noexcept;
    // Global row of the first tuple in shard i (prefix sums, size n+1).
    std::uint64_t shard_row_offset(std::size_t i) const {
        return row_offset_.at(i);
    }

    // Appends tuples [begin, begin + count) in global order to `out`
    // (cleared first), crossing shard boundaries as needed. Thread-safe.
    void read_rows(std::uint64_t begin, std::uint64_t count,
                   std::vector<LoggedTuple>& out) const;

    // Fault-tolerant variant: damaged row groups are skipped (after each
    // shard's retry policy runs) and recorded in `failures` (appended, in
    // global row order, begin/count in global coordinates, shard filled).
    void read_rows_tolerant(std::uint64_t begin, std::uint64_t count,
                            std::vector<LoggedTuple>& out,
                            std::vector<ReadFailure>& failures) const;

    Trace read_all() const;

private:
    std::vector<std::unique_ptr<StoreReader>> shards_;
    std::vector<std::uint64_t> row_offset_;
};

// core::TupleSource over a sharded store: the adapter that feeds
// evaluate_streaming from disk. Reference semantics — the store must
// outlive the source.
class StoreTupleSource final : public core::TupleSource {
public:
    explicit StoreTupleSource(const ShardedStore& store) : store_(&store) {}
    std::uint64_t num_tuples() const override { return store_->num_tuples(); }
    std::size_t num_decisions() const override {
        return store_->num_decisions();
    }
    void read(std::uint64_t begin, std::uint64_t count,
              std::vector<LoggedTuple>& out) const override {
        store_->read_rows(begin, count, out);
    }
    // Sub-range recovery: damaged row groups become TupleReadFailure
    // entries (with the shard attributed) instead of aborting the chunk.
    void read_tolerant(
        std::uint64_t begin, std::uint64_t count,
        std::vector<LoggedTuple>& out,
        std::vector<core::TupleReadFailure>& failures) const override {
        std::vector<ReadFailure> store_failures;
        store_->read_rows_tolerant(begin, count, out, store_failures);
        for (ReadFailure& f : store_failures)
            failures.push_back(
                {f.begin, f.count, f.reason, std::move(f.detail), f.shard});
    }

private:
    const ShardedStore* store_;
};

// All files matching `<prefix>*.drt` in prefix's directory, sorted
// lexicographically (e.g. prefix "out/trace-" matches out/trace-00001.drt).
// Returns an empty vector when nothing matches.
std::vector<std::string> find_shards(const std::string& prefix);

// Rewrites `in` as `num_shards` balanced shards named
// `<out_prefix>NNNNN.drt` (zero-padded shard index). Streams row-group
// sized batches — memory stays bounded regardless of trace size. Returns
// the shard paths in shard order.
std::vector<std::string> split_store(const ShardedStore& in,
                                     const std::string& out_prefix,
                                     std::size_t num_shards,
                                     StoreWriter::Options options = {});

// Concatenates `in` (in global order) into a single .drt file, streaming.
void concat_stores(const ShardedStore& in, const std::string& out_path,
                   StoreWriter::Options options = {});

} // namespace dre::store

#endif // DRE_STORE_SHARDED_H
