// StoreReader — validating, zero-copy .drt consumer.
//
// Opening a file validates the magic, version, endian check, tail, and the
// checksummed footer index up front; row-group payload CRCs are validated
// lazily on first access (and remembered), so opening a multi-gigabyte
// shard is O(footer) while corruption is still always caught before any
// tuple from the damaged group is surfaced. Every validation failure is a
// descriptive std::runtime_error naming the file (and row group) — corrupt
// input is never undefined behavior.
//
// Two I/O backends sit behind the same interface:
//  * kMmap (default where available): the file is mapped once and row
//    groups are zero-copy spans into the mapping — scans touch the page
//    cache directly and concurrent readers share it.
//  * kPread: positional reads into an LRU cache of `pread_cache_groups`
//    decoded row groups — the portable fallback, and the backend that
//    gives a hard, configurable memory bound for out-of-core runs.
#ifndef DRE_STORE_READER_H
#define DRE_STORE_READER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "store/format.h"
#include "trace/trace.h"

namespace dre::store {

enum class IoMode {
    kAuto,  // mmap where the platform supports it, else pread
    kMmap,
    kPread,
};

// Namespace-scope (not nested) so it is complete where constructor default
// arguments need it; spelled StoreReader::Options at call sites.
struct StoreReaderOptions {
    IoMode io_mode = IoMode::kAuto;
    // LRU capacity (in row groups) for the pread backend; ignored by
    // mmap. Small by design: this is the out-of-core memory bound.
    std::size_t pread_cache_groups = 4;
};

class StoreReader {
public:
    using IoMode = store::IoMode;
    using Options = StoreReaderOptions;

    explicit StoreReader(const std::string& path, Options options = {});
    ~StoreReader();
    StoreReader(const StoreReader&) = delete;
    StoreReader& operator=(const StoreReader&) = delete;

    const std::string& path() const noexcept;
    IoMode io_mode() const noexcept; // resolved backend (never kAuto)
    StoreSchema schema() const noexcept;
    std::uint32_t row_group_rows() const noexcept;
    std::size_t num_decisions() const noexcept;
    std::uint64_t num_tuples() const noexcept;
    std::size_t num_row_groups() const noexcept;
    RowGroupInfo row_group_info(std::size_t group) const;

    // Pinned, CRC-validated access to one row group. The handle keeps the
    // underlying bytes alive (mapping or cache buffer) for its lifetime.
    class RowGroup {
    public:
        const RowGroupView& view() const noexcept { return view_; }

    private:
        friend class StoreReader;
        std::shared_ptr<const std::vector<unsigned char>> pinned_; // pread
        RowGroupView view_;
    };

    // Thread-safe; throws std::runtime_error naming the group on checksum
    // mismatch or a short read.
    RowGroup row_group(std::size_t group) const;

    // Appends `count` tuples starting at global row `begin` to `out`
    // (cleared first). Thread-safe.
    void read_rows(std::uint64_t begin, std::uint64_t count,
                   std::vector<LoggedTuple>& out) const;
    Trace read_all() const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace dre::store

#endif // DRE_STORE_READER_H
