// StoreReader — validating, zero-copy .drt consumer.
//
// Opening a file validates the magic, version, endian check, tail, and the
// checksummed footer index up front; row-group payload CRCs are validated
// lazily on first access (and remembered), so opening a multi-gigabyte
// shard is O(footer) while corruption is still always caught before any
// tuple from the damaged group is surfaced. Every validation failure is a
// descriptive StoreError (a std::runtime_error carrying a
// transient/permanent/corruption classification and the row group) naming
// the file — corrupt input is never undefined behavior.
//
// Two I/O backends sit behind the same interface:
//  * kMmap (default where available): the file is mapped once and row
//    groups are zero-copy spans into the mapping — scans touch the page
//    cache directly and concurrent readers share it.
//  * kPread: positional reads into an LRU cache of `pread_cache_groups`
//    decoded row groups — the portable fallback, and the backend that
//    gives a hard, configurable memory bound for out-of-core runs.
//
// Retry policy: transient failures (EINTR is absorbed inside the syscall
// loop; EAGAIN/EIO-class errnos and injected `store.read`/`store.crc`
// transient faults surface as StoreError kTransient) are retried up to
// `retry.max_attempts` with a *virtual* exponential backoff — the delay is
// computed deterministically and recorded in the
// `store.retry_backoff_ms` histogram, never slept, so hardened runs stay
// bit-reproducible and fast. Permanent and corruption errors are thrown
// immediately.
//
// Fault points (see fault/fault.h): `store.open` keyed by
// `fault_shard_index`, `store.read` and `store.crc` keyed by
// `fault_group_offset + local group id` — ShardedStore fills both so the
// logical index is global across a shard set and the schedule is identical
// for every DRE_THREADS.
#ifndef DRE_STORE_READER_H
#define DRE_STORE_READER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "store/error.h"
#include "store/format.h"
#include "store/group_cache.h"
#include "trace/trace.h"

namespace dre::store {

enum class IoMode {
    kAuto,  // mmap where the platform supports it, else pread
    kMmap,
    kPread,
};

// Bounded-attempt retry with deterministic virtual backoff for transient
// row-group failures. backoff(attempt) = base * multiplier^attempt, in
// virtual milliseconds (recorded, not slept).
struct StoreRetryPolicy {
    int max_attempts = 3; // total tries per row-group fetch (>= 1)
    double backoff_base_ms = 1.0;
    double backoff_multiplier = 2.0;
};

// Namespace-scope (not nested) so it is complete where constructor default
// arguments need it; spelled StoreReader::Options at call sites.
struct StoreReaderOptions {
    IoMode io_mode = IoMode::kAuto;
    // LRU capacity (in decoded row groups) for the pread backend; ignored
    // by mmap. Small by design: this is the out-of-core memory bound. The
    // pread backend's peak memory is
    //   (pread_cache_groups + live RowGroup handles) x row-group bytes
    // — a handle pins its group's buffer via shared_ptr, so eviction while
    // a handle is alive never invalidates it; the buffer is freed when the
    // last handle drops. `pread_cache_groups = 0` is valid and caches
    // nothing: every fetch decodes afresh and only handle-pinned buffers
    // stay resident.
    std::size_t pread_cache_groups = 4;
    // When set, the pread backend serves row groups from this cache instead
    // of a private one, so its memory bound is shared by every reader using
    // it (ShardedStore installs one per shard set; dre::serve shares that
    // across sessions). When null, the reader creates a private GroupCache
    // of `pread_cache_groups` capacity — the historical behavior.
    std::shared_ptr<GroupCache> shared_group_cache;
    StoreRetryPolicy retry;
    // Logical fault-point indices (see the header comment). Defaults suit
    // a standalone single file; ShardedStore overrides per shard.
    std::uint64_t fault_shard_index = 0;
    std::uint64_t fault_group_offset = 0;
};

// One unreadable sub-range recorded by read_rows_tolerant.
struct ReadFailure {
    std::uint64_t begin = 0;  // first affected row (caller coordinates)
    std::uint64_t count = 0;  // affected rows
    const char* reason = "";  // stable code, e.g. "store-corruption"
    std::string detail;       // the underlying error text
    std::int64_t shard = -1;  // filled by ShardedStore; -1 = single file
};

class StoreReader {
public:
    using IoMode = store::IoMode;
    using Options = StoreReaderOptions;

    explicit StoreReader(const std::string& path, Options options = {});
    ~StoreReader();
    StoreReader(const StoreReader&) = delete;
    StoreReader& operator=(const StoreReader&) = delete;

    const std::string& path() const noexcept;
    IoMode io_mode() const noexcept; // resolved backend (never kAuto)
    StoreSchema schema() const noexcept;
    std::uint32_t row_group_rows() const noexcept;
    std::size_t num_decisions() const noexcept;
    std::uint64_t num_tuples() const noexcept;
    std::size_t num_row_groups() const noexcept;
    RowGroupInfo row_group_info(std::size_t group) const;
    // Global row of the first tuple in `group` (prefix sums).
    std::uint64_t row_group_offset(std::size_t group) const;

    // Pinned, CRC-validated access to one row group. The handle keeps the
    // underlying bytes alive (mapping or cache buffer) for its lifetime —
    // including across LRU eviction of the group it refers to.
    class RowGroup {
    public:
        const RowGroupView& view() const noexcept { return view_; }

    private:
        friend class StoreReader;
        std::shared_ptr<const std::vector<unsigned char>> pinned_; // pread
        RowGroupView view_;
    };

    // Thread-safe; throws StoreError naming the group on checksum mismatch
    // (kCorruption), a short read (kPermanent), or a transient failure that
    // survived the retry policy (kTransient).
    RowGroup row_group(std::size_t group) const;

    // Appends `count` tuples starting at global row `begin` to `out`
    // (cleared first). Thread-safe.
    void read_rows(std::uint64_t begin, std::uint64_t count,
                   std::vector<LoggedTuple>& out) const;

    // Fault-tolerant variant: appends the tuples of every readable row
    // group intersecting [begin, begin + count) and records each damaged
    // group's intersection in `failures` (appended, in row order) instead
    // of throwing. The retry policy still runs first — only errors that
    // survive it are recorded. Range errors still throw (caller bug).
    void read_rows_tolerant(std::uint64_t begin, std::uint64_t count,
                            std::vector<LoggedTuple>& out,
                            std::vector<ReadFailure>& failures) const;

    Trace read_all() const;

private:
    struct Impl;
    void append_rows(const RowGroupView& view, std::size_t lo, std::size_t hi,
                     std::vector<LoggedTuple>& out) const;
    std::unique_ptr<Impl> impl_;
};

} // namespace dre::store

#endif // DRE_STORE_READER_H
