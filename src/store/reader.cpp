#include "store/reader.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <list>
#include <mutex>
#include <stdexcept>

#include "fault/fault.h"
#include "obs/obs.h"
#include "store/crc32c.h"

#if defined(__unix__) || defined(__APPLE__)
#define DRE_STORE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define DRE_STORE_HAVE_MMAP 0
#endif

namespace dre::store {
namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what,
                       ErrorKind kind = ErrorKind::kPermanent,
                       std::int64_t group = -1) {
    throw StoreError(kind, "drt " + path + ": " + what, group);
}

// Errnos worth a bounded retry: scheduler/resource blips and the I/O-error
// class a flaky disk or network filesystem produces. Everything else
// (ENOENT, EBADF, EACCES, ...) is permanent.
bool transient_errno(int err) noexcept {
    return err == EAGAIN || err == EWOULDBLOCK || err == EIO ||
           err == ENOMEM || err == ENOBUFS;
}

std::string hex32(std::uint32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x", v);
    return buf;
}

RowGroupView make_view(const StoreSchema& schema, const unsigned char* base,
                       std::size_t rows) {
    const RowGroupLayout layout = RowGroupLayout::compute(schema, rows);
    RowGroupView v;
    v.rows = rows;
    // The offsets are 8-aligned by construction and the base is either a
    // page-aligned mapping or a heap buffer, so the casts are aligned.
    v.decision = {reinterpret_cast<const std::int32_t*>(base + layout.decision_off),
                  rows};
    v.reward = {reinterpret_cast<const double*>(base + layout.reward_off), rows};
    v.propensity = {reinterpret_cast<const double*>(base + layout.propensity_off),
                    rows};
    v.state = {reinterpret_cast<const std::int32_t*>(base + layout.state_off),
               rows};
    v.numeric.reserve(schema.numeric_dims);
    for (std::uint32_t j = 0; j < schema.numeric_dims; ++j)
        v.numeric.push_back(
            {reinterpret_cast<const double*>(base + layout.numeric_col_off(j)),
             rows});
    v.categorical.reserve(schema.categorical_dims);
    for (std::uint32_t j = 0; j < schema.categorical_dims; ++j)
        v.categorical.push_back({reinterpret_cast<const std::int32_t*>(
                                     base + layout.categorical_col_off(j)),
                                 rows});
    return v;
}

} // namespace

struct StoreReader::Impl {
    std::string path;
    Options options;
    IoMode mode = IoMode::kPread;
    StoreHeader header;
    std::vector<RowGroupInfo> groups;
    std::vector<std::uint64_t> row_offset; // prefix sums; size groups+1
    std::uint64_t file_size = 0;

    // mmap backend
    const unsigned char* map_base = nullptr;
    std::unique_ptr<std::atomic<bool>[]> validated; // lazy CRC memo

    // pread backend
#if DRE_STORE_HAVE_MMAP
    int fd = -1;
#else
    std::FILE* file = nullptr;
#endif
    // Decoded-group LRU: either the caller's shared cache or a private one
    // (see StoreReaderOptions::shared_group_cache).
    std::shared_ptr<GroupCache> cache;
    mutable std::mutex io_mutex; // serializes fseek+fread on the FILE* path

    ~Impl() {
#if DRE_STORE_HAVE_MMAP
        if (map_base != nullptr)
            ::munmap(const_cast<unsigned char*>(map_base), file_size);
        if (fd >= 0) ::close(fd);
#else
        if (file != nullptr) std::fclose(file);
#endif
    }

    // Deterministic virtual backoff: computed and recorded, never slept —
    // retries must not perturb bit-reproducible runs.
    void record_retry(int attempt) const {
        const double backoff_ms =
            options.retry.backoff_base_ms *
            std::pow(options.retry.backoff_multiplier, attempt);
        (void)backoff_ms;
        DRE_COUNTER_INC("store.retries");
        DRE_HIST_RECORD("store.retry_backoff_ms", backoff_ms);
    }

    // Positional read of exactly `size` bytes (used for open-time metadata
    // in pread mode, and for row-group fetches).
    void pread_exact(std::uint64_t offset, void* dst, std::size_t size) const {
#if DRE_STORE_HAVE_MMAP
        std::size_t done = 0;
        while (done < size) {
            const ::ssize_t got =
                ::pread(fd, static_cast<char*>(dst) + done, size - done,
                        static_cast<::off_t>(offset + done));
            if (got < 0) {
                if (errno == EINTR) continue;
                fail(path, std::string("read failed: ") + std::strerror(errno),
                     transient_errno(errno) ? ErrorKind::kTransient
                                            : ErrorKind::kPermanent);
            }
            if (got == 0) fail(path, "unexpected end of file (truncated)");
            done += static_cast<std::size_t>(got);
        }
#else
        std::lock_guard<std::mutex> lock(io_mutex);
        if (std::fseek(file, static_cast<long>(offset), SEEK_SET) != 0 ||
            std::fread(dst, 1, size, file) != size)
            fail(path, "unexpected end of file (truncated)");
#endif
    }

    const unsigned char* group_base_mmap(std::size_t g) const {
        return map_base + groups[g].offset;
    }

    void check_group_crc(std::size_t g, const unsigned char* bytes,
                         std::size_t size) const {
        const std::uint32_t got = crc32c(bytes, size);
        if (got != groups[g].crc) {
            DRE_COUNTER_INC("store.checksum_failures");
            fail(path,
                 "row group " + std::to_string(g) +
                     " checksum mismatch (expected " + hex32(groups[g].crc) +
                     ", got " + hex32(got) + ")",
                 ErrorKind::kCorruption, static_cast<std::int64_t>(g));
        }
#if DRE_OBS_ENABLED
        DRE_COUNTER_INC("store.row_groups_decoded");
        DRE_COUNTER_ADD("store.bytes_read", size);
#endif
    }

    // One fetch attempt (no retries). Throws FaultError from the injection
    // points and StoreError from real failures.
    RowGroup fetch_group(std::size_t group, std::uint64_t attempt) const {
        const RowGroupInfo& info = groups[group];
        const std::uint64_t fault_index = options.fault_group_offset + group;
        DRE_FAULT_INJECT("store.read", fault_index, attempt);
        DRE_FAULT_INJECT("store.crc", fault_index, attempt);
        RowGroup out;
        if (mode == IoMode::kMmap) {
            const unsigned char* base = group_base_mmap(group);
            // Validate lazily, once. The flag is a monotonic latch: a benign
            // double validation under a race costs a re-scan, never
            // corruption.
            if (!validated[group].load(std::memory_order_acquire)) {
                const RowGroupLayout layout =
                    RowGroupLayout::compute(header.schema, info.rows);
                check_group_crc(group, base, layout.bytes);
                validated[group].store(true, std::memory_order_release);
            }
            out.view_ = make_view(header.schema, base, info.rows);
            return out;
        }
        // pread backend: serve from (or fill) the group cache. The fetch
        // runs outside the cache lock, so two threads missing the same
        // group may both read it — benign duplicate work (see
        // group_cache.h) that keeps disk I/O off the shared critical
        // section. Cached buffers were CRC-validated at insert; eviction
        // never invalidates a live handle (the handle pins its buffer).
        GroupCache::Buffer buffer = cache->lookup(path, group);
        if (!buffer) {
            const RowGroupLayout layout =
                RowGroupLayout::compute(header.schema, info.rows);
            auto fresh =
                std::make_shared<std::vector<unsigned char>>(layout.bytes);
            pread_exact(info.offset, fresh->data(), layout.bytes);
            check_group_crc(group, fresh->data(), layout.bytes);
            buffer = std::move(fresh);
            cache->insert(path, group, buffer);
        }
        out.pinned_ = std::move(buffer);
        out.view_ = make_view(header.schema, out.pinned_->data(), info.rows);
        return out;
    }
};

StoreReader::StoreReader(const std::string& path, Options options)
    : impl_(std::make_unique<Impl>()) {
    DRE_SPAN("store.open");
    Impl& im = *impl_;
    im.path = path;
    im.options = options;
    im.cache = options.shared_group_cache
                   ? options.shared_group_cache
                   : std::make_shared<GroupCache>(options.pread_cache_groups);

    // `store.open` fault point, keyed by the shard index so a schedule hits
    // the same shard for any open order. Transient open faults are retried
    // under the same bounded policy as row-group reads.
    {
        const int max_attempts = std::max(1, im.options.retry.max_attempts);
        for (int attempt = 0;; ++attempt) {
            try {
                DRE_FAULT_INJECT("store.open", im.options.fault_shard_index,
                                 attempt);
                break;
            } catch (const fault::FaultError& e) {
                if (e.kind() != ErrorKind::kTransient ||
                    attempt + 1 >= max_attempts)
                    fail(path, std::string("open failed: ") + e.what(),
                         e.kind());
                im.record_retry(attempt);
            }
        }
    }

#if DRE_STORE_HAVE_MMAP
    im.mode = options.io_mode == IoMode::kPread ? IoMode::kPread : IoMode::kMmap;
    im.fd = ::open(path.c_str(), O_RDONLY);
    if (im.fd < 0)
        fail(path, std::string("cannot open: ") + std::strerror(errno),
             transient_errno(errno) ? ErrorKind::kTransient
                                    : ErrorKind::kPermanent);
    struct ::stat st;
    if (::fstat(im.fd, &st) != 0)
        fail(path, std::string("stat failed: ") + std::strerror(errno));
    im.file_size = static_cast<std::uint64_t>(st.st_size);
#else
    im.mode = IoMode::kPread;
    im.file = std::fopen(path.c_str(), "rb");
    if (im.file == nullptr)
        fail(path, std::string("cannot open: ") + std::strerror(errno));
    std::fseek(im.file, 0, SEEK_END);
    im.file_size = static_cast<std::uint64_t>(std::ftell(im.file));
#endif
    if (im.file_size < kHeaderBytes + kTailBytes)
        fail(path, "file too small to be a .drt trace (truncated?)");

#if DRE_STORE_HAVE_MMAP
    if (im.mode == IoMode::kMmap) {
        void* map = ::mmap(nullptr, im.file_size, PROT_READ, MAP_SHARED,
                           im.fd, 0);
        if (map == MAP_FAILED)
            fail(path, std::string("mmap failed: ") + std::strerror(errno));
        im.map_base = static_cast<const unsigned char*>(map);
    }
#endif

    // Header.
    unsigned char header[kHeaderBytes];
    if (im.map_base != nullptr)
        std::memcpy(header, im.map_base, kHeaderBytes);
    else
        im.pread_exact(0, header, kHeaderBytes);
    if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0)
        fail(path, "bad magic (not a .drt file)");
    im.header = decode_header(header);
    if (im.header.endian_check != kEndianCheck)
        fail(path, "endianness mismatch (file written on a foreign-endian host)");
    if (im.header.version != kFormatVersion)
        fail(path, "unsupported format version " +
                       std::to_string(im.header.version) + " (reader supports " +
                       std::to_string(kFormatVersion) + ")");
    if (im.header.row_group_rows == 0)
        fail(path, "corrupt header: zero row-group size");

    // Tail.
    unsigned char tail[kTailBytes];
    if (im.map_base != nullptr)
        std::memcpy(tail, im.map_base + im.file_size - kTailBytes, kTailBytes);
    else
        im.pread_exact(im.file_size - kTailBytes, tail, kTailBytes);
    if (std::memcmp(tail + sizeof(std::uint64_t), kEndMagic,
                    sizeof(kEndMagic)) != 0)
        fail(path, "missing end magic (file truncated or not finalized)");
    std::size_t pos = 0;
    const auto footer_offset = decode_value<std::uint64_t>(tail, pos);
    if (footer_offset < kHeaderBytes ||
        footer_offset + kFooterFixedBytes + kTailBytes > im.file_size)
        fail(path, "footer offset out of bounds (truncated footer)");

    // Footer index.
    std::uint64_t group_count = 0;
    {
        unsigned char count_bytes[sizeof(std::uint64_t)];
        if (im.map_base != nullptr)
            std::memcpy(count_bytes, im.map_base + footer_offset,
                        sizeof(count_bytes));
        else
            im.pread_exact(footer_offset, count_bytes, sizeof(count_bytes));
        std::size_t p = 0;
        group_count = decode_value<std::uint64_t>(count_bytes, p);
    }
    const std::uint64_t max_groups =
        (im.file_size - kTailBytes - footer_offset - kFooterFixedBytes) /
        kFooterEntryBytes;
    if (group_count > max_groups)
        fail(path, "truncated footer (index claims " +
                       std::to_string(group_count) + " row groups)");
    const std::size_t footer_size = footer_bytes(group_count);
    std::vector<unsigned char> footer(footer_size);
    if (im.map_base != nullptr)
        std::memcpy(footer.data(), im.map_base + footer_offset, footer_size);
    else
        im.pread_exact(footer_offset, footer.data(), footer_size);
    const std::size_t crc_pos = footer_size - 2 * sizeof(std::uint32_t);
    std::size_t p = crc_pos;
    const auto expected_crc = decode_value<std::uint32_t>(footer.data(), p);
    const std::uint32_t got_crc = crc32c(footer.data(), crc_pos);
    if (got_crc != expected_crc) {
        DRE_COUNTER_INC("store.checksum_failures");
        fail(path,
             "footer checksum mismatch (expected " + hex32(expected_crc) +
                 ", got " + hex32(got_crc) + ")",
             ErrorKind::kCorruption);
    }

    im.groups.resize(group_count);
    im.row_offset.assign(group_count + 1, 0);
    p = sizeof(std::uint64_t);
    std::uint64_t rows_total = 0;
    for (std::uint64_t g = 0; g < group_count; ++g) {
        RowGroupInfo& info = im.groups[g];
        info.offset = decode_value<std::uint64_t>(footer.data(), p);
        info.rows = decode_value<std::uint32_t>(footer.data(), p);
        info.crc = decode_value<std::uint32_t>(footer.data(), p);
        const RowGroupLayout layout =
            RowGroupLayout::compute(im.header.schema, info.rows);
        if (info.rows == 0 || info.rows > im.header.row_group_rows ||
            info.offset < kHeaderBytes ||
            info.offset + layout.bytes > footer_offset)
            fail(path, "corrupt row-group index entry " + std::to_string(g));
        rows_total += info.rows;
        im.row_offset[g + 1] = rows_total;
    }
    if (rows_total != im.header.num_tuples)
        fail(path, "header/index tuple count mismatch (header says " +
                       std::to_string(im.header.num_tuples) + ", index sums to " +
                       std::to_string(rows_total) + ")");
    if (im.mode == IoMode::kMmap) {
        im.validated =
            std::make_unique<std::atomic<bool>[]>(std::max<std::size_t>(
                static_cast<std::size_t>(group_count), 1));
        for (std::uint64_t g = 0; g < group_count; ++g)
            im.validated[g].store(false, std::memory_order_relaxed);
    }
}

StoreReader::~StoreReader() = default;

const std::string& StoreReader::path() const noexcept { return impl_->path; }
StoreReader::IoMode StoreReader::io_mode() const noexcept { return impl_->mode; }
StoreSchema StoreReader::schema() const noexcept { return impl_->header.schema; }
std::uint32_t StoreReader::row_group_rows() const noexcept {
    return impl_->header.row_group_rows;
}
std::size_t StoreReader::num_decisions() const noexcept {
    return impl_->header.num_decisions;
}
std::uint64_t StoreReader::num_tuples() const noexcept {
    return impl_->header.num_tuples;
}
std::size_t StoreReader::num_row_groups() const noexcept {
    return impl_->groups.size();
}

RowGroupInfo StoreReader::row_group_info(std::size_t group) const {
    if (group >= impl_->groups.size())
        fail(impl_->path, "row group " + std::to_string(group) +
                              " out of range (file has " +
                              std::to_string(impl_->groups.size()) + ")");
    return impl_->groups[group];
}

std::uint64_t StoreReader::row_group_offset(std::size_t group) const {
    if (group >= impl_->groups.size())
        fail(impl_->path, "row group " + std::to_string(group) +
                              " out of range (file has " +
                              std::to_string(impl_->groups.size()) + ")");
    return impl_->row_offset[group];
}

StoreReader::RowGroup StoreReader::row_group(std::size_t group) const {
    const Impl& im = *impl_;
    if (group >= im.groups.size())
        fail(im.path, "row group " + std::to_string(group) +
                          " out of range (file has " +
                          std::to_string(im.groups.size()) + ")");
    // Bounded retries for transient failures (real or injected); permanent
    // and corruption errors propagate on first sight.
    const int max_attempts = std::max(1, im.options.retry.max_attempts);
    for (int attempt = 0;; ++attempt) {
        try {
            return im.fetch_group(group, static_cast<std::uint64_t>(attempt));
        } catch (const fault::FaultError& e) {
            if (e.kind() != ErrorKind::kTransient || attempt + 1 >= max_attempts)
                throw StoreError(e.kind(),
                                 "drt " + im.path + ": row group " +
                                     std::to_string(group) + ": " + e.what(),
                                 static_cast<std::int64_t>(group));
            im.record_retry(attempt);
        } catch (const StoreError& e) {
            if (e.kind() != ErrorKind::kTransient || attempt + 1 >= max_attempts)
                throw;
            im.record_retry(attempt);
        }
    }
}

void StoreReader::read_rows(std::uint64_t begin, std::uint64_t count,
                            std::vector<LoggedTuple>& out) const {
    const Impl& im = *impl_;
    out.clear();
    if (begin + count > im.header.num_tuples)
        fail(im.path, "read_rows range [" + std::to_string(begin) + ", " +
                          std::to_string(begin + count) + ") exceeds " +
                          std::to_string(im.header.num_tuples) + " tuples");
    if (count == 0) return;
    out.reserve(count);
    // First group containing `begin`.
    const auto it = std::upper_bound(im.row_offset.begin(), im.row_offset.end(),
                                     begin);
    std::size_t g = static_cast<std::size_t>(it - im.row_offset.begin()) - 1;
    std::uint64_t row = begin;
    const std::uint64_t end = begin + count;
    while (row < end) {
        const RowGroup rg = row_group(g);
        const RowGroupView& v = rg.view();
        const std::uint64_t group_begin = im.row_offset[g];
        const std::size_t lo = static_cast<std::size_t>(row - group_begin);
        const std::size_t hi = static_cast<std::size_t>(
            std::min<std::uint64_t>(end - group_begin, v.rows));
        append_rows(v, lo, hi, out);
        row = group_begin + hi;
        ++g;
    }
}

void StoreReader::read_rows_tolerant(std::uint64_t begin, std::uint64_t count,
                                     std::vector<LoggedTuple>& out,
                                     std::vector<ReadFailure>& failures) const {
    const Impl& im = *impl_;
    out.clear();
    if (begin + count > im.header.num_tuples)
        fail(im.path, "read_rows range [" + std::to_string(begin) + ", " +
                          std::to_string(begin + count) + ") exceeds " +
                          std::to_string(im.header.num_tuples) + " tuples");
    if (count == 0) return;
    out.reserve(count);
    const auto it = std::upper_bound(im.row_offset.begin(), im.row_offset.end(),
                                     begin);
    std::size_t g = static_cast<std::size_t>(it - im.row_offset.begin()) - 1;
    std::uint64_t row = begin;
    const std::uint64_t end = begin + count;
    while (row < end) {
        const std::uint64_t group_begin = im.row_offset[g];
        const std::size_t lo = static_cast<std::size_t>(row - group_begin);
        const std::size_t hi = static_cast<std::size_t>(std::min<std::uint64_t>(
            end - group_begin, im.groups[g].rows));
        try {
            const RowGroup rg = row_group(g);
            append_rows(rg.view(), lo, hi, out);
        } catch (const StoreError& e) {
            failures.push_back({group_begin + lo,
                                static_cast<std::uint64_t>(hi - lo),
                                e.reason_code(), e.what()});
        }
        row = group_begin + hi;
        ++g;
    }
}

void StoreReader::append_rows(const RowGroupView& v, std::size_t lo,
                              std::size_t hi,
                              std::vector<LoggedTuple>& out) const {
    const std::uint32_t nd = impl_->header.schema.numeric_dims;
    const std::uint32_t cd = impl_->header.schema.categorical_dims;
    for (std::size_t k = lo; k < hi; ++k) {
        LoggedTuple t;
        t.decision = v.decision[k];
        t.reward = v.reward[k];
        t.propensity = v.propensity[k];
        t.state = v.state[k];
        t.context.numeric.resize(nd);
        for (std::uint32_t j = 0; j < nd; ++j)
            t.context.numeric[j] = v.numeric[j][k];
        t.context.categorical.resize(cd);
        for (std::uint32_t j = 0; j < cd; ++j)
            t.context.categorical[j] = v.categorical[j][k];
        out.push_back(std::move(t));
    }
}

Trace StoreReader::read_all() const {
    std::vector<LoggedTuple> tuples;
    read_rows(0, num_tuples(), tuples);
    return Trace(std::move(tuples));
}

} // namespace dre::store
