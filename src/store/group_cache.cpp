#include "store/group_cache.h"

#include "obs/obs.h"

namespace dre::store {

GroupCache::Buffer GroupCache::lookup(const std::string& path,
                                      std::size_t group) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->group == group && it->path == path) {
                entries_.splice(entries_.begin(), entries_, it);
                hits_.fetch_add(1, std::memory_order_relaxed);
                DRE_COUNTER_INC("store.cache_hits");
                return entries_.front().buffer;
            }
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    DRE_COUNTER_INC("store.cache_misses");
    return nullptr;
}

void GroupCache::insert(const std::string& path, std::size_t group,
                        Buffer buffer) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->group == group && it->path == path) {
            // A concurrent miss already inserted the same bytes; just
            // refresh recency.
            entries_.splice(entries_.begin(), entries_, it);
            return;
        }
    }
    entries_.push_front({path, group, std::move(buffer)});
    while (entries_.size() > capacity_) entries_.pop_back();
}

std::size_t GroupCache::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace dre::store
