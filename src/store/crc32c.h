// CRC-32C (Castagnoli) checksums for the .drt trace store.
//
// Every row group and the footer index carry a CRC-32C so that torn writes,
// truncation, and bit rot are detected at read time instead of silently
// skewing estimates (see reader.h). CRC-32C rather than plain CRC-32
// because its error-detection properties are strictly better for the short
// payloads here and it is the checksum ecosystem standard for columnar
// formats (Parquet pages, leveldb blocks, iSCSI).
#ifndef DRE_STORE_CRC32C_H
#define DRE_STORE_CRC32C_H

#include <cstddef>
#include <cstdint>

namespace dre::store {

// CRC-32C of `size` bytes at `data`, continuing from `seed` (pass the
// previous call's return value to checksum a buffer in pieces; the result
// equals the one-shot CRC of the concatenation). Dispatches through
// dre::simd — hardware `crc32` on SSE4.2 CPUs, software slicing-by-8
// otherwise — with identical output on every platform and dispatch level
// (tests/test_simd.cpp enforces byte equality).
std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed = 0);

} // namespace dre::store

#endif // DRE_STORE_CRC32C_H
