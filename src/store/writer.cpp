#include "store/writer.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/obs.h"
#include "store/crc32c.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define DRE_STORE_HAVE_FSYNC 1
#else
#define DRE_STORE_HAVE_FSYNC 0
#endif

namespace dre::store {
namespace {

[[noreturn]] void fail_errno(const std::string& what, const std::string& path) {
    throw std::runtime_error("StoreWriter: " + what + " " + path + ": " +
                             std::strerror(errno));
}

} // namespace

StoreWriter::StoreWriter(std::string path, StoreSchema schema, Options options)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp"),
      schema_(schema),
      row_group_rows_(options.row_group_rows) {
    if (row_group_rows_ == 0)
        throw std::invalid_argument("StoreWriter: row_group_rows must be >= 1");
    file_ = std::fopen(tmp_path_.c_str(), "wb");
    if (file_ == nullptr) fail_errno("cannot create", tmp_path_);

    numeric_.resize(schema_.numeric_dims);
    categorical_.resize(schema_.categorical_dims);
    const std::size_t reserve =
        std::min<std::size_t>(row_group_rows_, 1u << 20);
    decisions_.reserve(reserve);
    rewards_.reserve(reserve);
    propensities_.reserve(reserve);
    states_.reserve(reserve);
    for (auto& col : numeric_) col.reserve(reserve);
    for (auto& col : categorical_) col.reserve(reserve);

    // Placeholder header; the counts are patched in finalize().
    unsigned char header[kHeaderBytes];
    StoreHeader h;
    h.schema = schema_;
    h.row_group_rows = row_group_rows_;
    encode_header(h, header);
    write_bytes(header, kHeaderBytes);
}

StoreWriter::~StoreWriter() {
    if (file_ != nullptr) {
        // Not finalized: drop the partial temp file so a crashed or
        // abandoned write never masquerades as a trace.
        std::fclose(file_);
        std::remove(tmp_path_.c_str());
    }
}

void StoreWriter::write_bytes(const void* data, std::size_t size) {
    if (size == 0) return;
    if (std::fwrite(data, 1, size, file_) != size)
        fail_errno("write failed for", tmp_path_);
    write_offset_ += size;
}

void StoreWriter::append(const LoggedTuple& tuple) {
    if (finalized_ || file_ == nullptr)
        throw std::logic_error("StoreWriter: append after finalize");
    if (tuple.context.numeric_dims() != schema_.numeric_dims ||
        tuple.context.categorical_dims() != schema_.categorical_dims)
        throw std::invalid_argument(
            "StoreWriter: tuple context schema (" +
            std::to_string(tuple.context.numeric_dims()) + " numeric, " +
            std::to_string(tuple.context.categorical_dims()) +
            " categorical) does not match store schema (" +
            std::to_string(schema_.numeric_dims) + ", " +
            std::to_string(schema_.categorical_dims) + ")");
    decisions_.push_back(tuple.decision);
    rewards_.push_back(tuple.reward);
    propensities_.push_back(tuple.propensity);
    states_.push_back(tuple.state);
    for (std::uint32_t j = 0; j < schema_.numeric_dims; ++j)
        numeric_[j].push_back(tuple.context.numeric[j]);
    for (std::uint32_t j = 0; j < schema_.categorical_dims; ++j)
        categorical_[j].push_back(tuple.context.categorical[j]);
    max_decision_ = std::max(max_decision_, tuple.decision);
    ++rows_total_;
    if (decisions_.size() == row_group_rows_) flush_row_group();
}

void StoreWriter::append(const Trace& trace) {
    for (const LoggedTuple& tuple : trace) append(tuple);
}

void StoreWriter::flush_row_group() {
    const std::size_t rows = decisions_.size();
    if (rows == 0) return;
    const RowGroupLayout layout = RowGroupLayout::compute(schema_, rows);
    scratch_.assign(layout.bytes, 0); // zeroed so padding is deterministic
    auto copy_col = [&](std::size_t off, const void* src, std::size_t bytes) {
        std::memcpy(scratch_.data() + off, src, bytes);
    };
    copy_col(layout.decision_off, decisions_.data(),
             rows * sizeof(std::int32_t));
    copy_col(layout.reward_off, rewards_.data(), rows * sizeof(double));
    copy_col(layout.propensity_off, propensities_.data(),
             rows * sizeof(double));
    copy_col(layout.state_off, states_.data(), rows * sizeof(std::int32_t));
    for (std::uint32_t j = 0; j < schema_.numeric_dims; ++j)
        copy_col(layout.numeric_col_off(j), numeric_[j].data(),
                 rows * sizeof(double));
    for (std::uint32_t j = 0; j < schema_.categorical_dims; ++j)
        copy_col(layout.categorical_col_off(j), categorical_[j].data(),
                 rows * sizeof(std::int32_t));

    RowGroupInfo info;
    info.offset = write_offset_;
    info.rows = static_cast<std::uint32_t>(rows);
    info.crc = crc32c(scratch_.data(), scratch_.size());
    write_bytes(scratch_.data(), scratch_.size());
    groups_.push_back(info);
#if DRE_OBS_ENABLED
    DRE_COUNTER_INC("store.row_groups_written");
    DRE_COUNTER_ADD("store.bytes_written", layout.bytes);
#endif

    decisions_.clear();
    rewards_.clear();
    propensities_.clear();
    states_.clear();
    for (auto& col : numeric_) col.clear();
    for (auto& col : categorical_) col.clear();
}

void StoreWriter::finalize() {
    if (finalized_ || file_ == nullptr)
        throw std::logic_error("StoreWriter: finalize called twice");
    DRE_SPAN("store.finalize");
    flush_row_group();

    // Footer: group count, index entries, CRC over the preceding footer
    // bytes, zero pad to keep the tail 8-aligned.
    const std::uint64_t footer_offset = write_offset_;
    std::vector<unsigned char> footer(footer_bytes(groups_.size()), 0);
    std::size_t pos = 0;
    encode_value(footer.data(), pos, static_cast<std::uint64_t>(groups_.size()));
    for (const RowGroupInfo& g : groups_) {
        encode_value(footer.data(), pos, g.offset);
        encode_value(footer.data(), pos, g.rows);
        encode_value(footer.data(), pos, g.crc);
    }
    const std::uint32_t footer_crc = crc32c(footer.data(), pos);
    encode_value(footer.data(), pos, footer_crc);
    encode_value(footer.data(), pos, std::uint32_t{0});
    write_bytes(footer.data(), footer.size());

    unsigned char tail[kTailBytes];
    pos = 0;
    encode_value(tail, pos, footer_offset);
    std::memcpy(tail + pos, kEndMagic, sizeof(kEndMagic));
    write_bytes(tail, kTailBytes);

    // Back-patch the header counts now that they are known.
    StoreHeader h;
    h.schema = schema_;
    h.row_group_rows = row_group_rows_;
    h.num_decisions =
        max_decision_ < 0 ? 0 : static_cast<std::uint32_t>(max_decision_) + 1;
    h.num_tuples = rows_total_;
    unsigned char header[kHeaderBytes];
    encode_header(h, header);
    if (std::fseek(file_, 0, SEEK_SET) != 0)
        fail_errno("seek failed for", tmp_path_);
    if (std::fwrite(header, 1, kHeaderBytes, file_) != kHeaderBytes)
        fail_errno("header rewrite failed for", tmp_path_);

    if (std::fflush(file_) != 0) fail_errno("flush failed for", tmp_path_);
#if DRE_STORE_HAVE_FSYNC
    if (::fsync(::fileno(file_)) != 0) fail_errno("fsync failed for", tmp_path_);
#endif
    if (std::fclose(file_) != 0) {
        file_ = nullptr;
        fail_errno("close failed for", tmp_path_);
    }
    file_ = nullptr;
    if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0)
        fail_errno("rename failed for", tmp_path_);
    finalized_ = true;
}

void write_store_file(const Trace& trace, const std::string& path,
                      StoreWriter::Options options) {
    StoreSchema schema;
    if (!trace.empty()) {
        schema.numeric_dims =
            static_cast<std::uint32_t>(trace[0].context.numeric_dims());
        schema.categorical_dims =
            static_cast<std::uint32_t>(trace[0].context.categorical_dims());
    }
    StoreWriter writer(path, schema, options);
    writer.append(trace);
    writer.finalize();
}

} // namespace dre::store
