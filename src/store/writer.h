// StoreWriter — append-only .drt producer with atomic finalize.
//
// Rows are buffered column-wise and flushed as full row groups, so the
// writer's memory footprint is one row group regardless of trace size. All
// bytes go to `<path>.tmp`; finalize() writes the footer index and tail,
// back-patches the header counts, fsyncs, and renames the temp file into
// place — readers therefore only ever see absent or complete files, never
// a torn one. A writer destroyed without finalize() removes its temp file.
#ifndef DRE_STORE_WRITER_H
#define DRE_STORE_WRITER_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "store/format.h"
#include "trace/trace.h"

namespace dre::store {

// Namespace-scope (not nested) so it is complete where constructor default
// arguments need it; spelled StoreWriter::Options at call sites.
struct StoreWriterOptions {
    std::uint32_t row_group_rows = kDefaultRowGroupRows;
};

class StoreWriter {
public:
    using Options = StoreWriterOptions;

    // Opens `<path>.tmp` for writing. Throws std::runtime_error if the file
    // cannot be created and std::invalid_argument on a zero row-group size.
    StoreWriter(std::string path, StoreSchema schema, Options options = {});
    ~StoreWriter();
    StoreWriter(const StoreWriter&) = delete;
    StoreWriter& operator=(const StoreWriter&) = delete;

    // Appends one tuple. The context widths must match the schema declared
    // at construction (std::invalid_argument otherwise).
    void append(const LoggedTuple& tuple);
    void append(const Trace& trace);

    std::uint64_t rows_appended() const noexcept { return rows_total_; }
    const std::string& path() const noexcept { return path_; }

    // Flushes the partial row group, writes footer + tail, patches the
    // header counts, fsyncs, and atomically renames `<path>.tmp` → path.
    // May be called exactly once; appends after finalize throw.
    void finalize();

private:
    void flush_row_group();
    void write_bytes(const void* data, std::size_t size);

    std::string path_;
    std::string tmp_path_;
    StoreSchema schema_;
    std::uint32_t row_group_rows_;
    std::FILE* file_ = nullptr;
    bool finalized_ = false;

    std::uint64_t rows_total_ = 0;
    std::int32_t max_decision_ = -1;
    std::uint64_t write_offset_ = 0;
    std::vector<RowGroupInfo> groups_;

    // Current (partial) row group, column-wise.
    std::vector<std::int32_t> decisions_;
    std::vector<double> rewards_;
    std::vector<double> propensities_;
    std::vector<std::int32_t> states_;
    std::vector<std::vector<double>> numeric_;           // [dim][row]
    std::vector<std::vector<std::int32_t>> categorical_; // [dim][row]
    std::vector<unsigned char> scratch_;                 // serialized group
};

// Convenience: write a whole in-memory trace as one .drt file. The schema
// is taken from the first tuple ({0, 0} for an empty trace).
void write_store_file(const Trace& trace, const std::string& path,
                      StoreWriter::Options options = {});

} // namespace dre::store

#endif // DRE_STORE_WRITER_H
