#include "cdn/scenario.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/estimators.h"
#include "core/reward_model.h"

namespace dre::cdn {

Decision encode_decision(const CdnWorldConfig& config, std::size_t cdn,
                         std::size_t bitrate) {
    if (cdn >= config.num_cdns || bitrate >= config.num_bitrates)
        throw std::out_of_range("cdn::encode_decision");
    return static_cast<Decision>(cdn * config.num_bitrates + bitrate);
}

std::size_t cdn_of(const CdnWorldConfig& config, Decision d) {
    if (d < 0 ||
        static_cast<std::size_t>(d) >= config.num_cdns * config.num_bitrates)
        throw std::out_of_range("cdn::cdn_of");
    return static_cast<std::size_t>(d) / config.num_bitrates;
}

std::size_t bitrate_of(const CdnWorldConfig& config, Decision d) {
    if (d < 0 ||
        static_cast<std::size_t>(d) >= config.num_cdns * config.num_bitrates)
        throw std::out_of_range("cdn::bitrate_of");
    return static_cast<std::size_t>(d) % config.num_bitrates;
}

VideoQualityEnv::VideoQualityEnv(CdnWorldConfig config) : config_(config) {
    if (config_.num_cdns == 0 || config_.num_bitrates == 0 ||
        config_.num_asns == 0 || config_.num_cities == 0 ||
        config_.num_device_types == 0)
        throw std::invalid_argument("VideoQualityEnv: empty dimension");
    stats::Rng rng(config_.seed);
    cdn_base_.resize(config_.num_cdns);
    for (double& b : cdn_base_) b = rng.uniform(-0.5, 0.5);
    asn_cdn_.resize(config_.num_asns * config_.num_cdns);
    for (double& a : asn_cdn_) a = rng.uniform(-1.0, 1.0);
    city_congestion_.resize(config_.num_cities);
    for (double& c : city_congestion_) c = rng.uniform(0.0, 0.8);
    device_cap_.resize(config_.num_device_types);
    for (std::size_t i = 0; i < device_cap_.size(); ++i)
        device_cap_[i] = rng.uniform(
            static_cast<double>(config_.num_bitrates) * 0.4,
            static_cast<double>(config_.num_bitrates));
}

ClientContext VideoQualityEnv::sample_context(stats::Rng& rng) const {
    ClientContext context;
    context.categorical = {
        static_cast<std::int32_t>(rng.uniform_index(config_.num_asns)),
        static_cast<std::int32_t>(rng.uniform_index(config_.num_cities)),
        static_cast<std::int32_t>(rng.uniform_index(config_.num_device_types))};
    context.numeric = {rng.uniform(0.5, 1.5)}; // access-speed multiplier
    for (std::size_t i = 0; i < config_.noise_features; ++i)
        context.numeric.push_back(rng.normal());
    return context;
}

double VideoQualityEnv::mean_quality(const ClientContext& context, Decision d) const {
    const std::size_t cdn = cdn_of(config_, d);
    const std::size_t bitrate = bitrate_of(config_, d);
    const auto asn = static_cast<std::size_t>(context.categorical.at(0));
    const auto city = static_cast<std::size_t>(context.categorical.at(1));
    const auto device = static_cast<std::size_t>(context.categorical.at(2));
    if (asn >= config_.num_asns || city >= config_.num_cities ||
        device >= config_.num_device_types)
        throw std::out_of_range("VideoQualityEnv: categorical out of range");

    const double speed = context.numeric.at(0);
    // Diminishing bitrate utility, capped by device capability and hurt by
    // city congestion when the bitrate is ambitious relative to speed.
    const double level = static_cast<double>(bitrate) + 1.0;
    double quality = 2.0 * std::log1p(level);
    if (level > device_cap_[device]) quality -= 1.5 * (level - device_cap_[device]);
    quality -= city_congestion_[city] * level / std::max(speed, 0.1);
    quality += cdn_base_[cdn] + asn_cdn_[asn * config_.num_cdns + cdn];
    return quality;
}

Reward VideoQualityEnv::sample_reward(const ClientContext& context, Decision d,
                                      stats::Rng& rng) const {
    return mean_quality(context, d) + rng.normal(0.0, config_.noise_sigma);
}

double VideoQualityEnv::expected_reward(const ClientContext& context, Decision d,
                                        stats::Rng&, int) const {
    return mean_quality(context, d);
}

Decision VideoQualityEnv::best_decision(const ClientContext& context) const {
    Decision best = 0;
    double best_quality = mean_quality(context, 0);
    for (std::size_t d = 1; d < num_decisions(); ++d) {
        const double q = mean_quality(context, static_cast<Decision>(d));
        if (q > best_quality) {
            best_quality = q;
            best = static_cast<Decision>(d);
        }
    }
    return best;
}

MatchingEstimate cfa_matching_estimate(const Trace& trace,
                                       const core::Policy& new_policy) {
    const core::ReplayEstimate replay = core::matching_replay(trace, new_policy);
    MatchingEstimate estimate;
    estimate.value = replay.value;
    estimate.matches = replay.matches;
    return estimate;
}

std::shared_ptr<core::Policy> make_greedy_policy(const VideoQualityEnv& env,
                                                 const Trace& probe_trace) {
    // Learn a coarse (asn, decision) quality table from the probe trace and
    // pick the argmax per client — a plausible "data-driven new policy".
    auto table = std::make_shared<core::TabularRewardModel>(env.num_decisions());
    // Reduce contexts to the ASN feature only so the table generalizes.
    Trace coarse;
    coarse.reserve(probe_trace.size());
    for (const auto& t : probe_trace) {
        LoggedTuple reduced = t;
        reduced.context.numeric.clear();
        reduced.context.categorical = {t.context.categorical.at(0)};
        coarse.add(std::move(reduced));
    }
    table->fit(coarse);

    const std::size_t num_decisions = env.num_decisions();
    return std::make_shared<core::DeterministicPolicy>(
        num_decisions, [table, num_decisions](const ClientContext& context) {
            ClientContext reduced;
            reduced.categorical = {context.categorical.at(0)};
            Decision best = 0;
            double best_quality = table->predict(reduced, 0);
            for (std::size_t d = 1; d < num_decisions; ++d) {
                const double q = table->predict(reduced, static_cast<Decision>(d));
                if (q > best_quality) {
                    best_quality = q;
                    best = static_cast<Decision>(d);
                }
            }
            return best;
        });
}

} // namespace dre::cdn
