// The CFA scenario (paper §2.2.2, Fig. 5, Fig. 7c): choosing a CDN and
// bitrate per video client from featurized client contexts.
//
// CFA [15] evaluates a new client→(CDN, bitrate) assignment "by using only
// the data of clients who use the same CDNs/bitrates in the old and new
// assignments" — an exact-matching estimator that is unbiased under random
// logging but collapses when matches are rare. The paper's fix: DR with a
// k-NN reward model as DM.
#ifndef DRE_CDN_SCENARIO_H
#define DRE_CDN_SCENARIO_H

#include <memory>

#include "core/environment.h"
#include "core/policy.h"
#include "stats/rng.h"
#include "trace/trace.h"

namespace dre::cdn {

struct CdnWorldConfig {
    std::size_t num_cdns = 3;
    std::size_t num_bitrates = 4;
    std::size_t num_asns = 8;
    std::size_t num_cities = 5;
    std::size_t num_device_types = 3;
    // Number of extra irrelevant numeric features (for the dimensionality
    // ablation E12; 0 in the base scenario).
    std::size_t noise_features = 0;
    double noise_sigma = 0.6; // quality-score noise
    std::uint64_t seed = 7;   // world parameters (affinities)
};

// Decisions are (cdn, bitrate) pairs, encoded cdn * num_bitrates + bitrate.
Decision encode_decision(const CdnWorldConfig& config, std::size_t cdn,
                         std::size_t bitrate);
std::size_t cdn_of(const CdnWorldConfig& config, Decision d);
std::size_t bitrate_of(const CdnWorldConfig& config, Decision d);

// Ground truth: quality = bitrate utility + CDN base + ASN×CDN affinity +
// city congestion + device cap + N(0, noise). Contexts carry categorical
// (asn, city, device) plus a numeric access-speed feature.
class VideoQualityEnv final : public core::Environment {
public:
    explicit VideoQualityEnv(CdnWorldConfig config);

    ClientContext sample_context(stats::Rng& rng) const override;
    Reward sample_reward(const ClientContext& context, Decision d,
                         stats::Rng& rng) const override;
    double expected_reward(const ClientContext& context, Decision d,
                           stats::Rng& rng, int samples) const override;
    std::size_t num_decisions() const noexcept override {
        return config_.num_cdns * config_.num_bitrates;
    }

    const CdnWorldConfig& config() const noexcept { return config_; }

    // The quality-maximizing decision for a context (oracle policy).
    Decision best_decision(const ClientContext& context) const;

private:
    double mean_quality(const ClientContext& context, Decision d) const;

    CdnWorldConfig config_;
    std::vector<double> cdn_base_;       // [cdn]
    std::vector<double> asn_cdn_;        // [asn * num_cdns + cdn]
    std::vector<double> city_congestion_; // [city]
    std::vector<double> device_cap_;     // [device] max useful bitrate level
};

// CFA-style matching estimator: average reward over logged tuples whose
// decision equals the new policy's (argmax) decision for that tuple's
// context. Returns the estimate and the number of matches (Fig. 5's
// coverage statistic). With zero matches the estimate falls back to the
// trace's overall mean reward (and `matches` reports 0).
struct MatchingEstimate {
    double value = 0.0;
    std::size_t matches = 0;
};

MatchingEstimate cfa_matching_estimate(const Trace& trace,
                                       const core::Policy& new_policy);

// A deterministic "smart" assignment policy derived from the environment's
// structure but imperfect (uses a coarse quality table learned from a probe
// trace). Acts as the new policy under evaluation in Fig. 7c.
std::shared_ptr<core::Policy> make_greedy_policy(const VideoQualityEnv& env,
                                                 const Trace& probe_trace);

} // namespace dre::cdn

#endif // DRE_CDN_SCENARIO_H
