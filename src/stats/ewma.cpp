#include "stats/ewma.h"

#include <algorithm>

namespace dre::stats {

Ewma::Ewma(double alpha) : alpha_(alpha) {
    if (alpha_ <= 0.0 || alpha_ > 1.0)
        throw std::invalid_argument("Ewma: alpha outside (0,1]");
}

void Ewma::add(double x) noexcept {
    if (empty_) {
        value_ = x;
        empty_ = false;
        return;
    }
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
}

SlidingWindow::SlidingWindow(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0)
        throw std::invalid_argument("SlidingWindow: capacity must be > 0");
}

void SlidingWindow::add(double x) {
    values_.push_back(x);
    if (values_.size() > capacity_) values_.pop_front();
}

double SlidingWindow::mean() const {
    if (values_.empty()) throw std::logic_error("SlidingWindow::mean: empty");
    double total = 0.0;
    for (double v : values_) total += v;
    return total / static_cast<double>(values_.size());
}

double SlidingWindow::harmonic_mean() const {
    if (values_.empty())
        throw std::logic_error("SlidingWindow::harmonic_mean: empty");
    double reciprocal_sum = 0.0;
    for (double v : values_) {
        if (v <= 0.0)
            throw std::invalid_argument(
                "SlidingWindow::harmonic_mean: non-positive sample");
        reciprocal_sum += 1.0 / v;
    }
    return static_cast<double>(values_.size()) / reciprocal_sum;
}

double SlidingWindow::min() const {
    if (values_.empty()) throw std::logic_error("SlidingWindow::min: empty");
    return *std::min_element(values_.begin(), values_.end());
}

double SlidingWindow::max() const {
    if (values_.empty()) throw std::logic_error("SlidingWindow::max: empty");
    return *std::max_element(values_.begin(), values_.end());
}

} // namespace dre::stats
