// Special functions backing the parametric tests in ab/ — hand-rolled like
// the rest of the statistics substrate.
//
// Implementations are the classic numerical recipes: Lanczos for log-gamma,
// the Lentz continued fraction for the regularized incomplete beta, and
// Acklam's rational approximation (with one Halley polish step) for the
// normal quantile. Accuracy is ~1e-10 across the tested domain — far below
// anything the experiments can resolve.
#ifndef DRE_STATS_SPECIAL_H
#define DRE_STATS_SPECIAL_H

namespace dre::stats {

// ln Γ(x) for x > 0 (Lanczos approximation, g = 7, n = 9).
double log_gamma(double x);

// Regularized incomplete beta I_x(a, b) for a, b > 0 and x in [0, 1].
// Throws std::invalid_argument outside that domain.
double incomplete_beta(double a, double b, double x);

// CDF of Student's t distribution with `dof` degrees of freedom (dof > 0).
double student_t_cdf(double t, double dof);

// Inverse standard-normal CDF: z such that Phi(z) = p, for p in (0, 1).
// Throws std::invalid_argument at or outside the endpoints.
double normal_quantile(double p);

} // namespace dre::stats

#endif // DRE_STATS_SPECIAL_H
