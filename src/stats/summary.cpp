#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace dre::stats {

void Accumulator::add(double x) noexcept {
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void Accumulator::merge(const Accumulator& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto total = static_cast<double>(n_ + other.n_);
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ = (mean_ * static_cast<double>(n_) +
             other.mean_ * static_cast<double>(other.n_)) /
            total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const noexcept {
    return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double Accumulator::stddev() const noexcept {
    return std::sqrt(variance());
}

double Accumulator::sample_variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::sample_stddev() const noexcept {
    return std::sqrt(sample_variance());
}

double Accumulator::standard_error() const noexcept {
    return n_ < 2 ? 0.0 : sample_stddev() / std::sqrt(static_cast<double>(n_));
}

namespace {

void require_nonempty(std::span<const double> xs, const char* who) {
    if (xs.empty()) throw std::invalid_argument(std::string(who) + ": empty sample");
}

} // namespace

double mean(std::span<const double> xs) {
    require_nonempty(xs, "mean");
    Accumulator acc;
    for (double x : xs) acc.add(x);
    return acc.mean();
}

double variance(std::span<const double> xs) {
    require_nonempty(xs, "variance");
    Accumulator acc;
    for (double x : xs) acc.add(x);
    return acc.variance();
}

double sample_variance(std::span<const double> xs) {
    require_nonempty(xs, "sample_variance");
    Accumulator acc;
    for (double x : xs) acc.add(x);
    return acc.sample_variance();
}

double stddev(std::span<const double> xs) {
    return std::sqrt(variance(xs));
}

double quantile(std::span<const double> xs, double q) {
    require_nonempty(xs, "quantile");
    if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) {
    return quantile(xs, 0.5);
}

Summary summarize(std::span<const double> xs) {
    require_nonempty(xs, "summarize");
    Accumulator acc;
    for (double x : xs) acc.add(x);
    Summary s;
    s.count = acc.count();
    s.mean = acc.mean();
    s.stddev = acc.sample_stddev();
    s.standard_error = acc.standard_error();
    s.min = acc.min();
    s.max = acc.max();
    s.median = median(xs);
    s.p25 = quantile(xs, 0.25);
    s.p75 = quantile(xs, 0.75);
    return s;
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
    if (xs.size() != ys.size())
        throw std::invalid_argument("correlation: size mismatch");
    require_nonempty(xs, "correlation");
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0) return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double weighted_mean(std::span<const double> xs, std::span<const double> ws) {
    if (xs.size() != ws.size())
        throw std::invalid_argument("weighted_mean: size mismatch");
    require_nonempty(xs, "weighted_mean");
    double total = 0.0, weight = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (ws[i] < 0.0) throw std::invalid_argument("weighted_mean: negative weight");
        total += xs[i] * ws[i];
        weight += ws[i];
    }
    if (weight <= 0.0) throw std::invalid_argument("weighted_mean: zero total weight");
    return total / weight;
}

} // namespace dre::stats
