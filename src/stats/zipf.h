// Zipf-distributed sampling. Client populations in networking traces are
// heavy-tailed (a few ASes/cities dominate); the workload generators use
// this to produce realistic context skew.
#ifndef DRE_STATS_ZIPF_H
#define DRE_STATS_ZIPF_H

#include <cstddef>
#include <vector>

#include "stats/rng.h"

namespace dre::stats {

class ZipfSampler {
public:
    // P(i) proportional to 1 / (i+1)^exponent over i in [0, n).
    ZipfSampler(std::size_t n, double exponent);

    std::size_t sample(Rng& rng) const;
    double probability(std::size_t i) const;
    std::size_t size() const noexcept { return cumulative_.size(); }

private:
    std::vector<double> cumulative_; // normalized cumulative probabilities
};

} // namespace dre::stats

#endif // DRE_STATS_ZIPF_H
