#include "stats/hypothesis.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace dre::stats {

double normal_cdf(double z) {
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

RankSumResult mann_whitney_u(std::span<const double> xs, std::span<const double> ys) {
    if (xs.empty() || ys.empty())
        throw std::invalid_argument("mann_whitney_u: empty sample");

    struct Tagged {
        double value;
        bool from_x;
    };
    std::vector<Tagged> all;
    all.reserve(xs.size() + ys.size());
    for (double x : xs) all.push_back({x, true});
    for (double y : ys) all.push_back({y, false});
    std::sort(all.begin(), all.end(),
              [](const Tagged& a, const Tagged& b) { return a.value < b.value; });

    // Midranks with tie bookkeeping.
    const auto n = static_cast<double>(all.size());
    double rank_sum_x = 0.0;
    double tie_correction = 0.0;
    std::size_t i = 0;
    while (i < all.size()) {
        std::size_t j = i;
        while (j + 1 < all.size() && all[j + 1].value == all[i].value) ++j;
        const double midrank = (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
        const auto tie_size = static_cast<double>(j - i + 1);
        tie_correction += tie_size * (tie_size * tie_size - 1.0);
        for (std::size_t k = i; k <= j; ++k)
            if (all[k].from_x) rank_sum_x += midrank;
        i = j + 1;
    }

    const auto n1 = static_cast<double>(xs.size());
    const auto n2 = static_cast<double>(ys.size());
    RankSumResult result;
    result.u_statistic = rank_sum_x - n1 * (n1 + 1.0) / 2.0;
    const double mean_u = n1 * n2 / 2.0;
    const double variance_u =
        n1 * n2 / 12.0 * ((n + 1.0) - tie_correction / (n * (n - 1.0)));
    if (variance_u <= 0.0) {
        // All values identical: no evidence either way.
        result.z_score = 0.0;
        result.p_value_two_sided = 1.0;
        result.p_value_less = 0.5;
        return result;
    }
    result.z_score = (result.u_statistic - mean_u) / std::sqrt(variance_u);
    result.p_value_less = normal_cdf(result.z_score);
    result.p_value_two_sided =
        2.0 * std::min(result.p_value_less, 1.0 - result.p_value_less);
    return result;
}

double sign_test_less(std::span<const double> xs, std::span<const double> ys) {
    if (xs.size() != ys.size())
        throw std::invalid_argument("sign_test_less: size mismatch");
    if (xs.empty()) throw std::invalid_argument("sign_test_less: empty samples");
    int wins = 0, informative = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (xs[i] == ys[i]) continue;
        ++informative;
        wins += xs[i] < ys[i];
    }
    if (informative == 0) return 1.0;
    // Exact binomial tail P(X >= wins) with p = 0.5.
    double p = 0.0;
    double log_half = std::log(0.5);
    for (int k = wins; k <= informative; ++k) {
        double log_choose = std::lgamma(informative + 1.0) -
                            std::lgamma(k + 1.0) -
                            std::lgamma(informative - k + 1.0);
        p += std::exp(log_choose + informative * log_half);
    }
    return std::min(p, 1.0);
}

} // namespace dre::stats
