// Streaming and batch summary statistics.
#ifndef DRE_STATS_SUMMARY_H
#define DRE_STATS_SUMMARY_H

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace dre::stats {

// Numerically-stable single-pass accumulator (Welford's algorithm).
class Accumulator {
public:
    void add(double x) noexcept;
    void merge(const Accumulator& other) noexcept;

    std::size_t count() const noexcept { return n_; }
    bool empty() const noexcept { return n_ == 0; }
    double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
    // Population variance / stddev (divide by n). Zero when empty.
    double variance() const noexcept;
    double stddev() const noexcept;
    // Sample variance / stddev (divide by n-1). Zero when n < 2.
    double sample_variance() const noexcept;
    double sample_stddev() const noexcept;
    // Standard error of the mean (sample stddev / sqrt(n)). Zero when n < 2.
    double standard_error() const noexcept;
    double min() const noexcept { return min_; }
    double max() const noexcept { return max_; }
    double sum() const noexcept { return sum_; }

    // Full internal state, for checkpoint/resume: from_state(state()) is a
    // bit-exact clone (the moments are copied verbatim, not recomputed).
    struct State {
        std::size_t n = 0;
        double mean = 0.0, m2 = 0.0, sum = 0.0;
        double min = std::numeric_limits<double>::infinity();
        double max = -std::numeric_limits<double>::infinity();
    };
    State state() const noexcept { return {n_, mean_, m2_, sum_, min_, max_}; }
    static Accumulator from_state(const State& s) noexcept {
        Accumulator a;
        a.n_ = s.n;
        a.mean_ = s.mean;
        a.m2_ = s.m2;
        a.sum_ = s.sum;
        a.min_ = s.min;
        a.max_ = s.max;
        return a;
    }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

// Plain value summary for a finished sample.
struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;       // sample stddev
    double standard_error = 0.0;
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;
    double p25 = 0.0;
    double p75 = 0.0;
};

// Batch helpers. All throw std::invalid_argument on empty input where a
// value is required.
double mean(std::span<const double> xs);
double variance(std::span<const double> xs);         // population
double sample_variance(std::span<const double> xs);  // n-1
double stddev(std::span<const double> xs);
// Linear-interpolated quantile, q in [0, 1].
double quantile(std::span<const double> xs, double q);
double median(std::span<const double> xs);
Summary summarize(std::span<const double> xs);

// Pearson correlation of two equal-length samples.
double correlation(std::span<const double> xs, std::span<const double> ys);

// Weighted mean: sum(w*x)/sum(w). Requires positive total weight.
double weighted_mean(std::span<const double> xs, std::span<const double> ws);

} // namespace dre::stats

#endif // DRE_STATS_SUMMARY_H
