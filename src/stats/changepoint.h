// Offline change-point detection.
//
// §4.3 of the paper proposes detecting self-inflicted system-state changes
// ("reward-decision coupling") with change-point detection, citing
// PELT (Killick et al. 2012) and penalized contrasts (Lavielle 2005).
// We implement PELT with a Gaussian mean-shift (L2) segment cost and a
// BIC-style penalty, plus a simple CUSUM online detector.
#ifndef DRE_STATS_CHANGEPOINT_H
#define DRE_STATS_CHANGEPOINT_H

#include <cstddef>
#include <span>
#include <vector>

namespace dre::stats {

struct ChangepointResult {
    // Indices i such that a new segment starts at i (0 < i < n), ascending.
    std::vector<std::size_t> changepoints;
    // Per-segment means, one more than changepoints.
    std::vector<double> segment_means;
    double total_cost = 0.0;
};

// PELT (Pruned Exact Linear Time) with segment cost
//   C(a, b) = sum_{i in [a,b)} (x_i - mean(a,b))^2
// and penalty beta per change-point. penalty <= 0 selects the default
// BIC-like penalty 2 * var(x) * log(n).
ChangepointResult pelt(std::span<const double> series, double penalty = -1.0,
                       std::size_t min_segment_length = 2);

// One-sided CUSUM online mean-shift detector. Returns the first index at
// which the cumulative deviation exceeds `threshold` (in units of the
// reference stddev), or series.size() if no alarm fires.
std::size_t cusum_alarm(std::span<const double> series, double reference_mean,
                        double reference_stddev, double drift = 0.5,
                        double threshold = 5.0);

} // namespace dre::stats

#endif // DRE_STATS_CHANGEPOINT_H
