// Linear (ridge) regression and logistic regression, hand-rolled on top of
// the small Matrix type. These power the Direct-Method reward models and
// the logistic propensity estimator in dre::core.
#ifndef DRE_STATS_REGRESSION_H
#define DRE_STATS_REGRESSION_H

#include <span>
#include <vector>

namespace dre::stats {

// Ordinary/ridge least squares with an intercept term.
//
// Fits y ~ w . x + b by minimizing  sum_i (y_i - w.x_i - b)^2 + l2 * |w|^2
// (the intercept is not regularized). Solved through the normal equations
// with Cholesky; l2 > 0 guarantees positive-definiteness.
class LinearRegression {
public:
    // rows: one feature vector per sample; targets: matching y values.
    // l2 >= 0 is the ridge penalty.
    void fit(const std::vector<std::vector<double>>& rows,
             std::span<const double> targets, double l2 = 1e-6);

    double predict(std::span<const double> features) const;

    bool fitted() const noexcept { return fitted_; }
    std::span<const double> weights() const noexcept { return weights_; }
    double intercept() const noexcept { return intercept_; }

private:
    std::vector<double> weights_;
    double intercept_ = 0.0;
    bool fitted_ = false;
};

// Options for LogisticRegression::fit.
struct LogisticOptions {
    double l2 = 1e-4;
    int max_iterations = 50;
    double tolerance = 1e-8;
};

// Binary logistic regression fit by Newton-Raphson / IRLS with a small
// ridge penalty for stability. predict() returns P(y=1 | x).
class LogisticRegression {
public:
    using Options = LogisticOptions;

    void fit(const std::vector<std::vector<double>>& rows,
             std::span<const int> labels, const Options& options = {});

    double predict(std::span<const double> features) const;

    bool fitted() const noexcept { return fitted_; }
    std::span<const double> weights() const noexcept { return weights_; }
    double intercept() const noexcept { return intercept_; }

private:
    std::vector<double> weights_;
    double intercept_ = 0.0;
    bool fitted_ = false;
};

// Numerically-safe logistic function.
double sigmoid(double z) noexcept;

} // namespace dre::stats

#endif // DRE_STATS_REGRESSION_H
