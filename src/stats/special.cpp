#include "stats/special.h"

#include <cmath>
#include <stdexcept>

#include "stats/hypothesis.h" // normal_cdf (for the quantile polish step)

namespace dre::stats {

namespace {

// Lentz's algorithm for the incomplete-beta continued fraction
// (Numerical Recipes "betacf"). Converges in a handful of iterations for
// x < (a+1)/(a+b+2), which the caller guarantees via the symmetry relation.
double beta_continued_fraction(double a, double b, double x) {
    constexpr int kMaxIterations = 300;
    constexpr double kEpsilon = 3e-15;
    constexpr double kTiny = 1e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < kTiny) d = kTiny;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= kMaxIterations; ++m) {
        const double m2 = 2.0 * m;
        // Even step.
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < kTiny) d = kTiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < kTiny) c = kTiny;
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < kTiny) d = kTiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < kTiny) c = kTiny;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < kEpsilon) return h;
    }
    throw std::runtime_error("incomplete_beta continued fraction did not converge");
}

} // namespace

double log_gamma(double x) {
    if (!(x > 0.0)) throw std::invalid_argument("log_gamma needs x > 0");
    // Lanczos coefficients (g = 7, 9 terms).
    static constexpr double kCoefficients[] = {
        0.99999999999980993,  676.5203681218851,    -1259.1392167224028,
        771.32342877765313,   -176.61502916214059,  12.507343278686905,
        -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
    if (x < 0.5) {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx).
        return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
    }
    const double z = x - 1.0;
    double sum = kCoefficients[0];
    for (int i = 1; i < 9; ++i) sum += kCoefficients[i] / (z + i);
    const double t = z + 7.5;
    return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t + std::log(sum);
}

double incomplete_beta(double a, double b, double x) {
    if (!(a > 0.0) || !(b > 0.0))
        throw std::invalid_argument("incomplete_beta needs a, b > 0");
    if (!(x >= 0.0 && x <= 1.0))
        throw std::invalid_argument("incomplete_beta needs x in [0, 1]");
    if (x == 0.0) return 0.0;
    if (x == 1.0) return 1.0;
    const double log_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                             a * std::log(x) + b * std::log1p(-x);
    const double front = std::exp(log_front);
    if (x < (a + 1.0) / (a + b + 2.0))
        return front * beta_continued_fraction(a, b, x) / a;
    // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a), where the fraction converges.
    return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double dof) {
    if (!(dof > 0.0)) throw std::invalid_argument("student_t_cdf needs dof > 0");
    if (t == 0.0) return 0.5;
    const double x = dof / (dof + t * t);
    const double tail = 0.5 * incomplete_beta(0.5 * dof, 0.5, x);
    return t > 0.0 ? 1.0 - tail : tail;
}

double normal_quantile(double p) {
    if (!(p > 0.0 && p < 1.0))
        throw std::invalid_argument("normal_quantile needs p in (0, 1)");
    // Acklam's rational approximation, |relative error| < 1.15e-9.
    static constexpr double A[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                   -2.759285104469687e+02, 1.383577518672690e+02,
                                   -3.066479806614716e+01, 2.506628277459239e+00};
    static constexpr double B[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                   -1.556989798598866e+02, 6.680131188771972e+01,
                                   -1.328068155288572e+01};
    static constexpr double C[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                   -2.400758277161838e+00, -2.549732539343734e+00,
                                   4.374664141464968e+00,  2.938163982698783e+00};
    static constexpr double D[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                   2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double kLow = 0.02425;

    double z;
    if (p < kLow) {
        const double q = std::sqrt(-2.0 * std::log(p));
        z = (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5]) /
            ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0);
    } else if (p <= 1.0 - kLow) {
        const double q = p - 0.5;
        const double r = q * q;
        z = (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q /
            (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log1p(-p));
        z = -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5]) /
            ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0);
    }
    // One Halley step against the exact CDF tightens to ~1e-15.
    const double e = normal_cdf(z) - p;
    const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * z * z);
    return z - u / (1.0 + 0.5 * z * u);
}

} // namespace dre::stats
