#include "stats/bootstrap.h"

#include <algorithm>
#include <stdexcept>

#include "stats/summary.h"

namespace dre::stats {

ConfidenceInterval bootstrap_ci(std::span<const double> sample,
                                const Statistic& statistic, Rng& rng,
                                int replicates, double level) {
    if (sample.empty()) throw std::invalid_argument("bootstrap_ci: empty sample");
    if (replicates < 2) throw std::invalid_argument("bootstrap_ci: need >= 2 replicates");
    if (level <= 0.0 || level >= 1.0)
        throw std::invalid_argument("bootstrap_ci: level outside (0,1)");

    ConfidenceInterval ci;
    ci.level = level;
    ci.point = statistic(sample);

    std::vector<double> resample(sample.size());
    std::vector<double> replicate_values;
    replicate_values.reserve(static_cast<std::size_t>(replicates));
    for (int b = 0; b < replicates; ++b) {
        for (std::size_t i = 0; i < sample.size(); ++i)
            resample[i] = sample[rng.uniform_index(sample.size())];
        replicate_values.push_back(statistic(resample));
    }
    const double alpha = 1.0 - level;
    ci.lower = quantile(replicate_values, alpha / 2.0);
    ci.upper = quantile(replicate_values, 1.0 - alpha / 2.0);
    return ci;
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample, Rng& rng,
                                     int replicates, double level) {
    return bootstrap_ci(
        sample, [](std::span<const double> xs) { return mean(xs); }, rng,
        replicates, level);
}

} // namespace dre::stats
