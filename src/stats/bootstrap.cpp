#include "stats/bootstrap.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parallel.h"
#include "obs/obs.h"
#include "stats/summary.h"

namespace dre::stats {
namespace {

// Quantile by partial selection — same linear interpolation as
// stats::quantile but O(n) via nth_element instead of a full sort.
// Reorders xs. `lower_bound_rank` lets the caller promise that ranks below
// it are already in their sorted positions (from a previous call with a
// smaller q), shrinking the selection range.
double quantile_select(std::vector<double>& xs, double q,
                       std::size_t lower_bound_rank = 0) {
    const double pos = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    const auto first = xs.begin() + static_cast<std::ptrdiff_t>(lower_bound_rank);
    std::nth_element(first, xs.begin() + static_cast<std::ptrdiff_t>(lo), xs.end());
    const double value_lo = xs[lo];
    if (frac == 0.0 || lo + 1 == xs.size()) return value_lo;
    // The (lo+1)-th order statistic is the minimum of the suffix.
    const double value_hi =
        *std::min_element(xs.begin() + static_cast<std::ptrdiff_t>(lo + 1), xs.end());
    return value_lo * (1.0 - frac) + value_hi * frac;
}

} // namespace

ConfidenceInterval bootstrap_ci(std::span<const double> sample,
                                const Statistic& statistic, Rng& rng,
                                int replicates, double level) {
    if (sample.empty()) throw std::invalid_argument("bootstrap_ci: empty sample");
    if (replicates < 2) throw std::invalid_argument("bootstrap_ci: need >= 2 replicates");
    if (level <= 0.0 || level >= 1.0)
        throw std::invalid_argument("bootstrap_ci: level outside (0,1)");

    DRE_SPAN("bootstrap.ci");

    ConfidenceInterval ci;
    ci.level = level;
    ci.point = statistic(sample);

    // Advance the caller's generator once (consecutive calls stay distinct),
    // then key every replicate off its own split stream so the replicate
    // values — and hence the interval — are identical for any thread count.
    const Rng base = rng.split();
    const std::size_t n = sample.size();
    const auto b_count = static_cast<std::size_t>(replicates);
    std::vector<double> replicate_values(b_count);
    // Replicates are cheap relative to thread dispatch unless there are many
    // of them: below the grain the whole loop runs serially on the caller
    // (parallel_for_chunked's fallback), and above it each task claims a
    // batch of replicates and reuses one resample buffer across its batch.
    // Replicate b's value depends only on base.split(b), so serial and
    // parallel schedules produce identical intervals.
    constexpr std::size_t kReplicateGrain = 16;
    par::parallel_for_chunked(
        b_count,
        [&](std::size_t begin, std::size_t end) {
            std::vector<double> resample(n); // one buffer per batch, reused
#if DRE_OBS_ENABLED
            // Where replicate time goes: drawing the resample vs computing
            // the statistic. Accumulated locally, flushed once per chunk;
            // timing-derived, so diagnostics-only, but the replicate *count*
            // is a per-item sum and stays thread-count deterministic.
            std::uint64_t resample_ns = 0, statistic_ns = 0;
#endif
            for (std::size_t b = begin; b < end; ++b) {
                Rng replicate_rng = base.split(b);
#if DRE_OBS_ENABLED
                const std::uint64_t t0 = obs::now_ns();
#endif
                for (std::size_t i = 0; i < n; ++i)
                    resample[i] = sample[replicate_rng.uniform_index(n)];
#if DRE_OBS_ENABLED
                const std::uint64_t t1 = obs::now_ns();
#endif
                replicate_values[b] = statistic(resample);
#if DRE_OBS_ENABLED
                const std::uint64_t t2 = obs::now_ns();
                resample_ns += t1 - t0;
                statistic_ns += t2 - t1;
                DRE_HIST_RECORD("bootstrap.replicate_ns", t2 - t0);
#endif
            }
#if DRE_OBS_ENABLED
            DRE_COUNTER_ADD("bootstrap.replicates", end - begin);
            DRE_COUNTER_ADD("bootstrap.resample_ns", resample_ns);
            DRE_COUNTER_ADD("bootstrap.statistic_ns", statistic_ns);
#endif
        },
        /*min_grain=*/kReplicateGrain);

    const double alpha = 1.0 - level;
    // Partial selection instead of a full sort; the upper quantile's
    // selection can skip everything below the lower quantile's rank.
    ci.lower = quantile_select(replicate_values, alpha / 2.0);
    const auto lower_rank = static_cast<std::size_t>(
        (alpha / 2.0) * static_cast<double>(b_count - 1));
    ci.upper = quantile_select(replicate_values, 1.0 - alpha / 2.0, lower_rank);
    return ci;
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample, Rng& rng,
                                     int replicates, double level) {
    return bootstrap_ci(
        sample, [](std::span<const double> xs) { return mean(xs); }, rng,
        replicates, level);
}

} // namespace dre::stats
