#include "stats/bootstrap.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parallel.h"
#include "obs/obs.h"
#include "simd/simd.h"
#include "stats/summary.h"

namespace dre::stats {
namespace {

// Quantile by partial selection — same linear interpolation as
// stats::quantile but O(n) via nth_element instead of a full sort.
// Reorders xs. `lower_bound_rank` lets the caller promise that ranks below
// it are already in their sorted positions (from a previous call with a
// smaller q), shrinking the selection range.
double quantile_select(std::vector<double>& xs, double q,
                       std::size_t lower_bound_rank = 0) {
    const double pos = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    const auto first = xs.begin() + static_cast<std::ptrdiff_t>(lower_bound_rank);
    std::nth_element(first, xs.begin() + static_cast<std::ptrdiff_t>(lo), xs.end());
    const double value_lo = xs[lo];
    if (frac == 0.0 || lo + 1 == xs.size()) return value_lo;
    // The (lo+1)-th order statistic is the minimum of the suffix.
    const double value_hi =
        *std::min_element(xs.begin() + static_cast<std::ptrdiff_t>(lo + 1), xs.end());
    return value_lo * (1.0 - frac) + value_hi * frac;
}

} // namespace

ConfidenceInterval bootstrap_ci(std::span<const double> sample,
                                const Statistic& statistic, Rng& rng,
                                int replicates, double level) {
    if (sample.empty()) throw std::invalid_argument("bootstrap_ci: empty sample");
    if (replicates < 2) throw std::invalid_argument("bootstrap_ci: need >= 2 replicates");
    if (level <= 0.0 || level >= 1.0)
        throw std::invalid_argument("bootstrap_ci: level outside (0,1)");

    DRE_SPAN("bootstrap.ci");

    ConfidenceInterval ci;
    ci.level = level;
    ci.point = statistic(sample);

    // Advance the caller's generator once (consecutive calls stay distinct),
    // then key every replicate off its own split stream so the replicate
    // values — and hence the interval — are identical for any thread count.
    const Rng base = rng.split();
    const std::size_t n = sample.size();
    const auto b_count = static_cast<std::size_t>(replicates);
    std::vector<double> replicate_values(b_count);
    // Replicates are cheap relative to thread dispatch unless there are many
    // of them: below the grain the whole loop runs serially on the caller
    // (parallel_for_chunked's fallback), and above it each task claims a
    // batch of replicates and reuses one resample buffer across its batch.
    // Replicate b's value depends only on base.split(b), so serial and
    // parallel schedules produce identical intervals.
    constexpr std::size_t kReplicateGrain = 16;
    par::parallel_for_chunked(
        b_count,
        [&](std::size_t begin, std::size_t end) {
            std::vector<double> resample(n); // one buffer per batch, reused
            // Draw all indices first, then gather in one vectorized pass.
            // Same draws in the same order, same elements copied, so the
            // replicate values are bit-identical to the fused loop. The
            // 32-bit index scratch requires n < 2^31; larger samples (which
            // would also defeat the gather's int32 indices) keep the plain
            // fused loop.
            const bool narrow_idx = n < (std::size_t{1} << 31);
            std::vector<std::uint32_t> idx(narrow_idx ? n : 0);
            const simd::Ops& ops = simd::ops();
#if DRE_OBS_ENABLED
            // Where replicate time goes: drawing the resample vs computing
            // the statistic. Accumulated locally, flushed once per chunk;
            // timing-derived, so diagnostics-only, but the replicate *count*
            // is a per-item sum and stays thread-count deterministic.
            std::uint64_t resample_ns = 0, statistic_ns = 0;
#endif
            for (std::size_t b = begin; b < end; ++b) {
                Rng replicate_rng = base.split(b);
#if DRE_OBS_ENABLED
                const std::uint64_t t0 = obs::now_ns();
#endif
                if (narrow_idx) {
                    for (std::size_t i = 0; i < n; ++i)
                        idx[i] = static_cast<std::uint32_t>(
                            replicate_rng.uniform_index(n));
                    ops.gather(sample.data(), idx.data(), n, resample.data());
                } else {
                    for (std::size_t i = 0; i < n; ++i)
                        resample[i] = sample[replicate_rng.uniform_index(n)];
                }
#if DRE_OBS_ENABLED
                const std::uint64_t t1 = obs::now_ns();
#endif
                replicate_values[b] = statistic(resample);
#if DRE_OBS_ENABLED
                const std::uint64_t t2 = obs::now_ns();
                resample_ns += t1 - t0;
                statistic_ns += t2 - t1;
                DRE_HIST_RECORD("bootstrap.replicate_ns", t2 - t0);
#endif
            }
#if DRE_OBS_ENABLED
            DRE_COUNTER_ADD("bootstrap.replicates", end - begin);
            DRE_COUNTER_ADD("bootstrap.resample_ns", resample_ns);
            DRE_COUNTER_ADD("bootstrap.statistic_ns", statistic_ns);
#endif
        },
        /*min_grain=*/kReplicateGrain);

    const double alpha = 1.0 - level;
    // Partial selection instead of a full sort; the upper quantile's
    // selection can skip everything below the lower quantile's rank.
    ci.lower = quantile_select(replicate_values, alpha / 2.0);
    const auto lower_rank = static_cast<std::size_t>(
        (alpha / 2.0) * static_cast<double>(b_count - 1));
    ci.upper = quantile_select(replicate_values, 1.0 - alpha / 2.0, lower_rank);
    return ci;
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample, Rng& rng,
                                     int replicates, double level) {
    return bootstrap_ci(
        sample, [](std::span<const double> xs) { return mean(xs); }, rng,
        replicates, level);
}

ChunkedMeanBootstrap::ChunkedMeanBootstrap(Rng base, int replicates,
                                           double level)
    : base_(base), replicates_(replicates), level_(level) {
    if (replicates < 2)
        throw std::invalid_argument("ChunkedMeanBootstrap: need >= 2 replicates");
    if (level <= 0.0 || level >= 1.0)
        throw std::invalid_argument("ChunkedMeanBootstrap: level outside (0,1)");
    sums_.assign(static_cast<std::size_t>(replicates), 0.0);
}

std::vector<double> ChunkedMeanBootstrap::chunk_partials(
    std::uint64_t chunk_id, std::span<const double> values) const {
    const auto b_count = static_cast<std::size_t>(replicates_);
    std::vector<double> partials(b_count, 0.0);
    const std::size_t m = values.size();
    if (m == 0) return partials;
    // Pure child stream per (chunk, replicate): the partial depends only on
    // the base generator, the chunk id, and the chunk's values.
    const Rng chunk_base = base_.split(chunk_id);
    // Indices drawn up front, summed with the dispatch layer's canonical
    // 8-lane accumulator (element i goes to lane i mod 8, fixed reduce
    // tree) — the same value at every ISA level. Chunks arriving through
    // chunked_bootstrap_mean_ci are at most par::kReduceChunk values; the
    // fallback covers direct callers whose chunks outgrow 32-bit indices.
    if (m < (std::size_t{1} << 31)) {
        std::vector<std::uint32_t> idx(m);
        const simd::Ops& ops = simd::ops();
        for (std::size_t b = 0; b < b_count; ++b) {
            Rng replicate_rng = chunk_base.split(b);
            for (std::size_t i = 0; i < m; ++i)
                idx[i] =
                    static_cast<std::uint32_t>(replicate_rng.uniform_index(m));
            partials[b] = ops.gather_sum8(values.data(), idx.data(), m);
        }
    } else {
        for (std::size_t b = 0; b < b_count; ++b) {
            Rng replicate_rng = chunk_base.split(b);
            double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
            for (std::size_t i = 0; i < m; ++i)
                acc[i & 7] += values[replicate_rng.uniform_index(m)];
            partials[b] = ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
                          ((acc[4] + acc[5]) + (acc[6] + acc[7]));
        }
    }
#if DRE_OBS_ENABLED
    DRE_COUNTER_INC("bootstrap.chunk_partials");
    DRE_COUNTER_ADD("bootstrap.chunked_resamples", b_count * m);
#endif
    return partials;
}

void ChunkedMeanBootstrap::restore_sums(std::span<const double> sums) {
    if (sums.size() != sums_.size())
        throw std::invalid_argument(
            "ChunkedMeanBootstrap: restored sum count != replicates");
    sums_.assign(sums.begin(), sums.end());
}

void ChunkedMeanBootstrap::merge(std::span<const double> partials) {
    if (partials.size() != sums_.size())
        throw std::invalid_argument(
            "ChunkedMeanBootstrap: partial count != replicates");
    for (std::size_t b = 0; b < sums_.size(); ++b) sums_[b] += partials[b];
}

ConfidenceInterval ChunkedMeanBootstrap::finalize(std::uint64_t total_n,
                                                  double point) const {
    if (total_n == 0)
        throw std::invalid_argument("ChunkedMeanBootstrap: empty sample");
    ConfidenceInterval ci;
    ci.level = level_;
    ci.point = point;
    std::vector<double> replicate_values(sums_.size());
    for (std::size_t b = 0; b < sums_.size(); ++b)
        replicate_values[b] = sums_[b] / static_cast<double>(total_n);
    const double alpha = 1.0 - level_;
    ci.lower = quantile_select(replicate_values, alpha / 2.0);
    const auto lower_rank = static_cast<std::size_t>(
        (alpha / 2.0) * static_cast<double>(sums_.size() - 1));
    ci.upper = quantile_select(replicate_values, 1.0 - alpha / 2.0, lower_rank);
    return ci;
}

ConfidenceInterval chunked_bootstrap_mean_ci(std::span<const double> sample,
                                             double point, Rng& rng,
                                             int replicates, double level) {
    if (sample.empty())
        throw std::invalid_argument("chunked_bootstrap_mean_ci: empty sample");
    DRE_SPAN("bootstrap.chunked_ci");
    ChunkedMeanBootstrap bootstrap(rng.split(), replicates, level);
    const std::size_t chunks =
        (sample.size() + par::kReduceChunk - 1) / par::kReduceChunk;
    // Partials per chunk in parallel (each is a pure function of its chunk
    // id), merged strictly in chunk order below.
    std::vector<std::vector<double>> partials(chunks);
    par::parallel_for(chunks, [&](std::size_t c) {
        const std::size_t begin = c * par::kReduceChunk;
        const std::size_t end =
            std::min(begin + par::kReduceChunk, sample.size());
        partials[c] =
            bootstrap.chunk_partials(c, sample.subspan(begin, end - begin));
    });
    for (const std::vector<double>& p : partials) bootstrap.merge(p);
    return bootstrap.finalize(sample.size(), point);
}

} // namespace dre::stats

