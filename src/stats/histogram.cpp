#include "stats/histogram.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace dre::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
    if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
    if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
    counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
    const double t = (x - lo_) / (hi_ - lo_);
    auto bin = static_cast<long long>(t * static_cast<double>(counts_.size()));
    bin = std::clamp<long long>(bin, 0, static_cast<long long>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(bin)];
    ++total_;
}

void Histogram::add_all(std::span<const double> xs) noexcept {
    for (double x : xs) add(x);
}

std::size_t Histogram::count(std::size_t bin) const {
    if (bin >= counts_.size()) throw std::out_of_range("Histogram::count");
    return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
    if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_lo");
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                     static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const {
    return bin_lo(bin) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::density(std::size_t bin) const {
    if (total_ == 0) return 0.0;
    return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

std::string Histogram::ascii(std::size_t width) const {
    std::string out;
    const std::size_t peak = counts_.empty()
                                 ? 0
                                 : *std::max_element(counts_.begin(), counts_.end());
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        char label[64];
        std::snprintf(label, sizeof(label), "[%9.3f, %9.3f) %7zu |", bin_lo(b),
                      bin_hi(b), counts_[b]);
        out += label;
        const std::size_t bars =
            peak == 0 ? 0 : counts_[b] * width / std::max<std::size_t>(peak, 1);
        out.append(bars, '#');
        out += '\n';
    }
    return out;
}

std::size_t FrequencyTable::count(long long key) const {
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
}

double FrequencyTable::fraction(long long key) const {
    if (total_ == 0) return 0.0;
    return static_cast<double>(count(key)) / static_cast<double>(total_);
}

} // namespace dre::stats
