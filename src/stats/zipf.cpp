#include "stats/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dre::stats {

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
    if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
    if (exponent < 0.0) throw std::invalid_argument("ZipfSampler: negative exponent");
    cumulative_.resize(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
        cumulative_[i] = total;
    }
    for (double& c : cumulative_) c /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return static_cast<std::size_t>(it - cumulative_.begin());
}

double ZipfSampler::probability(std::size_t i) const {
    if (i >= cumulative_.size()) throw std::out_of_range("ZipfSampler::probability");
    return i == 0 ? cumulative_[0] : cumulative_[i] - cumulative_[i - 1];
}

} // namespace dre::stats
