// Exponentially-weighted moving statistics and sliding windows — the
// throughput-predictor building blocks networking code reaches for.
#ifndef DRE_STATS_EWMA_H
#define DRE_STATS_EWMA_H

#include <cstddef>
#include <deque>
#include <stdexcept>

namespace dre::stats {

// EWMA with smoothing alpha in (0, 1]: value <- alpha*x + (1-alpha)*value.
class Ewma {
public:
    explicit Ewma(double alpha);

    void add(double x) noexcept;
    double value() const noexcept { return value_; }
    bool empty() const noexcept { return empty_; }
    void reset() noexcept {
        empty_ = true;
        value_ = 0.0;
    }

private:
    double alpha_;
    double value_ = 0.0;
    bool empty_ = true;
};

// Fixed-capacity sliding window exposing arithmetic and harmonic means.
// The harmonic mean is the canonical throughput predictor (used by the ABR
// substrate's session simulator).
class SlidingWindow {
public:
    explicit SlidingWindow(std::size_t capacity);

    void add(double x);
    std::size_t size() const noexcept { return values_.size(); }
    bool empty() const noexcept { return values_.empty(); }

    double mean() const;          // arithmetic
    double harmonic_mean() const; // requires strictly positive samples
    double min() const;
    double max() const;

private:
    std::size_t capacity_;
    std::deque<double> values_;
};

} // namespace dre::stats

#endif // DRE_STATS_EWMA_H
