#include "stats/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/parallel.h"
#include "obs/obs.h"
#include "stats/summary.h"

namespace dre::stats {
namespace {

// Leaves below this size are scanned linearly; splitting further would cost
// more in traversal than it saves in distance computations.
constexpr std::size_t kLeafSize = 16;

// Training sets below this size answer queries by scan even under kAuto —
// the tree's traversal overhead only pays off beyond it. Pure performance
// choice: both paths return bit-identical answers.
constexpr std::size_t kAutoBruteThreshold = 128;

// Reusable per-thread query state: standardized query, bounded top-k heap.
// Thread-local so concurrent predict_batch tasks never share buffers and no
// query allocates once the vectors have grown to steady state.
struct QueryScratch {
    std::vector<double> query;
    std::vector<std::pair<double, std::uint32_t>> heap;
    std::vector<double> offsets; // per-axis cell offsets (tree search only)
};

QueryScratch& scratch() {
    thread_local QueryScratch tls_scratch;
    return tls_scratch;
}

// Offer (d2, index) to a max-heap bounded at k entries, keeping the k
// lexicographically smallest pairs (distance ties broken by index).
inline void offer(std::vector<std::pair<double, std::uint32_t>>& heap,
                  std::size_t k, double d2, std::uint32_t index) {
    const std::pair<double, std::uint32_t> candidate(d2, index);
    if (heap.size() < k) {
        heap.push_back(candidate);
        std::push_heap(heap.begin(), heap.end());
    } else if (candidate < heap.front()) {
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = candidate;
        std::push_heap(heap.begin(), heap.end());
    }
}

} // namespace

KnnRegressor::KnnRegressor(std::size_t k) : k_(k) {
    if (k == 0) throw std::invalid_argument("KnnRegressor: k must be > 0");
}

void KnnRegressor::fit(const std::vector<std::vector<double>>& rows,
                       std::span<const double> targets) {
    if (rows.empty()) throw std::invalid_argument("KnnRegressor::fit: no samples");
    if (rows.size() != targets.size())
        throw std::invalid_argument("KnnRegressor::fit: size mismatch");
    dims_ = rows.front().size();
    feature_mean_.assign(dims_, 0.0);
    feature_scale_.assign(dims_, 1.0);

    std::vector<Accumulator> accs(dims_);
    for (const auto& row : rows) {
        if (row.size() != dims_)
            throw std::invalid_argument("KnnRegressor::fit: ragged feature rows");
        for (std::size_t d = 0; d < dims_; ++d) accs[d].add(row[d]);
    }
    for (std::size_t d = 0; d < dims_; ++d) {
        feature_mean_[d] = accs[d].mean();
        const double sd = accs[d].stddev();
        feature_scale_[d] = sd > 1e-12 ? sd : 1.0;
    }

    const std::size_t n = rows.size();
    points_.resize(n * dims_);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t d = 0; d < dims_; ++d)
            points_[i * dims_ + d] =
                (rows[i][d] - feature_mean_[d]) / feature_scale_[d];
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) perm_[i] = static_cast<std::uint32_t>(i);
    targets_.assign(targets.begin(), targets.end());
    build_tree();
    fitted_ = true;
}

void KnnRegressor::build_tree() {
    node_axis_.clear();
    node_split_.clear();
    node_left_.clear();
    node_right_.clear();
    node_begin_.clear();
    node_end_.clear();

    const std::size_t n = perm_.size();
    // Standardized coordinates in original-index order; points_ is
    // re-materialized in tree order afterwards for contiguous leaf scans.
    const std::vector<double> raw = points_;

    // Recursive median split on the widest-spread axis; ties in the split
    // coordinate are ordered by original index so the partition (and hence
    // the whole tree) is deterministic.
    const auto build = [&](auto&& self, std::uint32_t begin,
                           std::uint32_t end) -> std::uint32_t {
        const auto id = static_cast<std::uint32_t>(node_axis_.size());
        node_axis_.push_back(-1);
        node_split_.push_back(0.0);
        node_left_.push_back(kNoChild);
        node_right_.push_back(kNoChild);
        node_begin_.push_back(begin);
        node_end_.push_back(end);

        if (end - begin <= kLeafSize || dims_ == 0) return id;

        std::size_t axis = 0;
        double best_extent = -1.0;
        for (std::size_t d = 0; d < dims_; ++d) {
            double lo = raw[perm_[begin] * dims_ + d], hi = lo;
            for (std::uint32_t i = begin + 1; i < end; ++i) {
                const double x = raw[perm_[i] * dims_ + d];
                lo = std::min(lo, x);
                hi = std::max(hi, x);
            }
            if (hi - lo > best_extent) {
                best_extent = hi - lo;
                axis = d;
            }
        }
        if (best_extent <= 0.0) return id; // all points identical: leaf

        const std::uint32_t mid = begin + (end - begin) / 2;
        std::nth_element(perm_.begin() + begin, perm_.begin() + mid,
                         perm_.begin() + end,
                         [&](std::uint32_t a, std::uint32_t b) {
                             const double xa = raw[a * dims_ + axis];
                             const double xb = raw[b * dims_ + axis];
                             return xa != xb ? xa < xb : a < b;
                         });
        node_axis_[id] = static_cast<std::int32_t>(axis);
        node_split_[id] = raw[perm_[mid] * dims_ + axis];
        const std::uint32_t left = self(self, begin, mid);
        node_left_[id] = left;
        const std::uint32_t right = self(self, mid, end);
        node_right_[id] = right;
        return id;
    };
    build(build, 0, static_cast<std::uint32_t>(n));

    for (std::size_t slot = 0; slot < n; ++slot)
        for (std::size_t d = 0; d < dims_; ++d)
            points_[slot * dims_ + d] = raw[perm_[slot] * dims_ + d];
}

void KnnRegressor::standardize_into(std::span<const double> features,
                                    std::vector<double>& out) const {
    out.resize(dims_);
    for (std::size_t d = 0; d < dims_; ++d)
        out[d] = (features[d] - feature_mean_[d]) / feature_scale_[d];
}

void KnnRegressor::nearest_brute(std::span<const double> query, std::size_t k,
                                 std::vector<Neighbor>& heap) const {
    heap.clear();
    const std::size_t n = perm_.size();
    for (std::size_t slot = 0; slot < n; ++slot) {
        double d2 = 0.0;
        const double* point = points_.data() + slot * dims_;
        for (std::size_t d = 0; d < dims_; ++d) {
            const double diff = point[d] - query[d];
            d2 += diff * diff;
        }
        offer(heap, k, d2, perm_[slot]);
    }
    std::sort(heap.begin(), heap.end());
}

void KnnRegressor::search_node(std::uint32_t node, std::span<const double> query,
                               std::size_t k, std::vector<Neighbor>& heap,
                               std::vector<double>& offsets, double cell_d2,
                               QueryStats& stats) const {
    const std::int32_t axis = node_axis_[node];
    if (axis < 0) {
        ++stats.leaf_scans;
        stats.leaf_points += node_end_[node] - node_begin_[node];
        for (std::uint32_t slot = node_begin_[node]; slot < node_end_[node];
             ++slot) {
            double d2 = 0.0;
            const double* point = points_.data() + slot * dims_;
            // Strict partial-distance exit: once the running sum exceeds the
            // current worst, the full distance is strictly worse too, so the
            // candidate pair (d2, index) could never enter the heap. Ties
            // (partial == worst) must keep accumulating — the final distance
            // may equal the worst with a smaller index, which wins.
            const double worst = heap.size() < k
                                     ? std::numeric_limits<double>::infinity()
                                     : heap.front().first;
            std::size_t d = 0;
            for (; d < dims_; ++d) {
                const double diff = point[d] - query[d];
                d2 += diff * diff;
                if (d2 > worst) break;
            }
            if (d == dims_) offer(heap, k, d2, perm_[slot]);
        }
        return;
    }
    const std::size_t a = static_cast<std::size_t>(axis);
    const double diff = query[a] - node_split_[node];
    const std::uint32_t near = diff < 0.0 ? node_left_[node] : node_right_[node];
    const std::uint32_t far = diff < 0.0 ? node_right_[node] : node_left_[node];
    // The near child shares this node's cell bound.
    search_node(near, query, k, heap, offsets, cell_d2, stats);
    // Far-side lower bound (Arya–Mount incremental distance): replace this
    // axis's contribution to the cell distance with the offset to the
    // splitting hyperplane. Every far-side point is at least `far_d2` away.
    // On exact ties (far_d2 == worst d2) the far side may hold an
    // equal-distance point with a smaller index, which outranks the current
    // worst under the (distance, index) order — so the bound must be
    // non-strict for exact brute-force equivalence.
    const double old_offset = offsets[a];
    const double far_d2 = cell_d2 - old_offset * old_offset + diff * diff;
    if (heap.size() < k || far_d2 <= heap.front().first) {
        offsets[a] = diff;
        search_node(far, query, k, heap, offsets, far_d2, stats);
        offsets[a] = old_offset;
    } else {
        ++stats.nodes_pruned;
    }
}

void KnnRegressor::nearest_kdtree(std::span<const double> query, std::size_t k,
                                  std::vector<Neighbor>& heap,
                                  std::vector<double>& offsets,
                                  QueryStats& stats) const {
    heap.clear();
    offsets.assign(dims_, 0.0);
    search_node(0, query, k, heap, offsets, 0.0, stats);
    std::sort(heap.begin(), heap.end());
}

double KnnRegressor::reduce_neighbors(const std::vector<Neighbor>& neighbors) const {
    // Accumulate in ascending (distance^2, index) order — the canonical
    // order shared by both query paths, so results never depend on which
    // algorithm answered.
    if (!weighted_) {
        double sum = 0.0;
        for (const Neighbor& nb : neighbors) sum += targets_[nb.second];
        return sum / static_cast<double>(neighbors.size());
    }
    double weighted_sum = 0.0, total_weight = 0.0;
    for (const Neighbor& nb : neighbors) {
        const double w = 1.0 / (std::sqrt(nb.first) + 1e-9);
        weighted_sum += w * targets_[nb.second];
        total_weight += w;
    }
    return weighted_sum / total_weight;
}

std::vector<double> KnnRegressor::predict_batch(
    const std::vector<std::vector<double>>& queries) const {
    if (!fitted_) throw std::logic_error("KnnRegressor::predict_batch before fit");
    std::vector<double> out(queries.size());
    // Queries are individually cheap post-KD-tree; a modest grain keeps
    // dispatch overhead low while still load-balancing across threads.
    par::parallel_for_chunked(
        queries.size(),
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) out[i] = predict(queries[i]);
        },
        /*min_grain=*/64);
    return out;
}

double KnnRegressor::predict(std::span<const double> features) const {
    if (!fitted_) throw std::logic_error("KnnRegressor::predict before fit");
    if (features.size() != dims_)
        throw std::invalid_argument("KnnRegressor::predict: feature size mismatch");
    QueryScratch& s = scratch();
    standardize_into(features, s.query);

    const std::size_t k = std::min(k_, targets_.size());
    const bool brute = algorithm_ == Algorithm::kBruteForce ||
                       (algorithm_ == Algorithm::kAuto &&
                        targets_.size() < kAutoBruteThreshold) ||
                       dims_ == 0;
    QueryStats stats;
    if (brute) {
        nearest_brute(s.query, k, s.heap);
    } else {
        nearest_kdtree(s.query, k, s.heap, s.offsets, stats);
    }
#if DRE_OBS_ENABLED
    // One flush per query, not per node/point: the per-query sums are pure
    // functions of (tree, query), so the totals match for any thread count
    // — they are safe to include in the determinism fingerprint.
    DRE_COUNTER_INC("knn.queries");
    if (brute) {
        DRE_COUNTER_INC("knn.brute_force_queries");
    } else {
        DRE_COUNTER_ADD("knn.leaf_scans", stats.leaf_scans);
        DRE_COUNTER_ADD("knn.leaf_points_scanned", stats.leaf_points);
        DRE_COUNTER_ADD("knn.nodes_pruned", stats.nodes_pruned);
    }
#endif
    return reduce_neighbors(s.heap);
}

} // namespace dre::stats
