#include "stats/knn.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parallel.h"
#include "stats/summary.h"

namespace dre::stats {

KnnRegressor::KnnRegressor(std::size_t k) : k_(k) {
    if (k == 0) throw std::invalid_argument("KnnRegressor: k must be > 0");
}

void KnnRegressor::fit(const std::vector<std::vector<double>>& rows,
                       std::span<const double> targets) {
    if (rows.empty()) throw std::invalid_argument("KnnRegressor::fit: no samples");
    if (rows.size() != targets.size())
        throw std::invalid_argument("KnnRegressor::fit: size mismatch");
    dims_ = rows.front().size();
    feature_mean_.assign(dims_, 0.0);
    feature_scale_.assign(dims_, 1.0);

    std::vector<Accumulator> accs(dims_);
    for (const auto& row : rows) {
        if (row.size() != dims_)
            throw std::invalid_argument("KnnRegressor::fit: ragged feature rows");
        for (std::size_t d = 0; d < dims_; ++d) accs[d].add(row[d]);
    }
    for (std::size_t d = 0; d < dims_; ++d) {
        feature_mean_[d] = accs[d].mean();
        const double sd = accs[d].stddev();
        feature_scale_[d] = sd > 1e-12 ? sd : 1.0;
    }

    points_.clear();
    points_.reserve(rows.size());
    for (const auto& row : rows) points_.push_back(standardize(row));
    targets_.assign(targets.begin(), targets.end());
    fitted_ = true;
}

std::vector<double> KnnRegressor::standardize(std::span<const double> features) const {
    std::vector<double> out(dims_);
    for (std::size_t d = 0; d < dims_; ++d)
        out[d] = (features[d] - feature_mean_[d]) / feature_scale_[d];
    return out;
}

std::vector<double> KnnRegressor::predict_batch(
    const std::vector<std::vector<double>>& queries) const {
    if (!fitted_) throw std::logic_error("KnnRegressor::predict_batch before fit");
    std::vector<double> out(queries.size());
    par::parallel_for_chunked(queries.size(),
                              [&](std::size_t begin, std::size_t end) {
                                  for (std::size_t i = begin; i < end; ++i)
                                      out[i] = predict(queries[i]);
                              });
    return out;
}

double KnnRegressor::predict(std::span<const double> features) const {
    if (!fitted_) throw std::logic_error("KnnRegressor::predict before fit");
    if (features.size() != dims_)
        throw std::invalid_argument("KnnRegressor::predict: feature size mismatch");
    const std::vector<double> query = standardize(features);

    const std::size_t k = std::min(k_, points_.size());
    // (distance^2, index) pairs; partial sort for the k nearest.
    std::vector<std::pair<double, std::size_t>> dist(points_.size());
    for (std::size_t i = 0; i < points_.size(); ++i) {
        double d2 = 0.0;
        for (std::size_t d = 0; d < dims_; ++d) {
            const double diff = points_[i][d] - query[d];
            d2 += diff * diff;
        }
        dist[i] = {d2, i};
    }
    std::nth_element(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     dist.end());

    if (!weighted_) {
        double sum = 0.0;
        for (std::size_t i = 0; i < k; ++i) sum += targets_[dist[i].second];
        return sum / static_cast<double>(k);
    }
    double weighted_sum = 0.0, total_weight = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
        const double w = 1.0 / (std::sqrt(dist[i].first) + 1e-9);
        weighted_sum += w * targets_[dist[i].second];
        total_weight += w;
    }
    return weighted_sum / total_weight;
}

} // namespace dre::stats
