#include "stats/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/parallel.h"
#include "obs/obs.h"
#include "simd/simd.h"
#include "stats/summary.h"

namespace dre::stats {
namespace {

// Leaves below this size are scanned linearly; splitting further would cost
// more in traversal than it saves in distance computations. Sized at
// sixteen 8-wide SIMD blocks: vectorized leaf scans made distance tests
// cheap enough that bigger leaves (less traversal) now win — measured on
// both the 50k-point knn bench and the small per-decision trees in the
// q̂ fill.
constexpr std::size_t kLeafSize = 128;

// Slots per kernel call in scan_slots' bulk loop. Bounds the stack-held
// candidate buffers and re-tightens `worst` between chunks, whatever the
// scanned range's length.
constexpr std::uint32_t kScanChunkSlots = 128;

// Training sets below this size answer queries by scan even under kAuto —
// the tree's traversal overhead only pays off beyond it. Pure performance
// choice: both paths return bit-identical answers.
constexpr std::size_t kAutoBruteThreshold = 128;

// Under kAuto, training sets up to this size skip the KD-tree and answer
// queries with one blocked kernel scan over all points (scan_slots over the
// whole array). In moderate dimension the tree prunes little on small point
// sets — the query visits most leaves anyway — while the linear scan keeps
// all distance work inside the dispatched kernel, whose strided
// partial-distance abort does the pruning instead. Bit-identical to the
// tree path by the same argument as any scan: aborts and the `worst`
// threshold only skip points that could never enter the heap.
constexpr std::size_t kAutoScanThreshold = 1024;

// Reusable per-thread query state: standardized query, bounded top-k list
// (named `heap` historically; offer() now keeps it sorted ascending).
// Thread-local so concurrent predict_batch tasks never share buffers and no
// query allocates once the vectors have grown to steady state.
struct QueryScratch {
    std::vector<double> query;
    std::vector<std::pair<double, std::uint32_t>> heap;
    std::vector<double> offsets; // per-axis cell offsets (tree search only)
};

QueryScratch& scratch() {
    thread_local QueryScratch tls_scratch;
    return tls_scratch;
}

// Offer (d2, index) to `kept`, a bounded top-k list held sorted ascending
// on the lexicographic (distance, index) order — kept.back() is the worst
// retained pair. For the small k typical of k-NN regression, insertion
// into a sorted array beats a binary heap: an accept is a couple of
// compares plus a short element shift instead of pop_heap + push_heap,
// and the list needs no final sort before target accumulation.
inline void offer(std::vector<std::pair<double, std::uint32_t>>& kept,
                  std::size_t k, double d2, std::uint32_t index) {
    const std::pair<double, std::uint32_t> candidate(d2, index);
    if (kept.size() == k) {
        if (!(candidate < kept.back())) return;
    } else {
        kept.emplace_back();
    }
    // Shift-insert from the tail; when the list was full, the old worst at
    // the back is overwritten by the first shift (or by the candidate).
    std::size_t i = kept.size() - 1;
    for (; i > 0 && candidate < kept[i - 1]; --i) kept[i] = kept[i - 1];
    kept[i] = candidate;
}

} // namespace

KnnRegressor::KnnRegressor(std::size_t k) : k_(k) {
    if (k == 0) throw std::invalid_argument("KnnRegressor: k must be > 0");
}

void KnnRegressor::fit(const std::vector<std::vector<double>>& rows,
                       std::span<const double> targets) {
    if (rows.empty()) throw std::invalid_argument("KnnRegressor::fit: no samples");
    if (rows.size() != targets.size())
        throw std::invalid_argument("KnnRegressor::fit: size mismatch");
    dims_ = rows.front().size();
    feature_mean_.assign(dims_, 0.0);
    feature_scale_.assign(dims_, 1.0);

    std::vector<Accumulator> accs(dims_);
    for (const auto& row : rows) {
        if (row.size() != dims_)
            throw std::invalid_argument("KnnRegressor::fit: ragged feature rows");
        for (std::size_t d = 0; d < dims_; ++d) accs[d].add(row[d]);
    }
    for (std::size_t d = 0; d < dims_; ++d) {
        feature_mean_[d] = accs[d].mean();
        const double sd = accs[d].stddev();
        feature_scale_[d] = sd > 1e-12 ? sd : 1.0;
    }

    const std::size_t n = rows.size();
    points_.resize(n * dims_);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t d = 0; d < dims_; ++d)
            points_[i * dims_ + d] =
                (rows[i][d] - feature_mean_[d]) / feature_scale_[d];
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) perm_[i] = static_cast<std::uint32_t>(i);
    targets_.assign(targets.begin(), targets.end());
    build_tree();
    fitted_ = true;
}

void KnnRegressor::build_tree() {
    node_axis_.clear();
    node_split_.clear();
    node_left_.clear();
    node_right_.clear();
    node_begin_.clear();
    node_end_.clear();

    const std::size_t n = perm_.size();
    // Small point sets stay one leaf: queries scan them linearly anyway
    // (kAutoScanThreshold), so splitting would only shuffle perm_ — and an
    // identity perm_ lets scan_slots drop exact-distance ties in-kernel
    // (see the strict-threshold nudge there). Pure tree-shape choice:
    // results are a function of (point set, query) alone.
    const bool single_leaf = n <= kAutoScanThreshold;
    perm_identity_ = single_leaf;
    // Standardized coordinates in original-index order; points_ is
    // re-materialized in tree order afterwards for contiguous leaf scans.
    const std::vector<double> raw = points_;

    // Recursive median split on the widest-spread axis; ties in the split
    // coordinate are ordered by original index so the partition (and hence
    // the whole tree) is deterministic.
    const auto build = [&](auto&& self, std::uint32_t begin,
                           std::uint32_t end) -> std::uint32_t {
        const auto id = static_cast<std::uint32_t>(node_axis_.size());
        node_axis_.push_back(-1);
        node_split_.push_back(0.0);
        node_left_.push_back(kNoChild);
        node_right_.push_back(kNoChild);
        node_begin_.push_back(begin);
        node_end_.push_back(end);

        if (single_leaf || end - begin <= kLeafSize || dims_ == 0) return id;

        std::size_t axis = 0;
        double best_extent = -1.0;
        for (std::size_t d = 0; d < dims_; ++d) {
            double lo = raw[perm_[begin] * dims_ + d], hi = lo;
            for (std::uint32_t i = begin + 1; i < end; ++i) {
                const double x = raw[perm_[i] * dims_ + d];
                lo = std::min(lo, x);
                hi = std::max(hi, x);
            }
            if (hi - lo > best_extent) {
                best_extent = hi - lo;
                axis = d;
            }
        }
        if (best_extent <= 0.0) return id; // all points identical: leaf

        // Median split rounded DOWN to a multiple of 8 so every node's
        // begin stays 8-aligned (root starts at 0) and leaf ranges open on
        // SIMD block boundaries. Rounding moves at most 7 points across
        // the split — a pure tree-shape choice: the k nearest neighbours
        // are a function of (point set, query) alone, so results are
        // unchanged. size > kLeafSize >= 16 guarantees mid > begin.
        const std::uint32_t mid = begin + (((end - begin) / 2) & ~7u);
        std::nth_element(perm_.begin() + begin, perm_.begin() + mid,
                         perm_.begin() + end,
                         [&](std::uint32_t a, std::uint32_t b) {
                             const double xa = raw[a * dims_ + axis];
                             const double xb = raw[b * dims_ + axis];
                             return xa != xb ? xa < xb : a < b;
                         });
        node_axis_[id] = static_cast<std::int32_t>(axis);
        node_split_[id] = raw[perm_[mid] * dims_ + axis];
        const std::uint32_t left = self(self, begin, mid);
        node_left_[id] = left;
        const std::uint32_t right = self(self, mid, end);
        node_right_[id] = right;
        return id;
    };
    build(build, 0, static_cast<std::uint32_t>(n));

    for (std::size_t slot = 0; slot < n; ++slot)
        for (std::size_t d = 0; d < dims_; ++d)
            points_[slot * dims_ + d] = raw[perm_[slot] * dims_ + d];

    // Dimension-major 8-wide blocks over the tree-ordered points for the
    // SIMD leaf scan (layout documented in knn.h). The last block is padded
    // with NaN coordinates: a NaN lane accumulates a NaN distance, and the
    // kernel's ordered compares never report a NaN lane as a candidate (nor
    // as "exceeds worst", so padding never triggers an abort) — padded
    // lanes are simply invisible, and every real slot goes through the
    // kernel with no scalar tail.
    const std::size_t num_blocks = (n + 7) / 8;
    blocks_.assign(num_blocks * dims_ * 8,
                   std::numeric_limits<double>::quiet_NaN());
    blocked_slots_ = static_cast<std::uint32_t>(num_blocks * 8);
    for (std::size_t slot = 0; slot < n; ++slot)
        for (std::size_t d = 0; d < dims_; ++d)
            blocks_[((slot / 8) * dims_ + d) * 8 + (slot % 8)] =
                points_[slot * dims_ + d];
}

void KnnRegressor::standardize_into(std::span<const double> features,
                                    std::vector<double>& out) const {
    out.resize(dims_);
    for (std::size_t d = 0; d < dims_; ++d)
        out[d] = (features[d] - feature_mean_[d]) / feature_scale_[d];
}

void KnnRegressor::nearest_brute(std::span<const double> query, std::size_t k,
                                 std::vector<Neighbor>& heap) const {
    heap.clear();
    const std::size_t n = perm_.size();
    for (std::size_t slot = 0; slot < n; ++slot) {
        double d2 = 0.0;
        const double* point = points_.data() + slot * dims_;
        for (std::size_t d = 0; d < dims_; ++d) {
            const double diff = point[d] - query[d];
            d2 += diff * diff;
        }
        offer(heap, k, d2, perm_[slot]);
    }
    // offer() keeps the list sorted ascending — nothing left to order.
}

void KnnRegressor::scan_slots(std::uint32_t begin, std::uint32_t end,
                              std::span<const double> query, std::size_t k,
                              std::vector<Neighbor>& heap) const {
    const simd::Ops& ops = simd::ops();
    std::uint32_t slot = begin;
    // Tree splits keep slot ranges 8-aligned (a ragged `end` only ever
    // closes the whole array, whose final block is NaN-padded — padded
    // lanes can never become candidates), so every point is scanned
    // through the dispatched kernel. The kernel runs the strided
    // partial-distance exit against the worst kept distance at scan entry
    // — no abort can drop a would-be candidate, so this is exactly
    // equivalent to the per-point scan. It returns the candidates
    // (d² <= worst) in slot order; only those reach offer(), which
    // re-checks the lexicographic (distance, index) tie-break against the
    // heap as it tightens — a point with d² > worst at scan entry could
    // never enter the heap, so skipping it is exact.
    const std::uint32_t blocked_stop =
        std::min((end + 7) & ~std::uint32_t{7}, blocked_slots_);
    double cand_d2[kScanChunkSlots];
    std::uint32_t cand_idx[kScanChunkSlots];
    // Cold-heap warm-start: an unfilled heap accepts every point, so a
    // bulk scan against worst=+inf would return the whole chunk as
    // candidates and flood offer(). Feed single blocks until the heap
    // holds k entries; every scan after that runs against a real worst.
    while (slot < blocked_stop && heap.size() < k) {
        const double worst = heap.size() < k
                                 ? std::numeric_limits<double>::infinity()
                                 : heap.back().first;
        const std::size_t found =
            ops.l2sq_scan(blocks_.data() + (slot / 8) * dims_ * 8, 1, dims_,
                          query.data(), worst, cand_d2, cand_idx);
        for (std::size_t i = 0; i < found; ++i)
            offer(heap, k, cand_d2[i], perm_[slot + cand_idx[i]]);
        slot += 8;
    }
    // Bulk scan in bounded chunks: `worst` re-tightens between chunks and
    // the candidate buffers stay stack-sized however long the range is.
    // Chunk sizes ramp geometrically — right after the warm-start the
    // threshold is still loose (it only reflects the first k points), so
    // small early chunks tighten it cheaply before the big ones run,
    // keeping the candidate flood reaching offer() short.
    std::uint32_t ramp_slots = 16;
    while (slot < blocked_stop) {
        const std::uint32_t chunk = std::min(blocked_stop - slot, ramp_slots);
        ramp_slots = std::min(ramp_slots * 2, kScanChunkSlots);
        double worst = heap.size() < k
                           ? std::numeric_limits<double>::infinity()
                           : heap.back().first;
        // Identity-permutation scans visit points in increasing original-
        // index order, so every not-yet-scanned point that exactly TIES the
        // current worst distance loses the (distance, index) tie-break to
        // whatever already sits in the full heap. Nudging the kernel
        // threshold one ulp down drops those tied candidates in-kernel —
        // one-hot feature spaces produce large exact-tie classes that would
        // otherwise be rejected one offer() at a time. Exact: only points
        // that could never enter the heap are dropped.
        if (perm_identity_ && heap.size() == k)
            worst = std::nextafter(
                worst, -std::numeric_limits<double>::infinity());
        const std::size_t found = ops.l2sq_scan(
            blocks_.data() + (slot / 8) * dims_ * 8, chunk / 8, dims_,
            query.data(), worst, cand_d2, cand_idx);
        for (std::size_t i = 0; i < found; ++i)
            offer(heap, k, cand_d2[i], perm_[slot + cand_idx[i]]);
        slot += chunk;
    }
}

void KnnRegressor::search_node(std::uint32_t node, std::span<const double> query,
                               std::size_t k, std::vector<Neighbor>& heap,
                               std::vector<double>& offsets, double cell_d2,
                               QueryStats& stats) const {
    const std::int32_t axis = node_axis_[node];
    if (axis < 0) {
        ++stats.leaf_scans;
        stats.leaf_points += node_end_[node] - node_begin_[node];
        scan_slots(node_begin_[node], node_end_[node], query, k, heap);
        return;
    }
    const std::size_t a = static_cast<std::size_t>(axis);
    const double diff = query[a] - node_split_[node];
    const std::uint32_t near = diff < 0.0 ? node_left_[node] : node_right_[node];
    const std::uint32_t far = diff < 0.0 ? node_right_[node] : node_left_[node];
    // The near child shares this node's cell bound.
    search_node(near, query, k, heap, offsets, cell_d2, stats);
    // Far-side lower bound (Arya–Mount incremental distance): replace this
    // axis's contribution to the cell distance with the offset to the
    // splitting hyperplane. Every far-side point is at least `far_d2` away.
    // On exact ties (far_d2 == worst d2) the far side may hold an
    // equal-distance point with a smaller index, which outranks the current
    // worst under the (distance, index) order — so the bound must be
    // non-strict for exact brute-force equivalence.
    const double old_offset = offsets[a];
    const double far_d2 = cell_d2 - old_offset * old_offset + diff * diff;
    if (heap.size() < k || far_d2 <= heap.back().first) {
        offsets[a] = diff;
        search_node(far, query, k, heap, offsets, far_d2, stats);
        offsets[a] = old_offset;
    } else {
        ++stats.nodes_pruned;
    }
}

void KnnRegressor::nearest_kdtree(std::span<const double> query, std::size_t k,
                                  std::vector<Neighbor>& heap,
                                  std::vector<double>& offsets,
                                  QueryStats& stats) const {
    heap.clear();
    offsets.assign(dims_, 0.0);
    search_node(0, query, k, heap, offsets, 0.0, stats);
    // offer() keeps the list sorted ascending — nothing left to order.
}

double KnnRegressor::reduce_neighbors(const std::vector<Neighbor>& neighbors) const {
    // Accumulate in ascending (distance^2, index) order — the canonical
    // order shared by both query paths, so results never depend on which
    // algorithm answered.
    if (!weighted_) {
        double sum = 0.0;
        for (const Neighbor& nb : neighbors) sum += targets_[nb.second];
        return sum / static_cast<double>(neighbors.size());
    }
    double weighted_sum = 0.0, total_weight = 0.0;
    for (const Neighbor& nb : neighbors) {
        const double w = 1.0 / (std::sqrt(nb.first) + 1e-9);
        weighted_sum += w * targets_[nb.second];
        total_weight += w;
    }
    return weighted_sum / total_weight;
}

std::vector<double> KnnRegressor::predict_batch(
    const std::vector<std::vector<double>>& queries) const {
    if (!fitted_) throw std::logic_error("KnnRegressor::predict_batch before fit");
    std::vector<double> out(queries.size());
    // Queries are individually cheap post-KD-tree; a modest grain keeps
    // dispatch overhead low while still load-balancing across threads.
    par::parallel_for_chunked(
        queries.size(),
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) out[i] = predict(queries[i]);
        },
        /*min_grain=*/64);
    return out;
}

double KnnRegressor::predict(std::span<const double> features) const {
    if (!fitted_) throw std::logic_error("KnnRegressor::predict before fit");
    if (features.size() != dims_)
        throw std::invalid_argument("KnnRegressor::predict: feature size mismatch");
    QueryScratch& s = scratch();
    standardize_into(features, s.query);

    const std::size_t k = std::min(k_, targets_.size());
    const bool brute = algorithm_ == Algorithm::kBruteForce ||
                       (algorithm_ == Algorithm::kAuto &&
                        targets_.size() < kAutoBruteThreshold) ||
                       dims_ == 0;
    QueryStats stats;
    if (brute) {
        nearest_brute(s.query, k, s.heap);
    } else if (algorithm_ == Algorithm::kAuto &&
               targets_.size() <= kAutoScanThreshold) {
        // Small tree: one blocked scan of the whole point set (counted as
        // a single full-size leaf scan in the traversal stats).
        s.heap.clear();
        scan_slots(0, static_cast<std::uint32_t>(perm_.size()), s.query, k,
                   s.heap);
        stats.leaf_scans = 1;
        stats.leaf_points = perm_.size();
    } else {
        nearest_kdtree(s.query, k, s.heap, s.offsets, stats);
    }
#if DRE_OBS_ENABLED
    // One flush per query, not per node/point: the per-query sums are pure
    // functions of (tree, query), so the totals match for any thread count
    // — they are safe to include in the determinism fingerprint.
    DRE_COUNTER_INC("knn.queries");
    if (brute) {
        DRE_COUNTER_INC("knn.brute_force_queries");
    } else {
        DRE_COUNTER_ADD("knn.leaf_scans", stats.leaf_scans);
        DRE_COUNTER_ADD("knn.leaf_points_scanned", stats.leaf_points);
        DRE_COUNTER_ADD("knn.nodes_pruned", stats.nodes_pruned);
    }
#endif
    return reduce_neighbors(s.heap);
}

} // namespace dre::stats
