// Fixed-width histogram and categorical frequency table.
#ifndef DRE_STATS_HISTOGRAM_H
#define DRE_STATS_HISTOGRAM_H

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace dre::stats {

// Equal-width histogram over [lo, hi); out-of-range samples clamp to the
// edge bins so nothing is silently dropped.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x) noexcept;
    void add_all(std::span<const double> xs) noexcept;

    std::size_t bins() const noexcept { return counts_.size(); }
    std::size_t count(std::size_t bin) const;
    std::size_t total() const noexcept { return total_; }
    double bin_lo(std::size_t bin) const;
    double bin_hi(std::size_t bin) const;
    // Fraction of mass in bin (0 when empty).
    double density(std::size_t bin) const;

    // Render as fixed-width ASCII rows, for bench output.
    std::string ascii(std::size_t width = 40) const;

private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

// Frequency table over small integer categories.
class FrequencyTable {
public:
    void add(long long key) noexcept { ++counts_[key]; ++total_; }
    std::size_t count(long long key) const;
    double fraction(long long key) const;
    std::size_t total() const noexcept { return total_; }
    const std::map<long long, std::size_t>& counts() const noexcept { return counts_; }

private:
    std::map<long long, std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace dre::stats

#endif // DRE_STATS_HISTOGRAM_H
