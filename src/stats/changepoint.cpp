#include "stats/changepoint.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/summary.h"

namespace dre::stats {
namespace {

// Prefix sums enabling O(1) L2 segment cost.
struct Prefix {
    std::vector<double> sum;
    std::vector<double> sum_sq;

    explicit Prefix(std::span<const double> xs)
        : sum(xs.size() + 1, 0.0), sum_sq(xs.size() + 1, 0.0) {
        for (std::size_t i = 0; i < xs.size(); ++i) {
            sum[i + 1] = sum[i] + xs[i];
            sum_sq[i + 1] = sum_sq[i] + xs[i] * xs[i];
        }
    }

    // Cost of segment [a, b): residual sum of squares around its mean.
    double cost(std::size_t a, std::size_t b) const {
        const auto len = static_cast<double>(b - a);
        const double s = sum[b] - sum[a];
        const double ss = sum_sq[b] - sum_sq[a];
        return ss - s * s / len;
    }

    double segment_mean(std::size_t a, std::size_t b) const {
        return (sum[b] - sum[a]) / static_cast<double>(b - a);
    }
};

} // namespace

ChangepointResult pelt(std::span<const double> series, double penalty,
                       std::size_t min_segment_length) {
    const std::size_t n = series.size();
    if (min_segment_length == 0)
        throw std::invalid_argument("pelt: min_segment_length must be > 0");
    ChangepointResult result;
    if (n < 2 * min_segment_length) {
        if (n > 0) result.segment_means.push_back(mean(series));
        return result;
    }
    if (penalty <= 0.0) {
        const double var = variance(series);
        penalty = 2.0 * std::max(var, 1e-12) * std::log(static_cast<double>(n));
    }

    const Prefix prefix(series);
    constexpr double kInf = std::numeric_limits<double>::infinity();

    // f[t] = optimal cost of segmenting [0, t).
    std::vector<double> f(n + 1, kInf);
    std::vector<std::size_t> previous(n + 1, 0);
    f[0] = -penalty;

    std::vector<std::size_t> candidates{0};
    for (std::size_t t = min_segment_length; t <= n; ++t) {
        double best = kInf;
        std::size_t best_tau = 0;
        for (std::size_t tau : candidates) {
            if (t - tau < min_segment_length) continue;
            const double candidate_cost = f[tau] + prefix.cost(tau, t) + penalty;
            if (candidate_cost < best) {
                best = candidate_cost;
                best_tau = tau;
            }
        }
        f[t] = best;
        previous[t] = best_tau;

        // PELT pruning: discard tau that can never be optimal again.
        std::vector<std::size_t> kept;
        kept.reserve(candidates.size() + 1);
        for (std::size_t tau : candidates) {
            if (t - tau < min_segment_length ||
                f[tau] + prefix.cost(tau, t) <= f[t]) {
                kept.push_back(tau);
            }
        }
        kept.push_back(t + 1 - min_segment_length < t ? t - min_segment_length + 1
                                                      : t);
        // Keep the candidate list sorted & unique; the appended index becomes
        // a valid start once t grows.
        std::sort(kept.begin(), kept.end());
        kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
        candidates = std::move(kept);
    }

    // Backtrack the optimal segmentation.
    std::vector<std::size_t> boundaries;
    for (std::size_t t = n; t > 0; t = previous[t]) {
        boundaries.push_back(t);
        if (previous[t] == 0) break;
    }
    std::sort(boundaries.begin(), boundaries.end());

    std::size_t start = 0;
    for (std::size_t boundary : boundaries) {
        result.segment_means.push_back(prefix.segment_mean(start, boundary));
        if (boundary != n) result.changepoints.push_back(boundary);
        start = boundary;
    }
    result.total_cost = f[n];
    return result;
}

std::size_t cusum_alarm(std::span<const double> series, double reference_mean,
                        double reference_stddev, double drift, double threshold) {
    if (reference_stddev <= 0.0)
        throw std::invalid_argument("cusum_alarm: reference_stddev must be > 0");
    double positive = 0.0, negative = 0.0;
    for (std::size_t i = 0; i < series.size(); ++i) {
        const double z = (series[i] - reference_mean) / reference_stddev;
        positive = std::max(0.0, positive + z - drift);
        negative = std::max(0.0, negative - z - drift);
        if (positive > threshold || negative > threshold) return i;
    }
    return series.size();
}

} // namespace dre::stats
