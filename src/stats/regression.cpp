#include "stats/regression.h"

#include <cmath>
#include <stdexcept>

#include "simd/simd.h"
#include "stats/matrix.h"

namespace dre::stats {
namespace {

Matrix design_matrix(const std::vector<std::vector<double>>& rows) {
    if (rows.empty()) throw std::invalid_argument("regression: no samples");
    const std::size_t d = rows.front().size();
    Matrix x(rows.size(), d + 1); // final column = 1 (intercept)
    for (std::size_t r = 0; r < rows.size(); ++r) {
        if (rows[r].size() != d)
            throw std::invalid_argument("regression: ragged feature rows");
        for (std::size_t c = 0; c < d; ++c) x(r, c) = rows[r][c];
        x(r, d) = 1.0;
    }
    return x;
}

} // namespace

void LinearRegression::fit(const std::vector<std::vector<double>>& rows,
                           std::span<const double> targets, double l2) {
    if (rows.size() != targets.size())
        throw std::invalid_argument("LinearRegression::fit: size mismatch");
    if (l2 < 0.0) throw std::invalid_argument("LinearRegression::fit: negative l2");
    const Matrix x = design_matrix(rows);
    const std::size_t d = x.cols() - 1;
    Matrix gram = x.gram();
    // Regularize the weight block only; add a tiny jitter on the intercept to
    // keep the system SPD even with degenerate inputs.
    for (std::size_t i = 0; i < d; ++i) gram(i, i) += std::max(l2, 1e-12);
    gram(d, d) += 1e-12;
    const std::vector<double> rhs = x.transpose_multiply(targets);
    std::vector<double> solution = solve_spd(gram, rhs);
    intercept_ = solution.back();
    solution.pop_back();
    weights_ = std::move(solution);
    fitted_ = true;
}

double LinearRegression::predict(std::span<const double> features) const {
    if (!fitted_) throw std::logic_error("LinearRegression::predict before fit");
    if (features.size() != weights_.size())
        throw std::invalid_argument("LinearRegression::predict: feature size mismatch");
    // Canonical 8-lane dot product from the dispatch layer: identical value
    // at every ISA level (see src/simd/simd.h).
    return intercept_ +
           simd::ops().dot8(weights_.data(), features.data(), weights_.size());
}

double sigmoid(double z) noexcept {
    if (z >= 0.0) {
        const double e = std::exp(-z);
        return 1.0 / (1.0 + e);
    }
    const double e = std::exp(z);
    return e / (1.0 + e);
}

void LogisticRegression::fit(const std::vector<std::vector<double>>& rows,
                             std::span<const int> labels, const Options& options) {
    if (rows.size() != labels.size())
        throw std::invalid_argument("LogisticRegression::fit: size mismatch");
    const Matrix x = design_matrix(rows);
    const std::size_t n = x.rows();
    const std::size_t p = x.cols(); // includes intercept column
    std::vector<double> beta(p, 0.0);

    for (int iter = 0; iter < options.max_iterations; ++iter) {
        // Gradient and Hessian of the penalized log-likelihood.
        std::vector<double> gradient(p, 0.0);
        Matrix hessian(p, p);
        for (std::size_t r = 0; r < n; ++r) {
            double z = 0.0;
            for (std::size_t c = 0; c < p; ++c) z += x(r, c) * beta[c];
            const double mu = sigmoid(z);
            const double y = labels[r] != 0 ? 1.0 : 0.0;
            const double residual = y - mu;
            const double w = std::max(mu * (1.0 - mu), 1e-9);
            for (std::size_t c = 0; c < p; ++c) {
                gradient[c] += x(r, c) * residual;
                for (std::size_t c2 = 0; c2 < p; ++c2)
                    hessian(c, c2) += w * x(r, c) * x(r, c2);
            }
        }
        for (std::size_t c = 0; c + 1 < p; ++c) { // do not regularize intercept
            gradient[c] -= options.l2 * beta[c];
            hessian(c, c) += options.l2;
        }
        hessian(p - 1, p - 1) += 1e-9;

        const std::vector<double> step = solve_spd(hessian, gradient);
        double max_step = 0.0;
        for (std::size_t c = 0; c < p; ++c) {
            beta[c] += step[c];
            max_step = std::max(max_step, std::fabs(step[c]));
        }
        if (max_step < options.tolerance) break;
    }

    intercept_ = beta.back();
    beta.pop_back();
    weights_ = std::move(beta);
    fitted_ = true;
}

double LogisticRegression::predict(std::span<const double> features) const {
    if (!fitted_) throw std::logic_error("LogisticRegression::predict before fit");
    if (features.size() != weights_.size())
        throw std::invalid_argument("LogisticRegression::predict: feature size mismatch");
    double z = intercept_;
    for (std::size_t i = 0; i < weights_.size(); ++i) z += weights_[i] * features[i];
    return sigmoid(z);
}

} // namespace dre::stats
