// k-nearest-neighbour regression (brute force, feature-standardized L2).
//
// The paper's Fig. 7c uses a k-NN reward model (citing Larose [25]) as the
// Direct-Method component inside DR for the CFA scenario.
#ifndef DRE_STATS_KNN_H
#define DRE_STATS_KNN_H

#include <cstddef>
#include <span>
#include <vector>

namespace dre::stats {

class KnnRegressor {
public:
    explicit KnnRegressor(std::size_t k = 5);

    // Stores (a standardized copy of) the training set.
    void fit(const std::vector<std::vector<double>>& rows,
             std::span<const double> targets);

    // Mean target of the k nearest training points (inverse-distance
    // weighted when weighted() is enabled).
    double predict(std::span<const double> features) const;

    // Batch queries answered concurrently (dre::par), one slot per query;
    // identical to calling predict per row, for any thread count.
    std::vector<double> predict_batch(
        const std::vector<std::vector<double>>& queries) const;

    void set_weighted(bool weighted) noexcept { weighted_ = weighted; }
    bool weighted() const noexcept { return weighted_; }
    std::size_t k() const noexcept { return k_; }
    bool fitted() const noexcept { return fitted_; }
    std::size_t size() const noexcept { return targets_.size(); }

private:
    std::vector<double> standardize(std::span<const double> features) const;

    std::size_t k_;
    bool weighted_ = false;
    bool fitted_ = false;
    std::size_t dims_ = 0;
    std::vector<double> feature_mean_;
    std::vector<double> feature_scale_;
    std::vector<std::vector<double>> points_; // standardized
    std::vector<double> targets_;
};

} // namespace dre::stats

#endif // DRE_STATS_KNN_H
