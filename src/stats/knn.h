// k-nearest-neighbour regression (feature-standardized L2).
//
// The paper's Fig. 7c uses a k-NN reward model (citing Larose [25]) as the
// Direct-Method component inside DR for the CFA scenario. Those evaluations
// query the model once per (tuple, decision) pair per estimator, so the
// per-query cost dominates whole studies; queries are answered with a
// KD-tree over the standardized training points (brute-force scan kept as a
// reference implementation, selectable for equivalence tests).
//
// Both paths return *exactly* the same answer: the k nearest points are the
// k smallest (distance^2, training index) pairs — ties in distance broken
// by index — and targets are accumulated in ascending (distance^2, index)
// order, so the floating-point result is bit-identical whichever algorithm
// answered the query.
#ifndef DRE_STATS_KNN_H
#define DRE_STATS_KNN_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dre::stats {

class KnnRegressor {
public:
    // Query algorithm selection. kAuto uses the KD-tree except for tiny
    // training sets, where the scan's simplicity wins; because both paths
    // are exactly equivalent this is a pure performance choice.
    enum class Algorithm { kAuto, kBruteForce, kKdTree };

    explicit KnnRegressor(std::size_t k = 5);

    // Stores (a standardized copy of) the training set and builds the
    // KD-tree over it.
    void fit(const std::vector<std::vector<double>>& rows,
             std::span<const double> targets);

    // Mean target of the k nearest training points (inverse-distance
    // weighted when weighted() is enabled).
    double predict(std::span<const double> features) const;

    // Batch queries answered concurrently (dre::par), one slot per query;
    // identical to calling predict per row, for any thread count.
    std::vector<double> predict_batch(
        const std::vector<std::vector<double>>& queries) const;

    void set_weighted(bool weighted) noexcept { weighted_ = weighted; }
    bool weighted() const noexcept { return weighted_; }
    void set_algorithm(Algorithm algorithm) noexcept { algorithm_ = algorithm; }
    Algorithm algorithm() const noexcept { return algorithm_; }
    std::size_t k() const noexcept { return k_; }
    bool fitted() const noexcept { return fitted_; }
    std::size_t size() const noexcept { return targets_.size(); }

private:
    // (squared distance, original training index); ordered lexicographically,
    // which is exactly the tie-break both query paths implement.
    using Neighbor = std::pair<double, std::uint32_t>;

    // Per-query traversal work, accumulated locally during the search and
    // flushed to dre::obs once per query. Every field is a pure function of
    // (tree, query), so the totals are identical for any thread count.
    struct QueryStats {
        std::uint64_t leaf_scans = 0;    // leaf nodes visited
        std::uint64_t leaf_points = 0;   // points distance-tested in leaves
        std::uint64_t nodes_pruned = 0;  // far subtrees skipped by the bound
    };

    void standardize_into(std::span<const double> features,
                          std::vector<double>& out) const;
    void build_tree();
    // Fill `heap` with the k smallest (distance^2, index) pairs, sorted
    // ascending on return.
    void nearest_brute(std::span<const double> query, std::size_t k,
                       std::vector<Neighbor>& heap) const;
    void nearest_kdtree(std::span<const double> query, std::size_t k,
                        std::vector<Neighbor>& heap,
                        std::vector<double>& offsets,
                        QueryStats& stats) const;
    // `cell_d2` is a lower bound on the squared distance from the query to
    // this node's cell, maintained incrementally (Arya–Mount): `offsets[a]`
    // holds the per-axis offset already contributing to `cell_d2`.
    void search_node(std::uint32_t node, std::span<const double> query,
                     std::size_t k, std::vector<Neighbor>& heap,
                     std::vector<double>& offsets, double cell_d2,
                     QueryStats& stats) const;
    double reduce_neighbors(const std::vector<Neighbor>& neighbors) const;

    std::size_t k_;
    bool weighted_ = false;
    bool fitted_ = false;
    Algorithm algorithm_ = Algorithm::kAuto;
    std::size_t dims_ = 0;
    std::vector<double> feature_mean_;
    std::vector<double> feature_scale_;

    // Fill `heap` with candidates from slots [begin, end): dispatched
    // 8-wide blocks through dre::simd (tree splits are 8-aligned and the
    // final block is NaN-padded, so every slot is covered). Exactly
    // equivalent to the per-point scan.
    void scan_slots(std::uint32_t begin, std::uint32_t end,
                    std::span<const double> query, std::size_t k,
                    std::vector<Neighbor>& heap) const;

    // Standardized training points, row-major, reordered so each tree
    // node's points are contiguous (cache-friendly leaf scans).
    std::vector<double> points_;
    // The same points again in 8-wide dimension-major blocks for the SIMD
    // leaf scan: block b covers slots [8b, 8b+8) and stores coordinate d of
    // its lane-th point at blocks_[(b * dims + d) * 8 + lane]. The final
    // block's lanes past the last point are NaN-padded (never candidates).
    std::vector<double> blocks_;
    // First slot NOT covered by blocks_ (= 8 * number of blocks, padding
    // included), precomputed so the leaf scan never divides by dims_.
    std::uint32_t blocked_slots_ = 0;
    // perm_[slot] = original training index of the point stored at `slot`.
    std::vector<std::uint32_t> perm_;
    // True when perm_ is the identity (single-leaf trees): slot order then
    // equals original-index order, which lets scan_slots drop exact
    // distance ties in-kernel (they can never win the index tie-break).
    bool perm_identity_ = false;
    std::vector<double> targets_; // original order

    // KD-tree nodes in structure-of-arrays layout (index 0 = root; kNoChild
    // marks an absent child, axis < 0 marks a leaf spanning
    // [node_begin_, node_end_) slots of points_).
    static constexpr std::uint32_t kNoChild = 0xffffffffu;
    std::vector<std::int32_t> node_axis_;
    std::vector<double> node_split_;
    std::vector<std::uint32_t> node_left_;
    std::vector<std::uint32_t> node_right_;
    std::vector<std::uint32_t> node_begin_;
    std::vector<std::uint32_t> node_end_;
};

} // namespace dre::stats

#endif // DRE_STATS_KNN_H
