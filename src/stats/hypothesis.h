// Nonparametric hypothesis tests for comparing estimator error samples.
//
// The experiment harness claims "DR's error is lower than X's"; these tests
// back such claims with p-values that make no normality assumptions (error
// distributions here are skewed and heavy-tailed).
#ifndef DRE_STATS_HYPOTHESIS_H
#define DRE_STATS_HYPOTHESIS_H

#include <span>

namespace dre::stats {

struct RankSumResult {
    double u_statistic = 0.0;  // Mann-Whitney U for the first sample
    double z_score = 0.0;      // normal approximation (tie-corrected)
    double p_value_two_sided = 1.0;
    double p_value_less = 1.0; // P(first sample stochastically smaller)
};

// Mann-Whitney U / Wilcoxon rank-sum test with tie correction and the
// normal approximation (valid for n >= ~8 per sample, which the benches
// always satisfy). Throws std::invalid_argument on empty samples.
RankSumResult mann_whitney_u(std::span<const double> xs, std::span<const double> ys);

// Paired sign test: P-value for "xs tends to be smaller than ys pairwise"
// under the exact binomial null (ties dropped).
double sign_test_less(std::span<const double> xs, std::span<const double> ys);

// Standard normal CDF (exposed because the tests and benches reuse it).
double normal_cdf(double z);

} // namespace dre::stats

#endif // DRE_STATS_HYPOTHESIS_H
