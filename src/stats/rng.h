// Deterministic pseudo-random number generation and common distributions.
//
// A thin, hand-rolled substrate: the evaluation experiments must be exactly
// reproducible across platforms, so we avoid the implementation-defined
// distributions of <random> and implement the generator (xoshiro256**) and
// all samplers ourselves.
#ifndef DRE_STATS_RNG_H
#define DRE_STATS_RNG_H

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace dre::stats {

// xoshiro256** by Blackman & Vigna: fast, high-quality 64-bit generator.
// Seeded through SplitMix64 so that any 64-bit seed yields a good state.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

    // Uniform 64-bit word.
    std::uint64_t next_u64() noexcept;

    // UniformReal in [0, 1).
    double uniform() noexcept;

    // Uniform in [lo, hi). Requires lo < hi.
    double uniform(double lo, double hi);

    // Uniform integer in [0, n). Requires n > 0.
    std::uint64_t uniform_index(std::uint64_t n);

    // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    // Bernoulli draw with success probability p in [0, 1].
    bool bernoulli(double p);

    // Standard normal via Marsaglia polar method.
    double normal() noexcept;
    double normal(double mean, double stddev) noexcept;

    // Exponential with rate lambda > 0.
    double exponential(double lambda);

    // Log-normal: exp(normal(mu, sigma)).
    double lognormal(double mu, double sigma) noexcept;

    // Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed latencies).
    double pareto(double xm, double alpha);

    // Categorical draw: index i with probability weights[i] / sum(weights).
    // Requires non-negative weights with positive sum.
    std::size_t categorical(std::span<const double> weights);

    // Poisson draw (Knuth for small lambda, normal approximation otherwise).
    std::uint64_t poisson(double lambda);

    // In-place Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        for (std::size_t i = v.size(); i > 1; --i) {
            using std::swap;
            swap(v[i - 1], v[uniform_index(i)]);
        }
    }

    // Split off an independently-seeded generator, advancing this one (for
    // sequential sub-streams).
    Rng split() noexcept;

    // Derive the `stream_id`-th child stream without advancing this
    // generator: the same (state, stream_id) pair always yields the same
    // child, and distinct stream ids yield statistically independent
    // streams. This is the substrate for deterministic parallelism — each
    // parallel work item draws from split(logical_index), so results do not
    // depend on the thread count or execution order (see core/parallel.h).
    Rng split(std::uint64_t stream_id) const noexcept;

    // UniformRandomBitGenerator interface (usable with std algorithms).
    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~0ull; }
    result_type operator()() noexcept { return next_u64(); }

    // Raw generator words, for checkpoint/resume: from_state(state()) is an
    // exact clone. The Marsaglia normal() cache is NOT captured — exact for
    // every generator that has not buffered a normal draw, which covers the
    // split()/uniform() protocols the evaluation paths use.
    std::array<std::uint64_t, 4> state() const noexcept;
    static Rng from_state(const std::array<std::uint64_t, 4>& words) noexcept;

private:
    std::uint64_t state_[4];
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

} // namespace dre::stats

#endif // DRE_STATS_RNG_H
