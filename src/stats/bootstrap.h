// Percentile bootstrap confidence intervals for arbitrary sample statistics.
#ifndef DRE_STATS_BOOTSTRAP_H
#define DRE_STATS_BOOTSTRAP_H

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "stats/rng.h"

namespace dre::stats {

struct ConfidenceInterval {
    double point = 0.0; // statistic on the full sample
    double lower = 0.0;
    double upper = 0.0;
    double level = 0.95;

    double width() const noexcept { return upper - lower; }
    bool contains(double value) const noexcept {
        return value >= lower && value <= upper;
    }
};

// Statistic over a sample (e.g., mean, quantile, estimator value).
using Statistic = std::function<double(std::span<const double>)>;

// Percentile bootstrap: resample with replacement `replicates` times and
// take the (alpha/2, 1-alpha/2) quantiles of the replicate statistics.
ConfidenceInterval bootstrap_ci(std::span<const double> sample,
                                const Statistic& statistic, Rng& rng,
                                int replicates = 1000, double level = 0.95);

// Convenience: CI for the mean.
ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample, Rng& rng,
                                     int replicates = 1000, double level = 0.95);

// ---------------------------------------------------------------------------
// Chunk-keyed streaming bootstrap for the mean.
//
// The classic percentile bootstrap above draws n indices over the whole
// sample per replicate, which requires random access to all n values — a
// non-starter for out-of-core evaluation. This variant stratifies each
// replicate by fixed-size chunk (par::kReduceChunk, the deterministic
// reduction geometry): replicate b resamples chunk c within itself using
// the pure child stream base.split(c).split(b), producing one partial sum
// per (chunk, replicate). Partials are folded in chunk order, and the
// replicate mean is (fold of partial sums) / n.
//
// Consequences:
//  * O(replicates) streaming state — chunks can be visited one at a time
//    and discarded;
//  * results depend only on (base rng, chunk geometry, values), never on
//    thread count, shard layout, or visit interleaving (merge order is
//    enforced by the caller feeding chunks in order);
//  * the in-memory and streaming paths share this exact code, so their
//    CIs are bit-identical by construction.
//
// Statistically this is a stratified bootstrap (resampling within blocks
// of ≤ 4096 consecutive tuples): each replicate still draws n tuples with
// replacement, with the count per block fixed at the block size.
// ---------------------------------------------------------------------------
class ChunkedMeanBootstrap {
public:
    // `base` should be a fresh split of the caller's generator. Throws
    // std::invalid_argument for replicates < 2 or level outside (0, 1).
    ChunkedMeanBootstrap(Rng base, int replicates, double level);

    int replicates() const noexcept { return replicates_; }

    // Per-replicate resample sums of `values` (the chunk's per-tuple
    // contributions). Pure function of (base, chunk_id, values) — safe to
    // call concurrently for different chunks.
    std::vector<double> chunk_partials(std::uint64_t chunk_id,
                                       std::span<const double> values) const;

    // Fold one chunk's partials into the running replicate sums. Chunks
    // MUST be merged in chunk-id order (0, 1, 2, …).
    void merge(std::span<const double> partials);

    // Percentile interval over the replicate means; `point` is the caller's
    // full-sample statistic (reported verbatim, not recomputed).
    ConfidenceInterval finalize(std::uint64_t total_n, double point) const;

    // Checkpoint/resume support. The base generator never advances after
    // construction (chunk_partials derives pure child streams), so a
    // resumed bootstrap is reconstructed from the same seed and the running
    // replicate sums are restored verbatim via restore_sums(). base_rng()
    // lets the checkpoint record the base state and verify the resumed run
    // was seeded identically.
    const Rng& base_rng() const noexcept { return base_; }
    std::span<const double> replicate_sums() const noexcept { return sums_; }
    void restore_sums(std::span<const double> sums);

private:
    Rng base_;
    int replicates_;
    double level_;
    std::vector<double> sums_; // per-replicate running resample sums
};

// In-memory convenience wrapper: chunk the sample, compute partials in
// parallel (dre::par), merge in order, finalize. Advances `rng` once (the
// same protocol as bootstrap_ci), so a streaming run that splits its rng
// identically produces the identical interval.
ConfidenceInterval chunked_bootstrap_mean_ci(std::span<const double> sample,
                                             double point, Rng& rng,
                                             int replicates = 1000,
                                             double level = 0.95);

} // namespace dre::stats

#endif // DRE_STATS_BOOTSTRAP_H
