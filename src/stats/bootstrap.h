// Percentile bootstrap confidence intervals for arbitrary sample statistics.
#ifndef DRE_STATS_BOOTSTRAP_H
#define DRE_STATS_BOOTSTRAP_H

#include <functional>
#include <span>
#include <vector>

#include "stats/rng.h"

namespace dre::stats {

struct ConfidenceInterval {
    double point = 0.0; // statistic on the full sample
    double lower = 0.0;
    double upper = 0.0;
    double level = 0.95;

    double width() const noexcept { return upper - lower; }
    bool contains(double value) const noexcept {
        return value >= lower && value <= upper;
    }
};

// Statistic over a sample (e.g., mean, quantile, estimator value).
using Statistic = std::function<double(std::span<const double>)>;

// Percentile bootstrap: resample with replacement `replicates` times and
// take the (alpha/2, 1-alpha/2) quantiles of the replicate statistics.
ConfidenceInterval bootstrap_ci(std::span<const double> sample,
                                const Statistic& statistic, Rng& rng,
                                int replicates = 1000, double level = 0.95);

// Convenience: CI for the mean.
ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample, Rng& rng,
                                     int replicates = 1000, double level = 0.95);

} // namespace dre::stats

#endif // DRE_STATS_BOOTSTRAP_H
