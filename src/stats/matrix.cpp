#include "stats/matrix.h"

#include <cmath>
#include <stdexcept>

namespace dre::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
    if (rows.empty()) return {};
    Matrix m(rows.size(), rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        if (rows[r].size() != m.cols())
            throw std::invalid_argument("Matrix::from_rows: ragged rows");
        for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) = rows[r][c];
    }
    return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
    return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
    return (*this)(r, c);
}

Matrix Matrix::transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
    if (cols_ != rhs.rows_)
        throw std::invalid_argument("Matrix::operator*: shape mismatch");
    Matrix out(rows_, rhs.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(r, k);
            if (a == 0.0) continue;
            for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += a * rhs(k, c);
        }
    }
    return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
    if (!same_shape(rhs)) throw std::invalid_argument("Matrix::operator+: shape mismatch");
    Matrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
    return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
    if (!same_shape(rhs)) throw std::invalid_argument("Matrix::operator-: shape mismatch");
    Matrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
    return out;
}

Matrix Matrix::scaled(double factor) const {
    Matrix out = *this;
    for (double& x : out.data_) x *= factor;
    return out;
}

std::vector<double> Matrix::multiply(std::span<const double> v) const {
    if (v.size() != cols_) throw std::invalid_argument("Matrix::multiply: shape mismatch");
    std::vector<double> out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) out[r] += (*this)(r, c) * v[c];
    return out;
}

Matrix Matrix::gram() const {
    Matrix g(cols_, cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t i = 0; i < cols_; ++i) {
            const double a = (*this)(r, i);
            if (a == 0.0) continue;
            for (std::size_t j = 0; j < cols_; ++j) g(i, j) += a * (*this)(r, j);
        }
    return g;
}

std::vector<double> Matrix::transpose_multiply(std::span<const double> b) const {
    if (b.size() != rows_)
        throw std::invalid_argument("Matrix::transpose_multiply: shape mismatch");
    std::vector<double> out(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) out[c] += (*this)(r, c) * b[r];
    return out;
}

std::vector<double> solve_linear_system(Matrix a, std::vector<double> b) {
    const std::size_t n = a.rows();
    if (a.cols() != n || b.size() != n)
        throw std::invalid_argument("solve_linear_system: shape mismatch");
    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivoting.
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
        if (std::fabs(a(pivot, col)) < 1e-12)
            throw std::runtime_error("solve_linear_system: singular matrix");
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
            std::swap(b[pivot], b[col]);
        }
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = a(r, col) / a(col, col);
            if (factor == 0.0) continue;
            for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
            b[r] -= factor * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double sum = b[i];
        for (std::size_t c = i + 1; c < n; ++c) sum -= a(i, c) * x[c];
        x[i] = sum / a(i, i);
    }
    return x;
}

Matrix cholesky(const Matrix& a) {
    const std::size_t n = a.rows();
    if (a.cols() != n) throw std::invalid_argument("cholesky: matrix not square");
    Matrix l(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double sum = a(i, j);
            for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
            if (i == j) {
                if (sum <= 0.0) throw std::runtime_error("cholesky: matrix not SPD");
                l(i, j) = std::sqrt(sum);
            } else {
                l(i, j) = sum / l(j, j);
            }
        }
    }
    return l;
}

std::vector<double> solve_spd(const Matrix& a, std::span<const double> b) {
    const Matrix l = cholesky(a);
    const std::size_t n = l.rows();
    if (b.size() != n) throw std::invalid_argument("solve_spd: shape mismatch");
    // Forward substitution: L y = b.
    std::vector<double> y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
        y[i] = sum / l(i, i);
    }
    // Back substitution: L^T x = y.
    std::vector<double> x(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double sum = y[i];
        for (std::size_t k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
        x[i] = sum / l(i, i);
    }
    return x;
}

} // namespace dre::stats
