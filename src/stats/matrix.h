// Small dense matrix with just enough linear algebra for regression:
// matrix products, Cholesky factorization, and a pivoted Gaussian solver.
#ifndef DRE_STATS_MATRIX_H
#define DRE_STATS_MATRIX_H

#include <cstddef>
#include <span>
#include <vector>

namespace dre::stats {

class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    static Matrix identity(std::size_t n);
    static Matrix from_rows(const std::vector<std::vector<double>>& rows);

    std::size_t rows() const noexcept { return rows_; }
    std::size_t cols() const noexcept { return cols_; }

    double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

    // Bounds-checked access.
    double& at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    Matrix transposed() const;
    Matrix operator*(const Matrix& rhs) const;
    Matrix operator+(const Matrix& rhs) const;
    Matrix operator-(const Matrix& rhs) const;
    Matrix scaled(double factor) const;

    std::vector<double> multiply(std::span<const double> v) const;

    // A^T * A (Gram matrix) and A^T * b, the normal-equation ingredients.
    Matrix gram() const;
    std::vector<double> transpose_multiply(std::span<const double> b) const;

    bool same_shape(const Matrix& rhs) const noexcept {
        return rows_ == rhs.rows_ && cols_ == rhs.cols_;
    }

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

// Solve A x = b for square A via partial-pivot Gaussian elimination.
// Throws std::runtime_error if A is (numerically) singular.
std::vector<double> solve_linear_system(Matrix a, std::vector<double> b);

// Cholesky factorization of a symmetric positive-definite matrix: returns
// lower-triangular L with A = L L^T. Throws if A is not SPD.
Matrix cholesky(const Matrix& a);

// Solve A x = b where A is SPD, using Cholesky (faster/stabler than Gauss).
std::vector<double> solve_spd(const Matrix& a, std::span<const double> b);

} // namespace dre::stats

#endif // DRE_STATS_MATRIX_H
