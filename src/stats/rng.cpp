#include "stats/rng.h"

#include <cmath>

namespace dre::stats {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::uniform() noexcept {
    // 53-bit mantissa in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    if (!(lo < hi)) throw std::invalid_argument("Rng::uniform: lo must be < hi");
    return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
    if (n == 0) throw std::invalid_argument("Rng::uniform_index: n must be > 0");
    // Lemire's unbiased rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
        const std::uint64_t threshold = (0 - n) % n;
        while (lo < threshold) {
            x = next_u64();
            m = static_cast<__uint128_t>(x) * n;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo must be <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::bernoulli(double p) {
    if (p < 0.0 || p > 1.0) throw std::invalid_argument("Rng::bernoulli: p outside [0,1]");
    return uniform() < p;
}

double Rng::normal() noexcept {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u, v, s;
    do {
        u = 2.0 * uniform() - 1.0;
        v = 2.0 * uniform() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * factor;
    has_cached_normal_ = true;
    return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
}

double Rng::exponential(double lambda) {
    if (lambda <= 0.0) throw std::invalid_argument("Rng::exponential: lambda must be > 0");
    // 1 - uniform() is in (0, 1]; log of it is finite.
    return -std::log(1.0 - uniform()) / lambda;
}

double Rng::lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
    if (xm <= 0.0 || alpha <= 0.0)
        throw std::invalid_argument("Rng::pareto: xm and alpha must be > 0");
    return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

std::size_t Rng::categorical(std::span<const double> weights) {
    if (weights.empty()) throw std::invalid_argument("Rng::categorical: empty weights");
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0 || !std::isfinite(w))
            throw std::invalid_argument("Rng::categorical: weights must be finite and >= 0");
        total += w;
    }
    if (total <= 0.0) throw std::invalid_argument("Rng::categorical: weights sum to zero");
    double target = uniform() * total;
    for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0.0) return i;
    }
    return weights.size() - 1;
}

std::uint64_t Rng::poisson(double lambda) {
    if (lambda < 0.0) throw std::invalid_argument("Rng::poisson: lambda must be >= 0");
    if (lambda == 0.0) return 0;
    if (lambda < 30.0) {
        const double limit = std::exp(-lambda);
        std::uint64_t k = 0;
        double product = uniform();
        while (product > limit) {
            ++k;
            product *= uniform();
        }
        return k;
    }
    // Normal approximation with continuity correction for large lambda.
    const double draw = normal(lambda, std::sqrt(lambda));
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

Rng Rng::split() noexcept {
    return Rng{next_u64()};
}

Rng Rng::split(std::uint64_t stream_id) const noexcept {
    // Fold the full 256-bit state and the stream id into one 64-bit seed via
    // SplitMix64 finalization steps. Each state word and the id pass through
    // their own mixing round so that ids differing in any bit, or parents
    // differing in any state word, yield unrelated children.
    std::uint64_t s = 0x9e3779b97f4a7c15ull;
    for (const std::uint64_t word : state_) {
        s ^= word;
        s = splitmix64(s);
    }
    s ^= stream_id;
    s = splitmix64(s);
    return Rng{s};
}

std::array<std::uint64_t, 4> Rng::state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
}

Rng Rng::from_state(const std::array<std::uint64_t, 4>& words) noexcept {
    Rng rng;
    for (std::size_t i = 0; i < 4; ++i) rng.state_[i] = words[i];
    return rng;
}

} // namespace dre::stats
