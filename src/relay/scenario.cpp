#include "relay/scenario.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace dre::relay {

std::size_t num_decisions(const RelayWorldConfig& config) {
    return 1 + config.num_relays;
}

RelayEnv::RelayEnv(RelayWorldConfig config) : config_(config) {
    if (config_.num_as == 0) throw std::invalid_argument("RelayEnv: no ASes");
    if (config_.num_relays == 0) throw std::invalid_argument("RelayEnv: no relays");
    if (config_.nat_fraction < 0.0 || config_.nat_fraction > 1.0)
        throw std::invalid_argument("RelayEnv: nat_fraction outside [0,1]");
    stats::Rng rng(config_.seed);
    path_base_.resize(config_.num_as * config_.num_as);
    for (double& q : path_base_) q = rng.uniform(3.0, 4.5); // MOS-ish
    relay_gain_.resize(config_.num_relays);
    for (double& g : relay_gain_) g = rng.uniform(-0.1, 0.3);
}

ClientContext RelayEnv::sample_context(stats::Rng& rng) const {
    ClientContext context;
    context.categorical = {
        static_cast<std::int32_t>(rng.uniform_index(config_.num_as)),
        static_cast<std::int32_t>(rng.uniform_index(config_.num_as)),
        rng.bernoulli(config_.nat_fraction) ? 1 : 0};
    return context;
}

double RelayEnv::mean_quality(const ClientContext& context, Decision d) const {
    if (context.categorical.size() != 3)
        throw std::invalid_argument("RelayEnv: context missing (src, dst, nat)");
    const auto src = static_cast<std::size_t>(context.categorical[0]);
    const auto dst = static_cast<std::size_t>(context.categorical[1]);
    const bool nat = context.categorical[2] != 0;
    if (src >= config_.num_as || dst >= config_.num_as)
        throw std::out_of_range("RelayEnv: AS out of range");
    if (d < 0 || static_cast<std::size_t>(d) >= relay::num_decisions(config_))
        throw std::out_of_range("RelayEnv: decision out of range");

    double quality = path_base_[src * config_.num_as + dst];
    if (d == 0) {
        // Direct path: NAT-ed devices suffer their full last-mile penalty.
        if (nat) quality -= config_.nat_lastmile_penalty;
    } else {
        const auto relay = static_cast<std::size_t>(d - 1);
        quality += relay_gain_[relay] - config_.relay_overhead;
        // Relaying rescues most of the NAT penalty (TURN-style traversal),
        // but NAT-ed users still keep a residual last-mile deficit.
        if (nat)
            quality -= config_.nat_lastmile_penalty *
                       (1.0 - config_.relay_nat_rescue);
    }
    return quality;
}

Reward RelayEnv::sample_reward(const ClientContext& context, Decision d,
                               stats::Rng& rng) const {
    return mean_quality(context, d) + rng.normal(0.0, config_.noise_sigma);
}

double RelayEnv::expected_reward(const ClientContext& context, Decision d,
                                 stats::Rng&, int) const {
    return mean_quality(context, d);
}

std::shared_ptr<core::Policy> make_nat_logging_policy(const RelayWorldConfig& config,
                                                      double epsilon) {
    const std::size_t decisions = num_decisions(config);
    auto base = std::make_shared<core::DeterministicPolicy>(
        decisions, [config](const ClientContext& context) -> Decision {
            const bool nat = context.categorical.at(2) != 0;
            if (!nat) return 0; // public calls go direct
            const auto src = static_cast<std::size_t>(context.categorical.at(0));
            const auto dst = static_cast<std::size_t>(context.categorical.at(1));
            return static_cast<Decision>(1 + (src + dst) % config.num_relays);
        });
    return std::make_shared<core::EpsilonGreedyPolicy>(std::move(base), epsilon);
}

std::shared_ptr<core::Policy> make_relay_all_policy(const RelayWorldConfig& config) {
    const std::size_t decisions = num_decisions(config);
    return std::make_shared<core::DeterministicPolicy>(
        decisions, [config](const ClientContext& context) -> Decision {
            const auto src = static_cast<std::size_t>(context.categorical.at(0));
            const auto dst = static_cast<std::size_t>(context.categorical.at(1));
            return static_cast<Decision>(1 + (src + dst) % config.num_relays);
        });
}

ClientContext strip_nat(const ClientContext& context) {
    if (context.categorical.size() != 3)
        throw std::invalid_argument("strip_nat: context missing (src, dst, nat)");
    ClientContext stripped;
    stripped.numeric = context.numeric;
    stripped.categorical = {context.categorical[0], context.categorical[1]};
    return stripped;
}

Trace without_nat_feature(const Trace& trace) {
    Trace out;
    out.reserve(trace.size());
    for (const auto& t : trace) {
        LoggedTuple copy = t;
        copy.context = strip_nat(t.context);
        out.add(std::move(copy));
    }
    return out;
}

double via_matching_estimate(const Trace& trace, const core::Policy& new_policy) {
    validate_trace(trace);
    if (trace.empty())
        throw std::invalid_argument("via_matching_estimate: empty trace");

    // Index logged rewards by ((src, dst), decision), NAT deliberately
    // ignored — that is VIA's blind spot in Fig. 3.
    struct MeanCount {
        double mean = 0.0;
        std::size_t count = 0;
        void add(double x) {
            ++count;
            mean += (x - mean) / static_cast<double>(count);
        }
    };
    std::unordered_map<std::uint64_t, MeanCount> by_pair_decision;
    std::unordered_map<std::int64_t, MeanCount> by_decision;
    MeanCount overall;
    const auto pair_key = [](const LoggedTuple& t, Decision d) {
        const auto src = static_cast<std::uint64_t>(t.context.categorical.at(0));
        const auto dst = static_cast<std::uint64_t>(t.context.categorical.at(1));
        return (src << 40) ^ (dst << 16) ^ static_cast<std::uint64_t>(d);
    };
    for (const auto& t : trace) {
        by_pair_decision[pair_key(t, t.decision)].add(t.reward);
        by_decision[t.decision].add(t.reward);
        overall.add(t.reward);
    }

    double total = 0.0;
    for (const auto& t : trace) {
        const std::vector<double> probs = new_policy.action_probabilities(t.context);
        const auto choice = static_cast<Decision>(
            std::max_element(probs.begin(), probs.end()) - probs.begin());
        const auto it = by_pair_decision.find(pair_key(t, choice));
        if (it != by_pair_decision.end()) {
            total += it->second.mean;
        } else if (const auto jt = by_decision.find(choice); jt != by_decision.end()) {
            total += jt->second.mean;
        } else {
            total += overall.mean;
        }
    }
    return total / static_cast<double>(trace.size());
}

} // namespace dre::relay
