// The VIA relay-selection scenario (paper Fig. 3).
//
// VoIP calls between AS pairs can go direct or via a relay. The old policy
// "chooses only calls between two devices behind NATs to use the relay
// path"; NAT-ed users also have different last-mile conditions. Estimating
// the relay path's quality for public-IP calls from the (all-NAT) relayed
// calls is therefore confounded: the NAT flag drives both the decision and
// the reward.
//
// The scenario exposes the hidden feature explicitly so experiments can
// compare evaluators that see it against evaluators that do not ("ideally
// we need to add in the relevant feature", §3).
#ifndef DRE_RELAY_SCENARIO_H
#define DRE_RELAY_SCENARIO_H

#include <memory>

#include "core/environment.h"
#include "core/policy.h"
#include "stats/rng.h"
#include "trace/trace.h"

namespace dre::relay {

struct RelayWorldConfig {
    std::size_t num_as = 6;     // autonomous systems
    std::size_t num_relays = 2; // decision 0 = direct, 1..num_relays = relays
    double nat_fraction = 0.5;  // fraction of calls between NAT-ed devices
    double nat_lastmile_penalty = 0.8; // quality loss NAT-ed users suffer
    double relay_overhead = 0.15;      // relaying costs a bit of quality
    double relay_nat_rescue = 0.6;     // relays bypass most of the NAT penalty
    double noise_sigma = 0.25;
    std::uint64_t seed = 17;
};

std::size_t num_decisions(const RelayWorldConfig& config);

// Environment over *full* contexts: categorical = {src_as, dst_as, nat}.
// Reward is a MOS-like call-quality score.
class RelayEnv final : public core::Environment {
public:
    explicit RelayEnv(RelayWorldConfig config);

    ClientContext sample_context(stats::Rng& rng) const override;
    Reward sample_reward(const ClientContext& context, Decision d,
                         stats::Rng& rng) const override;
    double expected_reward(const ClientContext& context, Decision d,
                           stats::Rng& rng, int samples) const override;
    std::size_t num_decisions() const noexcept override {
        return relay::num_decisions(config_);
    }

    const RelayWorldConfig& config() const noexcept { return config_; }

private:
    double mean_quality(const ClientContext& context, Decision d) const;

    RelayWorldConfig config_;
    std::vector<double> path_base_;  // direct-path base quality [src*nA+dst]
    std::vector<double> relay_gain_; // per-relay detour quality delta
};

// The biased logging policy: NAT-ed calls use relay 1 + (src+dst) % R;
// public calls go direct — with epsilon-uniform exploration mixed in so
// propensities stay positive.
std::shared_ptr<core::Policy> make_nat_logging_policy(const RelayWorldConfig& config,
                                                      double epsilon);

// New policy under evaluation: route *every* call over its best relay.
std::shared_ptr<core::Policy> make_relay_all_policy(const RelayWorldConfig& config);

// Strip the NAT flag from every context (what an evaluator that never
// measured NAT-ness would see).
Trace without_nat_feature(const Trace& trace);
ClientContext strip_nat(const ClientContext& context);

// VIA-style naive estimate of a new policy's value: for every logged call,
// take the mean observed reward of logged calls with the same (src, dst)
// that used the decision the new policy picks (ignoring NAT). Falls back to
// the decision's global mean, then the trace mean.
double via_matching_estimate(const Trace& trace, const core::Policy& new_policy);

} // namespace dre::relay

#endif // DRE_RELAY_SCENARIO_H
