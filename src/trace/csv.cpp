#include "trace/csv.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace dre {
namespace {

std::vector<std::string> split_row(const std::string& line) {
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream ss(line);
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    if (!line.empty() && line.back() == ',') cells.emplace_back();
    return cells;
}

[[noreturn]] void fail(std::size_t line_number, const std::string& what) {
    throw std::runtime_error("csv line " + std::to_string(line_number) + ": " + what);
}

} // namespace

void write_csv(const Trace& trace, std::ostream& out) {
    const std::size_t numeric_dims =
        trace.empty() ? 0 : trace[0].context.numeric_dims();
    const std::size_t categorical_dims =
        trace.empty() ? 0 : trace[0].context.categorical_dims();

    out << "decision,reward,propensity,state";
    for (std::size_t i = 0; i < numeric_dims; ++i) out << ",n" << i;
    for (std::size_t i = 0; i < categorical_dims; ++i) out << ",c" << i;
    out << '\n';

    out << std::setprecision(17);
    for (const auto& t : trace) {
        if (t.context.numeric_dims() != numeric_dims ||
            t.context.categorical_dims() != categorical_dims)
            throw std::invalid_argument("write_csv: heterogeneous context schema");
        out << t.decision << ',' << t.reward << ',' << t.propensity << ','
            << t.state;
        for (double v : t.context.numeric) out << ',' << v;
        for (std::int32_t c : t.context.categorical) out << ',' << c;
        out << '\n';
    }
}

void write_csv_file(const Trace& trace, const std::string& path) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("write_csv_file: cannot open " + path);
    write_csv(trace, out);
    if (!out) throw std::runtime_error("write_csv_file: write failed for " + path);
}

Trace read_csv(std::istream& in) {
    std::string line;
    if (!std::getline(in, line)) throw std::runtime_error("csv: missing header");
    const std::vector<std::string> header = split_row(line);
    if (header.size() < 4 || header[0] != "decision" || header[1] != "reward" ||
        header[2] != "propensity" || header[3] != "state")
        throw std::runtime_error("csv: unexpected header");

    std::size_t numeric_dims = 0, categorical_dims = 0;
    for (std::size_t i = 4; i < header.size(); ++i) {
        if (!header[i].empty() && header[i][0] == 'n') {
            ++numeric_dims;
        } else if (!header[i].empty() && header[i][0] == 'c') {
            ++categorical_dims;
        } else {
            throw std::runtime_error("csv: unknown column " + header[i]);
        }
    }

    Trace trace;
    std::size_t line_number = 1;
    while (std::getline(in, line)) {
        ++line_number;
        if (line.empty()) continue;
        const std::vector<std::string> cells = split_row(line);
        if (cells.size() != 4 + numeric_dims + categorical_dims)
            fail(line_number, "wrong cell count");
        LoggedTuple tuple;
        try {
            tuple.decision = static_cast<Decision>(std::stol(cells[0]));
            tuple.reward = std::stod(cells[1]);
            tuple.propensity = std::stod(cells[2]);
            tuple.state = static_cast<std::int32_t>(std::stol(cells[3]));
            tuple.context.numeric.reserve(numeric_dims);
            for (std::size_t i = 0; i < numeric_dims; ++i)
                tuple.context.numeric.push_back(std::stod(cells[4 + i]));
            tuple.context.categorical.reserve(categorical_dims);
            for (std::size_t i = 0; i < categorical_dims; ++i)
                tuple.context.categorical.push_back(
                    static_cast<std::int32_t>(std::stol(cells[4 + numeric_dims + i])));
        } catch (const std::exception& e) {
            fail(line_number, e.what());
        }
        trace.add(std::move(tuple));
    }
    return trace;
}

Trace read_csv_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("read_csv_file: cannot open " + path);
    return read_csv(in);
}

} // namespace dre
