#include "trace/csv.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace dre {
namespace {

std::vector<std::string> split_row(const std::string& line) {
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream ss(line);
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    if (!line.empty() && line.back() == ',') cells.emplace_back();
    return cells;
}

[[noreturn]] void fail(std::size_t line_number, const std::string& what) {
    throw std::runtime_error("csv line " + std::to_string(line_number) + ": " + what);
}

// Checked numeric parsing. Bare std::stod/std::stol would silently accept
// trailing garbage ("1.5abc" → 1.5) and throw context-free errors on junk;
// these reject anything but a complete numeric cell so the error surfaces
// through fail(line_number, …) with the offending cell quoted.
double parse_double_cell(const std::string& cell, const char* column) {
    std::size_t consumed = 0;
    double value = 0.0;
    try {
        value = std::stod(cell, &consumed);
    } catch (const std::exception&) {
        throw std::runtime_error(std::string(column) + " cell '" + cell +
                                 "' is not a number");
    }
    if (consumed != cell.size())
        throw std::runtime_error(std::string(column) + " cell '" + cell +
                                 "' has trailing garbage");
    return value;
}

long parse_long_cell(const std::string& cell, const char* column) {
    std::size_t consumed = 0;
    long value = 0;
    try {
        value = std::stol(cell, &consumed);
    } catch (const std::exception&) {
        throw std::runtime_error(std::string(column) + " cell '" + cell +
                                 "' is not an integer");
    }
    if (consumed != cell.size())
        throw std::runtime_error(std::string(column) + " cell '" + cell +
                                 "' has trailing garbage");
    return value;
}

} // namespace

void write_csv(const Trace& trace, std::ostream& out) {
    const std::size_t numeric_dims =
        trace.empty() ? 0 : trace[0].context.numeric_dims();
    const std::size_t categorical_dims =
        trace.empty() ? 0 : trace[0].context.categorical_dims();

    out << "decision,reward,propensity,state";
    for (std::size_t i = 0; i < numeric_dims; ++i) out << ",n" << i;
    for (std::size_t i = 0; i < categorical_dims; ++i) out << ",c" << i;
    out << '\n';

    out << std::setprecision(17);
    for (const auto& t : trace) {
        if (t.context.numeric_dims() != numeric_dims ||
            t.context.categorical_dims() != categorical_dims)
            throw std::invalid_argument("write_csv: heterogeneous context schema");
        out << t.decision << ',' << t.reward << ',' << t.propensity << ','
            << t.state;
        for (double v : t.context.numeric) out << ',' << v;
        for (std::int32_t c : t.context.categorical) out << ',' << c;
        out << '\n';
    }
}

void write_csv_file(const Trace& trace, const std::string& path) {
    // Write to a sibling temp file and rename into place so a crash or a
    // write error mid-stream never leaves a truncated file at `path`.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out) throw std::runtime_error("write_csv_file: cannot open " + tmp);
        try {
            write_csv(trace, out);
        } catch (...) {
            out.close();
            std::remove(tmp.c_str());
            throw;
        }
        out.flush();
        if (!out) {
            out.close();
            std::remove(tmp.c_str());
            throw std::runtime_error("write_csv_file: write failed for " + tmp);
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("write_csv_file: cannot rename " + tmp +
                                 " to " + path);
    }
}

Trace read_csv(std::istream& in) {
    std::string line;
    if (!std::getline(in, line)) throw std::runtime_error("csv: missing header");
    const std::vector<std::string> header = split_row(line);
    if (header.size() < 4 || header[0] != "decision" || header[1] != "reward" ||
        header[2] != "propensity" || header[3] != "state")
        throw std::runtime_error("csv: unexpected header");

    std::size_t numeric_dims = 0, categorical_dims = 0;
    for (std::size_t i = 4; i < header.size(); ++i) {
        if (!header[i].empty() && header[i][0] == 'n') {
            ++numeric_dims;
        } else if (!header[i].empty() && header[i][0] == 'c') {
            ++categorical_dims;
        } else {
            throw std::runtime_error("csv: unknown column " + header[i]);
        }
    }

    Trace trace;
    std::size_t line_number = 1;
    while (std::getline(in, line)) {
        ++line_number;
        if (line.empty()) continue;
        const std::vector<std::string> cells = split_row(line);
        if (cells.size() != 4 + numeric_dims + categorical_dims)
            fail(line_number, "wrong cell count");
        LoggedTuple tuple;
        try {
            tuple.decision =
                static_cast<Decision>(parse_long_cell(cells[0], "decision"));
            tuple.reward = parse_double_cell(cells[1], "reward");
            tuple.propensity = parse_double_cell(cells[2], "propensity");
            tuple.state =
                static_cast<std::int32_t>(parse_long_cell(cells[3], "state"));
            tuple.context.numeric.reserve(numeric_dims);
            for (std::size_t i = 0; i < numeric_dims; ++i)
                tuple.context.numeric.push_back(
                    parse_double_cell(cells[4 + i], "numeric context"));
            tuple.context.categorical.reserve(categorical_dims);
            for (std::size_t i = 0; i < categorical_dims; ++i)
                tuple.context.categorical.push_back(static_cast<std::int32_t>(
                    parse_long_cell(cells[4 + numeric_dims + i],
                                    "categorical context")));
        } catch (const std::exception& e) {
            fail(line_number, e.what());
        }
        trace.add(std::move(tuple));
    }
    return trace;
}

Trace read_csv_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("read_csv_file: cannot open " + path);
    return read_csv(in);
}

} // namespace dre
