// CSV import/export for traces, so experiments can be persisted and
// analyzed outside the library.
//
// Format (one row per tuple, header included):
//   decision,reward,propensity,state,n0,n1,...,c0,c1,...
// The header declares the schema: numeric feature columns `n<i>` and
// categorical feature columns `c<i>`; every row must match it.
#ifndef DRE_TRACE_CSV_H
#define DRE_TRACE_CSV_H

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace dre {

void write_csv(const Trace& trace, std::ostream& out);
void write_csv_file(const Trace& trace, const std::string& path);

// Throws std::runtime_error on malformed input.
Trace read_csv(std::istream& in);
Trace read_csv_file(const std::string& path);

} // namespace dre

#endif // DRE_TRACE_CSV_H
