#include "trace/validate.h"

#include <cmath>
#include <vector>

namespace dre {

const char* reason_code(TupleDefect defect) noexcept {
    switch (defect) {
        case TupleDefect::kNone: return "ok";
        case TupleDefect::kNonFiniteReward: return "non-finite-reward";
        case TupleDefect::kNonFiniteContext: return "non-finite-context";
        case TupleDefect::kInvalidPropensity: return "invalid-propensity";
        case TupleDefect::kDecisionOutOfRange: return "decision-out-of-range";
    }
    return "unknown";
}

TupleDefect classify_tuple(const LoggedTuple& tuple,
                           std::size_t num_decisions) noexcept {
    if (!std::isfinite(tuple.reward)) return TupleDefect::kNonFiniteReward;
    for (const double x : tuple.context.numeric)
        if (!std::isfinite(x)) return TupleDefect::kNonFiniteContext;
    if (!(tuple.propensity > 0.0) || tuple.propensity > 1.0 ||
        !std::isfinite(tuple.propensity))
        return TupleDefect::kInvalidPropensity;
    if (tuple.decision < 0 ||
        (num_decisions > 0 &&
         static_cast<std::size_t>(tuple.decision) >= num_decisions))
        return TupleDefect::kDecisionOutOfRange;
    return TupleDefect::kNone;
}

std::map<std::string, std::uint64_t> count_defects(const Trace& trace,
                                                   std::size_t num_decisions) {
    std::map<std::string, std::uint64_t> counts;
    for (const LoggedTuple& t : trace) {
        const TupleDefect defect = classify_tuple(t, num_decisions);
        if (defect != TupleDefect::kNone) ++counts[reason_code(defect)];
    }
    return counts;
}

std::map<std::string, std::uint64_t> remove_defective_tuples(
    Trace& trace, std::size_t num_decisions) {
    std::map<std::string, std::uint64_t> counts;
    std::vector<LoggedTuple> kept;
    kept.reserve(trace.size());
    for (LoggedTuple& t : trace) {
        const TupleDefect defect = classify_tuple(t, num_decisions);
        if (defect == TupleDefect::kNone)
            kept.push_back(std::move(t));
        else
            ++counts[reason_code(defect)];
    }
    if (!counts.empty()) trace = Trace(std::move(kept));
    return counts;
}

} // namespace dre
