#include "trace/trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace dre {

std::size_t Trace::num_decisions() const noexcept {
    Decision max_decision = -1;
    for (const auto& t : tuples_) max_decision = std::max(max_decision, t.decision);
    return static_cast<std::size_t>(max_decision + 1);
}

std::vector<double> Trace::rewards() const {
    std::vector<double> out;
    out.reserve(tuples_.size());
    for (const auto& t : tuples_) out.push_back(t.reward);
    return out;
}

std::vector<double> Trace::propensities() const {
    std::vector<double> out;
    out.reserve(tuples_.size());
    for (const auto& t : tuples_) out.push_back(t.propensity);
    return out;
}

Trace Trace::filtered(const std::function<bool(const LoggedTuple&)>& keep) const {
    Trace out;
    for (const auto& t : tuples_)
        if (keep(t)) out.add(t);
    return out;
}

Trace Trace::with_state(std::int32_t state) const {
    return filtered([state](const LoggedTuple& t) { return t.state == state; });
}

std::pair<Trace, Trace> Trace::split(double train_fraction, stats::Rng& rng) const {
    if (train_fraction <= 0.0 || train_fraction >= 1.0)
        throw std::invalid_argument("Trace::split: fraction outside (0,1)");
    Trace train, holdout;
    for (const auto& t : tuples_) {
        if (rng.bernoulli(train_fraction)) {
            train.add(t);
        } else {
            holdout.add(t);
        }
    }
    return {std::move(train), std::move(holdout)};
}

Trace Trace::resampled(stats::Rng& rng) const {
    Trace out;
    out.reserve(size());
    for (std::size_t i = 0; i < size(); ++i)
        out.add(tuples_[rng.uniform_index(size())]);
    return out;
}

void validate_trace(const Trace& trace) {
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const LoggedTuple& t = trace[i];
        if (!std::isfinite(t.reward))
            throw std::invalid_argument("trace tuple " + std::to_string(i) +
                                        ": non-finite reward");
        if (!(t.propensity > 0.0) || t.propensity > 1.0)
            throw std::invalid_argument("trace tuple " + std::to_string(i) +
                                        ": propensity outside (0,1]");
        if (t.decision < 0)
            throw std::invalid_argument("trace tuple " + std::to_string(i) +
                                        ": negative decision id");
    }
}

} // namespace dre
