// Core data model for trace-driven evaluation (paper §2.1).
//
// A *client context* c is a featurized summary of the client and its
// surroundings (client IP bucket, location, device type, time of day, ...).
// A *decision* d is one of a finite decision space D (server choice, CDN,
// bitrate, relay path, configuration, ...). A *trace* is the logged set
// T = {(c_k, d_k, r_k)} produced by running an *old policy* mu_old, where
// r_k is the observed reward (performance metric).
#ifndef DRE_TRACE_TYPES_H
#define DRE_TRACE_TYPES_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dre {

// Identifier into a finite decision space [0, num_decisions).
using Decision = std::int32_t;

// Observed performance metric (QoE, -latency, throughput, ...); higher is
// better by convention throughout the library.
using Reward = double;

// A client context: a fixed-length vector of numeric features plus an
// optional vector of categorical features (small non-negative codes).
// Numeric and categorical parts are kept separate so that reward models can
// treat them appropriately (regression vs. exact matching / one-hot).
struct ClientContext {
    std::vector<double> numeric;
    std::vector<std::int32_t> categorical;

    ClientContext() = default;
    explicit ClientContext(std::vector<double> numeric_features,
                           std::vector<std::int32_t> categorical_features = {})
        : numeric(std::move(numeric_features)),
          categorical(std::move(categorical_features)) {}

    std::size_t numeric_dims() const noexcept { return numeric.size(); }
    std::size_t categorical_dims() const noexcept { return categorical.size(); }

    // Flatten to a single numeric vector (categoricals cast to double) for
    // generic regressors. One-hot expansion is the reward model's business.
    std::vector<double> flattened() const;

    bool operator==(const ClientContext&) const = default;
};

// One logged interaction. `propensity` is mu_old(d_k | c_k): the probability
// with which the logging policy chose the logged decision. The paper assumes
// it is known ("we assume knowledge of the probability..."); when it is not,
// dre::core::PropensityModel estimates it from the trace.
struct LoggedTuple {
    ClientContext context;
    Decision decision = 0;
    Reward reward = 0.0;
    double propensity = 1.0;
    // Optional system-state label (§4.1/§4.3: load regime, time-of-day, ...).
    // kNoState means unlabeled.
    std::int32_t state = kNoState;

    static constexpr std::int32_t kNoState = -1;
};

// Hash-like key for exact context matching (used by tabular models and the
// CFA matching estimator).
std::uint64_t context_fingerprint(const ClientContext& context) noexcept;

// Human-readable rendering for logs and error messages.
std::string to_string(const ClientContext& context);

} // namespace dre

#endif // DRE_TRACE_TYPES_H
