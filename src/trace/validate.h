// Structural tuple validation with stable reason codes.
//
// One classifier shared by every layer that meets raw tuples: the audit
// linter (core/audit), the load paths (CSV and .drt in dre_eval), and the
// hardened streaming evaluator (core/streaming), whose QuarantineReport
// uses exactly these reason-code strings. A tuple that passes is safe for
// every estimator: finite reward and context, propensity in (0, 1], and a
// decision inside [0, num_decisions).
#ifndef DRE_TRACE_VALIDATE_H
#define DRE_TRACE_VALIDATE_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "trace/trace.h"
#include "trace/types.h"

namespace dre {

enum class TupleDefect {
    kNone = 0,
    kNonFiniteReward,     // NaN/Inf reward
    kNonFiniteContext,    // NaN/Inf numeric context feature
    kInvalidPropensity,   // propensity outside (0, 1] or non-finite
    kDecisionOutOfRange,  // decision < 0 or >= num_decisions
};

// Stable machine-readable reason code (shared with QuarantineReport and
// the audit findings). kNone maps to "ok".
const char* reason_code(TupleDefect defect) noexcept;

// First defect found, or kNone. `num_decisions` of 0 skips the decision
// range check (callers that don't know the decision space yet still reject
// negative ids).
TupleDefect classify_tuple(const LoggedTuple& tuple,
                           std::size_t num_decisions) noexcept;

// Per-defect tuple counts over a whole trace (reason code -> count;
// defect-free tuples are not counted). Empty result == clean trace.
std::map<std::string, std::uint64_t> count_defects(const Trace& trace,
                                                   std::size_t num_decisions);

// Drops every defective tuple in place and returns the per-reason counts
// of what was removed. Order of surviving tuples is preserved.
std::map<std::string, std::uint64_t> remove_defective_tuples(
    Trace& trace, std::size_t num_decisions);

} // namespace dre

#endif // DRE_TRACE_VALIDATE_H
