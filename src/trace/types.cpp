#include "trace/types.h"

#include <cstdio>
#include <cstring>

namespace dre {

std::vector<double> ClientContext::flattened() const {
    std::vector<double> out;
    out.reserve(numeric.size() + categorical.size());
    out.insert(out.end(), numeric.begin(), numeric.end());
    for (std::int32_t c : categorical) out.push_back(static_cast<double>(c));
    return out;
}

std::uint64_t context_fingerprint(const ClientContext& context) noexcept {
    // FNV-1a over the raw bytes of both feature vectors. Numeric features are
    // hashed bit-exactly, which is what exact-match estimators want.
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix_bytes = [&h](const void* data, std::size_t size) {
        const auto* bytes = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < size; ++i) {
            h ^= bytes[i];
            h *= 0x100000001b3ull;
        }
    };
    for (double v : context.numeric) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        mix_bytes(&bits, sizeof(bits));
    }
    for (std::int32_t c : context.categorical) mix_bytes(&c, sizeof(c));
    return h;
}

std::string to_string(const ClientContext& context) {
    std::string out = "ctx{num=[";
    char buffer[32];
    for (std::size_t i = 0; i < context.numeric.size(); ++i) {
        std::snprintf(buffer, sizeof(buffer), "%g", context.numeric[i]);
        if (i) out += ',';
        out += buffer;
    }
    out += "], cat=[";
    for (std::size_t i = 0; i < context.categorical.size(); ++i) {
        std::snprintf(buffer, sizeof(buffer), "%d", context.categorical[i]);
        if (i) out += ',';
        out += buffer;
    }
    out += "]}";
    return out;
}

} // namespace dre
