// Trace container and utilities.
#ifndef DRE_TRACE_TRACE_H
#define DRE_TRACE_TRACE_H

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "stats/rng.h"
#include "trace/types.h"

namespace dre {

// Ordered collection of logged tuples. Order matters: the paper's
// non-stationary extension (§4.2) replays the trace "for the same clients in
// the same sequence".
class Trace {
public:
    Trace() = default;
    explicit Trace(std::vector<LoggedTuple> tuples) : tuples_(std::move(tuples)) {}

    void add(LoggedTuple tuple) { tuples_.push_back(std::move(tuple)); }
    void reserve(std::size_t n) { tuples_.reserve(n); }

    std::size_t size() const noexcept { return tuples_.size(); }
    bool empty() const noexcept { return tuples_.empty(); }
    const LoggedTuple& operator[](std::size_t i) const { return tuples_[i]; }
    LoggedTuple& operator[](std::size_t i) { return tuples_[i]; }
    const LoggedTuple& at(std::size_t i) const { return tuples_.at(i); }

    auto begin() const noexcept { return tuples_.begin(); }
    auto end() const noexcept { return tuples_.end(); }
    auto begin() noexcept { return tuples_.begin(); }
    auto end() noexcept { return tuples_.end(); }
    std::span<const LoggedTuple> tuples() const noexcept { return tuples_; }

    // Largest decision id present plus one (0 for an empty trace).
    std::size_t num_decisions() const noexcept;

    // All rewards / propensities as flat vectors (for summaries).
    std::vector<double> rewards() const;
    std::vector<double> propensities() const;

    // Tuples satisfying a predicate.
    Trace filtered(const std::function<bool(const LoggedTuple&)>& keep) const;

    // Tuples whose state label equals `state`.
    Trace with_state(std::int32_t state) const;

    // Random split into (train, holdout); `train_fraction` in (0, 1).
    std::pair<Trace, Trace> split(double train_fraction, stats::Rng& rng) const;

    // Bootstrap resample of the same size.
    Trace resampled(stats::Rng& rng) const;

private:
    std::vector<LoggedTuple> tuples_;
};

// Sanity checks used by the estimators: throws std::invalid_argument when a
// tuple has a non-finite reward, a propensity outside (0, 1], or a negative
// decision id.
void validate_trace(const Trace& trace);

} // namespace dre

#endif // DRE_TRACE_TRACE_H
