// SSE4.2 level: hardware CRC-32C and 4 × 2-lane double kernels.
//
// The CRC runs three independent `_mm_crc32_u64` streams per block to cover
// the instruction's 3-cycle latency, then stitches the streams together with
// a GF(2) zero-extension operator (the standard crc32_combine construction:
// CRC is linear over GF(2), so the register after A‖B‖C equals
// shift(shift(crcA) ^ crcB) ^ crcC where shift() advances a register over a
// block's worth of zero bytes). The operator is built once by repeated
// matrix squaring and flattened to byte lookup tables.
//
// The FP kernels execute the canonical 8-lane arithmetic on 4 xmm registers
// (xmm k holds lanes {2k, 2k+1}) — see kernels.h for why that makes them
// byte-identical to scalar.
#include "simd/kernels.h"

#if DRE_SIMD_X86

#include <immintrin.h>

#include <bit>
#include <cstring>

#define DRE_TARGET_SSE42 __attribute__((target("sse4.2")))

namespace dre::simd::detail {
namespace {

constexpr std::uint32_t kPoly = 0x82f63b78u;

// Bytes per interleaved stream. LONG amortizes the combine cost on row-group
// sized buffers; SHORT mops up medium remainders.
constexpr std::size_t kLongBlock = 4096;
constexpr std::size_t kShortBlock = 384;

// The "advance a CRC register over N zero bytes" operator, as 4×256 byte
// lookup tables. Built from the one-zero-bit operator (in the reflected
// domain: e0 → poly, ei → e(i-1)) raised to the 8Nth power by repeated
// squaring.
struct CrcShift {
    std::uint32_t table[4][256];

    explicit CrcShift(std::size_t zero_bytes) {
        std::uint32_t op[32], sq[32];
        op[0] = kPoly;
        for (int i = 1; i < 32; ++i) op[i] = 1u << (i - 1);
        // op currently shifts by 1 bit; square until it shifts by 8*N bits.
        std::uint64_t bits = static_cast<std::uint64_t>(zero_bytes) * 8;
        // Decompose: result = op^(bits). Exponentiate by squaring.
        std::uint32_t result[32];
        for (int i = 0; i < 32; ++i) result[i] = 1u << i; // identity
        while (bits != 0) {
            if (bits & 1u) {
                for (int i = 0; i < 32; ++i) sq[i] = times(op, result[i]);
                std::memcpy(result, sq, sizeof(result));
            }
            bits >>= 1;
            if (bits == 0) break;
            for (int i = 0; i < 32; ++i) sq[i] = times(op, op[i]);
            std::memcpy(op, sq, sizeof(op));
        }
        for (int k = 0; k < 4; ++k)
            for (std::uint32_t b = 0; b < 256; ++b)
                table[k][b] = times(result, b << (8 * k));
    }

    static std::uint32_t times(const std::uint32_t mat[32], std::uint32_t vec) {
        std::uint32_t sum = 0;
        for (int i = 0; vec != 0; vec >>= 1, ++i)
            if (vec & 1u) sum ^= mat[i];
        return sum;
    }

    std::uint32_t apply(std::uint32_t crc) const {
        return table[0][crc & 0xffu] ^ table[1][(crc >> 8) & 0xffu] ^
               table[2][(crc >> 16) & 0xffu] ^ table[3][crc >> 24];
    }
};

const CrcShift& long_shift() {
    static const CrcShift s(kLongBlock);
    return s;
}

const CrcShift& short_shift() {
    static const CrcShift s(kShortBlock);
    return s;
}

} // namespace

DRE_TARGET_SSE42
std::uint32_t crc32c_sse42(const void* data, std::size_t size,
                           std::uint32_t seed) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t crc32 = ~seed;
    while (size > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
        crc32 = _mm_crc32_u8(crc32, *p++);
        --size;
    }
    std::uint64_t crc = crc32;
    const struct {
        std::size_t block;
        const CrcShift* shift;
    } phases[2] = {{kLongBlock, &long_shift()}, {kShortBlock, &short_shift()}};
    for (const auto& phase : phases) {
        const std::size_t block = phase.block;
        while (size >= 3 * block) {
            std::uint64_t c0 = crc, c1 = 0, c2 = 0;
            for (std::size_t i = 0; i < block; i += 8) {
                std::uint64_t w0, w1, w2;
                std::memcpy(&w0, p + i, 8);
                std::memcpy(&w1, p + block + i, 8);
                std::memcpy(&w2, p + 2 * block + i, 8);
                c0 = _mm_crc32_u64(c0, w0);
                c1 = _mm_crc32_u64(c1, w1);
                c2 = _mm_crc32_u64(c2, w2);
            }
            std::uint32_t combined =
                phase.shift->apply(static_cast<std::uint32_t>(c0)) ^
                static_cast<std::uint32_t>(c1);
            combined =
                phase.shift->apply(combined) ^ static_cast<std::uint32_t>(c2);
            crc = combined;
            p += 3 * block;
            size -= 3 * block;
        }
    }
    while (size >= 8) {
        std::uint64_t w;
        std::memcpy(&w, p, 8);
        crc = _mm_crc32_u64(crc, w);
        p += 8;
        size -= 8;
    }
    crc32 = static_cast<std::uint32_t>(crc);
    while (size-- != 0) crc32 = _mm_crc32_u8(crc32, *p++);
    return ~crc32;
}

DRE_TARGET_SSE42
std::size_t l2sq_scan_sse42(const double* blocks, std::size_t num_blocks,
                            std::size_t dims, const double* query,
                            double worst, double* cand_d2,
                            std::uint32_t* cand_idx) {
    const __m128d worst_v = _mm_set1_pd(worst);
    std::size_t count = 0;
    std::size_t b = 0;
    // Paired blocks (see the scalar spec): 8 independent accumulator
    // chains; the abandon predicate covers all 16 lanes of the pair.
    for (; b + 2 <= num_blocks; b += 2) {
        const double* blk0 = blocks + b * dims * 8;
        const double* blk1 = blk0 + dims * 8;
        __m128d acc[8];
        for (int r = 0; r < 8; ++r) acc[r] = _mm_setzero_pd();
        bool aborted = false;
        for (std::size_t d = 0; d < dims; ++d) {
            const __m128d q = _mm_set1_pd(query[d]);
            const double* c0 = blk0 + d * 8;
            const double* c1 = blk1 + d * 8;
            for (int r = 0; r < 4; ++r) {
                const __m128d diff = _mm_sub_pd(_mm_loadu_pd(c0 + 2 * r), q);
                acc[r] = _mm_add_pd(acc[r], _mm_mul_pd(diff, diff));
            }
            for (int r = 0; r < 4; ++r) {
                const __m128d diff = _mm_sub_pd(_mm_loadu_pd(c1 + 2 * r), q);
                acc[4 + r] = _mm_add_pd(acc[4 + r], _mm_mul_pd(diff, diff));
            }
            if ((d & (kAbortStride - 1)) == kAbortStride - 1) {
                int m = 0x3;
                for (int r = 0; r < 8; ++r)
                    m &= _mm_movemask_pd(_mm_cmpgt_pd(acc[r], worst_v));
                if (m == 0x3) {
                    aborted = true;
                    break;
                }
            }
        }
        if (aborted) continue;
        unsigned mask = 0;
        for (int r = 0; r < 8; ++r)
            mask |= static_cast<unsigned>(
                        _mm_movemask_pd(_mm_cmple_pd(acc[r], worst_v)))
                    << (2 * r);
        if (mask == 0) continue;
        double lanes[16];
        for (int r = 0; r < 8; ++r) _mm_storeu_pd(lanes + 2 * r, acc[r]);
        do {
            const int lane = std::countr_zero(mask);
            cand_d2[count] = lanes[lane];
            cand_idx[count] = static_cast<std::uint32_t>(b * 8 + lane);
            ++count;
            mask &= mask - 1;
        } while (mask != 0);
    }
    for (; b < num_blocks; ++b) {
        const double* block = blocks + b * dims * 8;
        __m128d acc0 = _mm_setzero_pd(), acc1 = _mm_setzero_pd();
        __m128d acc2 = _mm_setzero_pd(), acc3 = _mm_setzero_pd();
        bool aborted = false;
        for (std::size_t d = 0; d < dims; ++d) {
            const __m128d q = _mm_set1_pd(query[d]);
            const double* col = block + d * 8;
            const __m128d d0 = _mm_sub_pd(_mm_loadu_pd(col), q);
            const __m128d d1 = _mm_sub_pd(_mm_loadu_pd(col + 2), q);
            const __m128d d2 = _mm_sub_pd(_mm_loadu_pd(col + 4), q);
            const __m128d d3 = _mm_sub_pd(_mm_loadu_pd(col + 6), q);
            acc0 = _mm_add_pd(acc0, _mm_mul_pd(d0, d0));
            acc1 = _mm_add_pd(acc1, _mm_mul_pd(d1, d1));
            acc2 = _mm_add_pd(acc2, _mm_mul_pd(d2, d2));
            acc3 = _mm_add_pd(acc3, _mm_mul_pd(d3, d3));
            // Ordered GT per lane, abandon only when all 8 exceed — same
            // strided predicate as the scalar spec (a NaN lane compares
            // false and blocks the abort).
            if ((d & (kAbortStride - 1)) == kAbortStride - 1) {
                const int m = _mm_movemask_pd(_mm_cmpgt_pd(acc0, worst_v)) &
                              _mm_movemask_pd(_mm_cmpgt_pd(acc1, worst_v)) &
                              _mm_movemask_pd(_mm_cmpgt_pd(acc2, worst_v)) &
                              _mm_movemask_pd(_mm_cmpgt_pd(acc3, worst_v));
                if (m == 0x3) {
                    aborted = true;
                    break;
                }
            }
        }
        if (aborted) continue;
        // Candidate mask: ordered LE per lane (NaN lanes never qualify),
        // xmm k holding lanes {2k, 2k+1}.
        const unsigned m0 = static_cast<unsigned>(
            _mm_movemask_pd(_mm_cmple_pd(acc0, worst_v)));
        const unsigned m1 = static_cast<unsigned>(
            _mm_movemask_pd(_mm_cmple_pd(acc1, worst_v)));
        const unsigned m2 = static_cast<unsigned>(
            _mm_movemask_pd(_mm_cmple_pd(acc2, worst_v)));
        const unsigned m3 = static_cast<unsigned>(
            _mm_movemask_pd(_mm_cmple_pd(acc3, worst_v)));
        unsigned mask = m0 | (m1 << 2) | (m2 << 4) | (m3 << 6);
        if (mask == 0) continue;
        double lanes[8];
        _mm_storeu_pd(lanes + 0, acc0);
        _mm_storeu_pd(lanes + 2, acc1);
        _mm_storeu_pd(lanes + 4, acc2);
        _mm_storeu_pd(lanes + 6, acc3);
        do {
            const int lane = std::countr_zero(mask);
            cand_d2[count] = lanes[lane];
            cand_idx[count] = static_cast<std::uint32_t>(b * 8 + lane);
            ++count;
            mask &= mask - 1;
        } while (mask != 0);
    }
    return count;
}

DRE_TARGET_SSE42
double dot8_sse42(const double* a, const double* b, std::size_t n) {
    __m128d acc0 = _mm_setzero_pd(), acc1 = _mm_setzero_pd();
    __m128d acc2 = _mm_setzero_pd(), acc3 = _mm_setzero_pd();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        acc0 = _mm_add_pd(acc0,
                          _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
        acc1 = _mm_add_pd(acc1, _mm_mul_pd(_mm_loadu_pd(a + i + 2),
                                           _mm_loadu_pd(b + i + 2)));
        acc2 = _mm_add_pd(acc2, _mm_mul_pd(_mm_loadu_pd(a + i + 4),
                                           _mm_loadu_pd(b + i + 4)));
        acc3 = _mm_add_pd(acc3, _mm_mul_pd(_mm_loadu_pd(a + i + 6),
                                           _mm_loadu_pd(b + i + 6)));
    }
    double lanes[8];
    _mm_storeu_pd(lanes + 0, acc0);
    _mm_storeu_pd(lanes + 2, acc1);
    _mm_storeu_pd(lanes + 4, acc2);
    _mm_storeu_pd(lanes + 6, acc3);
    dot8_tail(lanes, a, b, i, n);
    return reduce8(lanes);
}

DRE_TARGET_SSE42
double weighted_sum_skip_zero_sse42(const double* w, const double* x,
                                    std::size_t n, std::uint64_t* skips) {
    const __m128d zero = _mm_setzero_pd();
    __m128d acc0 = _mm_setzero_pd(), acc1 = _mm_setzero_pd();
    __m128d acc2 = _mm_setzero_pd(), acc3 = _mm_setzero_pd();
    std::uint64_t zeros = 0;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128d w0 = _mm_loadu_pd(w + i), w1 = _mm_loadu_pd(w + i + 2);
        const __m128d w2 = _mm_loadu_pd(w + i + 4),
                      w3 = _mm_loadu_pd(w + i + 6);
        // Zero-weight lanes are masked to +0.0 AFTER the multiply, so a
        // non-finite x under zero weight contributes exactly +0.0 — same
        // value the scalar skip produces (see simd.h). cmpneq is
        // unordered-or-unequal: a NaN weight counts as nonzero, matching
        // the scalar `w != 0.0` path; cmpeq is ordered, so NaN weights are
        // not counted as skips either.
        const __m128d nz0 = _mm_cmpneq_pd(w0, zero);
        const __m128d nz1 = _mm_cmpneq_pd(w1, zero);
        const __m128d nz2 = _mm_cmpneq_pd(w2, zero);
        const __m128d nz3 = _mm_cmpneq_pd(w3, zero);
        acc0 = _mm_add_pd(
            acc0, _mm_and_pd(nz0, _mm_mul_pd(w0, _mm_loadu_pd(x + i))));
        acc1 = _mm_add_pd(
            acc1, _mm_and_pd(nz1, _mm_mul_pd(w1, _mm_loadu_pd(x + i + 2))));
        acc2 = _mm_add_pd(
            acc2, _mm_and_pd(nz2, _mm_mul_pd(w2, _mm_loadu_pd(x + i + 4))));
        acc3 = _mm_add_pd(
            acc3, _mm_and_pd(nz3, _mm_mul_pd(w3, _mm_loadu_pd(x + i + 6))));
        const int eq = _mm_movemask_pd(_mm_cmpeq_pd(w0, zero)) |
                       _mm_movemask_pd(_mm_cmpeq_pd(w1, zero)) << 2 |
                       _mm_movemask_pd(_mm_cmpeq_pd(w2, zero)) << 4 |
                       _mm_movemask_pd(_mm_cmpeq_pd(w3, zero)) << 6;
        zeros += static_cast<std::uint64_t>(std::popcount(
            static_cast<unsigned>(eq)));
    }
    double lanes[8];
    _mm_storeu_pd(lanes + 0, acc0);
    _mm_storeu_pd(lanes + 2, acc1);
    _mm_storeu_pd(lanes + 4, acc2);
    _mm_storeu_pd(lanes + 6, acc3);
    weighted_tail(lanes, w, x, i, n, zeros);
    if (skips != nullptr) *skips += zeros;
    return reduce8(lanes);
}

} // namespace dre::simd::detail

#endif // DRE_SIMD_X86
