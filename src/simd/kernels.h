// Internal per-level kernel declarations and the shared canonical helpers.
//
// Every kernel's semantics are fixed by the scalar implementation in
// kernels_scalar.cpp (see simd.h for the lane-blocking contract). The
// helpers here — the reduce tree and the per-lane tail folds — are the
// pieces of that contract the vector implementations share verbatim: a
// vector kernel spills its register lanes to the acc[8] array *in lane
// order*, folds the ragged tail with the same helper the scalar kernel
// uses, and reduces with the same tree. That, plus "no FMA anywhere in
// this library" (enforced by -ffp-contract=off on the target), is what
// makes every level byte-identical.
#ifndef DRE_SIMD_KERNELS_H
#define DRE_SIMD_KERNELS_H

#include <cstddef>
#include <cstdint>

// x86-64 with a compiler that supports per-function target attributes
// (GCC/Clang). Everything else runs the scalar level only.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DRE_SIMD_X86 1
#else
#define DRE_SIMD_X86 0
#endif

namespace dre::simd::detail {

// l2sq_scan tests its early-abort predicate (over a block pair's 16 lanes,
// or the trailing odd block's 8 — see simd.h) only on every
// kAbortStride-th dimension (d % kAbortStride == kAbortStride - 1).
// Per-dimension checks cost about as much as the arithmetic itself on the
// wide levels; striding keeps the abort's bounded-waste property while
// restoring the vector levels' arithmetic advantage. Power of two, and
// part of the cross-level contract: every level strides identically, so
// per-level work counters still match. An aborted block and a block whose
// lanes all miss the threshold both contribute no candidates — the caller
// can't tell them apart, so the stride is invisible to results.
inline constexpr std::size_t kAbortStride = 4;

// Canonical horizontal reduce: ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)).
inline double reduce8(const double acc[8]) noexcept {
    return ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
           ((acc[4] + acc[5]) + (acc[6] + acc[7]));
}

// Tail folds, shared by every level. `begin` must be a multiple of 8 (the
// vector body consumed whole blocks), so lane (i mod 8) == i - begin.
inline void dot8_tail(double acc[8], const double* a, const double* b,
                      std::size_t begin, std::size_t n) noexcept {
    for (std::size_t i = begin; i < n; ++i) acc[i & 7] += a[i] * b[i];
}

inline void weighted_tail(double acc[8], const double* w, const double* x,
                          std::size_t begin, std::size_t n,
                          std::uint64_t& zeros) noexcept {
    for (std::size_t i = begin; i < n; ++i) {
        const double p = w[i];
        if (p == 0.0) {
            ++zeros;
            continue; // exactly +0.0 contributed; see simd.h
        }
        acc[i & 7] += p * x[i];
    }
}

inline void gather_sum8_tail(double acc[8], const double* values,
                             const std::uint32_t* idx, std::size_t begin,
                             std::size_t n) noexcept {
    for (std::size_t i = begin; i < n; ++i) acc[i & 7] += values[idx[i]];
}

// --- Scalar level (the executable specification) ---------------------------

std::uint32_t crc32c_scalar(const void* data, std::size_t size,
                            std::uint32_t seed);
std::size_t l2sq_scan_scalar(const double* blocks, std::size_t num_blocks,
                             std::size_t dims, const double* query,
                             double worst, double* cand_d2,
                             std::uint32_t* cand_idx);
double dot8_scalar(const double* a, const double* b, std::size_t n);
double weighted_sum_skip_zero_scalar(const double* w, const double* x,
                                     std::size_t n, std::uint64_t* skips);
void gather_scalar(const double* values, const std::uint32_t* idx,
                   std::size_t n, double* out);
double gather_sum8_scalar(const double* values, const std::uint32_t* idx,
                          std::size_t n);

#if DRE_SIMD_X86

// --- SSE4.2 level (hardware crc32; 2-lane double vectors) -------------------

std::uint32_t crc32c_sse42(const void* data, std::size_t size,
                           std::uint32_t seed);
std::size_t l2sq_scan_sse42(const double* blocks, std::size_t num_blocks,
                            std::size_t dims, const double* query,
                            double worst, double* cand_d2,
                            std::uint32_t* cand_idx);
double dot8_sse42(const double* a, const double* b, std::size_t n);
double weighted_sum_skip_zero_sse42(const double* w, const double* x,
                                    std::size_t n, std::uint64_t* skips);

// --- AVX2 level (4-lane double vectors, gathers; crc32 inherited) -----------

std::size_t l2sq_scan_avx2(const double* blocks, std::size_t num_blocks,
                           std::size_t dims, const double* query, double worst,
                           double* cand_d2, std::uint32_t* cand_idx);
double dot8_avx2(const double* a, const double* b, std::size_t n);
double weighted_sum_skip_zero_avx2(const double* w, const double* x,
                                   std::size_t n, std::uint64_t* skips);
void gather_avx2(const double* values, const std::uint32_t* idx, std::size_t n,
                 double* out);
double gather_sum8_avx2(const double* values, const std::uint32_t* idx,
                        std::size_t n);

#endif // DRE_SIMD_X86

} // namespace dre::simd::detail

#endif // DRE_SIMD_KERNELS_H
