// Scalar level: the executable specification of every kernel's canonical
// arithmetic. The vector levels must match these byte-for-byte (see simd.h);
// tests/test_simd.cpp enforces it. Written with the 8-lane blocking spelled
// out rather than a simple running sum, because the lane structure IS the
// contract, not an optimization.
#include "simd/kernels.h"

#include <array>
#include <bit>
#include <cstring>

namespace dre::simd::detail {
namespace {

// Reflected CRC-32C polynomial (Castagnoli).
constexpr std::uint32_t kPoly = 0x82f63b78u;

struct CrcTables {
    // table[0] is the classic byte-at-a-time table; table[k] advances a byte
    // that sits k positions deeper in the message, enabling 8-byte strides.
    std::array<std::array<std::uint32_t, 256>, 8> table;

    CrcTables() {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t crc = i;
            for (int bit = 0; bit < 8; ++bit)
                crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
            table[0][i] = crc;
        }
        for (std::size_t k = 1; k < 8; ++k)
            for (std::uint32_t i = 0; i < 256; ++i)
                table[k][i] =
                    (table[k - 1][i] >> 8) ^ table[0][table[k - 1][i] & 0xffu];
    }
};

const CrcTables& crc_tables() {
    static const CrcTables t;
    return t;
}

} // namespace

std::uint32_t crc32c_scalar(const void* data, std::size_t size,
                            std::uint32_t seed) {
    const auto& t = crc_tables().table;
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t crc = ~seed;
    // The 8-byte stride folds two 32-bit words at once; the word-extraction
    // below assumes little-endian layout, so other hosts take the (equally
    // correct, slower) byte loop. Cross-endian files are rejected by the
    // store header's endian check anyway (store/format.h).
    if constexpr (std::endian::native == std::endian::little) {
        while (size >= 8) {
            std::uint32_t lo, hi;
            std::memcpy(&lo, p, 4);
            std::memcpy(&hi, p + 4, 4);
            lo ^= crc;
            crc = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^
                  t[5][(lo >> 16) & 0xffu] ^ t[4][lo >> 24] ^
                  t[3][hi & 0xffu] ^ t[2][(hi >> 8) & 0xffu] ^
                  t[1][(hi >> 16) & 0xffu] ^ t[0][hi >> 24];
            p += 8;
            size -= 8;
        }
    }
    while (size-- != 0) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xffu];
    return ~crc;
}

std::size_t l2sq_scan_scalar(const double* blocks, std::size_t num_blocks,
                             std::size_t dims, const double* query,
                             double worst, double* cand_d2,
                             std::uint32_t* cand_idx) {
    std::size_t count = 0;
    std::size_t b = 0;
    // Paired blocks: 16 lanes accumulated side by side. The pair is
    // abandoned only when ALL 16 partial sums exceed `worst` — a weaker
    // predicate than per-block abandonment, but it doubles the number of
    // independent accumulator chains, which is what the latency-bound
    // vector levels need. The pairing (and its abandon predicate) is part
    // of the cross-level contract: every level pairs identically, so work
    // counters and candidate lists match. Candidates are still appended in
    // slot order because pair lane l maps to slot b*8 + l for l in [0, 16).
    for (; b + 2 <= num_blocks; b += 2) {
        const double* blk0 = blocks + b * dims * 8;
        const double* blk1 = blk0 + dims * 8;
        double acc[16] = {};
        bool aborted = false;
        for (std::size_t d = 0; d < dims; ++d) {
            const double q = query[d];
            const double* c0 = blk0 + d * 8;
            const double* c1 = blk1 + d * 8;
            for (int lane = 0; lane < 8; ++lane) {
                const double diff = c0[lane] - q;
                acc[lane] += diff * diff;
            }
            for (int lane = 0; lane < 8; ++lane) {
                const double diff = c1[lane] - q;
                acc[8 + lane] += diff * diff;
            }
            if ((d & (kAbortStride - 1)) == kAbortStride - 1) {
                bool all_exceed = true;
                for (int lane = 0; lane < 16; ++lane)
                    all_exceed &= (acc[lane] > worst);
                if (all_exceed) {
                    aborted = true;
                    break;
                }
            }
        }
        if (aborted) continue;
        for (int lane = 0; lane < 16; ++lane) {
            if (acc[lane] <= worst) {
                cand_d2[count] = acc[lane];
                cand_idx[count] = static_cast<std::uint32_t>(b * 8 + lane);
                ++count;
            }
        }
    }
    for (; b < num_blocks; ++b) {
        const double* block = blocks + b * dims * 8;
        double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
        bool aborted = false;
        for (std::size_t d = 0; d < dims; ++d) {
            const double q = query[d];
            const double* col = block + d * 8;
            for (int lane = 0; lane < 8; ++lane) {
                const double diff = col[lane] - q;
                acc[lane] += diff * diff;
            }
            // Abandon the block only when EVERY lane's partial sum
            // strictly exceeds `worst` (partial sums only grow, so no lane
            // could still become a candidate). Checked every
            // kAbortStride-th dimension — see kernels.h. Ordered compare:
            // a NaN lane never reports "exceeds", matching the vector
            // levels' ordered-GT semantics.
            if ((d & (kAbortStride - 1)) == kAbortStride - 1) {
                bool all_exceed = true;
                for (int lane = 0; lane < 8; ++lane)
                    all_exceed &= (acc[lane] > worst);
                if (all_exceed) {
                    aborted = true;
                    break;
                }
            }
        }
        if (aborted) continue;
        // Candidates: lanes whose final distance is <= worst (ordered, so
        // a NaN lane never qualifies — matching the vector levels' LE_OQ),
        // appended in lane order.
        for (int lane = 0; lane < 8; ++lane) {
            if (acc[lane] <= worst) {
                cand_d2[count] = acc[lane];
                cand_idx[count] = static_cast<std::uint32_t>(b * 8 + lane);
                ++count;
            }
        }
    }
    return count;
}

double dot8_scalar(const double* a, const double* b, std::size_t n) {
    double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        for (int lane = 0; lane < 8; ++lane)
            acc[lane] += a[i + lane] * b[i + lane];
    dot8_tail(acc, a, b, i, n);
    return reduce8(acc);
}

double weighted_sum_skip_zero_scalar(const double* w, const double* x,
                                     std::size_t n, std::uint64_t* skips) {
    double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::uint64_t zeros = 0;
    weighted_tail(acc, w, x, 0, n, zeros);
    if (skips != nullptr) *skips += zeros;
    return reduce8(acc);
}

void gather_scalar(const double* values, const std::uint32_t* idx,
                   std::size_t n, double* out) {
    for (std::size_t i = 0; i < n; ++i) out[i] = values[idx[i]];
}

double gather_sum8_scalar(const double* values, const std::uint32_t* idx,
                          std::size_t n) {
    double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    gather_sum8_tail(acc, values, idx, 0, n);
    return reduce8(acc);
}

} // namespace dre::simd::detail
