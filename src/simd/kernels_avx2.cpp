// AVX2 level: 2 × 4-lane double kernels and gathers (ymm k holds lanes
// {4k .. 4k+3}); the CRC pointer is inherited from the SSE4.2 level in
// dispatch.cpp. Same canonical 8-lane arithmetic as the scalar spec — see
// kernels.h.
#include "simd/kernels.h"

#if DRE_SIMD_X86

#include <immintrin.h>

#include <bit>

#define DRE_TARGET_AVX2 __attribute__((target("avx2")))

namespace dre::simd::detail {
namespace {

// All-lanes-enabled gather. The masked form with an explicit zero source is
// semantically identical to the plain intrinsic but avoids GCC's
// maybe-uninitialized warning on _mm256_undefined_pd.
DRE_TARGET_AVX2
inline __m256d gather4(const double* values, const std::uint32_t* idx) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    return _mm256_mask_i32gather_pd(_mm256_setzero_pd(), values, vi, all, 8);
}

} // namespace

DRE_TARGET_AVX2
std::size_t l2sq_scan_avx2(const double* blocks, std::size_t num_blocks,
                           std::size_t dims, const double* query, double worst,
                           double* cand_d2, std::uint32_t* cand_idx) {
    const __m256d worst_v = _mm256_set1_pd(worst);
    std::size_t count = 0;
    std::size_t b = 0;
    // Paired blocks (see the scalar spec): 4 independent accumulator
    // chains instead of 2, which halves the vaddpd latency floor this
    // loop is bound by. Abandon predicate covers all 16 lanes of the pair.
    for (; b + 2 <= num_blocks; b += 2) {
        const double* blk0 = blocks + b * dims * 8;
        const double* blk1 = blk0 + dims * 8;
        __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
        __m256d acc2 = _mm256_setzero_pd(), acc3 = _mm256_setzero_pd();
        bool aborted = false;
        for (std::size_t d = 0; d < dims; ++d) {
            const __m256d q = _mm256_set1_pd(query[d]);
            const double* c0 = blk0 + d * 8;
            const double* c1 = blk1 + d * 8;
            const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(c0), q);
            const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(c0 + 4), q);
            const __m256d d2 = _mm256_sub_pd(_mm256_loadu_pd(c1), q);
            const __m256d d3 = _mm256_sub_pd(_mm256_loadu_pd(c1 + 4), q);
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
            acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(d2, d2));
            acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(d3, d3));
            if ((d & (kAbortStride - 1)) == kAbortStride - 1) {
                const int m = _mm256_movemask_pd(
                                  _mm256_cmp_pd(acc0, worst_v, _CMP_GT_OQ)) &
                              _mm256_movemask_pd(
                                  _mm256_cmp_pd(acc1, worst_v, _CMP_GT_OQ)) &
                              _mm256_movemask_pd(
                                  _mm256_cmp_pd(acc2, worst_v, _CMP_GT_OQ)) &
                              _mm256_movemask_pd(
                                  _mm256_cmp_pd(acc3, worst_v, _CMP_GT_OQ));
                if (m == 0xf) {
                    aborted = true;
                    break;
                }
            }
        }
        if (aborted) continue;
        const unsigned m0 = static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_cmp_pd(acc0, worst_v, _CMP_LE_OQ)));
        const unsigned m1 = static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_cmp_pd(acc1, worst_v, _CMP_LE_OQ)));
        const unsigned m2 = static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_cmp_pd(acc2, worst_v, _CMP_LE_OQ)));
        const unsigned m3 = static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_cmp_pd(acc3, worst_v, _CMP_LE_OQ)));
        unsigned mask = m0 | (m1 << 4) | (m2 << 8) | (m3 << 12);
        if (mask == 0) continue;
        double lanes[16];
        _mm256_storeu_pd(lanes + 0, acc0);
        _mm256_storeu_pd(lanes + 4, acc1);
        _mm256_storeu_pd(lanes + 8, acc2);
        _mm256_storeu_pd(lanes + 12, acc3);
        do {
            const int lane = std::countr_zero(mask);
            cand_d2[count] = lanes[lane];
            cand_idx[count] = static_cast<std::uint32_t>(b * 8 + lane);
            ++count;
            mask &= mask - 1;
        } while (mask != 0);
    }
    for (; b < num_blocks; ++b) {
        const double* block = blocks + b * dims * 8;
        __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
        bool aborted = false;
        for (std::size_t d = 0; d < dims; ++d) {
            const __m256d q = _mm256_set1_pd(query[d]);
            const double* col = block + d * 8;
            const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(col), q);
            const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(col + 4), q);
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
            // Strided abandon, same predicate as the scalar spec.
            if ((d & (kAbortStride - 1)) == kAbortStride - 1) {
                const int m = _mm256_movemask_pd(
                                  _mm256_cmp_pd(acc0, worst_v, _CMP_GT_OQ)) &
                              _mm256_movemask_pd(
                                  _mm256_cmp_pd(acc1, worst_v, _CMP_GT_OQ));
                if (m == 0xf) {
                    aborted = true;
                    break;
                }
            }
        }
        if (aborted) continue;
        // Candidate mask: ordered LE per lane (NaN lanes never qualify),
        // ymm k holding lanes {4k .. 4k+3}.
        const unsigned m0 = static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_cmp_pd(acc0, worst_v, _CMP_LE_OQ)));
        const unsigned m1 = static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_cmp_pd(acc1, worst_v, _CMP_LE_OQ)));
        unsigned mask = m0 | (m1 << 4);
        if (mask == 0) continue;
        double lanes[8];
        _mm256_storeu_pd(lanes + 0, acc0);
        _mm256_storeu_pd(lanes + 4, acc1);
        do {
            const int lane = std::countr_zero(mask);
            cand_d2[count] = lanes[lane];
            cand_idx[count] = static_cast<std::uint32_t>(b * 8 + lane);
            ++count;
            mask &= mask - 1;
        } while (mask != 0);
    }
    return count;
}

DRE_TARGET_AVX2
double dot8_avx2(const double* a, const double* b, std::size_t n) {
    __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        acc0 = _mm256_add_pd(
            acc0, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_loadu_pd(a + i + 4),
                                                 _mm256_loadu_pd(b + i + 4)));
    }
    double lanes[8];
    _mm256_storeu_pd(lanes + 0, acc0);
    _mm256_storeu_pd(lanes + 4, acc1);
    dot8_tail(lanes, a, b, i, n);
    return reduce8(lanes);
}

DRE_TARGET_AVX2
double weighted_sum_skip_zero_avx2(const double* w, const double* x,
                                   std::size_t n, std::uint64_t* skips) {
    const __m256d zero = _mm256_setzero_pd();
    __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
    std::uint64_t zeros = 0;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256d w0 = _mm256_loadu_pd(w + i);
        const __m256d w1 = _mm256_loadu_pd(w + i + 4);
        // Mask-after-multiply; NEQ_UQ / EQ_OQ — same NaN and +0.0 semantics
        // as the SSE4.2 level (documented there and in simd.h).
        const __m256d nz0 = _mm256_cmp_pd(w0, zero, _CMP_NEQ_UQ);
        const __m256d nz1 = _mm256_cmp_pd(w1, zero, _CMP_NEQ_UQ);
        acc0 = _mm256_add_pd(
            acc0, _mm256_and_pd(nz0, _mm256_mul_pd(w0, _mm256_loadu_pd(x + i))));
        acc1 = _mm256_add_pd(
            acc1,
            _mm256_and_pd(nz1, _mm256_mul_pd(w1, _mm256_loadu_pd(x + i + 4))));
        const int eq =
            _mm256_movemask_pd(_mm256_cmp_pd(w0, zero, _CMP_EQ_OQ)) |
            _mm256_movemask_pd(_mm256_cmp_pd(w1, zero, _CMP_EQ_OQ)) << 4;
        zeros += static_cast<std::uint64_t>(
            std::popcount(static_cast<unsigned>(eq)));
    }
    double lanes[8];
    _mm256_storeu_pd(lanes + 0, acc0);
    _mm256_storeu_pd(lanes + 4, acc1);
    weighted_tail(lanes, w, x, i, n, zeros);
    if (skips != nullptr) *skips += zeros;
    return reduce8(lanes);
}

DRE_TARGET_AVX2
void gather_avx2(const double* values, const std::uint32_t* idx, std::size_t n,
                 double* out) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(out + i, gather4(values, idx + i));
    for (; i < n; ++i) out[i] = values[idx[i]];
}

DRE_TARGET_AVX2
double gather_sum8_avx2(const double* values, const std::uint32_t* idx,
                        std::size_t n) {
    __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        acc0 = _mm256_add_pd(acc0, gather4(values, idx + i));
        acc1 = _mm256_add_pd(acc1, gather4(values, idx + i + 4));
    }
    double lanes[8];
    _mm256_storeu_pd(lanes + 0, acc0);
    _mm256_storeu_pd(lanes + 4, acc1);
    gather_sum8_tail(lanes, values, idx, i, n);
    return reduce8(lanes);
}

} // namespace dre::simd::detail

#endif // DRE_SIMD_X86
