// Runtime dispatch: one CPUID probe, one optional DRE_SIMD override read on
// first use, immutable per-level tables, an atomic pointer to the active
// one. Levels without their own implementation of a kernel inherit the
// next-lower level's pointer here (e.g. AVX2 reuses the SSE4.2 CRC, SSE4.2
// reuses the scalar gathers) — the table is the single place that encodes
// the inheritance.
#include "simd/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "simd/kernels.h"

namespace dre::simd {
namespace {

using namespace detail;

constexpr Ops kScalarOps = {crc32c_scalar,
                            l2sq_scan_scalar,
                            dot8_scalar,
                            weighted_sum_skip_zero_scalar,
                            gather_scalar,
                            gather_sum8_scalar};

#if DRE_SIMD_X86
constexpr Ops kSse42Ops = {crc32c_sse42,
                           l2sq_scan_sse42,
                           dot8_sse42,
                           weighted_sum_skip_zero_sse42,
                           gather_scalar,     // no SSE gather instruction
                           gather_sum8_scalar};

constexpr Ops kAvx2Ops = {crc32c_sse42,      // crc32 maxes out at SSE4.2
                          l2sq_scan_avx2,
                          dot8_avx2,
                          weighted_sum_skip_zero_avx2,
                          gather_avx2,
                          gather_sum8_avx2};
#endif

const Ops& table_for(Level level) noexcept {
#if DRE_SIMD_X86
    switch (level) {
        case Level::kAvx2: return kAvx2Ops;
        case Level::kSse42: return kSse42Ops;
        case Level::kScalar: break;
    }
#else
    (void)level;
#endif
    return kScalarOps;
}

Level min_level(Level a, Level b) noexcept {
    return static_cast<int>(a) < static_cast<int>(b) ? a : b;
}

Level probe_cpu() noexcept {
#if DRE_SIMD_X86
    if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
    if (__builtin_cpu_supports("sse4.2")) return Level::kSse42;
#endif
    return Level::kScalar;
}

std::atomic<const Ops*> g_active{nullptr};
std::atomic<int> g_active_level{static_cast<int>(Level::kScalar)};

// First-use initialization: detected level clamped by DRE_SIMD if set.
// Racing threads compute the same answer (the environment is stable), so
// the last-writer-wins stores are benign.
const Ops* init_active() noexcept {
    Level level = detected_level();
    if (const char* env = std::getenv("DRE_SIMD"); env != nullptr && *env) {
        if (const std::optional<Level> parsed = parse_level(env)) {
            level = min_level(*parsed, level);
        } else {
            std::fprintf(stderr,
                         "dre::simd: ignoring unrecognized DRE_SIMD=\"%s\" "
                         "(expected scalar|sse42|avx2)\n",
                         env);
        }
    }
    const Ops* table = &table_for(level);
    g_active_level.store(static_cast<int>(level), std::memory_order_relaxed);
    g_active.store(table, std::memory_order_release);
    return table;
}

const Ops* ensure_active() noexcept {
    const Ops* table = g_active.load(std::memory_order_acquire);
    return table != nullptr ? table : init_active();
}

} // namespace

const char* level_name(Level level) noexcept {
    switch (level) {
        case Level::kSse42: return "sse42";
        case Level::kAvx2: return "avx2";
        case Level::kScalar: break;
    }
    return "scalar";
}

std::optional<Level> parse_level(const char* text) noexcept {
    if (text == nullptr) return std::nullopt;
    if (std::strcmp(text, "scalar") == 0) return Level::kScalar;
    if (std::strcmp(text, "sse42") == 0 || std::strcmp(text, "sse4.2") == 0)
        return Level::kSse42;
    if (std::strcmp(text, "avx2") == 0) return Level::kAvx2;
    return std::nullopt;
}

Level detected_level() noexcept {
    static const Level detected = probe_cpu();
    return detected;
}

Level active_level() noexcept {
    ensure_active();
    return static_cast<Level>(g_active_level.load(std::memory_order_relaxed));
}

Level set_active_level(Level request, Level cap) {
    const Level level =
        min_level(min_level(request, cap), detected_level());
    g_active_level.store(static_cast<int>(level), std::memory_order_relaxed);
    g_active.store(&table_for(level), std::memory_order_release);
    return level;
}

Level set_active_level(Level request) {
    return set_active_level(request, detected_level());
}

const Ops& ops() noexcept { return *ensure_active(); }

const Ops& ops_for(Level level) noexcept {
    return table_for(min_level(level, detected_level()));
}

} // namespace dre::simd
