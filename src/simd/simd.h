// Runtime-dispatched SIMD kernels for the estimation hot paths (`dre::simd`).
//
// The estimation pipeline spends its cycles in a handful of dense loops:
// squared-distance accumulation inside k-NN leaf scans, the q̂[tuple ×
// decision] weighted sums shared by every model-based estimator, bootstrap
// resample accumulation, and CRC-32C over every `.drt` row group. This
// library provides those loops as *batched primitives* behind a runtime
// CPU dispatch: the best instruction set is probed once (CPUID), an
// explicit `DRE_SIMD=scalar|sse42|avx2` environment override exists for
// testing, and every primitive ships a scalar implementation that is the
// executable specification of the kernel's semantics.
//
// Determinism contract (the load-bearing part)
// --------------------------------------------
// The repo's hard guarantee is bit-for-bit reproducibility for a fixed
// seed, across thread counts *and now across dispatch levels*. Each kernel
// therefore defines ONE canonical arithmetic, expressed in logical lanes,
// and every ISA level implements that arithmetic exactly:
//
//  * floating-point kernels use a fixed 8-lane blocking — element i
//    accumulates into lane (i mod 8), each lane is a plain sequential
//    mul/add chain (no FMA contraction anywhere in this library), and the
//    horizontal reduce is the fixed tree
//    ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7));
//  * integer kernels (CRC-32C, gathers) are exact by construction.
//
// Because the lane count is a property of the *kernel*, not the register
// width, scalar (8 running sums), SSE4.2 (4 × 2-lane xmm) and AVX2
// (2 × 4-lane ymm) execute the identical sequence of IEEE operations per
// lane and produce byte-identical results. tests/test_simd.cpp asserts
// bitwise equality — not a tolerance — for every kernel at every level.
//
// The documented tolerance contract for FP paths is therefore currently
// **0 ulp**: `DRE_SIMD=scalar` and native runs are byte-identical
// everywhere. If a future kernel wants reassociation freedom that cannot
// be expressed as fixed-lane blocking (e.g. true FMA), it must (a) keep a
// scalar implementation as the golden fingerprint, (b) document its
// tolerance bound here and in DESIGN.md §11, and (c) be excluded from the
// byte-diffed fingerprint sections in CI.
//
// Adding a new primitive: declare the pointer in `Ops`, implement it in
// kernels_scalar.cpp (the spec) and optionally kernels_sse42/avx2.cpp
// (levels without an override inherit the next-lower level's pointer in
// dispatch.cpp), and add a scalar-vs-level bitwise equivalence test to
// tests/test_simd.cpp. See DESIGN.md §11 for the full checklist.
#ifndef DRE_SIMD_SIMD_H
#define DRE_SIMD_SIMD_H

#include <cstddef>
#include <cstdint>
#include <optional>

namespace dre::simd {

// Dispatch levels, ordered: every level is a superset of the ones below.
// kSse42 is the CRC tier (hardware `crc32` instruction + 2-lane double
// vectors); kAvx2 adds 4-lane double / 8-lane float vectors and gathers.
enum class Level : int { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

inline constexpr int kNumLevels = 3;

// Logical lane count of the FP kernels' canonical arithmetic. A property
// of the kernel contract, NOT of any register width — changing it changes
// results, so treat it like a golden constant (par::kReduceChunk has the
// same status).
inline constexpr std::size_t kFpLanes = 8;

// "scalar" / "sse42" / "avx2".
const char* level_name(Level level) noexcept;

// Parse a DRE_SIMD-style level string; nullopt for anything unknown.
std::optional<Level> parse_level(const char* text) noexcept;

// Best level this CPU supports (CPUID probe, cached after the first call).
Level detected_level() noexcept;

// The level the dispatched `ops()` table currently resolves to. On first
// use this is min(detected, DRE_SIMD override if set); an unparseable
// DRE_SIMD value warns once on stderr and is ignored.
Level active_level() noexcept;

// Re-point the dispatch table (benches and tests switch levels
// in-process). Requests above `cap` clamp down to it — passing the real
// `detected_level()` (the default) means "never activate instructions this
// CPU lacks", and passing a lower cap simulates a weaker CPU for
// dispatch-fallback tests. Returns the level actually activated. Not
// thread-safe against concurrent kernel calls; call it only between
// parallel regions (the same rule as par::set_thread_count).
Level set_active_level(Level request);
Level set_active_level(Level request, Level cap);

// --- Kernel table ----------------------------------------------------------

struct Ops {
    // CRC-32C (Castagnoli, reflected) of `size` bytes continuing from
    // `seed`; chaining calls equals the one-shot CRC of the concatenation.
    // Exact: every level returns identical values on every input.
    std::uint32_t (*crc32c)(const void* data, std::size_t size,
                            std::uint32_t seed);

    // Squared L2 distances from `query` to `num_blocks` consecutive blocks
    // of 8 points each (one KD-tree leaf), stored dimension-major per
    // block: blocks[(b * dims + d) * 8 + lane] is coordinate d of point
    // b*8+lane. Canonical arithmetic per lane: acc += diff * diff over
    // dimensions in order, lanes independent across blocks. Blocks are
    // processed in pairs (the trailing odd block alone): on every
    // kAbortStride-th dimension (see kernels.h), if every lane of the
    // pair's 16 (or the odd block's 8) already exceeds `worst` (strict >),
    // the pair is abandoned — no lane could still be a candidate. The
    // pairing exists to double the number of independent accumulator
    // chains on the latency-bound vector levels; it is part of the
    // contract so per-level work counters match. Candidates (final
    // d² <= worst, ordered compare — a NaN lane is never a candidate) are
    // appended in slot order: cand_d2[i] / cand_idx[i] hold the distance
    // and the point offset b*8+lane relative to the scan start; the count
    // is returned. Both output arrays need capacity num_blocks * 8. A
    // candidate's (d², index) may still lose the lexicographic tie-break
    // against the caller's evolving top-k, so callers re-check each one;
    // a non-candidate could never enter the heap, so skipping it is
    // exact. The abort predicate and the candidate list are both part of
    // the contract: every level returns the identical list, and per-level
    // work counters match too.
    std::size_t (*l2sq_scan)(const double* blocks, std::size_t num_blocks,
                             std::size_t dims, const double* query,
                             double worst, double* cand_d2,
                             std::uint32_t* cand_idx);

    // Fixed-8-lane dot product: lane (i mod 8) accumulates a[i] * b[i],
    // reduced with the canonical tree.
    double (*dot8)(const double* a, const double* b, std::size_t n);

    // Fixed-8-lane weighted sum with the estimator zero-probability skip:
    // lane (i mod 8) accumulates w[i] * x[i] where w[i] != 0.0, and
    // contributes exactly +0.0 where w[i] == 0.0 (so a non-finite x[i]
    // under zero weight never pollutes the sum). `*skips`, when non-null,
    // is incremented by the number of zero weights.
    double (*weighted_sum_skip_zero)(const double* w, const double* x,
                                     std::size_t n, std::uint64_t* skips);

    // out[i] = values[idx[i]] — exact data movement (bootstrap resample
    // fill). Indices must be < 2^31 (bootstrap samples are).
    void (*gather)(const double* values, const std::uint32_t* idx,
                   std::size_t n, double* out);

    // Fixed-8-lane gathered accumulation: lane (i mod 8) accumulates
    // values[idx[i]], canonical tree reduce (bootstrap resample sums).
    double (*gather_sum8)(const double* values, const std::uint32_t* idx,
                          std::size_t n);
};

// The dispatched table for active_level(). Every table is an immutable
// static, so a hoisted `const Ops& ops = ops();` stays valid forever — a
// later set_active_level only changes what *subsequent* ops() calls
// return. Hot loops should hoist the reference out of their inner loop
// (each ops() call is an atomic load).
const Ops& ops() noexcept;

// The table for an explicit level (equivalence tests, benches). `level`
// above detected_level() returns the detected table instead — never a
// table whose instructions would fault.
const Ops& ops_for(Level level) noexcept;

} // namespace dre::simd

#endif // DRE_SIMD_SIMD_H
