#include "video/evaluation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/ewma.h"

namespace dre::video {

AbrPolicyAdapter::AbrPolicyAdapter(const AbrAlgorithm& abr, BitrateLadder ladder,
                                   SessionConfig session, QoeParams qoe,
                                   double epsilon)
    : abr_(abr),
      ladder_(std::move(ladder)),
      session_(session),
      qoe_(qoe),
      epsilon_(epsilon) {
    if (epsilon_ < 0.0 || epsilon_ > 1.0)
        throw std::invalid_argument("AbrPolicyAdapter: epsilon outside [0,1]");
}

std::vector<double> AbrPolicyAdapter::action_probabilities(
    const ClientContext& context) const {
    const AbrState state = state_from_context(context);
    const std::size_t greedy = abr_.choose(state, ladder_, session_, qoe_);
    std::vector<double> probs(ladder_.levels(),
                              epsilon_ / static_cast<double>(ladder_.levels()));
    probs[greedy] += 1.0 - epsilon_;
    return probs;
}

NaiveChunkModel::NaiveChunkModel(BitrateLadder ladder, SessionConfig session,
                                 QoeParams qoe)
    : ladder_(std::move(ladder)), session_(session), qoe_(qoe) {}

double NaiveChunkModel::predict(const ClientContext& context, Decision d) const {
    if (d < 0 || static_cast<std::size_t>(d) >= ladder_.levels())
        throw std::out_of_range("NaiveChunkModel::predict: decision out of range");
    const AbrState state = state_from_context(context);
    const double bitrate = ladder_.mbps(static_cast<std::size_t>(d));
    // FastMPC's faulty assumption: the throughput predictor (a harmonic mean
    // of throughputs *observed at past bitrates*) is what any candidate
    // bitrate would achieve for this chunk.
    const double download_s = bitrate * session_.chunk_seconds /
                              std::max(state.predicted_throughput_mbps, 1e-3);
    const double rebuffer_s = std::max(0.0, download_s - state.buffer_s);
    return qoe_.chunk_qoe(bitrate, rebuffer_s, ladder_.mbps(state.previous_level));
}

double replay_session_naive(const SessionRecord& logged, const AbrAlgorithm& abr,
                            const BitrateLadder& ladder, const SessionConfig& session,
                            const QoeParams& qoe) {
    if (logged.empty())
        throw std::invalid_argument("replay_session_naive: empty session");

    AbrState state;
    state.buffer_s = session.start_buffer_s;
    state.previous_level = 0;
    state.predicted_throughput_mbps = ladder.mbps(0) * 2.0;

    stats::SlidingWindow recent_throughput(5);

    double total_qoe = 0.0;
    for (std::size_t k = 0; k < logged.size(); ++k) {
        state.chunk_index = k;
        const std::size_t level = abr.choose(state, ladder, session, qoe);
        const double bitrate = ladder.mbps(level);
        // The replay's central error: the throughput the *old* policy's
        // bitrate experienced is assumed to apply to the new bitrate too.
        const double throughput = logged[k].observed_throughput_mbps;
        const double download_s =
            bitrate * session.chunk_seconds / std::max(throughput, 1e-3);
        const double rebuffer_s = std::max(0.0, download_s - state.buffer_s);
        total_qoe += qoe.chunk_qoe(bitrate, rebuffer_s,
                                   ladder.mbps(state.previous_level));

        double buffer = std::max(state.buffer_s - download_s, 0.0) +
                        session.chunk_seconds;
        state.buffer_s = std::min(buffer, session.max_buffer_s);
        state.previous_level = level;

        recent_throughput.add(throughput);
        state.predicted_throughput_mbps = recent_throughput.harmonic_mean();
    }
    return total_qoe / static_cast<double>(logged.size());
}

} // namespace dre::video
