// Shared types for the adaptive-bitrate (ABR) video substrate.
//
// The paper's Fig. 2 / Fig. 7b scenario: a session downloads chunks at
// bitrates chosen from a ladder; the *observed* throughput of a chunk is
// b * p(r) where b is the true available bandwidth and p(r) <= 1 increases
// with the chosen bitrate r (small chunks never let TCP reach steady state,
// citing Huang et al. [12]). Trace-driven evaluators that assume observed
// throughput == available bandwidth are biased; DR corrects them.
#ifndef DRE_VIDEO_TYPES_H
#define DRE_VIDEO_TYPES_H

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace dre::video {

// Bitrate ladder in Mbps, ascending.
class BitrateLadder {
public:
    explicit BitrateLadder(std::vector<double> mbps);

    std::size_t levels() const noexcept { return mbps_.size(); }
    double mbps(std::size_t level) const;
    std::size_t highest() const noexcept { return mbps_.size() - 1; }

    // Highest level whose bitrate is <= `budget_mbps` (0 if none).
    std::size_t highest_below(double budget_mbps) const noexcept;

    // A conventional 5-level ladder (Fig. 7b: "five bitrate levels").
    static BitrateLadder standard5();

private:
    std::vector<double> mbps_;
};

// TCP efficiency p(r): fraction of available bandwidth a chunk at ladder
// level r actually achieves. p is in (0, 1], monotone increasing in r:
//   p(r) = floor + (1 - floor) * r_mbps / (r_mbps + half_rate).
struct TcpEfficiency {
    double floor = 0.35;     // efficiency of the tiniest chunk
    double half_rate = 1.5;  // Mbps at which the ramp reaches halfway

    double operator()(double bitrate_mbps) const;
};

// Per-chunk QoE (FastMPC-style): bitrate utility − rebuffer penalty −
// smoothness penalty.
struct QoeParams {
    double rebuffer_penalty = 4.3; // per second of stall
    double switch_penalty = 1.0;   // per Mbps of bitrate change

    double chunk_qoe(double bitrate_mbps, double rebuffer_s,
                     double previous_bitrate_mbps) const;
};

struct SessionConfig {
    std::size_t chunks = 100;    // Fig. 7b: "a video session with 100 chunks"
    double chunk_seconds = 4.0;  // playback seconds per chunk
    double max_buffer_s = 20.0;  // client buffer cap
    double start_buffer_s = 8.0; // pre-rolled buffer at session start
};

// Observable ABR state before choosing a chunk's bitrate.
struct AbrState {
    double buffer_s = 0.0;
    double predicted_throughput_mbps = 0.0; // harmonic mean of recent chunks
    std::size_t previous_level = 0;
    std::size_t chunk_index = 0;
};

// What happened for one chunk.
struct ChunkRecord {
    AbrState state;
    std::size_t level = 0;
    double logging_propensity = 1.0;
    double observed_throughput_mbps = 0.0;
    double download_s = 0.0;
    double rebuffer_s = 0.0;
    double qoe = 0.0;
};

using SessionRecord = std::vector<ChunkRecord>;

} // namespace dre::video

#endif // DRE_VIDEO_TYPES_H
