// Trace-driven evaluation of ABR policies (the Fig. 2 / Fig. 7b machinery).
//
// Three evaluators of a new ABR algorithm from a logged session:
//  * replay_session_naive — the FastMPC-paper evaluator: replay the new ABR
//    against the *observed* throughput sequence, assuming the throughput a
//    chunk saw is what any bitrate would have seen. Biased (Fig. 2).
//  * Direct Method with NaiveChunkModel — the same assumption expressed as
//    a per-chunk reward model inside the generic framework.
//  * Doubly Robust — DM plus the importance-weighted correction on chunks
//    whose logged bitrate matches the new policy ("using the unbiased
//    quality measurement on chunks that use the same bitrate", §4.2).
#ifndef DRE_VIDEO_EVALUATION_H
#define DRE_VIDEO_EVALUATION_H

#include <memory>

#include "core/policy.h"
#include "core/reward_model.h"
#include "video/session.h"

namespace dre::video {

// Adapts an ABR algorithm to the generic Policy interface over logged chunk
// contexts. With epsilon > 0 this is the epsilon-greedy logging policy;
// with epsilon == 0 a deterministic target policy.
class AbrPolicyAdapter final : public core::Policy {
public:
    AbrPolicyAdapter(const AbrAlgorithm& abr, BitrateLadder ladder,
                     SessionConfig session, QoeParams qoe, double epsilon = 0.0);

    std::vector<double> action_probabilities(const ClientContext& context) const override;
    std::size_t num_decisions() const noexcept override { return ladder_.levels(); }

private:
    const AbrAlgorithm& abr_; // non-owning; caller keeps it alive
    BitrateLadder ladder_;
    SessionConfig session_;
    QoeParams qoe_;
    double epsilon_;
};

// Reward model embodying the faulty independence assumption: the chunk's
// *predicted* throughput (a harmonic mean of throughputs observed at past
// bitrates, carried in the context) is treated as the bandwidth any
// candidate bitrate would achieve. Because past observations were taken at
// the logging policy's bitrates, the prediction inherits the b*p(r) skew.
class NaiveChunkModel final : public core::RewardModel {
public:
    NaiveChunkModel(BitrateLadder ladder, SessionConfig session, QoeParams qoe);

    double predict(const ClientContext& context, Decision d) const override;
    std::size_t num_decisions() const noexcept override { return ladder_.levels(); }

private:
    BitrateLadder ladder_;
    SessionConfig session_;
    QoeParams qoe_;
};

// Full-session naive replay (the original FastMPC evaluator): mean QoE of
// `abr` replayed over the logged observed-throughput sequence.
double replay_session_naive(const SessionRecord& logged, const AbrAlgorithm& abr,
                            const BitrateLadder& ladder, const SessionConfig& session,
                            const QoeParams& qoe);

} // namespace dre::video

#endif // DRE_VIDEO_EVALUATION_H
