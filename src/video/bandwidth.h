// Available-bandwidth processes for the ABR simulator.
#ifndef DRE_VIDEO_BANDWIDTH_H
#define DRE_VIDEO_BANDWIDTH_H

#include <memory>
#include <vector>

#include "stats/rng.h"
#include "video/types.h"

namespace dre::video {

class BandwidthProcess {
public:
    virtual ~BandwidthProcess() = default;

    // True available bandwidth (Mbps) while chunk `k` downloads.
    virtual double bandwidth_mbps(std::size_t chunk_index, stats::Rng& rng) const = 0;

protected:
    BandwidthProcess() = default;
    BandwidthProcess(const BandwidthProcess&) = default;
    BandwidthProcess& operator=(const BandwidthProcess&) = default;
};

// Constant mean with lognormal per-chunk jitter (Fig. 7b: "the available
// bandwidth is a constant b").
class ConstantBandwidth final : public BandwidthProcess {
public:
    explicit ConstantBandwidth(double mean_mbps, double jitter_sigma = 0.08);

    double bandwidth_mbps(std::size_t, stats::Rng& rng) const override;
    double mean_mbps() const noexcept { return mean_mbps_; }

private:
    double mean_mbps_;
    double jitter_sigma_;
};

// Piecewise-constant bandwidth replayed from a recorded series (e.g., a
// real cellular trace): chunk k sees series[k % size] Mbps plus jitter.
class PiecewiseBandwidth final : public BandwidthProcess {
public:
    explicit PiecewiseBandwidth(std::vector<double> series_mbps,
                                double jitter_sigma = 0.05);

    double bandwidth_mbps(std::size_t chunk_index, stats::Rng& rng) const override;
    std::size_t length() const noexcept { return series_.size(); }

private:
    std::vector<double> series_;
    double jitter_sigma_;
};

// Two-level Markov bandwidth (good/bad network) — used by extension
// experiments that need genuinely time-varying conditions.
class MarkovBandwidth final : public BandwidthProcess {
public:
    MarkovBandwidth(double good_mbps, double bad_mbps, double flip_probability,
                    std::uint64_t seed, std::size_t horizon);

    double bandwidth_mbps(std::size_t chunk_index, stats::Rng& rng) const override;

private:
    std::vector<double> levels_; // precomputed so evaluation is reproducible
    double jitter_sigma_ = 0.05;
};

} // namespace dre::video

#endif // DRE_VIDEO_BANDWIDTH_H
