#include "video/session.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/ewma.h"
#include "video/bandwidth.h"

namespace dre::video {

SessionSimulator::SessionSimulator(SimulatorConfig config, BitrateLadder ladder)
    : config_(config), ladder_(std::move(ladder)) {
    if (config_.epsilon < 0.0 || config_.epsilon > 1.0)
        throw std::invalid_argument("SessionSimulator: epsilon outside [0,1]");
    if (config_.session.chunks == 0)
        throw std::invalid_argument("SessionSimulator: zero chunks");
    if (config_.session.chunk_seconds <= 0.0)
        throw std::invalid_argument("SessionSimulator: chunk length must be > 0");
}

SessionRecord SessionSimulator::simulate(const AbrAlgorithm& abr,
                                         const BandwidthProcess& bandwidth,
                                         stats::Rng& rng) const {
    SessionRecord record;
    record.reserve(config_.session.chunks);

    AbrState state;
    state.buffer_s = config_.session.start_buffer_s;
    state.previous_level = 0;
    // Until the first chunk completes, the predictor only has a prior.
    state.predicted_throughput_mbps = ladder_.mbps(0) * 2.0;

    // Harmonic-mean throughput predictor over the last few chunks.
    stats::SlidingWindow recent_throughput(5);

    const std::size_t levels = ladder_.levels();
    for (std::size_t k = 0; k < config_.session.chunks; ++k) {
        state.chunk_index = k;

        const std::size_t greedy = abr.choose(state, ladder_, config_.session,
                                              config_.qoe);
        std::size_t level = greedy;
        if (config_.epsilon > 0.0 && rng.bernoulli(config_.epsilon))
            level = rng.uniform_index(levels);
        const double propensity =
            config_.epsilon == 0.0
                ? (level == greedy ? 1.0 : 0.0)
                : (level == greedy ? 1.0 - config_.epsilon +
                                         config_.epsilon / static_cast<double>(levels)
                                   : config_.epsilon / static_cast<double>(levels));

        const double bitrate = ladder_.mbps(level);
        const double available = bandwidth.bandwidth_mbps(k, rng);
        // The core generative fact: observed throughput depends on bitrate.
        const double observed = available * config_.efficiency(bitrate);
        const double chunk_mbits = bitrate * config_.session.chunk_seconds;
        const double download_s = chunk_mbits / std::max(observed, 1e-3);
        const double rebuffer_s = std::max(0.0, download_s - state.buffer_s);

        ChunkRecord chunk;
        chunk.state = state;
        chunk.level = level;
        chunk.logging_propensity = propensity;
        chunk.observed_throughput_mbps = observed;
        chunk.download_s = download_s;
        chunk.rebuffer_s = rebuffer_s;
        chunk.qoe = config_.qoe.chunk_qoe(bitrate, rebuffer_s,
                                          ladder_.mbps(state.previous_level));
        record.push_back(chunk);

        // Buffer dynamics.
        double buffer = std::max(state.buffer_s - download_s, 0.0) +
                        config_.session.chunk_seconds;
        state.buffer_s = std::min(buffer, config_.session.max_buffer_s);
        state.previous_level = level;

        // Throughput predictor (harmonic mean of observed throughputs — it
        // does NOT know about p(r); that is the evaluator's blind spot too).
        recent_throughput.add(observed);
        state.predicted_throughput_mbps = recent_throughput.harmonic_mean();
    }
    return record;
}

double SessionSimulator::true_mean_qoe(const AbrAlgorithm& abr,
                                       const BandwidthProcess& bandwidth,
                                       stats::Rng& rng, int replicates) const {
    if (replicates <= 0)
        throw std::invalid_argument("true_mean_qoe: replicates must be > 0");
    SimulatorConfig deterministic = config_;
    deterministic.epsilon = 0.0;
    const SessionSimulator ground_truth(deterministic, ladder_);
    double total = 0.0;
    for (int r = 0; r < replicates; ++r) {
        const SessionRecord record = ground_truth.simulate(abr, bandwidth, rng);
        double session_total = 0.0;
        for (const auto& chunk : record) session_total += chunk.qoe;
        total += session_total / static_cast<double>(record.size());
    }
    return total / replicates;
}

Trace simulate_population(const SessionSimulator& simulator,
                          const AbrAlgorithm& abr, std::size_t sessions,
                          double median_bandwidth_mbps, double bandwidth_sigma,
                          stats::Rng& rng) {
    if (sessions == 0)
        throw std::invalid_argument("simulate_population: zero sessions");
    if (median_bandwidth_mbps <= 0.0 || bandwidth_sigma < 0.0)
        throw std::invalid_argument("simulate_population: bad bandwidth spec");
    Trace population;
    population.reserve(sessions * simulator.config().session.chunks);
    for (std::size_t s = 0; s < sessions; ++s) {
        const double mean =
            median_bandwidth_mbps * rng.lognormal(0.0, bandwidth_sigma);
        const ConstantBandwidth bandwidth(mean);
        const SessionRecord record = simulator.simulate(abr, bandwidth, rng);
        for (const auto& tuple : to_trace(record)) population.add(tuple);
    }
    return population;
}

Trace to_trace(const SessionRecord& record) {
    Trace trace;
    trace.reserve(record.size());
    for (const auto& chunk : record) {
        LoggedTuple t;
        t.context.numeric = {chunk.state.buffer_s,
                             chunk.state.predicted_throughput_mbps,
                             static_cast<double>(chunk.state.chunk_index),
                             chunk.observed_throughput_mbps};
        t.context.categorical = {static_cast<std::int32_t>(chunk.state.previous_level)};
        t.decision = static_cast<Decision>(chunk.level);
        t.reward = chunk.qoe;
        t.propensity = std::max(chunk.logging_propensity, 1e-12);
        trace.add(std::move(t));
    }
    return trace;
}

AbrState state_from_context(const ClientContext& context) {
    if (context.numeric.size() != 4 || context.categorical.size() != 1)
        throw std::invalid_argument("state_from_context: not an ABR context");
    AbrState state;
    state.buffer_s = context.numeric[0];
    state.predicted_throughput_mbps = context.numeric[1];
    state.chunk_index = static_cast<std::size_t>(context.numeric[2]);
    state.previous_level = static_cast<std::size_t>(context.categorical[0]);
    return state;
}

double observed_throughput_from_context(const ClientContext& context) {
    if (context.numeric.size() != 4)
        throw std::invalid_argument("observed_throughput_from_context: not an ABR context");
    return context.numeric[3];
}

} // namespace dre::video
