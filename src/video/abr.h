// ABR algorithms.
//
//  * BufferBasedAbr — BBA (Huang et al. [13]): bitrate is a piecewise-linear
//    function of the buffer level. The paper uses it as the *old* (logging)
//    policy in Fig. 7b.
//  * RateBasedAbr — pick the highest bitrate below predicted throughput
//    (the FESTIVE-style baseline).
//  * MpcAbr — FastMPC (Yin et al. [42]): maximize the QoE of the next H
//    chunks by exhaustive lookahead assuming the predicted throughput holds.
//    The paper's *new* policy in Fig. 7b. Crucially, its throughput
//    predictor assumes observed throughput is bitrate-independent — the
//    misspecification DR must fix.
#ifndef DRE_VIDEO_ABR_H
#define DRE_VIDEO_ABR_H

#include <cstddef>

#include "video/types.h"

namespace dre::video {

class AbrAlgorithm {
public:
    virtual ~AbrAlgorithm() = default;

    virtual std::size_t choose(const AbrState& state, const BitrateLadder& ladder,
                               const SessionConfig& session,
                               const QoeParams& qoe) const = 0;

protected:
    AbrAlgorithm() = default;
    AbrAlgorithm(const AbrAlgorithm&) = default;
    AbrAlgorithm& operator=(const AbrAlgorithm&) = default;
};

class BufferBasedAbr final : public AbrAlgorithm {
public:
    // Reservoir/cushion in seconds of buffer: below `reservoir` pick the
    // lowest level; above `reservoir + cushion` the highest; linear ramp
    // in between.
    BufferBasedAbr(double reservoir_s = 5.0, double cushion_s = 10.0);

    std::size_t choose(const AbrState& state, const BitrateLadder& ladder,
                       const SessionConfig& session,
                       const QoeParams& qoe) const override;

private:
    double reservoir_s_;
    double cushion_s_;
};

class RateBasedAbr final : public AbrAlgorithm {
public:
    explicit RateBasedAbr(double safety_factor = 0.9);

    std::size_t choose(const AbrState& state, const BitrateLadder& ladder,
                       const SessionConfig& session,
                       const QoeParams& qoe) const override;

private:
    double safety_factor_;
};

// BOLA (Spiteri et al., BOLA-BASIC): Lyapunov-style buffer/utility control
// that needs no throughput prediction at all. Each level m gets the score
//   score(m) = (V * (utility_m + gamma_p) - buffer_s) / size_m,
// with utility_m = ln(bitrate_m / bitrate_0); the ABR picks the argmax.
// When every score is negative (BOLA's "abstain" region: the buffer is
// beyond its target) a streaming session still fetches — at the top level.
// V is derived from the buffer capacity as in the BOLA paper:
//   V = (max_buffer - chunk_seconds) / (utility_max + gamma_p),
// so the highest level becomes reachable exactly as the buffer fills.
class BolaAbr final : public AbrAlgorithm {
public:
    // gamma_p balances rebuffer avoidance against utility; control_v <= 0
    // (the default) derives V from the session's buffer capacity.
    explicit BolaAbr(double gamma_p = 5.0, double control_v = 0.0);

    std::size_t choose(const AbrState& state, const BitrateLadder& ladder,
                       const SessionConfig& session,
                       const QoeParams& qoe) const override;

private:
    double gamma_p_;
    double control_v_;
};

class MpcAbr final : public AbrAlgorithm {
public:
    explicit MpcAbr(std::size_t horizon = 3);

    std::size_t choose(const AbrState& state, const BitrateLadder& ladder,
                       const SessionConfig& session,
                       const QoeParams& qoe) const override;

private:
    // Best achievable QoE over `depth` remaining lookahead steps.
    double lookahead(double buffer_s, std::size_t previous_level,
                     double throughput_mbps, std::size_t depth,
                     const BitrateLadder& ladder, const SessionConfig& session,
                     const QoeParams& qoe) const;

    std::size_t horizon_;
};

} // namespace dre::video

#endif // DRE_VIDEO_ABR_H
