// Chunk-level session simulator — the ground truth of the ABR world.
//
// The simulator applies the bitrate-dependent observed throughput
// thr = b * p(r) (TcpEfficiency), evolves the playback buffer, and logs
// per-chunk records. Sessions can be driven by a deterministic ABR or an
// epsilon-greedy randomized version of it (giving the logging policy the
// stochasticity DR needs, per §4.1 "Coverage and randomness").
#ifndef DRE_VIDEO_SESSION_H
#define DRE_VIDEO_SESSION_H

#include "stats/rng.h"
#include "trace/trace.h"
#include "video/abr.h"
#include "video/bandwidth.h"
#include "video/types.h"

namespace dre::video {

struct SimulatorConfig {
    SessionConfig session;
    QoeParams qoe;
    TcpEfficiency efficiency;
    double epsilon = 0.0; // logging randomization; 0 = deterministic ABR
};

class SessionSimulator {
public:
    SessionSimulator(SimulatorConfig config, BitrateLadder ladder);

    // Simulate one session under `abr`; per-chunk records include the
    // logging propensity of the taken decision under the epsilon-greedy
    // version of `abr`.
    SessionRecord simulate(const AbrAlgorithm& abr, const BandwidthProcess& bandwidth,
                           stats::Rng& rng) const;

    // Mean per-chunk QoE of `abr` run deterministically (epsilon ignored),
    // averaged over `replicates` sessions — the "real deployment" value.
    double true_mean_qoe(const AbrAlgorithm& abr, const BandwidthProcess& bandwidth,
                         stats::Rng& rng, int replicates = 32) const;

    const BitrateLadder& ladder() const noexcept { return ladder_; }
    const SimulatorConfig& config() const noexcept { return config_; }

private:
    SimulatorConfig config_;
    BitrateLadder ladder_;
};

// Simulate a population of sessions with heterogeneous mean bandwidths and
// concatenate the per-chunk logs into one trace (each session contributes
// `config.session.chunks` tuples). Bandwidths are drawn lognormally around
// `median_bandwidth_mbps`.
Trace simulate_population(const SessionSimulator& simulator,
                          const AbrAlgorithm& abr, std::size_t sessions,
                          double median_bandwidth_mbps, double bandwidth_sigma,
                          stats::Rng& rng);

// Convert a session record to the generic logged-trace format:
// context numeric = {buffer_s, predicted_throughput, chunk_index,
// observed_throughput}, categorical = {previous_level}; decision = level;
// reward = chunk QoE.
Trace to_trace(const SessionRecord& record);

// Rebuild the AbrState encoded inside a logged context (inverse of
// to_trace's packing). Throws std::invalid_argument on foreign contexts.
AbrState state_from_context(const ClientContext& context);
double observed_throughput_from_context(const ClientContext& context);

} // namespace dre::video

#endif // DRE_VIDEO_SESSION_H
