#include "video/bandwidth.h"

#include <stdexcept>

namespace dre::video {

ConstantBandwidth::ConstantBandwidth(double mean_mbps, double jitter_sigma)
    : mean_mbps_(mean_mbps), jitter_sigma_(jitter_sigma) {
    if (mean_mbps_ <= 0.0)
        throw std::invalid_argument("ConstantBandwidth: mean must be > 0");
    if (jitter_sigma_ < 0.0)
        throw std::invalid_argument("ConstantBandwidth: negative jitter");
}

double ConstantBandwidth::bandwidth_mbps(std::size_t, stats::Rng& rng) const {
    if (jitter_sigma_ == 0.0) return mean_mbps_;
    return mean_mbps_ * rng.lognormal(0.0, jitter_sigma_);
}

PiecewiseBandwidth::PiecewiseBandwidth(std::vector<double> series_mbps,
                                       double jitter_sigma)
    : series_(std::move(series_mbps)), jitter_sigma_(jitter_sigma) {
    if (series_.empty())
        throw std::invalid_argument("PiecewiseBandwidth: empty series");
    for (double b : series_)
        if (b <= 0.0)
            throw std::invalid_argument("PiecewiseBandwidth: bandwidth must be > 0");
    if (jitter_sigma_ < 0.0)
        throw std::invalid_argument("PiecewiseBandwidth: negative jitter");
}

double PiecewiseBandwidth::bandwidth_mbps(std::size_t chunk_index,
                                          stats::Rng& rng) const {
    const double base = series_[chunk_index % series_.size()];
    if (jitter_sigma_ == 0.0) return base;
    return base * rng.lognormal(0.0, jitter_sigma_);
}

MarkovBandwidth::MarkovBandwidth(double good_mbps, double bad_mbps,
                                 double flip_probability, std::uint64_t seed,
                                 std::size_t horizon) {
    if (good_mbps <= 0.0 || bad_mbps <= 0.0)
        throw std::invalid_argument("MarkovBandwidth: bandwidths must be > 0");
    if (flip_probability < 0.0 || flip_probability > 1.0)
        throw std::invalid_argument("MarkovBandwidth: flip prob outside [0,1]");
    stats::Rng rng(seed);
    levels_.reserve(horizon);
    bool good = true;
    for (std::size_t k = 0; k < horizon; ++k) {
        if (rng.bernoulli(flip_probability)) good = !good;
        levels_.push_back(good ? good_mbps : bad_mbps);
    }
}

double MarkovBandwidth::bandwidth_mbps(std::size_t chunk_index,
                                       stats::Rng& rng) const {
    if (levels_.empty()) throw std::logic_error("MarkovBandwidth: empty horizon");
    const double base = levels_[std::min(chunk_index, levels_.size() - 1)];
    return base * rng.lognormal(0.0, jitter_sigma_);
}

} // namespace dre::video
