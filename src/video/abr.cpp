#include "video/abr.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dre::video {

BitrateLadder::BitrateLadder(std::vector<double> mbps) : mbps_(std::move(mbps)) {
    if (mbps_.empty()) throw std::invalid_argument("BitrateLadder: empty ladder");
    for (std::size_t i = 0; i < mbps_.size(); ++i) {
        if (mbps_[i] <= 0.0)
            throw std::invalid_argument("BitrateLadder: bitrates must be > 0");
        if (i > 0 && mbps_[i] <= mbps_[i - 1])
            throw std::invalid_argument("BitrateLadder: ladder must be ascending");
    }
}

double BitrateLadder::mbps(std::size_t level) const {
    if (level >= mbps_.size()) throw std::out_of_range("BitrateLadder::mbps");
    return mbps_[level];
}

std::size_t BitrateLadder::highest_below(double budget_mbps) const noexcept {
    std::size_t best = 0;
    for (std::size_t i = 0; i < mbps_.size(); ++i)
        if (mbps_[i] <= budget_mbps) best = i;
    return best;
}

BitrateLadder BitrateLadder::standard5() {
    return BitrateLadder({0.35, 0.75, 1.5, 2.8, 4.5});
}

double TcpEfficiency::operator()(double bitrate_mbps) const {
    if (bitrate_mbps <= 0.0)
        throw std::invalid_argument("TcpEfficiency: bitrate must be > 0");
    return floor + (1.0 - floor) * bitrate_mbps / (bitrate_mbps + half_rate);
}

double QoeParams::chunk_qoe(double bitrate_mbps, double rebuffer_s,
                            double previous_bitrate_mbps) const {
    return bitrate_mbps - rebuffer_penalty * rebuffer_s -
           switch_penalty * std::fabs(bitrate_mbps - previous_bitrate_mbps);
}

BufferBasedAbr::BufferBasedAbr(double reservoir_s, double cushion_s)
    : reservoir_s_(reservoir_s), cushion_s_(cushion_s) {
    if (reservoir_s_ < 0.0 || cushion_s_ <= 0.0)
        throw std::invalid_argument("BufferBasedAbr: bad reservoir/cushion");
}

std::size_t BufferBasedAbr::choose(const AbrState& state, const BitrateLadder& ladder,
                                   const SessionConfig&, const QoeParams&) const {
    if (state.buffer_s <= reservoir_s_) return 0;
    if (state.buffer_s >= reservoir_s_ + cushion_s_) return ladder.highest();
    const double t = (state.buffer_s - reservoir_s_) / cushion_s_;
    const auto level = static_cast<std::size_t>(
        t * static_cast<double>(ladder.levels() - 1) + 0.5);
    return std::min(level, ladder.highest());
}

RateBasedAbr::RateBasedAbr(double safety_factor) : safety_factor_(safety_factor) {
    if (safety_factor_ <= 0.0 || safety_factor_ > 1.0)
        throw std::invalid_argument("RateBasedAbr: safety factor outside (0,1]");
}

std::size_t RateBasedAbr::choose(const AbrState& state, const BitrateLadder& ladder,
                                 const SessionConfig&, const QoeParams&) const {
    return ladder.highest_below(safety_factor_ * state.predicted_throughput_mbps);
}

BolaAbr::BolaAbr(double gamma_p, double control_v)
    : gamma_p_(gamma_p), control_v_(control_v) {
    if (gamma_p_ <= 0.0) throw std::invalid_argument("BolaAbr: gamma_p must be > 0");
}

std::size_t BolaAbr::choose(const AbrState& state, const BitrateLadder& ladder,
                            const SessionConfig& session, const QoeParams&) const {
    // Utilities: log of bitrate relative to the lowest level (BOLA's v_m).
    const double base = ladder.mbps(0);
    const double utility_max = std::log(ladder.mbps(ladder.highest()) / base);
    const double v =
        control_v_ > 0.0
            ? control_v_
            : std::max(session.max_buffer_s - session.chunk_seconds, 1.0) /
                  (utility_max + gamma_p_);

    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t best_level = 0;
    for (std::size_t m = 0; m < ladder.levels(); ++m) {
        const double utility = std::log(ladder.mbps(m) / base);
        const double size_mbits = ladder.mbps(m) * session.chunk_seconds;
        const double score =
            (v * (utility + gamma_p_) - state.buffer_s) / size_mbits;
        if (score > best_score) {
            best_score = score;
            best_level = m;
        }
    }
    // All-negative scores = BOLA's abstain region: the buffer is already so
    // full that BOLA would pause downloads; a streaming session that must
    // fetch anyway can safely take the top level on that cushion.
    if (best_score < 0.0) return ladder.highest();
    return best_level;
}

MpcAbr::MpcAbr(std::size_t horizon) : horizon_(horizon) {
    if (horizon_ == 0) throw std::invalid_argument("MpcAbr: horizon must be > 0");
}

double MpcAbr::lookahead(double buffer_s, std::size_t previous_level,
                         double throughput_mbps, std::size_t depth,
                         const BitrateLadder& ladder, const SessionConfig& session,
                         const QoeParams& qoe) const {
    if (depth == 0) return 0.0;
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t level = 0; level < ladder.levels(); ++level) {
        const double bitrate = ladder.mbps(level);
        // FastMPC's model: download time = chunk size / predicted throughput,
        // with throughput assumed independent of the chosen bitrate.
        const double download_s =
            bitrate * session.chunk_seconds / std::max(throughput_mbps, 1e-3);
        const double rebuffer_s = std::max(0.0, download_s - buffer_s);
        double next_buffer =
            std::max(buffer_s - download_s, 0.0) + session.chunk_seconds;
        next_buffer = std::min(next_buffer, session.max_buffer_s);
        const double reward =
            qoe.chunk_qoe(bitrate, rebuffer_s, ladder.mbps(previous_level));
        const double future = lookahead(next_buffer, level, throughput_mbps,
                                        depth - 1, ladder, session, qoe);
        best = std::max(best, reward + future);
    }
    return best;
}

std::size_t MpcAbr::choose(const AbrState& state, const BitrateLadder& ladder,
                           const SessionConfig& session, const QoeParams& qoe) const {
    double best = -std::numeric_limits<double>::infinity();
    std::size_t best_level = 0;
    for (std::size_t level = 0; level < ladder.levels(); ++level) {
        const double bitrate = ladder.mbps(level);
        const double download_s =
            bitrate * session.chunk_seconds /
            std::max(state.predicted_throughput_mbps, 1e-3);
        const double rebuffer_s = std::max(0.0, download_s - state.buffer_s);
        double next_buffer =
            std::max(state.buffer_s - download_s, 0.0) + session.chunk_seconds;
        next_buffer = std::min(next_buffer, session.max_buffer_s);
        const double reward = qoe.chunk_qoe(bitrate, rebuffer_s,
                                            ladder.mbps(state.previous_level));
        const double future =
            lookahead(next_buffer, level, state.predicted_throughput_mbps,
                      horizon_ - 1, ladder, session, qoe);
        if (reward + future > best) {
            best = reward + future;
            best_level = level;
        }
    }
    return best_level;
}

} // namespace dre::video
