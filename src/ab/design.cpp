#include "ab/design.h"

#include <cmath>
#include <stdexcept>

#include "stats/special.h"

namespace dre::ab {

namespace {

void validate_spec(const PowerSpec& spec) {
    if (!(spec.alpha > 0.0 && spec.alpha < 1.0))
        throw std::invalid_argument("alpha must lie in (0, 1)");
    if (!(spec.power > 0.0 && spec.power < 1.0))
        throw std::invalid_argument("power must lie in (0, 1)");
}

double z_sum(const PowerSpec& spec) {
    return stats::normal_quantile(1.0 - spec.alpha / 2.0) +
           stats::normal_quantile(spec.power);
}

} // namespace

std::size_t required_samples_per_arm(double min_detectable_delta,
                                     double reward_sigma, const PowerSpec& spec) {
    validate_spec(spec);
    if (!(min_detectable_delta > 0.0))
        throw std::invalid_argument("effect size must be positive");
    if (!(reward_sigma > 0.0))
        throw std::invalid_argument("reward sigma must be positive");
    const double z = z_sum(spec);
    const double n = 2.0 * z * z * reward_sigma * reward_sigma /
                     (min_detectable_delta * min_detectable_delta);
    return static_cast<std::size_t>(std::ceil(n));
}

double minimum_detectable_effect(std::size_t samples_per_arm, double reward_sigma,
                                 const PowerSpec& spec) {
    validate_spec(spec);
    if (samples_per_arm == 0)
        throw std::invalid_argument("need at least one sample per arm");
    if (!(reward_sigma > 0.0))
        throw std::invalid_argument("reward sigma must be positive");
    return z_sum(spec) * reward_sigma *
           std::sqrt(2.0 / static_cast<double>(samples_per_arm));
}

} // namespace dre::ab
