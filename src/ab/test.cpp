#include "ab/test.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/special.h"
#include "stats/summary.h"

namespace dre::ab {

WelchResult welch_t_test(std::span<const double> arm_a,
                         std::span<const double> arm_b) {
    if (arm_a.size() < 2 || arm_b.size() < 2)
        throw std::invalid_argument("welch_t_test needs >= 2 samples per arm");
    stats::Accumulator a, b;
    for (double x : arm_a) a.add(x);
    for (double x : arm_b) b.add(x);

    WelchResult result;
    result.mean_a = a.mean();
    result.mean_b = b.mean();
    result.delta = a.mean() - b.mean();
    const double va = a.sample_variance() / static_cast<double>(a.count());
    const double vb = b.sample_variance() / static_cast<double>(b.count());
    result.standard_error = std::sqrt(va + vb);
    if (result.standard_error == 0.0) {
        // Degenerate constant samples: identical means -> p = 1, else p = 0.
        result.p_value_two_sided = result.delta == 0.0 ? 1.0 : 0.0;
        result.dof = static_cast<double>(a.count() + b.count() - 2);
        return result;
    }
    result.t_statistic = result.delta / result.standard_error;
    const double na = static_cast<double>(a.count());
    const double nb = static_cast<double>(b.count());
    result.dof = (va + vb) * (va + vb) /
                 (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
    const double tail =
        stats::student_t_cdf(-std::fabs(result.t_statistic), result.dof);
    result.p_value_two_sided = std::min(1.0, 2.0 * tail);
    return result;
}

MixtureSprt::MixtureSprt(double tau, double alpha, std::size_t burn_in)
    : tau_(tau), alpha_(alpha), burn_in_(std::max<std::size_t>(burn_in, 2)) {
    if (!(tau > 0.0)) throw std::invalid_argument("mixture scale tau must be > 0");
    if (!(alpha > 0.0 && alpha < 1.0))
        throw std::invalid_argument("alpha must lie in (0, 1)");
}

double MixtureSprt::likelihood_ratio() const {
    if (n_ < burn_in_) return 1.0; // variance estimate not trustworthy yet
    const double n = static_cast<double>(n_);
    // Sample variance of the pairwise differences, floored so a freakishly
    // quiet early stream cannot manufacture an infinite likelihood ratio.
    const double var = std::max(m2_ / (n - 1.0), 1e-12);
    const double denom = var + n * tau_ * tau_;
    const double log_lr = 0.5 * std::log(var / denom) +
                          n * n * tau_ * tau_ * mean_ * mean_ / (2.0 * var * denom);
    return std::exp(log_lr);
}

bool MixtureSprt::add(double reward_a, double reward_b) {
    const double diff = reward_a - reward_b;
    ++n_;
    const double delta = diff - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (diff - mean_);

    p_ = std::min(p_, 1.0 / std::max(likelihood_ratio(), 1.0));
    if (!decided_ && p_ <= alpha_) decided_ = true;
    return decided_;
}

} // namespace dre::ab
