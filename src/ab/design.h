// A/B experiment design: how much live traffic a randomized trial costs.
//
// The paper's opening argument is that operators fall back on trace-driven
// ("data-driven") evaluation because live randomized trials are expensive —
// every sample served to the losing arm is a real user getting a worse
// experience. This module quantifies that cost with the standard two-sample
// power analysis, so the A/B-vs-offline bench can put a number on what DR
// evaluation saves.
#ifndef DRE_AB_DESIGN_H
#define DRE_AB_DESIGN_H

#include <cstddef>

namespace dre::ab {

struct PowerSpec {
    double alpha = 0.05; // two-sided type-I error
    double power = 0.80; // 1 - type-II error at the design effect
};

// Samples needed *per arm* for a two-sample z-test to detect a true mean
// difference `min_detectable_delta` when rewards have stddev `reward_sigma`:
//   n = (z_{1-alpha/2} + z_{power})^2 * 2 sigma^2 / delta^2,
// rounded up. Throws std::invalid_argument for non-positive delta/sigma or
// alpha/power outside (0, 1).
std::size_t required_samples_per_arm(double min_detectable_delta,
                                     double reward_sigma,
                                     const PowerSpec& spec = {});

// The smallest true difference detectable with `samples_per_arm` per arm —
// the inverse of required_samples_per_arm.
double minimum_detectable_effect(std::size_t samples_per_arm, double reward_sigma,
                                 const PowerSpec& spec = {});

} // namespace dre::ab

#endif // DRE_AB_DESIGN_H
