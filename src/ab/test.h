// Fixed-horizon and always-valid sequential tests for live A/B experiments.
//
// WelchTTest is the classic end-of-experiment analysis (unequal-variance
// two-sample t). MixtureSprt is the always-valid alternative: a mixture
// sequential probability ratio test whose p-value is valid at *every*
// sample size, so the experiment can stop the moment significance is
// reached instead of burning traffic to a precomputed horizon — the
// honest version of the "peeking" every practitioner does anyway.
#ifndef DRE_AB_TEST_H
#define DRE_AB_TEST_H

#include <cstddef>
#include <span>

namespace dre::ab {

struct WelchResult {
    double mean_a = 0.0;
    double mean_b = 0.0;
    double delta = 0.0;       // mean_a - mean_b
    double standard_error = 0.0;
    double t_statistic = 0.0;
    double dof = 0.0;         // Welch-Satterthwaite degrees of freedom
    double p_value_two_sided = 1.0;

    bool significant(double alpha = 0.05) const noexcept {
        return p_value_two_sided < alpha;
    }
};

// Welch's unequal-variance two-sample t-test. Requires at least two
// observations per arm (throws std::invalid_argument otherwise).
WelchResult welch_t_test(std::span<const double> arm_a,
                         std::span<const double> arm_b);

// Always-valid test of H0: E[a] = E[b] from paired observations, using the
// normal-mixture SPRT (Robbins 1970; the "always-valid p-value" of
// Johari et al. 2017). The mixing scale `tau` encodes the effect size the
// test is most sensitive to — a good default is the minimum effect you care
// about. The variance of the pairwise difference is estimated online.
class MixtureSprt {
public:
    // alpha: significance level at which decided() flips. tau > 0.
    // burn_in: pairs observed before the likelihood ratio starts counting.
    // The mSPRT guarantee assumes a known variance; we plug in the running
    // estimate, which is noisy enough at tiny n to inflate false positives
    // ~4x (measured in test_ab.cpp). A modest burn-in restores calibration.
    MixtureSprt(double tau, double alpha = 0.05, std::size_t burn_in = 25);

    // Feed one observation from each arm (one experiment "bucket").
    // Returns true once the test has crossed its decision boundary; further
    // observations are still accepted (the statistics keep updating) but
    // the decision is sticky by design — always-valid tests permit exactly
    // one rejection readout.
    bool add(double reward_a, double reward_b);

    std::size_t pairs() const noexcept { return n_; }
    double estimated_delta() const noexcept { return n_ == 0 ? 0.0 : mean_; }
    bool decided() const noexcept { return decided_; }

    // Always-valid p-value: min over observed history of 1/likelihood-ratio,
    // clamped to [0, 1]. Safe to read (and act on) at any time.
    double always_valid_p() const noexcept { return p_; }

private:
    double likelihood_ratio() const;

    double tau_;
    double alpha_;
    std::size_t burn_in_;
    std::size_t n_ = 0;
    double mean_ = 0.0; // running mean of pairwise differences
    double m2_ = 0.0;   // running sum of squared deviations (Welford)
    double p_ = 1.0;    // running minimum of 1/LR
    bool decided_ = false;
};

} // namespace dre::ab

#endif // DRE_AB_TEST_H
