#include "ab/experiment.h"

#include <stdexcept>

#include "stats/summary.h"

namespace dre::ab {

LiveAbOutcome run_live_ab(const core::Environment& env,
                          const core::Policy& policy_a,
                          const core::Policy& policy_b,
                          const LiveAbConfig& config, stats::Rng& rng) {
    if (policy_a.num_decisions() != env.num_decisions() ||
        policy_b.num_decisions() != env.num_decisions())
        throw std::invalid_argument("policy/environment decision-space mismatch");
    if (config.max_pairs == 0)
        throw std::invalid_argument("run_live_ab needs max_pairs > 0");

    MixtureSprt sprt(config.tau, config.alpha);
    stats::Accumulator rewards_a, rewards_b;
    for (std::size_t pair = 0; pair < config.max_pairs; ++pair) {
        const ClientContext ca = env.sample_context(rng);
        const Reward ra = env.sample_reward(ca, policy_a.sample(ca, rng), rng);
        const ClientContext cb = env.sample_context(rng);
        const Reward rb = env.sample_reward(cb, policy_b.sample(cb, rng), rng);
        rewards_a.add(ra);
        rewards_b.add(rb);
        const bool decided = sprt.add(ra, rb);
        if (decided && pair + 1 >= config.min_pairs) break;
    }

    LiveAbOutcome outcome;
    outcome.significant = sprt.decided();
    outcome.pairs_used = sprt.pairs();
    outcome.estimated_delta = sprt.estimated_delta();
    outcome.always_valid_p = sprt.always_valid_p();
    outcome.mean_reward_a = rewards_a.mean();
    outcome.mean_reward_b = rewards_b.mean();
    return outcome;
}

} // namespace dre::ab
