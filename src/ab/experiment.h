// Live A/B experiment loop against a ground-truth environment.
//
// This is the costly alternative the paper's trace-driven program competes
// with: every step serves two real clients, one per arm, and the losing
// arm's clients eat the worse experience. The runner stops as soon as the
// always-valid sequential test reaches significance (or at max_pairs), and
// reports how much live traffic the answer cost.
#ifndef DRE_AB_EXPERIMENT_H
#define DRE_AB_EXPERIMENT_H

#include <cstddef>

#include "ab/test.h"
#include "core/environment.h"
#include "core/policy.h"
#include "stats/rng.h"

namespace dre::ab {

struct LiveAbOutcome {
    bool significant = false;      // did the sequential test conclude?
    std::size_t pairs_used = 0;    // live clients consumed = 2 * pairs_used
    double estimated_delta = 0.0;  // mean(arm A) - mean(arm B) at stop
    double always_valid_p = 1.0;
    double mean_reward_a = 0.0;    // realized per-client reward, arm A
    double mean_reward_b = 0.0;
};

struct LiveAbConfig {
    double tau = 0.1;              // mSPRT mixing scale (~ effect of interest)
    double alpha = 0.05;
    std::size_t max_pairs = 100000; // traffic budget
    std::size_t min_pairs = 20;     // never stop before this many pairs
};

// Serve clients drawn from `env` alternately to `policy_a` and `policy_b`
// until the mixture SPRT concludes or the traffic budget runs out. Throws
// std::invalid_argument on a decision-space mismatch or max_pairs == 0.
LiveAbOutcome run_live_ab(const core::Environment& env,
                          const core::Policy& policy_a,
                          const core::Policy& policy_b,
                          const LiveAbConfig& config, stats::Rng& rng);

} // namespace dre::ab

#endif // DRE_AB_EXPERIMENT_H
