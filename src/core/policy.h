// Policies: mappings from client contexts to distributions over decisions
// (paper §2.1: "a policy returns mu(d|c), the probability of choosing the
// decision d for client c, and sum_d mu(d|c) = 1").
#ifndef DRE_CORE_POLICY_H
#define DRE_CORE_POLICY_H

#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "stats/rng.h"
#include "trace/types.h"

namespace dre::core {

// Stationary ("history-agnostic") policy interface.
class Policy {
public:
    virtual ~Policy() = default;

    // Full distribution over the decision space for this context. Always
    // returns num_decisions() probabilities summing to 1.
    virtual std::vector<double> action_probabilities(
        const ClientContext& context) const = 0;

    // Allocation-free variant for the estimator hot loops: fill `out` with
    // the same distribution, reusing its capacity. The default delegates to
    // action_probabilities(); policies whose distribution is cheap to
    // write in place (uniform, one-hot, table rows, epsilon mixes)
    // override it. Overrides must produce values bit-identical to
    // action_probabilities() — the estimators rely on the two being
    // interchangeable.
    virtual void action_probabilities_into(const ClientContext& context,
                                           std::vector<double>& out) const {
        out = action_probabilities(context);
    }

    virtual std::size_t num_decisions() const noexcept = 0;

    // mu(d | c). Default implementation indexes action_probabilities().
    // Overrides must return exactly action_probabilities(context)[d] — the
    // estimators read either interchangeably.
    virtual double probability(const ClientContext& context, Decision d) const;

    // Sample a decision from mu(. | c).
    Decision sample(const ClientContext& context, stats::Rng& rng) const;

protected:
    Policy() = default;
    Policy(const Policy&) = default;
    Policy& operator=(const Policy&) = default;
};

// Deterministic policy defined by a chooser function.
class DeterministicPolicy final : public Policy {
public:
    using Chooser = std::function<Decision(const ClientContext&)>;

    DeterministicPolicy(std::size_t num_decisions, Chooser chooser);

    std::vector<double> action_probabilities(const ClientContext& context) const override;
    void action_probabilities_into(const ClientContext& context,
                                   std::vector<double>& out) const override;
    double probability(const ClientContext& context, Decision d) const override;
    std::size_t num_decisions() const noexcept override { return num_decisions_; }

    Decision choose(const ClientContext& context) const { return checked_choice(context); }

private:
    Decision checked_choice(const ClientContext& context) const;

    std::size_t num_decisions_;
    Chooser chooser_;
};

// Uniform-random policy (the CFA paper's logging policy: "clients ... have
// been randomly assigned to a set of available CDNs and bitrates").
class UniformRandomPolicy final : public Policy {
public:
    explicit UniformRandomPolicy(std::size_t num_decisions);

    std::vector<double> action_probabilities(const ClientContext&) const override;
    void action_probabilities_into(const ClientContext&,
                                   std::vector<double>& out) const override;
    double probability(const ClientContext&, Decision d) const override;
    std::size_t num_decisions() const noexcept override { return num_decisions_; }

private:
    std::size_t num_decisions_;
};

// Epsilon-greedy wrapper: with prob. 1-epsilon follow the base policy's
// distribution, with prob. epsilon pick uniformly. This is the §4.1
// "introduce randomness where impact on overall performance is small"
// recommendation, and gives IPS/DR the full-support guarantee they need.
class EpsilonGreedyPolicy final : public Policy {
public:
    EpsilonGreedyPolicy(std::shared_ptr<const Policy> base, double epsilon);

    std::vector<double> action_probabilities(const ClientContext& context) const override;
    void action_probabilities_into(const ClientContext& context,
                                   std::vector<double>& out) const override;
    std::size_t num_decisions() const noexcept override { return base_->num_decisions(); }

    double epsilon() const noexcept { return epsilon_; }

private:
    std::shared_ptr<const Policy> base_;
    double epsilon_;
};

// Softmax over per-context decision scores: mu(d|c) ∝ exp(score(c,d)/T).
class SoftmaxPolicy final : public Policy {
public:
    using Scorer = std::function<double(const ClientContext&, Decision)>;

    SoftmaxPolicy(std::size_t num_decisions, Scorer scorer, double temperature = 1.0);

    std::vector<double> action_probabilities(const ClientContext& context) const override;
    std::size_t num_decisions() const noexcept override { return num_decisions_; }

private:
    std::size_t num_decisions_;
    Scorer scorer_;
    double temperature_;
};

// Mixture: alpha * a + (1-alpha) * b, per context. Handy for building "new"
// policies that partially overlap the old one (paper Fig. 7a's "50% of ISP-1
// clients use FE-1 and BE-2").
class MixturePolicy final : public Policy {
public:
    MixturePolicy(std::shared_ptr<const Policy> a, std::shared_ptr<const Policy> b,
                  double weight_a);

    std::vector<double> action_probabilities(const ClientContext& context) const override;
    std::size_t num_decisions() const noexcept override { return a_->num_decisions(); }

private:
    std::shared_ptr<const Policy> a_;
    std::shared_ptr<const Policy> b_;
    double weight_a_;
};

// Explicit per-context-fingerprint table with a fallback distribution.
class TablePolicy final : public Policy {
public:
    TablePolicy(std::size_t num_decisions, std::vector<double> fallback);

    void set(const ClientContext& context, std::vector<double> distribution);

    std::vector<double> action_probabilities(const ClientContext& context) const override;
    std::size_t num_decisions() const noexcept override { return num_decisions_; }

private:
    std::size_t num_decisions_;
    std::vector<double> fallback_;
    std::unordered_map<std::uint64_t, std::vector<double>> table_;
};

// History-dependent ("non-stationary", §4.1/§4.2) policy: the decision may
// depend on the observed history h_k = {(c_i, d_i, r_i)} for i < k.
class HistoryPolicy {
public:
    virtual ~HistoryPolicy() = default;

    virtual std::vector<double> action_probabilities(
        const ClientContext& context, std::span<const LoggedTuple> history) const = 0;

    virtual std::size_t num_decisions() const noexcept = 0;

    double probability(const ClientContext& context,
                       std::span<const LoggedTuple> history, Decision d) const;

    Decision sample(const ClientContext& context,
                    std::span<const LoggedTuple> history, stats::Rng& rng) const;

protected:
    HistoryPolicy() = default;
    HistoryPolicy(const HistoryPolicy&) = default;
    HistoryPolicy& operator=(const HistoryPolicy&) = default;
};

// Adapter: any stationary policy is trivially a history policy.
class StationaryAsHistoryPolicy final : public HistoryPolicy {
public:
    explicit StationaryAsHistoryPolicy(std::shared_ptr<const Policy> base);

    std::vector<double> action_probabilities(
        const ClientContext& context, std::span<const LoggedTuple>) const override;
    std::size_t num_decisions() const noexcept override { return base_->num_decisions(); }

private:
    std::shared_ptr<const Policy> base_;
};

// Throws std::invalid_argument unless `distribution` has the expected size,
// non-negative finite entries, and sums to 1 within tolerance.
void validate_distribution(std::span<const double> distribution,
                           std::size_t expected_size);

} // namespace dre::core

#endif // DRE_CORE_POLICY_H
