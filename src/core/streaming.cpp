#include "core/streaming.h"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <utility>

#include <unistd.h>

#include "core/estimators.h"
#include "core/parallel.h"
#include "core/qhat.h"
#include "fault/fault.h"
#include "obs/obs.h"
#include "stats/bootstrap.h"
#include "stats/summary.h"
#include "trace/validate.h"

namespace dre::core {

void TraceTupleSource::read(std::uint64_t begin, std::uint64_t count,
                            std::vector<LoggedTuple>& out) const {
    out.clear();
    if (begin + count > trace_->size())
        throw std::out_of_range("TraceTupleSource: read past end of trace");
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        out.push_back((*trace_)[begin + i]);
}

const char* to_string(FailureMode mode) noexcept {
    switch (mode) {
        case FailureMode::kStrict: return "strict";
        case FailureMode::kQuarantine: return "quarantine";
        case FailureMode::kDegrade: return "degrade";
    }
    return "unknown";
}

FailureMode parse_failure_mode(std::string_view text) {
    if (text == "strict") return FailureMode::kStrict;
    if (text == "quarantine") return FailureMode::kQuarantine;
    if (text == "degrade") return FailureMode::kDegrade;
    throw std::invalid_argument("unknown failure mode '" + std::string(text) +
                                "' (expected strict|quarantine|degrade)");
}

double QuarantineReport::coverage() const noexcept {
    if (tuples_total == 0) return 1.0;
    return static_cast<double>(tuples_evaluated) /
           static_cast<double>(tuples_total);
}

void QuarantineReport::add(std::uint64_t begin, std::uint64_t count,
                           const std::string& reason, std::int64_t shard) {
    if (count == 0) return;
    tuples_quarantined += count;
    reason_counts[reason] += count;
    shard_counts[shard] += count;
    if (!records.empty()) {
        QuarantineRecord& last = records.back();
        if (last.begin + last.count == begin && last.reason == reason &&
            last.shard == shard) {
            last.count += count;
            return;
        }
    }
    if (records.size() >= kMaxRecords) {
        ++records_dropped;
        return;
    }
    records.push_back({begin, count, reason, shard});
}

void QuarantineReport::merge(const QuarantineReport& other) {
    tuples_quarantined += other.tuples_quarantined;
    chunks_quarantined += other.chunks_quarantined;
    for (const auto& [reason, n] : other.reason_counts)
        reason_counts[reason] += n;
    for (const auto& [shard, n] : other.shard_counts) shard_counts[shard] += n;
    records_dropped += other.records_dropped;
    for (const QuarantineRecord& rec : other.records) {
        if (!records.empty()) {
            QuarantineRecord& last = records.back();
            if (last.begin + last.count == rec.begin &&
                last.reason == rec.reason && last.shard == rec.shard) {
                last.count += rec.count;
                continue;
            }
        }
        if (records.size() >= kMaxRecords) {
            ++records_dropped;
            continue;
        }
        records.push_back(rec);
    }
}

std::string QuarantineReport::to_text() const {
    char line[256];
    std::string out = "quarantine report\n";
    const auto add_count = [&](const char* label, std::uint64_t value) {
        std::snprintf(line, sizeof line, "  %-20s%llu\n", label,
                      static_cast<unsigned long long>(value));
        out += line;
    };
    add_count("tuples total:", tuples_total);
    add_count("tuples evaluated:", tuples_evaluated);
    add_count("tuples quarantined:", tuples_quarantined);
    add_count("chunks quarantined:", chunks_quarantined);
    std::snprintf(line, sizeof line, "  %-20s%.17g\n", "coverage:", coverage());
    out += line;
    if (!reason_counts.empty()) {
        out += "  reasons:\n";
        for (const auto& [reason, n] : reason_counts) {
            std::snprintf(line, sizeof line, "    %s: %llu\n", reason.c_str(),
                          static_cast<unsigned long long>(n));
            out += line;
        }
    }
    if (!shard_counts.empty()) {
        out += "  shards:\n";
        for (const auto& [shard, n] : shard_counts) {
            std::snprintf(line, sizeof line, "    shard %lld: %llu\n",
                          static_cast<long long>(shard),
                          static_cast<unsigned long long>(n));
            out += line;
        }
    }
    if (!records.empty()) {
        std::snprintf(line, sizeof line,
                      "  records (%llu shown, %llu dropped):\n",
                      static_cast<unsigned long long>(records.size()),
                      static_cast<unsigned long long>(records_dropped));
        out += line;
        for (const QuarantineRecord& rec : records) {
            std::snprintf(line, sizeof line, "    [%llu, %llu) %s shard=%lld\n",
                          static_cast<unsigned long long>(rec.begin),
                          static_cast<unsigned long long>(rec.begin + rec.count),
                          rec.reason.c_str(), static_cast<long long>(rec.shard));
            out += line;
        }
    }
    return out;
}

namespace {

// ---------------------------------------------------------------------------
// Checkpoint file format (host byte order; same-machine resume):
//   magic "DRECKPT1" | u64 config_hash | payload | u64 fnv1a(all preceding)
// The payload is the complete reduction state at a wave boundary. Doubles
// are stored as bit patterns, so a resumed run restarts from *exactly* the
// interrupted run's floating-point state.
// ---------------------------------------------------------------------------

constexpr char kCheckpointMagic[8] = {'D', 'R', 'E', 'C', 'K', 'P', 'T', '1'};

std::uint64_t fnv1a(const void* data, std::size_t len,
                    std::uint64_t hash = 1469598103934665603ull) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

[[noreturn]] void ckpt_fail(const std::string& what) {
    throw std::runtime_error("checkpoint: " + what);
}

struct Serializer {
    std::string buf;

    void u64(std::uint64_t v) { buf.append(reinterpret_cast<const char*>(&v), 8); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
    void str(const std::string& s) {
        u64(s.size());
        buf.append(s);
    }
};

struct Parser {
    const std::string& buf;
    std::size_t pos = 0;

    void raw(void* out, std::size_t len) {
        if (pos + len > buf.size()) ckpt_fail("truncated file");
        std::memcpy(out, buf.data() + pos, len);
        pos += len;
    }
    std::uint64_t u64() {
        std::uint64_t v;
        raw(&v, 8);
        return v;
    }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64() { return std::bit_cast<double>(u64()); }
    std::string str() {
        const std::uint64_t len = u64();
        if (len > buf.size() - pos) ckpt_fail("truncated string");
        std::string s(buf.data() + pos, static_cast<std::size_t>(len));
        pos += static_cast<std::size_t>(len);
        return s;
    }
};

// Everything evaluate_streaming folds across chunks, checkpointable as a
// unit. The bootstrap replicate sums travel alongside (they live in the
// ChunkedMeanBootstrap).
struct RunState {
    std::uint64_t next_chunk = 0; // first chunk NOT yet merged
    par::MeanState dm, ips, dr, switch_dr;
    double weight_total = 0.0, weighted_reward_total = 0.0;
    double o_sum = 0.0, o_sum_sq = 0.0, o_max = 0.0;
    std::uint64_t o_zeros = 0;
    stats::Accumulator weight_acc;
    QuarantineReport quarantine;
};

void put_mean_state(Serializer& s, const par::MeanState& m) {
    s.u64(m.n);
    s.f64(m.mean);
}

par::MeanState get_mean_state(Parser& p) {
    par::MeanState m;
    m.n = static_cast<std::size_t>(p.u64());
    m.mean = p.f64();
    return m;
}

void put_report(Serializer& s, const QuarantineReport& q) {
    s.u64(q.tuples_total);
    s.u64(q.tuples_evaluated);
    s.u64(q.tuples_quarantined);
    s.u64(q.chunks_quarantined);
    s.u64(q.records_dropped);
    s.u64(q.reason_counts.size());
    for (const auto& [reason, n] : q.reason_counts) {
        s.str(reason);
        s.u64(n);
    }
    s.u64(q.shard_counts.size());
    for (const auto& [shard, n] : q.shard_counts) {
        s.i64(shard);
        s.u64(n);
    }
    s.u64(q.records.size());
    for (const QuarantineRecord& rec : q.records) {
        s.u64(rec.begin);
        s.u64(rec.count);
        s.str(rec.reason);
        s.i64(rec.shard);
    }
}

QuarantineReport get_report(Parser& p) {
    QuarantineReport q;
    q.tuples_total = p.u64();
    q.tuples_evaluated = p.u64();
    q.tuples_quarantined = p.u64();
    q.chunks_quarantined = p.u64();
    q.records_dropped = p.u64();
    for (std::uint64_t i = 0, n = p.u64(); i < n; ++i) {
        std::string reason = p.str();
        q.reason_counts[std::move(reason)] = p.u64();
    }
    for (std::uint64_t i = 0, n = p.u64(); i < n; ++i) {
        const std::int64_t shard = p.i64();
        q.shard_counts[shard] = p.u64();
    }
    const std::uint64_t num_records = p.u64();
    if (num_records > QuarantineReport::kMaxRecords)
        ckpt_fail("record count exceeds cap");
    q.records.reserve(static_cast<std::size_t>(num_records));
    for (std::uint64_t i = 0; i < num_records; ++i) {
        QuarantineRecord rec;
        rec.begin = p.u64();
        rec.count = p.u64();
        rec.reason = p.str();
        rec.shard = p.i64();
        q.records.push_back(std::move(rec));
    }
    return q;
}

// The options/geometry fingerprint a checkpoint is only valid for. The
// bootstrap base-generator words fold in the caller's seed, so resuming
// with a different --seed is refused instead of silently diverging.
std::uint64_t config_hash(std::uint64_t n, const StreamingOptions& options,
                          const std::optional<stats::ChunkedMeanBootstrap>&
                              bootstrap) {
    Serializer s;
    s.u64(n);
    s.u64(par::kReduceChunk);
    s.i64(options.ci_replicates);
    s.f64(options.ci_level);
    s.f64(options.estimator_options.weight_clip);
    s.f64(options.estimator_options.switch_threshold);
    s.i64(static_cast<std::int64_t>(options.on_error));
    s.u64(bootstrap ? 1 : 0);
    if (bootstrap)
        for (const std::uint64_t word : bootstrap->base_rng().state())
            s.u64(word);
    return fnv1a(s.buf.data(), s.buf.size());
}

void write_checkpoint(const std::string& path, std::uint64_t hash,
                      const RunState& state,
                      const std::optional<stats::ChunkedMeanBootstrap>&
                          bootstrap) {
    Serializer s;
    s.buf.append(kCheckpointMagic, sizeof kCheckpointMagic);
    s.u64(hash);
    s.u64(state.next_chunk);
    put_mean_state(s, state.dm);
    put_mean_state(s, state.ips);
    put_mean_state(s, state.dr);
    put_mean_state(s, state.switch_dr);
    s.f64(state.weight_total);
    s.f64(state.weighted_reward_total);
    s.f64(state.o_sum);
    s.f64(state.o_sum_sq);
    s.f64(state.o_max);
    s.u64(state.o_zeros);
    const stats::Accumulator::State acc = state.weight_acc.state();
    s.u64(acc.n);
    s.f64(acc.mean);
    s.f64(acc.m2);
    s.f64(acc.sum);
    s.f64(acc.min);
    s.f64(acc.max);
    s.u64(bootstrap ? 1 : 0);
    if (bootstrap) {
        s.i64(bootstrap->replicates());
        for (const std::uint64_t word : bootstrap->base_rng().state())
            s.u64(word);
        for (const double sum : bootstrap->replicate_sums()) s.f64(sum);
    }
    put_report(s, state.quarantine);
    s.u64(fnv1a(s.buf.data(), s.buf.size()));

    const std::string tmp = path + ".tmp";
    std::FILE* file = std::fopen(tmp.c_str(), "wb");
    if (file == nullptr)
        ckpt_fail("cannot create " + tmp + ": " + std::strerror(errno));
    const bool written =
        std::fwrite(s.buf.data(), 1, s.buf.size(), file) == s.buf.size() &&
        std::fflush(file) == 0 && ::fsync(::fileno(file)) == 0;
    if (std::fclose(file) != 0 || !written) {
        std::remove(tmp.c_str());
        ckpt_fail("write failed for " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        ckpt_fail("rename failed for " + path + ": " + std::strerror(errno));
    DRE_COUNTER_INC("stream.checkpoints_written");
}

// Loads and verifies a checkpoint. Returns false (state untouched) when the
// file does not exist; throws on any malformed or mismatched content — a
// damaged checkpoint must never silently fall back to a fresh run.
bool load_checkpoint(const std::string& path, std::uint64_t hash,
                     RunState& state,
                     std::optional<stats::ChunkedMeanBootstrap>& bootstrap) {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) return false;
    std::string buf;
    char block[1 << 16];
    std::size_t got;
    while ((got = std::fread(block, 1, sizeof block, file)) > 0)
        buf.append(block, got);
    const bool read_error = std::ferror(file) != 0;
    std::fclose(file);
    if (read_error) ckpt_fail("read failed for " + path);

    if (buf.size() < sizeof kCheckpointMagic + 16) ckpt_fail("truncated file");
    if (std::memcmp(buf.data(), kCheckpointMagic, sizeof kCheckpointMagic) != 0)
        ckpt_fail(path + " is not a checkpoint file");
    std::uint64_t stored_sum;
    std::memcpy(&stored_sum, buf.data() + buf.size() - 8, 8);
    if (fnv1a(buf.data(), buf.size() - 8) != stored_sum)
        ckpt_fail(path + " is corrupt (checksum mismatch)");

    Parser p{buf, sizeof kCheckpointMagic};
    if (p.u64() != hash)
        ckpt_fail(path +
                  " was written by a run with different options, data size, "
                  "or seed — refusing to resume");
    state.next_chunk = p.u64();
    state.dm = get_mean_state(p);
    state.ips = get_mean_state(p);
    state.dr = get_mean_state(p);
    state.switch_dr = get_mean_state(p);
    state.weight_total = p.f64();
    state.weighted_reward_total = p.f64();
    state.o_sum = p.f64();
    state.o_sum_sq = p.f64();
    state.o_max = p.f64();
    state.o_zeros = p.u64();
    stats::Accumulator::State acc;
    acc.n = static_cast<std::size_t>(p.u64());
    acc.mean = p.f64();
    acc.m2 = p.f64();
    acc.sum = p.f64();
    acc.min = p.f64();
    acc.max = p.f64();
    state.weight_acc = stats::Accumulator::from_state(acc);
    const bool has_bootstrap = p.u64() != 0;
    if (has_bootstrap != bootstrap.has_value())
        ckpt_fail("bootstrap presence mismatch"); // config hash covers this
    if (bootstrap) {
        if (p.i64() != bootstrap->replicates())
            ckpt_fail("replicate count mismatch");
        std::array<std::uint64_t, 4> words;
        for (std::uint64_t& word : words) word = p.u64();
        if (words != bootstrap->base_rng().state())
            ckpt_fail("bootstrap generator state mismatch");
        std::vector<double> sums(
            static_cast<std::size_t>(bootstrap->replicates()));
        for (double& sum : sums) sum = p.f64();
        bootstrap->restore_sums(sums);
    }
    state.quarantine = get_report(p);
    DRE_COUNTER_INC("stream.resumes");
    return true;
}

// Everything evaluate_streaming keeps per in-flight chunk. Folded into the
// running totals strictly in chunk order, then discarded.
struct ChunkResult {
    par::MeanState dm, ips, dr, switch_dr;
    double weight_sum = 0.0;
    double weighted_reward_sum = 0.0; // Σ w_k r_k (SNIPS numerator)
    std::uint64_t evaluated = 0;      // tuples that reached the estimators
    std::vector<double> weights;      // for the in-order overlap fold
    std::vector<double> boot_partials; // per-replicate DR resample sums
    QuarantineReport quarantine;       // this chunk's skipped tuples
};

const char* stream_fault_reason(fault::FaultKind kind) noexcept {
    switch (kind) {
        case fault::FaultKind::kTransient: return "stream-fault-transient";
        case fault::FaultKind::kPermanent: return "stream-fault-permanent";
        case fault::FaultKind::kCorruption: return "stream-fault-corruption";
    }
    return "stream-fault";
}

} // namespace

StreamingResult evaluate_streaming_guarded(const TupleSource& source,
                                           const RewardModel& model,
                                           const Policy& policy,
                                           const StreamingOptions& options,
                                           stats::Rng rng) {
    DRE_SPAN("evaluator.stream");
    const std::uint64_t n = source.num_tuples();
    if (n == 0) throw std::invalid_argument("evaluate_streaming: empty source");
    if (model.num_decisions() != policy.num_decisions())
        throw std::invalid_argument(
            "evaluate_streaming: model/policy decision-space mismatch");
    if (source.num_decisions() > policy.num_decisions())
        throw std::invalid_argument(
            "evaluate_streaming: source uses decisions outside policy space");
    if (options.chunk_max_attempts < 1)
        throw std::invalid_argument(
            "evaluate_streaming: chunk_max_attempts must be >= 1");
    if (options.resume && options.checkpoint_path.empty())
        throw std::invalid_argument(
            "evaluate_streaming: resume requires a checkpoint path");
    const bool tolerant = options.on_error != FailureMode::kStrict;

    // RNG protocol matches Evaluator::evaluate_with: the generator advances
    // exactly once — inside the bootstrap — and only when a CI is on.
    std::optional<stats::ChunkedMeanBootstrap> bootstrap;
    if (options.ci_replicates > 0)
        bootstrap.emplace(rng.split(), options.ci_replicates, options.ci_level);

    // Chunk geometry is the *global tuple index* over kReduceChunk — the
    // same boundaries par::chunked_mean/chunked_sum use on the in-memory
    // arrays, and deliberately decoupled from row-group and shard layout.
    const std::uint64_t chunks =
        (n + par::kReduceChunk - 1) / par::kReduceChunk;
    const std::size_t wave =
        options.wave_chunks != 0
            ? options.wave_chunks
            : std::max<std::size_t>(4 * par::thread_count(), 1);

    // Running totals, each folded exactly as its in-memory counterpart:
    // MeanState merges for the chunked means, left-fold sums for SNIPS.
    // Overlap diagnostics run the same serial folds overlap_diagnostics()
    // uses on the full weight vector, carried across chunks in index order.
    RunState state;
    state.quarantine.tuples_total = n;

    const std::uint64_t hash = config_hash(n, options, bootstrap);
    if (options.resume)
        load_checkpoint(options.checkpoint_path, hash, state, bootstrap);

    // The per-tuple decision-range check uses the policy's decision space:
    // anything inside it is evaluable even if the source header undercounts.
    const std::size_t decision_space = policy.num_decisions();

    std::vector<ChunkResult> wave_results(
        static_cast<std::size_t>(std::min<std::uint64_t>(wave, chunks)));
    for (std::uint64_t wave_begin = state.next_chunk; wave_begin < chunks;
         wave_begin += wave) {
        const auto count = static_cast<std::size_t>(
            std::min<std::uint64_t>(wave, chunks - wave_begin));
        par::parallel_for(count, [&](std::size_t i) {
            DRE_SPAN("evaluator.stream_chunk");
            const std::uint64_t c = wave_begin + i;
            const std::uint64_t begin = c * par::kReduceChunk;
            const std::uint64_t len =
                std::min<std::uint64_t>(par::kReduceChunk, n - begin);
            ChunkResult r;

            // stream.chunk fault gate, keyed by the global chunk id so a
            // schedule fires on the same chunks for any DRE_THREADS.
            // Transients retry (deterministically, up to the budget);
            // anything else aborts a strict run or quarantines the whole
            // chunk in the tolerant modes.
            bool chunk_dead = false;
            for (int attempt = 0;; ++attempt) {
                try {
                    DRE_FAULT_INJECT("stream.chunk", c, attempt);
                    break;
                } catch (const fault::FaultError& e) {
                    if (e.kind() == fault::FaultKind::kTransient &&
                        attempt + 1 < options.chunk_max_attempts) {
                        DRE_COUNTER_INC("stream.chunk_retries");
                        continue;
                    }
                    if (!tolerant) throw;
                    r.quarantine.add(begin, len, stream_fault_reason(e.kind()),
                                     -1);
                    ++r.quarantine.chunks_quarantined;
                    chunk_dead = true;
                    break;
                }
            }

            std::vector<LoggedTuple> buffer;
            std::vector<LoggedTuple> kept;
            if (!chunk_dead && !tolerant) {
                source.read(begin, len, buffer);
                if (buffer.size() != len)
                    throw std::runtime_error(
                        "evaluate_streaming: source returned a short chunk");
                kept = std::move(buffer);
            } else if (!chunk_dead) {
                std::vector<TupleReadFailure> failures;
                source.read_tolerant(begin, len, buffer, failures);
                for (const TupleReadFailure& f : failures)
                    r.quarantine.add(f.begin, f.count, f.reason, f.shard);
                // Walk the chunk's global index range, skipping the failed
                // sub-ranges, to pair each surviving tuple with its global
                // index for validation.
                kept.reserve(buffer.size());
                std::size_t next_tuple = 0;
                std::size_t next_failure = 0;
                for (std::uint64_t g = begin; g < begin + len; ++g) {
                    if (next_failure < failures.size() &&
                        g >= failures[next_failure].begin) {
                        g = failures[next_failure].begin +
                            failures[next_failure].count - 1;
                        ++next_failure;
                        continue;
                    }
                    if (next_tuple >= buffer.size())
                        throw std::runtime_error(
                            "evaluate_streaming: tolerant read returned "
                            "fewer tuples than its failure ranges imply");
                    LoggedTuple& t = buffer[next_tuple++];
                    const TupleDefect defect =
                        classify_tuple(t, decision_space);
                    if (defect == TupleDefect::kNone)
                        kept.push_back(std::move(t));
                    else
                        r.quarantine.add(g, 1, reason_code(defect), -1);
                }
            }

            if (!kept.empty()) {
                const Trace chunk(std::move(kept));
                r.evaluated = chunk.size();
                // Chunk-local q̂ block. build() inlines serially inside a
                // pool task and each slot is a pure function of (model,
                // tuple, d), so the block equals the matching rows of the
                // full matrix.
                const PredictionMatrix qhat =
                    PredictionMatrix::build(model, chunk);
                EstimatorChunk ec;
                fill_estimator_chunk(chunk, policy, qhat,
                                     options.estimator_options, ec);
                for (double x : ec.dm) r.dm.add(x);
                for (double x : ec.ips) r.ips.add(x);
                for (double x : ec.dr) r.dr.add(x);
                for (double x : ec.switch_dr) r.switch_dr.add(x);
                double w_sum = 0.0, wr_sum = 0.0;
                for (double w : ec.weights) w_sum += w;
                for (double x : ec.ips) wr_sum += x;
                r.weight_sum = w_sum;
                r.weighted_reward_sum = wr_sum;
                if (bootstrap)
                    r.boot_partials = bootstrap->chunk_partials(c, ec.dr);
                r.weights = std::move(ec.weights);
            }
            wave_results[i] = std::move(r);
#if DRE_OBS_ENABLED
            DRE_COUNTER_INC("evaluator.chunks_streamed");
            DRE_COUNTER_ADD("evaluator.tuples_streamed", len);
#endif
        });
        // In-order merge: the only sequencing point, and the reason results
        // cannot depend on thread count or chunk completion order.
        for (std::size_t i = 0; i < count; ++i) {
            ChunkResult& r = wave_results[i];
            state.dm.merge(r.dm);
            state.ips.merge(r.ips);
            state.dr.merge(r.dr);
            state.switch_dr.merge(r.switch_dr);
            state.weight_total += r.weight_sum;
            state.weighted_reward_total += r.weighted_reward_sum;
            for (double w : r.weights) {
                state.o_sum += w;
                state.o_sum_sq += w * w;
                state.o_max = std::max(state.o_max, w);
                if (w == 0.0) ++state.o_zeros;
                state.weight_acc.add(w);
            }
            if (bootstrap && !r.boot_partials.empty())
                bootstrap->merge(r.boot_partials);
            state.quarantine.tuples_evaluated += r.evaluated;
            state.quarantine.merge(r.quarantine);
            r = ChunkResult{}; // release chunk memory before the next wave
        }
        state.next_chunk = wave_begin + count;
        if (!options.checkpoint_path.empty())
            write_checkpoint(options.checkpoint_path, hash, state, bootstrap);
        // Cooperative stop: only at a wave boundary, only after the merge
        // and checkpoint above, and only when work remains — an interrupt
        // that lands during the final wave just lets the run finish.
        if (options.interrupt != nullptr && state.next_chunk < chunks &&
            options.interrupt->load(std::memory_order_relaxed))
            throw StreamingInterrupted(state.next_chunk, chunks);
    }

#if DRE_OBS_ENABLED
    if (state.quarantine.tuples_quarantined > 0) {
        DRE_COUNTER_ADD("stream.tuples_quarantined",
                        state.quarantine.tuples_quarantined);
        DRE_COUNTER_ADD("stream.chunks_quarantined",
                        state.quarantine.chunks_quarantined);
    }
#endif

    const std::uint64_t evaluated = state.quarantine.tuples_evaluated;
    if (evaluated == 0)
        throw std::runtime_error(
            "evaluate_streaming: every tuple was quarantined (coverage 0) — "
            "no estimate is possible");

    StreamingResult result;
    result.quarantine = std::move(state.quarantine);
    PolicyEvaluation& out = result.evaluation;
    out.dm.value = state.dm.mean;
    out.dm.estimator = "DM";
    out.ips.value = state.ips.mean;
    out.ips.estimator = "IPS";
    out.snips.estimator = "SNIPS";
    out.snips.value = state.weight_total <= 0.0
                          ? 0.0
                          : state.weighted_reward_total / state.weight_total;
    out.dr.value = state.dr.mean;
    out.dr.estimator = "DR";
    out.switch_dr.value = state.switch_dr.mean;
    out.switch_dr.estimator = "SWITCH-DR";

    // Denominators are the *evaluated* tuple count: the estimates are exact
    // over the surviving sub-trace (== n in strict/clean runs, preserving
    // the historical bit-identical results).
    OverlapDiagnostics& diag = out.overlap;
    const auto dn = static_cast<double>(evaluated);
    diag.n = static_cast<std::size_t>(evaluated);
    diag.max_weight = state.o_max;
    diag.mean_weight = state.o_sum / dn;
    diag.effective_sample_size =
        state.o_sum_sq > 0.0 ? state.o_sum * state.o_sum / state.o_sum_sq
                             : 0.0;
    diag.effective_sample_fraction = diag.effective_sample_size / dn;
    const double var = state.weight_acc.variance();
    diag.weight_cv =
        diag.mean_weight > 0.0 ? std::sqrt(var) / diag.mean_weight : 0.0;
    diag.zero_weight_fraction = static_cast<double>(state.o_zeros) / dn;
    DRE_GAUGE_SET("estimators.effective_sample_size",
                  diag.effective_sample_size);
    DRE_GAUGE_SET("estimators.effective_sample_fraction",
                  diag.effective_sample_fraction);

    if (bootstrap) {
        out.dr_ci = bootstrap->finalize(evaluated, out.dr.value);
        if (options.on_error == FailureMode::kDegrade) {
            // Coverage-qualified CI: divide each half-width by the coverage
            // fraction. Deterministic, monotone in the quarantined mass,
            // and the identity transform for a clean run.
            const double coverage = result.quarantine.coverage();
            if (coverage < 1.0 && coverage > 0.0) {
                stats::ConfidenceInterval& ci = *out.dr_ci;
                ci.lower = ci.point - (ci.point - ci.lower) / coverage;
                ci.upper = ci.point + (ci.upper - ci.point) / coverage;
            }
        }
    }
    return result;
}

PolicyEvaluation evaluate_streaming(const TupleSource& source,
                                    const RewardModel& model,
                                    const Policy& policy,
                                    const StreamingOptions& options,
                                    stats::Rng rng) {
    StreamingOptions strict = options;
    strict.on_error = FailureMode::kStrict;
    return evaluate_streaming_guarded(source, model, policy, strict, rng)
        .evaluation;
}

} // namespace dre::core
