#include "core/streaming.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/estimators.h"
#include "core/parallel.h"
#include "core/qhat.h"
#include "obs/obs.h"
#include "stats/bootstrap.h"
#include "stats/summary.h"

namespace dre::core {

void TraceTupleSource::read(std::uint64_t begin, std::uint64_t count,
                            std::vector<LoggedTuple>& out) const {
    out.clear();
    if (begin + count > trace_->size())
        throw std::out_of_range("TraceTupleSource: read past end of trace");
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        out.push_back((*trace_)[begin + i]);
}

namespace {

// Everything evaluate_streaming keeps per in-flight chunk. Folded into the
// running totals strictly in chunk order, then discarded.
struct ChunkResult {
    par::MeanState dm, ips, dr, switch_dr;
    double weight_sum = 0.0;
    double weighted_reward_sum = 0.0; // Σ w_k r_k (SNIPS numerator)
    std::vector<double> weights;      // for the in-order overlap fold
    std::vector<double> boot_partials; // per-replicate DR resample sums
};

} // namespace

PolicyEvaluation evaluate_streaming(const TupleSource& source,
                                    const RewardModel& model,
                                    const Policy& policy,
                                    const StreamingOptions& options,
                                    stats::Rng rng) {
    DRE_SPAN("evaluator.stream");
    const std::uint64_t n = source.num_tuples();
    if (n == 0) throw std::invalid_argument("evaluate_streaming: empty source");
    if (model.num_decisions() != policy.num_decisions())
        throw std::invalid_argument(
            "evaluate_streaming: model/policy decision-space mismatch");
    if (source.num_decisions() > policy.num_decisions())
        throw std::invalid_argument(
            "evaluate_streaming: source uses decisions outside policy space");

    // RNG protocol matches Evaluator::evaluate_with: the generator advances
    // exactly once — inside the bootstrap — and only when a CI is on.
    std::optional<stats::ChunkedMeanBootstrap> bootstrap;
    if (options.ci_replicates > 0)
        bootstrap.emplace(rng.split(), options.ci_replicates, options.ci_level);

    // Chunk geometry is the *global tuple index* over kReduceChunk — the
    // same boundaries par::chunked_mean/chunked_sum use on the in-memory
    // arrays, and deliberately decoupled from row-group and shard layout.
    const std::uint64_t chunks =
        (n + par::kReduceChunk - 1) / par::kReduceChunk;
    const std::size_t wave =
        options.wave_chunks != 0
            ? options.wave_chunks
            : std::max<std::size_t>(4 * par::thread_count(), 1);

    // Running totals, each folded exactly as its in-memory counterpart:
    // MeanState merges for the chunked means, left-fold sums for SNIPS.
    par::MeanState dm_total, ips_total, dr_total, switch_total;
    double weight_total = 0.0, weighted_reward_total = 0.0;
    // Overlap diagnostics: the same serial folds overlap_diagnostics() runs
    // over the full weight vector, carried across chunks in index order.
    double o_sum = 0.0, o_sum_sq = 0.0, o_max = 0.0;
    std::size_t o_zeros = 0;
    stats::Accumulator weight_acc; // mirrors stats::variance(weights)

    std::vector<ChunkResult> wave_results(
        static_cast<std::size_t>(std::min<std::uint64_t>(wave, chunks)));
    for (std::uint64_t wave_begin = 0; wave_begin < chunks;
         wave_begin += wave) {
        const auto count = static_cast<std::size_t>(
            std::min<std::uint64_t>(wave, chunks - wave_begin));
        par::parallel_for(count, [&](std::size_t i) {
            DRE_SPAN("evaluator.stream_chunk");
            const std::uint64_t c = wave_begin + i;
            const std::uint64_t begin = c * par::kReduceChunk;
            const std::uint64_t len =
                std::min<std::uint64_t>(par::kReduceChunk, n - begin);
            std::vector<LoggedTuple> buffer;
            source.read(begin, len, buffer);
            if (buffer.size() != len)
                throw std::runtime_error(
                    "evaluate_streaming: source returned a short chunk");
            const Trace chunk(std::move(buffer));
            // Chunk-local q̂ block. build() inlines serially inside a pool
            // task and each slot is a pure function of (model, tuple, d),
            // so the block equals the matching rows of the full matrix.
            const PredictionMatrix qhat = PredictionMatrix::build(model, chunk);
            EstimatorChunk ec;
            fill_estimator_chunk(chunk, policy, qhat,
                                 options.estimator_options, ec);
            ChunkResult r;
            for (double x : ec.dm) r.dm.add(x);
            for (double x : ec.ips) r.ips.add(x);
            for (double x : ec.dr) r.dr.add(x);
            for (double x : ec.switch_dr) r.switch_dr.add(x);
            double w_sum = 0.0, wr_sum = 0.0;
            for (double w : ec.weights) w_sum += w;
            for (double x : ec.ips) wr_sum += x;
            r.weight_sum = w_sum;
            r.weighted_reward_sum = wr_sum;
            if (bootstrap)
                r.boot_partials = bootstrap->chunk_partials(c, ec.dr);
            r.weights = std::move(ec.weights);
            wave_results[i] = std::move(r);
#if DRE_OBS_ENABLED
            DRE_COUNTER_INC("evaluator.chunks_streamed");
            DRE_COUNTER_ADD("evaluator.tuples_streamed", len);
#endif
        });
        // In-order merge: the only sequencing point, and the reason results
        // cannot depend on thread count or chunk completion order.
        for (std::size_t i = 0; i < count; ++i) {
            ChunkResult& r = wave_results[i];
            dm_total.merge(r.dm);
            ips_total.merge(r.ips);
            dr_total.merge(r.dr);
            switch_total.merge(r.switch_dr);
            weight_total += r.weight_sum;
            weighted_reward_total += r.weighted_reward_sum;
            for (double w : r.weights) {
                o_sum += w;
                o_sum_sq += w * w;
                o_max = std::max(o_max, w);
                if (w == 0.0) ++o_zeros;
                weight_acc.add(w);
            }
            if (bootstrap) bootstrap->merge(r.boot_partials);
            r = ChunkResult{}; // release chunk memory before the next wave
        }
    }

    PolicyEvaluation out;
    out.dm.value = dm_total.mean;
    out.dm.estimator = "DM";
    out.ips.value = ips_total.mean;
    out.ips.estimator = "IPS";
    out.snips.estimator = "SNIPS";
    out.snips.value =
        weight_total <= 0.0 ? 0.0 : weighted_reward_total / weight_total;
    out.dr.value = dr_total.mean;
    out.dr.estimator = "DR";
    out.switch_dr.value = switch_total.mean;
    out.switch_dr.estimator = "SWITCH-DR";

    OverlapDiagnostics& diag = out.overlap;
    const auto dn = static_cast<double>(n);
    diag.n = static_cast<std::size_t>(n);
    diag.max_weight = o_max;
    diag.mean_weight = o_sum / dn;
    diag.effective_sample_size =
        o_sum_sq > 0.0 ? o_sum * o_sum / o_sum_sq : 0.0;
    diag.effective_sample_fraction = diag.effective_sample_size / dn;
    const double var = weight_acc.variance();
    diag.weight_cv =
        diag.mean_weight > 0.0 ? std::sqrt(var) / diag.mean_weight : 0.0;
    diag.zero_weight_fraction = static_cast<double>(o_zeros) / dn;
    DRE_GAUGE_SET("estimators.effective_sample_size",
                  diag.effective_sample_size);
    DRE_GAUGE_SET("estimators.effective_sample_fraction",
                  diag.effective_sample_fraction);

    if (bootstrap) out.dr_ci = bootstrap->finalize(n, out.dr.value);
    return out;
}

} // namespace dre::core
