#include "core/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>

#include "obs/obs.h"

#if defined(__linux__)
#include <sched.h>
#endif

namespace dre::par {
namespace {

thread_local bool tls_in_parallel_region = false;

// RAII flag so nested parallel_for calls from inside a task inline safely
// even when the task throws.
struct RegionGuard {
    bool previous;
    RegionGuard() : previous(tls_in_parallel_region) {
        tls_in_parallel_region = true;
    }
    ~RegionGuard() { tls_in_parallel_region = previous; }
};

std::size_t hardware_default() { return available_cpus(); }

std::size_t env_thread_count() {
    const char* env = std::getenv("DRE_THREADS");
    if (env == nullptr || *env == '\0') return hardware_default();
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || parsed < 0)
        throw std::invalid_argument(std::string("DRE_THREADS is not a ") +
                                    "non-negative integer: " + env);
    return parsed == 0 ? hardware_default() : static_cast<std::size_t>(parsed);
}

struct GlobalPool {
    std::mutex mutex;
    std::unique_ptr<ThreadPool> pool;

    ThreadPool& get() {
        std::lock_guard<std::mutex> lock(mutex);
        if (!pool) pool = std::make_unique<ThreadPool>(env_thread_count());
        return *pool;
    }

    void resize(std::size_t n) {
        std::lock_guard<std::mutex> lock(mutex);
        const std::size_t want = n == 0 ? env_thread_count() : n;
        if (pool && pool->thread_count() == want) return;
        pool = std::make_unique<ThreadPool>(want);
    }
};

GlobalPool& global_state() {
    static GlobalPool state; // never destroyed before exit-time user code
    return state;
}

} // namespace

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads - 1);
    for (std::size_t i = 0; i + 1 < threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::drain(Batch& batch) {
    RegionGuard guard;
#if DRE_OBS_ENABLED
    // Accumulated locally and flushed once per drain: tasks can be
    // microseconds-scale, so even a sharded atomic per task would show up.
    std::uint64_t tasks = 0;
#endif
    for (;;) {
        const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch.size) break;
#if DRE_OBS_ENABLED
        ++tasks;
#endif
        try {
            (*batch.fn)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!first_error_) first_error_ = std::current_exception();
        }
        if (batch.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            batch.size) {
            std::lock_guard<std::mutex> lock(mutex_);
            done_.notify_all();
        }
    }
#if DRE_OBS_ENABLED
    if (tasks != 0) DRE_COUNTER_ADD("par.tasks_run", tasks);
#endif
}

void ThreadPool::worker_loop() {
    std::uint64_t seen_epoch = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
#if DRE_OBS_ENABLED
        const std::uint64_t idle_start_ns = obs::now_ns();
#endif
        wake_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
#if DRE_OBS_ENABLED
        DRE_HIST_RECORD("par.worker_idle_ns", obs::now_ns() - idle_start_ns);
#endif
        if (stop_) return;
        seen_epoch = epoch_;
        // Pin the batch while draining it. A worker scheduled so late that
        // run() already returned sees either a null batch_ or an exhausted
        // batch (its `next` counter is never reset), both of which are
        // no-ops — it can never claim an index against a recycled batch.
        const std::shared_ptr<Batch> batch = batch_;
        if (batch == nullptr) continue; // batch already drained and cleared
        lock.unlock();
        {
            obs::ScopedTraceContext trace_scope(batch->trace_ctx);
            drain(*batch);
        }
        lock.lock();
    }
}

void ThreadPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    // Serial paths: a pool of one, a nested call from inside a task, or a
    // single item. Exceptions propagate directly.
    if (workers_.empty() || tls_in_parallel_region || n == 1) {
        RegionGuard guard;
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    const auto batch = std::make_shared<Batch>();
    batch->fn = &fn;
    batch->size = n;
    batch->trace_ctx = obs::current_trace_context();
#if DRE_OBS_ENABLED
    // Batch geometry diagnostics. Chunk counts depend on the thread count,
    // so these must never feed the determinism fingerprint.
    DRE_COUNTER_INC("par.batches");
    DRE_HIST_RECORD("par.batch_items", n);
    DRE_GAUGE_SET("par.pool_threads", static_cast<double>(thread_count()));
#endif
    {
        std::lock_guard<std::mutex> lock(mutex_);
        batch_ = batch;
        first_error_ = nullptr;
        ++epoch_;
    }
    // Wake only as many workers as there are items beyond the submitting
    // thread's share: waking the whole pool for a 4-item batch costs a
    // wake/sleep cycle per idle worker and can dominate small batches.
    const std::size_t to_wake = std::min(workers_.size(), n - 1);
    if (to_wake == workers_.size()) {
        wake_.notify_all();
    } else {
        for (std::size_t i = 0; i < to_wake; ++i) wake_.notify_one();
    }
    drain(*batch); // the submitting thread participates
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] {
        return batch->completed.load(std::memory_order_acquire) == n;
    });
    if (batch_ == batch) batch_ = nullptr;
    const std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    if (error) std::rethrow_exception(error);
}

std::size_t available_cpus() {
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
        const int count = CPU_COUNT(&set);
        if (count > 0) return static_cast<std::size_t>(count);
    }
#endif
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t thread_count() { return global_state().get().thread_count(); }

void set_thread_count(std::size_t n) {
    if (tls_in_parallel_region)
        throw std::logic_error("par::set_thread_count inside a parallel region");
    global_state().resize(n);
}

ThreadPool& global_pool() { return global_state().get(); }

bool in_parallel_region() noexcept { return tls_in_parallel_region; }

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    global_pool().run(n, fn);
}

void parallel_for_chunked(std::size_t n,
                          const std::function<void(std::size_t, std::size_t)>& fn,
                          std::size_t min_grain) {
    if (n == 0) return;
    if (min_grain == 0) min_grain = 1;
    ThreadPool& pool = global_pool();
    const std::size_t threads = pool.thread_count();
    // Serial when the pool is serial, when nested, or when the range is too
    // small to amortize a batch dispatch (one wake/sleep cycle per worker).
    if (threads == 1 || in_parallel_region() || n <= min_grain) {
        RegionGuard guard;
        fn(0, n);
        return;
    }
    // ~4 chunks per thread for load balancing; grain >= min_grain keeps
    // dispatch overhead negligible relative to per-item cost.
    const std::size_t grain = std::max(min_grain, n / (threads * 4));
    const std::size_t chunks = (n + grain - 1) / grain;
    pool.run(chunks, [&](std::size_t c) {
        const std::size_t begin = c * grain;
        const std::size_t end = std::min(begin + grain, n);
        fn(begin, end);
    });
}

namespace {

template <typename Partial, typename PerChunk>
std::vector<Partial> chunk_partials(std::size_t n, const PerChunk& per_chunk) {
    const std::size_t chunks = (n + kReduceChunk - 1) / kReduceChunk;
    std::vector<Partial> partials(chunks);
    parallel_for(chunks, [&](std::size_t c) {
        const std::size_t begin = c * kReduceChunk;
        const std::size_t end = std::min(begin + kReduceChunk, n);
        partials[c] = per_chunk(begin, end);
    });
    return partials;
}

} // namespace

double chunked_sum(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    if (xs.size() <= kReduceChunk) {
        double sum = 0.0;
        for (double x : xs) sum += x;
        return sum;
    }
    const std::vector<double> partials =
        chunk_partials<double>(xs.size(), [&](std::size_t begin, std::size_t end) {
            double sum = 0.0;
            for (std::size_t i = begin; i < end; ++i) sum += xs[i];
            return sum;
        });
    double total = 0.0;
    for (double partial : partials) total += partial;
    return total;
}

double chunked_mean(std::span<const double> xs) {
    if (xs.empty()) throw std::invalid_argument("chunked_mean: empty sample");
    if (xs.size() <= kReduceChunk) {
        MeanState state;
        for (double x : xs) state.add(x);
        return state.mean;
    }
    const std::vector<MeanState> partials = chunk_partials<MeanState>(
        xs.size(), [&](std::size_t begin, std::size_t end) {
            MeanState state;
            for (std::size_t i = begin; i < end; ++i) state.add(xs[i]);
            return state;
        });
    MeanState total;
    for (const MeanState& partial : partials) total.merge(partial);
    return total.mean;
}

} // namespace dre::par
