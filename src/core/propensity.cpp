#include "core/propensity.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace dre::core {
namespace {

void check_decision(Decision d, std::size_t n, const char* who) {
    if (d < 0 || static_cast<std::size_t>(d) >= n)
        throw std::out_of_range(std::string(who) + ": decision out of range");
}

} // namespace

TabularPropensityModel::TabularPropensityModel(std::size_t num_decisions,
                                               double smoothing, double floor)
    : num_decisions_(num_decisions), smoothing_(smoothing), floor_(floor) {
    if (num_decisions_ == 0)
        throw std::invalid_argument("TabularPropensityModel: empty decision space");
    if (smoothing_ < 0.0)
        throw std::invalid_argument("TabularPropensityModel: negative smoothing");
    if (floor_ <= 0.0 || floor_ >= 1.0)
        throw std::invalid_argument("TabularPropensityModel: floor outside (0,1)");
}

void TabularPropensityModel::fit(const Trace& trace) {
    validate_trace(trace);
    counts_.clear();
    marginal_counts_.assign(num_decisions_, 0.0);
    for (const auto& t : trace) {
        check_decision(t.decision, num_decisions_, "TabularPropensityModel::fit");
        auto& row = counts_[context_fingerprint(t.context)];
        if (row.empty()) row.assign(num_decisions_, 0.0);
        row[static_cast<std::size_t>(t.decision)] += 1.0;
        marginal_counts_[static_cast<std::size_t>(t.decision)] += 1.0;
    }
    fitted_ = true;
}

double TabularPropensityModel::probability(const ClientContext& context,
                                           Decision d) const {
    if (!fitted_) throw std::logic_error("TabularPropensityModel before fit");
    check_decision(d, num_decisions_, "TabularPropensityModel::probability");
    const auto it = counts_.find(context_fingerprint(context));
    const std::vector<double>& row =
        it != counts_.end() ? it->second : marginal_counts_;
    double total = 0.0;
    for (double c : row) total += c + smoothing_;
    if (total <= 0.0) return 1.0 / static_cast<double>(num_decisions_);
    const double p = (row[static_cast<std::size_t>(d)] + smoothing_) / total;
    return std::clamp(p, floor_, 1.0);
}

LogisticPropensityModel::LogisticPropensityModel(std::size_t num_decisions,
                                                 double floor)
    : num_decisions_(num_decisions), floor_(floor) {
    if (num_decisions_ == 0)
        throw std::invalid_argument("LogisticPropensityModel: empty decision space");
    if (floor_ <= 0.0 || floor_ >= 1.0)
        throw std::invalid_argument("LogisticPropensityModel: floor outside (0,1)");
}

void LogisticPropensityModel::fit(const Trace& trace) {
    validate_trace(trace);
    if (trace.empty())
        throw std::invalid_argument("LogisticPropensityModel::fit: empty trace");
    per_decision_.assign(num_decisions_, {});
    has_model_.assign(num_decisions_, false);
    marginals_.assign(num_decisions_, 0.0);

    std::vector<std::vector<double>> features;
    features.reserve(trace.size());
    for (const auto& t : trace) {
        check_decision(t.decision, num_decisions_, "LogisticPropensityModel::fit");
        features.push_back(t.context.flattened());
        marginals_[static_cast<std::size_t>(t.decision)] += 1.0;
    }
    for (double& m : marginals_) m /= static_cast<double>(trace.size());

    for (std::size_t d = 0; d < num_decisions_; ++d) {
        // One-vs-rest labels; skip decisions that are all-0 or all-1.
        std::vector<int> labels(trace.size());
        std::size_t positives = 0;
        for (std::size_t i = 0; i < trace.size(); ++i) {
            labels[i] = trace[i].decision == static_cast<Decision>(d) ? 1 : 0;
            positives += static_cast<std::size_t>(labels[i]);
        }
        if (positives == 0 || positives == trace.size()) continue;
        per_decision_[d].fit(features, labels);
        has_model_[d] = true;
    }
    fitted_ = true;
}

std::vector<double> LogisticPropensityModel::distribution(
    const ClientContext& context) const {
    if (!fitted_) throw std::logic_error("LogisticPropensityModel before fit");
    const std::vector<double> features = context.flattened();
    std::vector<double> scores(num_decisions_);
    double total = 0.0;
    for (std::size_t d = 0; d < num_decisions_; ++d) {
        scores[d] = has_model_[d] ? per_decision_[d].predict(features)
                                  : std::max(marginals_[d], floor_);
        total += scores[d];
    }
    if (total <= 0.0) {
        scores.assign(num_decisions_, 1.0 / static_cast<double>(num_decisions_));
        return scores;
    }
    for (double& s : scores) s = std::clamp(s / total, floor_, 1.0);
    // Renormalize after clamping so the result is a distribution.
    double clamped_total = 0.0;
    for (double s : scores) clamped_total += s;
    for (double& s : scores) s /= clamped_total;
    return scores;
}

double LogisticPropensityModel::probability(const ClientContext& context,
                                            Decision d) const {
    check_decision(d, num_decisions_, "LogisticPropensityModel::probability");
    const std::vector<double> dist = distribution(context);
    return std::max(dist[static_cast<std::size_t>(d)], floor_);
}

Trace with_estimated_propensities(const Trace& trace, const PropensityModel& model) {
    Trace out;
    out.reserve(trace.size());
    for (const auto& t : trace) {
        LoggedTuple copy = t;
        copy.propensity = model.probability(t.context, t.decision);
        out.add(std::move(copy));
    }
    return out;
}

} // namespace dre::core
