// Offline policy improvement on top of trace-driven evaluation.
//
// The paper's workflow ends at "which policy is the best?" (Fig. 1); this
// module closes the loop: learn a candidate policy from the logged trace
// (greedy over a fitted reward model, optionally epsilon-smoothed for the
// *next* round of logging, per §4.1's randomization advice), and certify
// it against the incumbent with a paired doubly-robust comparison before
// anyone deploys it.
#ifndef DRE_CORE_POLICY_LEARNING_H
#define DRE_CORE_POLICY_LEARNING_H

#include <memory>
#include <string>

#include "core/diagnostics.h"
#include "core/estimators.h"
#include "core/policy.h"
#include "core/reward_model.h"
#include "stats/rng.h"
#include "trace/trace.h"

namespace dre::core {

// Policy that plays argmax_d r^(c, d) of a reward model, mixed with
// epsilon-uniform exploration.
class GreedyModelPolicy final : public Policy {
public:
    GreedyModelPolicy(std::shared_ptr<const RewardModel> model, double epsilon = 0.0);

    std::vector<double> action_probabilities(const ClientContext& context) const override;
    std::size_t num_decisions() const noexcept override {
        return model_->num_decisions();
    }

    Decision greedy_decision(const ClientContext& context) const;
    const RewardModel& model() const noexcept { return *model_; }

private:
    std::shared_ptr<const RewardModel> model_;
    double epsilon_;
};

// Fit a reward model of `kind` on `trace` and wrap it greedily.
std::shared_ptr<GreedyModelPolicy> learn_greedy_policy(const Trace& trace,
                                                       RewardModelKind kind,
                                                       std::size_t num_decisions,
                                                       double epsilon = 0.0);

// The CLI / serve-protocol model vocabulary: "tabular" | "linear" | "knn".
// Throws std::invalid_argument on anything else.
RewardModelKind parse_reward_model_kind(const std::string& name);

// Parse a policy spec — "uniform", "constant:<d>", "greedy:<model>", or
// "greedy:<model>:<epsilon>" (uniform-smoothed redeploy shape; epsilon must
// parse fully and lie in [0,1], anything else is std::invalid_argument) —
// into a policy over `decisions` arms, fitting on `trace` where the spec
// needs a
// model. `decisions` is explicit rather than derived from the trace: a
// streaming run fits on a bounded sample whose max decision may undershoot
// the full trace's decision space. Deterministic (no RNG), so the same
// (spec, trace) pair always yields the same policy — the serve cache keys
// greedy policies on exactly this pair.
std::shared_ptr<Policy> parse_policy_spec(const std::string& spec,
                                          const Trace& trace,
                                          std::size_t decisions);

// Paired off-policy comparison of a candidate against the incumbent: DR
// values for both on the same tuples, plus a bootstrap CI on the per-tuple
// *difference* (paired, so shared noise cancels).
struct ImprovementReport {
    double incumbent_value = 0.0;
    double candidate_value = 0.0;
    double estimated_lift = 0.0; // candidate - incumbent
    stats::ConfidenceInterval lift_ci;
    // True iff the CI's lower bound is positive: the candidate is certified
    // better at the CI's confidence level.
    bool certified = false;
};

ImprovementReport certify_improvement(const Trace& trace, const Policy& incumbent,
                                      const Policy& candidate,
                                      const RewardModel& model, stats::Rng& rng,
                                      int bootstrap_replicates = 1000,
                                      double level = 0.95);

} // namespace dre::core

#endif // DRE_CORE_POLICY_LEARNING_H
