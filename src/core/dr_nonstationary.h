// DR for non-stationary (history-dependent) policies — paper §4.2.
//
// The algorithm (adapted from Li et al.'s contextual-bandit replay [27]):
// maintain a separate matched history g consisting only of clients where
// the new policy's sampled decision equals the logged one. For k = 1..n:
//   1. sample d' ~ mu_new(. | c_k, g_k)
//   2. if d' == d_k:
//        M += sum_d mu_new(d|c_k,g_k) r^(c_k,d)
//             + mu_new(d_k|c_k,g_k)/mu_old(d_k|c_k) * (r_k - r^(c_k,d_k))
//        g_{k+1} = g_k ++ (c_k, d_k, r_k)
//      else g_{k+1} = g_k
// Return M / |g_{n+1}|.
//
// For stationary policies this matches the basic DR in expectation; for
// history policies the rejection step keeps the replayed history consistent
// with what mu_new would actually have seen.
#ifndef DRE_CORE_DR_NONSTATIONARY_H
#define DRE_CORE_DR_NONSTATIONARY_H

#include "core/policy.h"
#include "core/reward_model.h"
#include "stats/rng.h"
#include "trace/trace.h"

namespace dre::core {

struct NonstationaryEstimate {
    double value = 0.0;
    // Number of matched clients |g_{n+1}|.
    std::size_t matched = 0;
    // Match rate = matched / trace size.
    double match_rate = 0.0;
};

// Rejection-sampling DR. Throws std::invalid_argument if trace is empty or
// decision spaces mismatch. Returns value 0 with matched == 0 when no client
// matched (callers should inspect match_rate).
NonstationaryEstimate doubly_robust_nonstationary(const Trace& trace,
                                                  const HistoryPolicy& new_policy,
                                                  const RewardModel& model,
                                                  stats::Rng& rng);

// Averages `replicates` independent rejection passes (the sampling in step 1
// adds variance; averaging passes reduces it).
NonstationaryEstimate doubly_robust_nonstationary_averaged(
    const Trace& trace, const HistoryPolicy& new_policy, const RewardModel& model,
    stats::Rng& rng, int replicates);

// Naive baseline: ignore the history dependence and run basic DR with the
// new policy conditioned on the *logged* prefix (what a careless evaluator
// would do). Used by the E9 ablation.
double doubly_robust_ignoring_history(const Trace& trace,
                                      const HistoryPolicy& new_policy,
                                      const RewardModel& model);

} // namespace dre::core

#endif // DRE_CORE_DR_NONSTATIONARY_H
