#include "core/policy_learning.h"

#include <charconv>
#include <stdexcept>

#include "stats/bootstrap.h"

namespace dre::core {

GreedyModelPolicy::GreedyModelPolicy(std::shared_ptr<const RewardModel> model,
                                     double epsilon)
    : model_(std::move(model)), epsilon_(epsilon) {
    if (!model_) throw std::invalid_argument("GreedyModelPolicy: null model");
    if (epsilon_ < 0.0 || epsilon_ > 1.0)
        throw std::invalid_argument("GreedyModelPolicy: epsilon outside [0,1]");
}

Decision GreedyModelPolicy::greedy_decision(const ClientContext& context) const {
    Decision best = 0;
    double best_value = model_->predict(context, 0);
    for (std::size_t d = 1; d < model_->num_decisions(); ++d) {
        const double value = model_->predict(context, static_cast<Decision>(d));
        if (value > best_value) {
            best_value = value;
            best = static_cast<Decision>(d);
        }
    }
    return best;
}

std::vector<double> GreedyModelPolicy::action_probabilities(
    const ClientContext& context) const {
    std::vector<double> probs(model_->num_decisions(),
                              epsilon_ / static_cast<double>(model_->num_decisions()));
    probs[static_cast<std::size_t>(greedy_decision(context))] += 1.0 - epsilon_;
    return probs;
}

std::shared_ptr<GreedyModelPolicy> learn_greedy_policy(const Trace& trace,
                                                       RewardModelKind kind,
                                                       std::size_t num_decisions,
                                                       double epsilon) {
    std::shared_ptr<const RewardModel> model =
        fit_reward_model(kind, num_decisions, trace);
    return std::make_shared<GreedyModelPolicy>(std::move(model), epsilon);
}

RewardModelKind parse_reward_model_kind(const std::string& name) {
    if (name == "tabular") return RewardModelKind::kTabular;
    if (name == "linear") return RewardModelKind::kLinear;
    if (name == "knn") return RewardModelKind::kKnn;
    throw std::invalid_argument("unknown model kind: " + name);
}

std::shared_ptr<Policy> parse_policy_spec(const std::string& spec,
                                          const Trace& trace,
                                          std::size_t decisions) {
    if (spec == "uniform")
        return std::make_shared<UniformRandomPolicy>(decisions);
    if (spec.rfind("constant:", 0) == 0) {
        const auto d = static_cast<Decision>(std::stol(spec.substr(9)));
        if (d < 0 || static_cast<std::size_t>(d) >= decisions)
            throw std::invalid_argument("constant decision outside trace's space");
        return std::make_shared<DeterministicPolicy>(
            decisions, [d](const ClientContext&) { return d; });
    }
    if (spec.rfind("greedy:", 0) == 0) {
        // "greedy:<model>" or "greedy:<model>:<epsilon>" — the optional
        // epsilon uniform-smooths the learned policy so it stays evaluable
        // when redeployed as a logging policy (the §4.1 shape).
        const std::string rest = spec.substr(7);
        const std::size_t colon = rest.find(':');
        if (colon == std::string::npos) {
            const RewardModelKind kind = parse_reward_model_kind(rest);
            return learn_greedy_policy(trace, kind, decisions);
        }
        const RewardModelKind kind =
            parse_reward_model_kind(rest.substr(0, colon));
        const std::string eps_text = rest.substr(colon + 1);
        double epsilon = 0.0;
        const auto [end, ec] = std::from_chars(
            eps_text.data(), eps_text.data() + eps_text.size(), epsilon);
        if (ec != std::errc() || end != eps_text.data() + eps_text.size())
            throw std::invalid_argument("malformed epsilon in policy spec \"" +
                                        spec + "\": expected a number, got \"" +
                                        eps_text + "\"");
        if (!(epsilon >= 0.0 && epsilon <= 1.0))
            throw std::invalid_argument("epsilon in policy spec \"" + spec +
                                        "\" outside [0,1]");
        return learn_greedy_policy(trace, kind, decisions, epsilon);
    }
    throw std::invalid_argument("unknown policy spec: " + spec);
}

ImprovementReport certify_improvement(const Trace& trace, const Policy& incumbent,
                                      const Policy& candidate,
                                      const RewardModel& model, stats::Rng& rng,
                                      int bootstrap_replicates, double level) {
    const EstimateResult incumbent_dr = doubly_robust(trace, incumbent, model);
    const EstimateResult candidate_dr = doubly_robust(trace, candidate, model);

    ImprovementReport report;
    report.incumbent_value = incumbent_dr.value;
    report.candidate_value = candidate_dr.value;
    report.estimated_lift = candidate_dr.value - incumbent_dr.value;

    // Paired per-tuple differences: the two DR runs share the same clients
    // and rewards, so common noise cancels in the difference.
    std::vector<double> lift(trace.size());
    for (std::size_t k = 0; k < trace.size(); ++k)
        lift[k] = candidate_dr.per_tuple[k] - incumbent_dr.per_tuple[k];
    report.lift_ci =
        stats::bootstrap_mean_ci(lift, rng, bootstrap_replicates, level);
    report.certified = report.lift_ci.lower > 0.0;
    return report;
}

} // namespace dre::core
