// Off-policy value estimators (paper §3).
//
// Given a trace T = {(c_k, d_k, r_k)} collected under mu_old, a new policy
// mu_new, and (for DM/DR) a reward model r^, estimate
//     V(mu_new) = (1/n) sum_k sum_d mu_new(d|c_k) E[r | c_k, d].
//
//  * DM   : V^ = (1/n) sum_k sum_d mu_new(d|c_k) r^(c_k, d)
//  * IPS  : V^ = (1/n) sum_k  w_k r_k,   w_k = mu_new(d_k|c_k)/mu_old(d_k|c_k)
//  * DR   : V^ = (1/n) sum_k [ sum_d mu_new(d|c_k) r^(c_k,d)
//                              + w_k (r_k - r^(c_k,d_k)) ]        (Eq. 2)
//
// plus standard variance-control variants (self-normalized IPS, weight
// clipping, SWITCH-DR) that operationalize §4.1's coverage concerns.
#ifndef DRE_CORE_ESTIMATORS_H
#define DRE_CORE_ESTIMATORS_H

#include <limits>
#include <string>
#include <vector>

#include "core/policy.h"
#include "core/qhat.h"
#include "core/reward_model.h"
#include "trace/trace.h"

namespace dre::core {

// Result of one estimator run. `per_tuple` holds each tuple's contribution
// (already averaged semantics: value == mean(per_tuple) except for the
// self-normalized estimator, where the normalization is global).
struct EstimateResult {
    double value = 0.0;
    std::vector<double> per_tuple;
    std::string estimator;

    // Sample variance of the per-tuple contributions divided by n — a plug-in
    // variance proxy for the estimate (exact for the unnormalized averages).
    double variance_of_mean() const;
};

struct EstimatorOptions {
    // Weight cap for clipped IPS / the clipped part of DR; +inf disables.
    double weight_clip = std::numeric_limits<double>::infinity();
    // SWITCH threshold tau: tuples with w_k > tau fall back to the model.
    double switch_threshold = 10.0;
};

// Direct Method.
EstimateResult direct_method(const Trace& trace, const Policy& new_policy,
                             const RewardModel& model);

// Inverse Propensity Scoring, using the propensities logged in the trace.
EstimateResult inverse_propensity(const Trace& trace, const Policy& new_policy);

// IPS with weights clipped at options.weight_clip.
EstimateResult clipped_ips(const Trace& trace, const Policy& new_policy,
                           const EstimatorOptions& options);

// Self-normalized IPS: sum(w r)/sum(w). Biased but much lower variance when
// weights are skewed.
EstimateResult self_normalized_ips(const Trace& trace, const Policy& new_policy);

// Doubly Robust (paper Eq. 1/2).
EstimateResult doubly_robust(const Trace& trace, const Policy& new_policy,
                             const RewardModel& model);

// DR with clipped correction weights.
EstimateResult clipped_doubly_robust(const Trace& trace, const Policy& new_policy,
                                     const RewardModel& model,
                                     const EstimatorOptions& options);

// SWITCH-DR: use the DR correction only where w_k <= tau, otherwise trust
// the model alone. Trades a little bias for bounded variance.
EstimateResult switch_doubly_robust(const Trace& trace, const Policy& new_policy,
                                    const RewardModel& model,
                                    const EstimatorOptions& options);

// Self-normalized DR: the correction term is normalized by sum(w) instead
// of n, combining DR's model anchor with SNIPS's robustness to mis-scaled
// propensities:
//   V^ = (1/n) sum_k DM_k  +  sum_k w_k (r_k - r^(c_k,d_k)) / sum_k w_k.
EstimateResult self_normalized_doubly_robust(const Trace& trace,
                                             const Policy& new_policy,
                                             const RewardModel& model);

// ---------------------------------------------------------------------------
// PredictionMatrix overloads: identical estimators reading q̂ from a
// precomputed matrix (one model call per (tuple, decision), shared across
// estimators and bootstrap replicates) instead of querying the model per
// use. Same summation order and arithmetic as the model-based overloads —
// the results are bit-identical. The matrix must have been built from the
// same trace (num_tuples checked) and model (num_decisions checked).
// ---------------------------------------------------------------------------

EstimateResult direct_method(const Trace& trace, const Policy& new_policy,
                             const PredictionMatrix& qhat);

EstimateResult doubly_robust(const Trace& trace, const Policy& new_policy,
                             const PredictionMatrix& qhat);

EstimateResult clipped_doubly_robust(const Trace& trace, const Policy& new_policy,
                                     const PredictionMatrix& qhat,
                                     const EstimatorOptions& options);

EstimateResult switch_doubly_robust(const Trace& trace, const Policy& new_policy,
                                    const PredictionMatrix& qhat,
                                    const EstimatorOptions& options);

EstimateResult self_normalized_doubly_robust(const Trace& trace,
                                             const Policy& new_policy,
                                             const PredictionMatrix& qhat);

// Matching/replay estimator (Fig. 5's "unbiased but low coverage"
// baseline, the skeleton of CFA's evaluator and of Li et al.'s replay):
// the mean logged reward over tuples whose logged decision equals the new
// policy's argmax decision for that context. Unbiased when the logging
// policy is uniform; collapses when matches are scarce.
struct ReplayEstimate {
    double value = 0.0;
    std::size_t matches = 0;
    double match_rate = 0.0;
};

// Falls back to the overall trace mean when nothing matches (matches == 0
// signals that the value is a fallback, not an estimate).
ReplayEstimate matching_replay(const Trace& trace, const Policy& new_policy);

// The importance weights w_k themselves (diagnostics & tests).
std::vector<double> importance_weights(const Trace& trace, const Policy& new_policy);

// ---------------------------------------------------------------------------
// Streaming (out-of-core) support: per-tuple contributions of the whole
// Evaluator estimator suite for one chunk of tuples, computed in a single
// pass against a chunk-local prediction matrix (row k ↔ chunk[k]). The
// arithmetic is shared with the batch overloads above — same probability /
// propensity / q̂ expressions in the same order — so chunk-ordered
// reductions over these arrays reproduce the batch estimates bit-for-bit
// (see core/streaming.h for the full determinism contract).
// ---------------------------------------------------------------------------

struct EstimatorChunk {
    std::vector<double> dm;        // DM contribution per tuple
    std::vector<double> ips;       // w_k r_k (doubles as SNIPS's numerator)
    std::vector<double> dr;        // DR contribution
    std::vector<double> switch_dr; // SWITCH-DR contribution
    std::vector<double> weights;   // importance weight w_k
};

void fill_estimator_chunk(const Trace& chunk, const Policy& new_policy,
                          const PredictionMatrix& qhat,
                          const EstimatorOptions& options, EstimatorChunk& out);

} // namespace dre::core

#endif // DRE_CORE_ESTIMATORS_H
