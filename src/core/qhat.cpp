#include "core/qhat.h"

#include <stdexcept>

#include "core/parallel.h"

namespace dre::core {

PredictionMatrix PredictionMatrix::build(const RewardModel& model,
                                         const Trace& trace) {
    PredictionMatrix matrix;
    matrix.num_tuples_ = trace.size();
    matrix.num_decisions_ = model.num_decisions();
    if (matrix.num_decisions_ == 0)
        throw std::invalid_argument("PredictionMatrix: model has no decisions");
    matrix.values_.resize(matrix.num_tuples_ * matrix.num_decisions_);
    const std::size_t num_decisions = matrix.num_decisions_;
    // One chunk task per tuple range; a tuple's whole row is filled by the
    // task that owns it, so writes are slot-disjoint.
    par::parallel_for_chunked(
        trace.size(),
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t k = begin; k < end; ++k) {
                double* row = matrix.values_.data() + k * num_decisions;
                for (std::size_t d = 0; d < num_decisions; ++d)
                    row[d] = model.predict(trace[k].context,
                                           static_cast<Decision>(d));
            }
        },
        /*min_grain=*/16);
    return matrix;
}

} // namespace dre::core
