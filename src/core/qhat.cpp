#include "core/qhat.h"

#include <stdexcept>

#include "core/parallel.h"

namespace dre::core {

PredictionMatrix PredictionMatrix::build(const RewardModel& model,
                                         const Trace& trace) {
    PredictionMatrix matrix;
    matrix.num_tuples_ = trace.size();
    matrix.num_decisions_ = model.num_decisions();
    if (matrix.num_decisions_ == 0)
        throw std::invalid_argument("PredictionMatrix: model has no decisions");
    matrix.values_.resize(matrix.num_tuples_ * matrix.num_decisions_);
    const std::size_t num_decisions = matrix.num_decisions_;
    // One chunk task per tuple range; a tuple's whole row is filled by the
    // task that owns it, so writes are slot-disjoint. predict_rows lets
    // the model choose the fill order within the chunk (the k-NN model
    // goes decision-major so each per-decision KD-tree stays
    // cache-resident across the batch); every override is bit-identical
    // to calling predict per (tuple, decision).
    par::parallel_for_chunked(
        trace.size(),
        [&](std::size_t begin, std::size_t end) {
            std::vector<const ClientContext*> contexts(end - begin);
            for (std::size_t k = begin; k < end; ++k)
                contexts[k - begin] = &trace[k].context;
            model.predict_rows(contexts.data(), contexts.size(),
                               matrix.values_.data() + begin * num_decisions);
        },
        /*min_grain=*/16);
    return matrix;
}

} // namespace dre::core
