#include "core/evaluator.h"

#include <cstdio>
#include <stdexcept>

#include "core/parallel.h"
#include "obs/obs.h"

namespace dre::core {

Evaluator::Evaluator(Trace trace, EvaluationConfig config, stats::Rng rng)
    : config_(config), rng_(rng) {
    validate_trace(trace);
    if (trace.empty()) throw std::invalid_argument("Evaluator: empty trace");

    if (config_.estimate_propensities) {
        TabularPropensityModel propensity_model(trace.num_decisions());
        propensity_model.fit(trace);
        trace = with_estimated_propensities(trace, propensity_model);
    }

    if (config_.cross_fit) {
        auto [train, holdout] = trace.split(config_.cross_fit_train_fraction, rng_);
        if (train.empty() || holdout.empty())
            throw std::invalid_argument("Evaluator: cross-fit split produced empty half");
        model_ = fit_reward_model(config_.reward_model, trace.num_decisions(), train);
        evaluation_trace_ = std::move(holdout);
    } else {
        model_ = fit_reward_model(config_.reward_model, trace.num_decisions(), trace);
        evaluation_trace_ = std::move(trace);
    }
    // Evaluate the model once per (tuple, decision); every estimator run —
    // and every bootstrap replicate under the hood — reuses this matrix.
    qhat_ = PredictionMatrix::build(*model_, evaluation_trace_);
}

const RewardModel& Evaluator::reward_model() const {
    return *model_;
}

PolicyEvaluation Evaluator::evaluate_with(const Policy& new_policy,
                                          stats::Rng& rng, int ci_replicates,
                                          double ci_level) const {
    DRE_SPAN("evaluator.evaluate");
#if DRE_OBS_ENABLED
    const std::uint64_t eval_start_ns = obs::now_ns();
#endif
    PolicyEvaluation out;
    {
        DRE_SPAN("evaluator.dm");
        out.dm = direct_method(evaluation_trace_, new_policy, qhat_);
    }
    {
        DRE_SPAN("evaluator.ips");
        out.ips = inverse_propensity(evaluation_trace_, new_policy);
    }
    {
        DRE_SPAN("evaluator.snips");
        out.snips = self_normalized_ips(evaluation_trace_, new_policy);
    }
    {
        DRE_SPAN("evaluator.dr");
        out.dr = doubly_robust(evaluation_trace_, new_policy, qhat_);
    }
    {
        DRE_SPAN("evaluator.switch_dr");
        out.switch_dr = switch_doubly_robust(evaluation_trace_, new_policy,
                                             qhat_, config_.estimator_options);
    }
    {
        DRE_SPAN("evaluator.overlap");
        out.overlap = overlap_diagnostics(evaluation_trace_, new_policy);
    }
    if (ci_replicates > 0) {
        DRE_SPAN("evaluator.dr_ci");
        // Chunk-keyed bootstrap (not the classic full-sample resampler):
        // the streaming path (core/streaming.h) folds the same per-chunk
        // partials with the same split streams, so in-memory and
        // out-of-core CIs are bit-identical by construction.
        out.dr_ci = stats::chunked_bootstrap_mean_ci(out.dr.per_tuple,
                                                     out.dr.value, rng,
                                                     ci_replicates, ci_level);
    }
#if DRE_OBS_ENABLED
    // Throughput across the five estimator passes (six trace sweeps plus
    // diagnostics); timing-derived, so diagnostics-only — never fingerprinted.
    const double elapsed_s =
        static_cast<double>(obs::now_ns() - eval_start_ns) / 1e9;
    if (elapsed_s > 0.0) {
        DRE_GAUGE_SET("evaluator.tuples_per_sec",
                      static_cast<double>(evaluation_trace_.size()) / elapsed_s);
    }
    DRE_COUNTER_ADD("evaluator.tuples_evaluated", evaluation_trace_.size());
    DRE_COUNTER_INC("evaluator.policies_evaluated");
#endif
    return out;
}

PolicyEvaluation Evaluator::evaluate(const Policy& new_policy) const {
    return evaluate_with(new_policy, rng_, config_.ci_replicates,
                         config_.ci_level);
}

PolicyEvaluation Evaluator::evaluate_seeded(const Policy& new_policy,
                                            stats::Rng rng, int ci_replicates,
                                            double ci_level) const {
    return evaluate_with(new_policy, rng,
                         ci_replicates < 0 ? config_.ci_replicates
                                           : ci_replicates,
                         ci_level < 0.0 ? config_.ci_level : ci_level);
}

Evaluator::Comparison Evaluator::compare(
    const std::vector<const Policy*>& policies) const {
    if (policies.empty()) throw std::invalid_argument("Evaluator::compare: no policies");
    for (const Policy* policy : policies)
        if (!policy) throw std::invalid_argument("Evaluator::compare: null policy");

    // One advance of the shared generator, then a split stream per policy:
    // the evaluations are independent of each other and of the thread
    // count, so they can run concurrently yet stay bit-reproducible.
    DRE_SPAN("evaluator.compare");
    const stats::Rng base = rng_.split();
    Comparison comparison;
    comparison.evaluations.resize(policies.size());
    par::parallel_for(policies.size(), [&](std::size_t i) {
        stats::Rng policy_rng = base.split(i);
        comparison.evaluations[i] =
            evaluate_with(*policies[i], policy_rng, config_.ci_replicates,
                          config_.ci_level);
    });
    for (std::size_t i = 1; i < comparison.evaluations.size(); ++i) {
        if (comparison.evaluations[i].value() >
            comparison.evaluations[comparison.best_index].value())
            comparison.best_index = i;
    }
    return comparison;
}

obs::Report make_policy_report(std::string_view policy_spec,
                               const PolicyEvaluation& result) {
    obs::Report out;
    const std::string policy_section = "policy " + std::string(policy_spec);
    out.set(policy_section, "DM", result.dm.value);
    out.set(policy_section, "IPS", result.ips.value);
    out.set(policy_section, "SNIPS", result.snips.value);
    out.set(policy_section, "SWITCH-DR", result.switch_dr.value);
    if (result.dr_ci) {
        char dr_row[128];
        std::snprintf(dr_row, sizeof(dr_row),
                      "%10.4f   %.0f%% CI [%.4f, %.4f]", result.dr.value,
                      100.0 * result.dr_ci->level, result.dr_ci->lower,
                      result.dr_ci->upper);
        out.set(policy_section, "DR", dr_row);
    } else {
        out.set(policy_section, "DR", result.dr.value);
    }
    out.set("diagnostics", "effective sample size",
            result.overlap.effective_sample_size);
    out.set("diagnostics", "effective sample %",
            100.0 * result.overlap.effective_sample_fraction);
    out.set("diagnostics", "mean importance weight",
            result.overlap.mean_weight);
    out.set("diagnostics", "max importance weight",
            result.overlap.max_weight);
    out.set("diagnostics", "zero-weight tuples %",
            100.0 * result.overlap.zero_weight_fraction);
    return out;
}

} // namespace dre::core
