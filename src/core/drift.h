// Reward-drift detection over a logged trace (§4.3).
//
// Before trusting a trace-driven estimate, check whether the world changed
// *while the trace was being collected*: a reward-level change-point means
// the tuples straddle different system states (time-of-day load, a deploy,
// an incident) and should not be pooled naively. This wraps the PELT
// change-point detector around the trace's reward sequence and can relabel
// tuples with their detected segment, feeding straight into the
// state-matched DR machinery in core/world_state.h.
#ifndef DRE_CORE_DRIFT_H
#define DRE_CORE_DRIFT_H

#include <vector>

#include "stats/changepoint.h"
#include "trace/trace.h"

namespace dre::core {

struct DriftReport {
    // Tuple indices where a new regime begins (ascending; empty = no drift).
    std::vector<std::size_t> changepoints;
    // Mean reward per detected segment.
    std::vector<double> segment_means;
    bool drift_detected() const noexcept { return !changepoints.empty(); }
    std::size_t num_segments() const noexcept { return segment_means.size(); }
};

struct DriftOptions {
    // PELT penalty; <= 0 selects the BIC-style default.
    double penalty = -1.0;
    std::size_t min_segment_length = 25;
};

// Detect mean-shift change-points in the trace's reward sequence. The trace
// order must be collection order (it is, for traces built by this library).
DriftReport detect_reward_drift(const Trace& trace, const DriftOptions& options = {});

// Copy of `trace` with each tuple's state label set to its detected segment
// index (0-based). Tuples already carrying labels are overwritten.
Trace with_drift_segments(const Trace& trace, const DriftReport& report);

} // namespace dre::core

#endif // DRE_CORE_DRIFT_H
