// Ground-truth environments.
//
// An Environment encapsulates the world that generates contexts and rewards.
// It is what a *real deployment* would expose (Figure 1's right-hand box);
// the evaluators never see it — it exists so experiments can (a) generate
// logged traces with a logging policy and (b) compute the true value
// V(mu_new) that trace-driven estimates are compared against.
#ifndef DRE_CORE_ENVIRONMENT_H
#define DRE_CORE_ENVIRONMENT_H

#include <memory>
#include <vector>

#include "core/policy.h"
#include "stats/rng.h"
#include "trace/trace.h"
#include "trace/types.h"

namespace dre::core {

class Environment {
public:
    virtual ~Environment() = default;

    // Draw a client context from the population.
    virtual ClientContext sample_context(stats::Rng& rng) const = 0;

    // Sample the stochastic reward of taking `d` for `context`.
    virtual Reward sample_reward(const ClientContext& context, Decision d,
                                 stats::Rng& rng) const = 0;

    // E[r | c, d]. Defaults to Monte-Carlo over sample_reward; environments
    // with closed-form means should override.
    virtual double expected_reward(const ClientContext& context, Decision d,
                                   stats::Rng& rng, int samples = 256) const;

    virtual std::size_t num_decisions() const noexcept = 0;

protected:
    Environment() = default;
    Environment(const Environment&) = default;
    Environment& operator=(const Environment&) = default;
};

// Run `logging_policy` on `n` clients drawn from `env`, recording the true
// logging propensities. This is the "data collection phase" of Figure 1.
Trace collect_trace(const Environment& env, const Policy& logging_policy,
                    std::size_t n, stats::Rng& rng);

// As above but with a history-dependent logging policy.
Trace collect_trace(const Environment& env, const HistoryPolicy& logging_policy,
                    std::size_t n, stats::Rng& rng);

// Ground-truth policy value V(mu) = E_c E_{d~mu(.|c)} E[r | c, d], estimated
// by Monte Carlo with `clients` independent context draws.
double true_policy_value(const Environment& env, const Policy& policy,
                         std::size_t clients, stats::Rng& rng);

// Ground-truth value of a history policy replayed over fresh interactions.
double true_policy_value(const Environment& env, const HistoryPolicy& policy,
                         std::size_t clients, stats::Rng& rng);

// Relative error |V - Vhat| / |V| — the paper's evaluation-error metric.
double relative_error(double truth, double estimate);

} // namespace dre::core

#endif // DRE_CORE_ENVIRONMENT_H
