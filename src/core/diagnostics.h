// Diagnostics for trace-driven evaluation: how much can we trust an
// estimate? These quantify the paper's §2.2.2/§4.1 coverage and variance
// concerns before (or alongside) producing a number.
#ifndef DRE_CORE_DIAGNOSTICS_H
#define DRE_CORE_DIAGNOSTICS_H

#include "core/estimators.h"
#include "core/policy.h"
#include "stats/bootstrap.h"
#include "stats/rng.h"
#include "trace/trace.h"

namespace dre::core {

struct OverlapDiagnostics {
    // Kish effective sample size of the importance weights:
    //   ESS = (sum w)^2 / sum w^2.  n when policies agree; ~1 when one tuple
    // dominates (the Fig. 5 "no matches" collapse).
    double effective_sample_size = 0.0;
    double effective_sample_fraction = 0.0; // ESS / n
    double max_weight = 0.0;
    double mean_weight = 0.0; // should be ~1 if propensities are correct
    double weight_cv = 0.0;   // coefficient of variation of weights
    // Fraction of tuples whose logged decision has probability 0 under the
    // new policy (completely wasted samples for IPS).
    double zero_weight_fraction = 0.0;
    std::size_t n = 0;
};

OverlapDiagnostics overlap_diagnostics(const Trace& trace, const Policy& new_policy);

// Exact-match coverage (the CFA §2.2.2 statistic): for deterministic-ish
// new policies, the number of logged tuples whose decision is the new
// policy's argmax decision for that context.
struct MatchDiagnostics {
    std::size_t matches = 0;
    double match_rate = 0.0;
};

MatchDiagnostics match_diagnostics(const Trace& trace, const Policy& new_policy);

// Bootstrap CI over per-tuple estimator contributions.
stats::ConfidenceInterval estimate_confidence_interval(const EstimateResult& result,
                                                       stats::Rng& rng,
                                                       int replicates = 1000,
                                                       double level = 0.95);

// Distribution-free empirical-Bernstein confidence interval around the
// mean of the per-tuple contributions: with probability >= level,
//   |mean - E| <= sqrt(2 Var_n ln(3/delta) / n) + 3 R ln(3/delta) / n
// where R is the observed contribution range. Wider but assumption-free
// compared to the bootstrap; useful when weight tails make resampling
// optimistic (Maurer & Pontil 2009).
stats::ConfidenceInterval empirical_bernstein_interval(const EstimateResult& result,
                                                       double level = 0.95);

} // namespace dre::core

#endif // DRE_CORE_DIAGNOSTICS_H
