#include "core/subgroup.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dre::core {

std::vector<SubgroupResult> subgroup_analysis(const Trace& trace,
                                              const Policy& new_policy,
                                              const RewardModel& model,
                                              const GroupFn& group_fn,
                                              const SubgroupOptions& options) {
    if (!group_fn) throw std::invalid_argument("subgroup_analysis: null group_fn");
    validate_trace(trace);
    if (trace.empty()) throw std::invalid_argument("subgroup_analysis: empty trace");

    std::map<std::int64_t, Trace> groups;
    for (const auto& t : trace) groups[group_fn(t)].add(t);

    std::vector<SubgroupResult> results;
    results.reserve(groups.size());
    for (auto& [key, group_trace] : groups) {
        SubgroupResult result;
        result.group = key;
        result.tuples = group_trace.size();
        result.dr = doubly_robust(group_trace, new_policy, model);
        result.overlap = overlap_diagnostics(group_trace, new_policy);
        result.reliable =
            result.overlap.effective_sample_size >= options.min_effective_sample_size;
        results.push_back(std::move(result));
    }
    return results;
}

GroupFn group_by_categorical(std::size_t index) {
    return [index](const LoggedTuple& t) -> std::int64_t {
        if (index >= t.context.categorical.size())
            throw std::out_of_range(
                "group_by_categorical: categorical index out of range");
        return t.context.categorical[index];
    };
}

double worst_group_regression(const Trace& trace, const Policy& baseline,
                              const Policy& candidate, const RewardModel& model,
                              const GroupFn& group_fn,
                              const SubgroupOptions& options) {
    const std::vector<SubgroupResult> base =
        subgroup_analysis(trace, baseline, model, group_fn, options);
    const std::vector<SubgroupResult> cand =
        subgroup_analysis(trace, candidate, model, group_fn, options);
    // Same trace and grouping => identical group keys in identical order.
    double worst = -std::numeric_limits<double>::infinity();
    bool any = false;
    for (std::size_t i = 0; i < base.size(); ++i) {
        if (!base[i].reliable || !cand[i].reliable) continue;
        worst = std::max(worst, base[i].dr.value - cand[i].dr.value);
        any = true;
    }
    if (!any)
        throw std::invalid_argument(
            "worst_group_regression: no group reliable under both policies");
    return worst;
}

} // namespace dre::core
