// Logging-propensity estimation.
//
// The paper assumes mu_old(d_k | c_k) is known but notes "in practice, it
// may be necessary to estimate this probability from the trace" (§2.1).
// These models recover mu_old(d | c) from logged data and can rewrite a
// trace's propensity fields accordingly.
#ifndef DRE_CORE_PROPENSITY_H
#define DRE_CORE_PROPENSITY_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "stats/regression.h"
#include "trace/trace.h"
#include "trace/types.h"

namespace dre::core {

class PropensityModel {
public:
    virtual ~PropensityModel() = default;

    // Estimated mu_old(d | c). Guaranteed within [floor, 1].
    virtual double probability(const ClientContext& context, Decision d) const = 0;

    virtual std::size_t num_decisions() const noexcept = 0;

protected:
    PropensityModel() = default;
    PropensityModel(const PropensityModel&) = default;
    PropensityModel& operator=(const PropensityModel&) = default;
};

// Empirical frequencies per context fingerprint with Laplace smoothing,
// falling back to marginal decision frequencies for unseen contexts.
class TabularPropensityModel final : public PropensityModel {
public:
    // `smoothing` is the Laplace pseudo-count; `floor` lower-bounds the
    // returned probability to keep IPS weights finite.
    TabularPropensityModel(std::size_t num_decisions, double smoothing = 1.0,
                           double floor = 1e-4);

    void fit(const Trace& trace);

    double probability(const ClientContext& context, Decision d) const override;
    std::size_t num_decisions() const noexcept override { return num_decisions_; }

private:
    std::size_t num_decisions_;
    double smoothing_;
    double floor_;
    std::unordered_map<std::uint64_t, std::vector<double>> counts_;
    std::vector<double> marginal_counts_;
    bool fitted_ = false;
};

// One-vs-rest logistic regression over flattened numeric features,
// normalized across decisions.
class LogisticPropensityModel final : public PropensityModel {
public:
    explicit LogisticPropensityModel(std::size_t num_decisions, double floor = 1e-4);

    void fit(const Trace& trace);

    double probability(const ClientContext& context, Decision d) const override;
    std::vector<double> distribution(const ClientContext& context) const;
    std::size_t num_decisions() const noexcept override { return num_decisions_; }

private:
    std::size_t num_decisions_;
    double floor_;
    std::vector<stats::LogisticRegression> per_decision_;
    std::vector<bool> has_model_;
    std::vector<double> marginals_;
    bool fitted_ = false;
};

// Copy of `trace` with each tuple's propensity replaced by the model's
// estimate for (context, logged decision).
Trace with_estimated_propensities(const Trace& trace, const PropensityModel& model);

} // namespace dre::core

#endif // DRE_CORE_PROPENSITY_H
