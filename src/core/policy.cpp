#include "core/policy.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace dre::core {

void validate_distribution(std::span<const double> distribution,
                           std::size_t expected_size) {
    if (distribution.size() != expected_size)
        throw std::invalid_argument("distribution has size " +
                                    std::to_string(distribution.size()) +
                                    ", expected " + std::to_string(expected_size));
    double total = 0.0;
    for (double p : distribution) {
        if (!std::isfinite(p) || p < 0.0)
            throw std::invalid_argument("distribution entry negative or non-finite");
        total += p;
    }
    if (std::fabs(total - 1.0) > 1e-6)
        throw std::invalid_argument("distribution sums to " + std::to_string(total));
}

double Policy::probability(const ClientContext& context, Decision d) const {
    const std::vector<double> probs = action_probabilities(context);
    if (d < 0 || static_cast<std::size_t>(d) >= probs.size())
        throw std::out_of_range("Policy::probability: decision out of range");
    return probs[static_cast<std::size_t>(d)];
}

Decision Policy::sample(const ClientContext& context, stats::Rng& rng) const {
    const std::vector<double> probs = action_probabilities(context);
    return static_cast<Decision>(rng.categorical(probs));
}

DeterministicPolicy::DeterministicPolicy(std::size_t num_decisions, Chooser chooser)
    : num_decisions_(num_decisions), chooser_(std::move(chooser)) {
    if (num_decisions_ == 0)
        throw std::invalid_argument("DeterministicPolicy: empty decision space");
    if (!chooser_) throw std::invalid_argument("DeterministicPolicy: null chooser");
}

Decision DeterministicPolicy::checked_choice(const ClientContext& context) const {
    const Decision d = chooser_(context);
    if (d < 0 || static_cast<std::size_t>(d) >= num_decisions_)
        throw std::out_of_range("DeterministicPolicy: chooser returned invalid decision");
    return d;
}

std::vector<double> DeterministicPolicy::action_probabilities(
    const ClientContext& context) const {
    std::vector<double> probs(num_decisions_, 0.0);
    probs[static_cast<std::size_t>(checked_choice(context))] = 1.0;
    return probs;
}

void DeterministicPolicy::action_probabilities_into(
    const ClientContext& context, std::vector<double>& out) const {
    out.assign(num_decisions_, 0.0);
    out[static_cast<std::size_t>(checked_choice(context))] = 1.0;
}

double DeterministicPolicy::probability(const ClientContext& context, Decision d) const {
    if (d < 0 || static_cast<std::size_t>(d) >= num_decisions_)
        throw std::out_of_range("DeterministicPolicy::probability: decision out of range");
    return checked_choice(context) == d ? 1.0 : 0.0;
}

UniformRandomPolicy::UniformRandomPolicy(std::size_t num_decisions)
    : num_decisions_(num_decisions) {
    if (num_decisions_ == 0)
        throw std::invalid_argument("UniformRandomPolicy: empty decision space");
}

std::vector<double> UniformRandomPolicy::action_probabilities(
    const ClientContext&) const {
    return std::vector<double>(num_decisions_, 1.0 / static_cast<double>(num_decisions_));
}

void UniformRandomPolicy::action_probabilities_into(
    const ClientContext&, std::vector<double>& out) const {
    out.assign(num_decisions_, 1.0 / static_cast<double>(num_decisions_));
}

double UniformRandomPolicy::probability(const ClientContext&, Decision d) const {
    if (d < 0 || static_cast<std::size_t>(d) >= num_decisions_)
        throw std::out_of_range("UniformRandomPolicy::probability: decision out of range");
    return 1.0 / static_cast<double>(num_decisions_);
}

EpsilonGreedyPolicy::EpsilonGreedyPolicy(std::shared_ptr<const Policy> base,
                                         double epsilon)
    : base_(std::move(base)), epsilon_(epsilon) {
    if (!base_) throw std::invalid_argument("EpsilonGreedyPolicy: null base policy");
    if (epsilon_ < 0.0 || epsilon_ > 1.0)
        throw std::invalid_argument("EpsilonGreedyPolicy: epsilon outside [0,1]");
}

std::vector<double> EpsilonGreedyPolicy::action_probabilities(
    const ClientContext& context) const {
    std::vector<double> probs = base_->action_probabilities(context);
    const double uniform = epsilon_ / static_cast<double>(probs.size());
    for (double& p : probs) p = (1.0 - epsilon_) * p + uniform;
    return probs;
}

void EpsilonGreedyPolicy::action_probabilities_into(
    const ClientContext& context, std::vector<double>& out) const {
    base_->action_probabilities_into(context, out);
    // Same mix arithmetic as action_probabilities(), applied in place.
    const double uniform = epsilon_ / static_cast<double>(out.size());
    for (double& p : out) p = (1.0 - epsilon_) * p + uniform;
}

SoftmaxPolicy::SoftmaxPolicy(std::size_t num_decisions, Scorer scorer,
                             double temperature)
    : num_decisions_(num_decisions),
      scorer_(std::move(scorer)),
      temperature_(temperature) {
    if (num_decisions_ == 0)
        throw std::invalid_argument("SoftmaxPolicy: empty decision space");
    if (!scorer_) throw std::invalid_argument("SoftmaxPolicy: null scorer");
    if (temperature_ <= 0.0)
        throw std::invalid_argument("SoftmaxPolicy: temperature must be > 0");
}

std::vector<double> SoftmaxPolicy::action_probabilities(
    const ClientContext& context) const {
    std::vector<double> scores(num_decisions_);
    for (std::size_t d = 0; d < num_decisions_; ++d)
        scores[d] = scorer_(context, static_cast<Decision>(d)) / temperature_;
    const double peak = *std::max_element(scores.begin(), scores.end());
    double total = 0.0;
    for (double& s : scores) {
        s = std::exp(s - peak);
        total += s;
    }
    for (double& s : scores) s /= total;
    return scores;
}

MixturePolicy::MixturePolicy(std::shared_ptr<const Policy> a,
                             std::shared_ptr<const Policy> b, double weight_a)
    : a_(std::move(a)), b_(std::move(b)), weight_a_(weight_a) {
    if (!a_ || !b_) throw std::invalid_argument("MixturePolicy: null component");
    if (a_->num_decisions() != b_->num_decisions())
        throw std::invalid_argument("MixturePolicy: decision-space mismatch");
    if (weight_a_ < 0.0 || weight_a_ > 1.0)
        throw std::invalid_argument("MixturePolicy: weight outside [0,1]");
}

std::vector<double> MixturePolicy::action_probabilities(
    const ClientContext& context) const {
    std::vector<double> pa = a_->action_probabilities(context);
    const std::vector<double> pb = b_->action_probabilities(context);
    for (std::size_t d = 0; d < pa.size(); ++d)
        pa[d] = weight_a_ * pa[d] + (1.0 - weight_a_) * pb[d];
    return pa;
}

TablePolicy::TablePolicy(std::size_t num_decisions, std::vector<double> fallback)
    : num_decisions_(num_decisions), fallback_(std::move(fallback)) {
    if (num_decisions_ == 0)
        throw std::invalid_argument("TablePolicy: empty decision space");
    validate_distribution(fallback_, num_decisions_);
}

void TablePolicy::set(const ClientContext& context, std::vector<double> distribution) {
    validate_distribution(distribution, num_decisions_);
    table_[context_fingerprint(context)] = std::move(distribution);
}

std::vector<double> TablePolicy::action_probabilities(
    const ClientContext& context) const {
    const auto it = table_.find(context_fingerprint(context));
    return it == table_.end() ? fallback_ : it->second;
}

double HistoryPolicy::probability(const ClientContext& context,
                                  std::span<const LoggedTuple> history,
                                  Decision d) const {
    const std::vector<double> probs = action_probabilities(context, history);
    if (d < 0 || static_cast<std::size_t>(d) >= probs.size())
        throw std::out_of_range("HistoryPolicy::probability: decision out of range");
    return probs[static_cast<std::size_t>(d)];
}

Decision HistoryPolicy::sample(const ClientContext& context,
                               std::span<const LoggedTuple> history,
                               stats::Rng& rng) const {
    const std::vector<double> probs = action_probabilities(context, history);
    return static_cast<Decision>(rng.categorical(probs));
}

StationaryAsHistoryPolicy::StationaryAsHistoryPolicy(std::shared_ptr<const Policy> base)
    : base_(std::move(base)) {
    if (!base_) throw std::invalid_argument("StationaryAsHistoryPolicy: null base");
}

std::vector<double> StationaryAsHistoryPolicy::action_probabilities(
    const ClientContext& context, std::span<const LoggedTuple>) const {
    return base_->action_probabilities(context);
}

} // namespace dre::core
