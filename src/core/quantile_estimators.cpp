#include "core/quantile_estimators.h"

#include <algorithm>
#include <stdexcept>

#include "core/estimators.h"

namespace dre::core {

OffPolicyDistribution::OffPolicyDistribution(const Trace& trace,
                                             const Policy& new_policy) {
    const std::vector<double> weights = importance_weights(trace, new_policy);

    std::vector<WeightedPoint> points;
    points.reserve(trace.size());
    for (std::size_t k = 0; k < trace.size(); ++k) {
        if (weights[k] <= 0.0) continue;
        points.push_back({trace[k].reward, weights[k], 0.0});
    }
    if (points.empty())
        throw std::invalid_argument(
            "OffPolicyDistribution: new policy has zero overlap with the trace");

    std::sort(points.begin(), points.end(),
              [](const WeightedPoint& a, const WeightedPoint& b) {
                  return a.reward < b.reward;
              });
    double cumulative = 0.0;
    for (auto& p : points) {
        cumulative += p.weight;
        p.cumulative = cumulative;
    }
    total_weight_ = cumulative;
    points_ = std::move(points);
}

double OffPolicyDistribution::cdf(double x) const {
    // Largest point with reward <= x.
    const auto it = std::upper_bound(
        points_.begin(), points_.end(), x,
        [](double value, const WeightedPoint& p) { return value < p.reward; });
    if (it == points_.begin()) return 0.0;
    return std::prev(it)->cumulative / total_weight_;
}

double OffPolicyDistribution::quantile(double q) const {
    if (q < 0.0 || q > 1.0)
        throw std::invalid_argument("OffPolicyDistribution::quantile: q outside [0,1]");
    const double target = q * total_weight_;
    const auto it = std::lower_bound(
        points_.begin(), points_.end(), target,
        [](const WeightedPoint& p, double value) { return p.cumulative < value; });
    if (it == points_.end()) return points_.back().reward;
    return it->reward;
}

double OffPolicyDistribution::cvar_lower(double tail_fraction) const {
    if (tail_fraction <= 0.0 || tail_fraction > 1.0)
        throw std::invalid_argument(
            "OffPolicyDistribution::cvar_lower: fraction outside (0,1]");
    const double tail_weight = tail_fraction * total_weight_;
    double accumulated = 0.0, weighted_sum = 0.0;
    for (const auto& p : points_) {
        const double take = std::min(p.weight, tail_weight - accumulated);
        if (take <= 0.0) break;
        weighted_sum += take * p.reward;
        accumulated += take;
    }
    return weighted_sum / accumulated;
}

double off_policy_quantile(const Trace& trace, const Policy& new_policy, double q) {
    return OffPolicyDistribution(trace, new_policy).quantile(q);
}

double off_policy_cvar(const Trace& trace, const Policy& new_policy,
                       double tail_fraction) {
    return OffPolicyDistribution(trace, new_policy).cvar_lower(tail_fraction);
}

} // namespace dre::core
