// System-state ("state of the world") handling — paper §4.1 and §4.3.
//
// DR implicitly assumes the new policy is evaluated under the same system
// states (load, time-of-day, background traffic) as in the trace. When the
// target regime differs, we support two of the paper's proposed remedies:
//
//  1. Transition correction: "if we know that peak-hour performance is on
//     average 20% worse ... create a new trace by degrading the performance
//     in the trace" and run DR on the corrected trace.
//  2. State matching: "the DR estimator can use the empirical data in the
//     trace when the network states match" — restrict the DR average to
//     tuples whose state label equals the target state.
//
// Plus automatic transition-function identification from a few paired
// samples (the paper's transfer-learning conjecture, realized here as a
// per-state affine map fit by least squares).
#ifndef DRE_CORE_WORLD_STATE_H
#define DRE_CORE_WORLD_STATE_H

#include <functional>
#include <vector>

#include "core/estimators.h"
#include "core/policy.h"
#include "core/reward_model.h"
#include "trace/trace.h"

namespace dre::core {

// Maps a reward observed in `from_state` to the equivalent reward under
// `to_state` (e.g., r -> 0.8 * r for morning -> peak).
using StateTransitionFn =
    std::function<double(double reward, std::int32_t from_state, std::int32_t to_state)>;

// Copy of `trace` with every reward rerouted through `transition` toward
// `target_state` and all state labels set to `target_state`.
Trace apply_state_transition(const Trace& trace, const StateTransitionFn& transition,
                             std::int32_t target_state);

// DR on the transition-corrected trace (remedy 1). The reward model is
// refit by the caller on the corrected trace for consistency.
EstimateResult doubly_robust_state_corrected(const Trace& trace,
                                             const Policy& new_policy,
                                             const RewardModel& corrected_model,
                                             const StateTransitionFn& transition,
                                             std::int32_t target_state);

// DR restricted to tuples logged in `target_state` (remedy 2). Throws if no
// tuple matches.
EstimateResult doubly_robust_state_matched(const Trace& trace,
                                           const Policy& new_policy,
                                           const RewardModel& model,
                                           std::int32_t target_state);

// Affine per-state-pair transition r_to ≈ a * r_from + b, identified from
// samples of the same (context, decision) population observed in both
// states. This is the "collect a few samples from various network states,
// then identify the transition function" idea in §4.3.
class AffineStateTransition {
public:
    // Fit from paired observations (reward in from_state, reward in to_state).
    void fit(std::span<const double> from_rewards, std::span<const double> to_rewards);

    double operator()(double reward, std::int32_t, std::int32_t) const;

    double slope() const noexcept { return slope_; }
    double offset() const noexcept { return offset_; }
    bool fitted() const noexcept { return fitted_; }

private:
    double slope_ = 1.0;
    double offset_ = 0.0;
    bool fitted_ = false;
};

} // namespace dre::core

#endif // DRE_CORE_WORLD_STATE_H
