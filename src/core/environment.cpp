#include "core/environment.h"

#include <cmath>
#include <stdexcept>

#include "fault/fault.h"

namespace dre::core {

double Environment::expected_reward(const ClientContext& context, Decision d,
                                    stats::Rng& rng, int samples) const {
    if (samples <= 0) throw std::invalid_argument("expected_reward: samples <= 0");
    double total = 0.0;
    for (int i = 0; i < samples; ++i) total += sample_reward(context, d, rng);
    return total / samples;
}

Trace collect_trace(const Environment& env, const Policy& logging_policy,
                    std::size_t n, stats::Rng& rng) {
    if (logging_policy.num_decisions() != env.num_decisions())
        throw std::invalid_argument("collect_trace: decision-space mismatch");
    Trace trace;
    trace.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        DRE_FAULT_INJECT("env.step", i, 0);
        LoggedTuple t;
        t.context = env.sample_context(rng);
        const std::vector<double> probs =
            logging_policy.action_probabilities(t.context);
        t.decision = static_cast<Decision>(rng.categorical(probs));
        t.propensity = probs[static_cast<std::size_t>(t.decision)];
        t.reward = env.sample_reward(t.context, t.decision, rng);
        trace.add(std::move(t));
    }
    return trace;
}

Trace collect_trace(const Environment& env, const HistoryPolicy& logging_policy,
                    std::size_t n, stats::Rng& rng) {
    if (logging_policy.num_decisions() != env.num_decisions())
        throw std::invalid_argument("collect_trace: decision-space mismatch");
    Trace trace;
    trace.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        DRE_FAULT_INJECT("env.step", i, 0);
        LoggedTuple t;
        t.context = env.sample_context(rng);
        const std::vector<double> probs =
            logging_policy.action_probabilities(t.context, trace.tuples());
        t.decision = static_cast<Decision>(rng.categorical(probs));
        t.propensity = probs[static_cast<std::size_t>(t.decision)];
        t.reward = env.sample_reward(t.context, t.decision, rng);
        trace.add(std::move(t));
    }
    return trace;
}

double true_policy_value(const Environment& env, const Policy& policy,
                         std::size_t clients, stats::Rng& rng) {
    if (clients == 0) throw std::invalid_argument("true_policy_value: zero clients");
    double total = 0.0;
    for (std::size_t i = 0; i < clients; ++i) {
        const ClientContext context = env.sample_context(rng);
        const Decision d = policy.sample(context, rng);
        total += env.sample_reward(context, d, rng);
    }
    return total / static_cast<double>(clients);
}

double true_policy_value(const Environment& env, const HistoryPolicy& policy,
                         std::size_t clients, stats::Rng& rng) {
    if (clients == 0) throw std::invalid_argument("true_policy_value: zero clients");
    Trace history;
    history.reserve(clients);
    double total = 0.0;
    for (std::size_t i = 0; i < clients; ++i) {
        LoggedTuple t;
        t.context = env.sample_context(rng);
        const std::vector<double> probs =
            policy.action_probabilities(t.context, history.tuples());
        t.decision = static_cast<Decision>(rng.categorical(probs));
        t.propensity = probs[static_cast<std::size_t>(t.decision)];
        t.reward = env.sample_reward(t.context, t.decision, rng);
        total += t.reward;
        history.add(std::move(t));
    }
    return total / static_cast<double>(clients);
}

double relative_error(double truth, double estimate) {
    const double denom = std::fabs(truth);
    if (denom < 1e-12) return std::fabs(estimate - truth);
    return std::fabs(estimate - truth) / denom;
}

} // namespace dre::core
