#include "core/reward_model.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace dre::core {
namespace {

// Mix the decision into an already-computed context fingerprint. Split out
// of cell_key so predict_row can fingerprint the context once per row.
std::uint64_t mix_decision(std::uint64_t h, Decision d) noexcept {
    h ^= 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(d) +
         (h << 6) + (h >> 2);
    return h;
}

std::uint64_t cell_key(const ClientContext& context, Decision d) noexcept {
    return mix_decision(context_fingerprint(context), d);
}

void check_decision(Decision d, std::size_t n, const char* who) {
    if (d < 0 || static_cast<std::size_t>(d) >= n)
        throw std::out_of_range(std::string(who) + ": decision out of range");
}

} // namespace

ConstantRewardModel::ConstantRewardModel(std::size_t num_decisions, double value)
    : num_decisions_(num_decisions), value_(value) {
    if (num_decisions_ == 0)
        throw std::invalid_argument("ConstantRewardModel: empty decision space");
}

OracleRewardModel::OracleRewardModel(std::size_t num_decisions, Fn fn)
    : num_decisions_(num_decisions), fn_(std::move(fn)) {
    if (num_decisions_ == 0)
        throw std::invalid_argument("OracleRewardModel: empty decision space");
    if (!fn_) throw std::invalid_argument("OracleRewardModel: null function");
}

double OracleRewardModel::predict(const ClientContext& context, Decision d) const {
    check_decision(d, num_decisions_, "OracleRewardModel");
    return fn_(context, d);
}

TabularRewardModel::TabularRewardModel(std::size_t num_decisions)
    : num_decisions_(num_decisions), decision_means_(num_decisions) {
    if (num_decisions_ == 0)
        throw std::invalid_argument("TabularRewardModel: empty decision space");
}

void TabularRewardModel::fit(const Trace& trace) {
    validate_trace(trace);
    cell_means_.clear();
    decision_means_.assign(num_decisions_, {});
    global_mean_ = {};
    for (const auto& t : trace) {
        check_decision(t.decision, num_decisions_, "TabularRewardModel::fit");
        cell_means_[cell_key(t.context, t.decision)].add(t.reward);
        decision_means_[static_cast<std::size_t>(t.decision)].add(t.reward);
        global_mean_.add(t.reward);
    }
    fitted_ = true;
}

double TabularRewardModel::predict(const ClientContext& context, Decision d) const {
    if (!fitted_) throw std::logic_error("TabularRewardModel::predict before fit");
    check_decision(d, num_decisions_, "TabularRewardModel::predict");
    const auto it = cell_means_.find(cell_key(context, d));
    if (it != cell_means_.end()) return it->second.mean;
    const auto& per_decision = decision_means_[static_cast<std::size_t>(d)];
    if (per_decision.count > 0) return per_decision.mean;
    return global_mean_.mean;
}

void TabularRewardModel::predict_row(const ClientContext& context,
                                     double* out) const {
    if (!fitted_)
        throw std::logic_error("TabularRewardModel::predict_row before fit");
    const std::uint64_t fp = context_fingerprint(context);
    for (std::size_t d = 0; d < num_decisions_; ++d) {
        const auto it =
            cell_means_.find(mix_decision(fp, static_cast<Decision>(d)));
        if (it != cell_means_.end()) {
            out[d] = it->second.mean;
            continue;
        }
        const auto& per_decision = decision_means_[d];
        out[d] = per_decision.count > 0 ? per_decision.mean : global_mean_.mean;
    }
}

LinearRewardModel::LinearRewardModel(std::size_t num_decisions, double l2)
    : num_decisions_(num_decisions), l2_(l2) {
    if (num_decisions_ == 0)
        throw std::invalid_argument("LinearRewardModel: empty decision space");
    if (l2_ < 0.0) throw std::invalid_argument("LinearRewardModel: negative l2");
}

void LinearRewardModel::fit(const Trace& trace) {
    validate_trace(trace);
    per_decision_.assign(num_decisions_, {});
    has_model_.assign(num_decisions_, false);

    std::vector<std::vector<std::vector<double>>> features(num_decisions_);
    std::vector<std::vector<double>> targets(num_decisions_);
    double total = 0.0;
    for (const auto& t : trace) {
        check_decision(t.decision, num_decisions_, "LinearRewardModel::fit");
        const auto d = static_cast<std::size_t>(t.decision);
        features[d].push_back(t.context.flattened());
        targets[d].push_back(t.reward);
        total += t.reward;
    }
    global_mean_ = trace.empty() ? 0.0 : total / static_cast<double>(trace.size());
    for (std::size_t d = 0; d < num_decisions_; ++d) {
        if (features[d].empty()) continue;
        per_decision_[d].fit(features[d], targets[d], l2_);
        has_model_[d] = true;
    }
    fitted_ = true;
}

double LinearRewardModel::predict(const ClientContext& context, Decision d) const {
    if (!fitted_) throw std::logic_error("LinearRewardModel::predict before fit");
    check_decision(d, num_decisions_, "LinearRewardModel::predict");
    const auto index = static_cast<std::size_t>(d);
    if (!has_model_[index]) return global_mean_;
    return per_decision_[index].predict(context.flattened());
}

void LinearRewardModel::predict_row(const ClientContext& context,
                                    double* out) const {
    if (!fitted_)
        throw std::logic_error("LinearRewardModel::predict_row before fit");
    const std::vector<double> flat = context.flattened();
    for (std::size_t d = 0; d < num_decisions_; ++d)
        out[d] = has_model_[d] ? per_decision_[d].predict(flat) : global_mean_;
}

KnnRewardModel::KnnRewardModel(std::size_t num_decisions, std::size_t k,
                               bool one_hot_categoricals)
    : num_decisions_(num_decisions), k_(k), one_hot_(one_hot_categoricals) {
    if (num_decisions_ == 0)
        throw std::invalid_argument("KnnRewardModel: empty decision space");
    if (k_ == 0) throw std::invalid_argument("KnnRewardModel: k must be > 0");
}

std::vector<double> KnnRewardModel::encode(const ClientContext& context) const {
    if (!one_hot_) return context.flattened();
    std::vector<double> out = context.numeric;
    for (std::size_t i = 0; i < context.categorical.size(); ++i) {
        const std::int32_t cardinality =
            i < cardinalities_.size() ? cardinalities_[i] : 0;
        const std::size_t base = out.size();
        out.resize(base + static_cast<std::size_t>(std::max(cardinality, 1)), 0.0);
        const std::int32_t value = context.categorical[i];
        if (value >= 0 && value < cardinality)
            out[base + static_cast<std::size_t>(value)] = 1.0;
    }
    return out;
}

void KnnRewardModel::fit(const Trace& trace) {
    validate_trace(trace);
    per_decision_.assign(num_decisions_, stats::KnnRegressor{k_});
    has_model_.assign(num_decisions_, false);

    // Infer categorical cardinalities for one-hot encoding.
    cardinalities_.clear();
    if (one_hot_) {
        for (const auto& t : trace) {
            if (t.context.categorical.size() > cardinalities_.size())
                cardinalities_.resize(t.context.categorical.size(), 0);
            for (std::size_t i = 0; i < t.context.categorical.size(); ++i)
                cardinalities_[i] =
                    std::max(cardinalities_[i], t.context.categorical[i] + 1);
        }
    }

    std::vector<std::vector<std::vector<double>>> features(num_decisions_);
    std::vector<std::vector<double>> targets(num_decisions_);
    double total = 0.0;
    for (const auto& t : trace) {
        check_decision(t.decision, num_decisions_, "KnnRewardModel::fit");
        const auto d = static_cast<std::size_t>(t.decision);
        features[d].push_back(encode(t.context));
        targets[d].push_back(t.reward);
        total += t.reward;
    }
    global_mean_ = trace.empty() ? 0.0 : total / static_cast<double>(trace.size());
    for (std::size_t d = 0; d < num_decisions_; ++d) {
        if (features[d].empty()) continue;
        per_decision_[d].fit(features[d], targets[d]);
        has_model_[d] = true;
    }
    fitted_ = true;
}

double KnnRewardModel::predict(const ClientContext& context, Decision d) const {
    if (!fitted_) throw std::logic_error("KnnRewardModel::predict before fit");
    check_decision(d, num_decisions_, "KnnRewardModel::predict");
    const auto index = static_cast<std::size_t>(d);
    if (!has_model_[index]) return global_mean_;
    return per_decision_[index].predict(encode(context));
}

void KnnRewardModel::predict_row(const ClientContext& context,
                                 double* out) const {
    if (!fitted_)
        throw std::logic_error("KnnRewardModel::predict_row before fit");
    const std::vector<double> encoded = encode(context);
    for (std::size_t d = 0; d < num_decisions_; ++d)
        out[d] = has_model_[d] ? per_decision_[d].predict(encoded) : global_mean_;
}

void KnnRewardModel::predict_rows(const ClientContext* const* contexts,
                                  std::size_t count, double* out) const {
    if (!fitted_)
        throw std::logic_error("KnnRewardModel::predict_rows before fit");
    // Batch size bounds the encoded-query scratch (~batch × dims doubles)
    // so one KD-tree's blocks plus the batch fit in L2 together.
    constexpr std::size_t kRowBatch = 256;
    std::vector<std::vector<double>> encoded;
    encoded.reserve(std::min(count, kRowBatch));
    for (std::size_t base = 0; base < count; base += kRowBatch) {
        const std::size_t batch = std::min(kRowBatch, count - base);
        encoded.clear();
        for (std::size_t i = 0; i < batch; ++i)
            encoded.push_back(encode(*contexts[base + i]));
        // Decision-major: one tree serves the whole batch before the next
        // tree is touched. Each out[row * num_decisions_ + d] gets exactly
        // the value predict_row would have written — entries are
        // independent, so the loop order is invisible in the result.
        for (std::size_t d = 0; d < num_decisions_; ++d) {
            double* col = out + base * num_decisions_ + d;
            if (!has_model_[d]) {
                for (std::size_t i = 0; i < batch; ++i)
                    col[i * num_decisions_] = global_mean_;
                continue;
            }
            const stats::KnnRegressor& reg = per_decision_[d];
            for (std::size_t i = 0; i < batch; ++i)
                col[i * num_decisions_] = reg.predict(encoded[i]);
        }
    }
}

std::unique_ptr<RewardModel> fit_reward_model(RewardModelKind kind,
                                              std::size_t num_decisions,
                                              const Trace& trace) {
    switch (kind) {
        case RewardModelKind::kTabular: {
            auto model = std::make_unique<TabularRewardModel>(num_decisions);
            model->fit(trace);
            return model;
        }
        case RewardModelKind::kLinear: {
            auto model = std::make_unique<LinearRewardModel>(num_decisions);
            model->fit(trace);
            return model;
        }
        case RewardModelKind::kKnn: {
            auto model = std::make_unique<KnnRewardModel>(num_decisions);
            model->fit(trace);
            return model;
        }
    }
    throw std::invalid_argument("fit_reward_model: unknown kind");
}

} // namespace dre::core
