// Deterministic parallel execution layer (`dre::par`).
//
// A small, chunked thread pool for the embarrassingly-parallel loops in the
// evaluation pipeline (bootstrap replicates, policy comparisons, per-tuple
// estimator sums, batch kNN queries, multi-run bench harnesses).
//
// The repo's hard guarantee is bit-for-bit reproducibility for a fixed seed
// (see tests/test_determinism.cpp), so the layer is designed around one rule:
// *scheduling is dynamic, but results must depend only on logical indices.*
// Concretely:
//
//  * every work item writes only its own output slot(s);
//  * every work item draws randomness only from an Rng stream keyed by its
//    logical index (see Rng::split(stream_id) in stats/rng.h);
//  * reductions combine fixed-size chunk partials in chunk order, so the
//    floating-point association never depends on the thread count.
//
// Under these rules any thread count — including the fully serial
// `DRE_THREADS=1` path — produces bit-identical outputs.
#ifndef DRE_CORE_PARALLEL_H
#define DRE_CORE_PARALLEL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/trace_context.h"

namespace dre::par {

// Fixed chunk length for deterministic reductions. Independent of the thread
// count by construction; changing it changes results for inputs longer than
// one chunk, so treat it like a golden constant.
inline constexpr std::size_t kReduceChunk = 4096;

// Fixed pool of worker threads executing index-based batches. Workers claim
// indices from an atomic counter (dynamic load balancing); see the file
// header for how determinism is preserved anyway.
class ThreadPool {
public:
    // `threads` is the total parallelism (callers participate in batches, so
    // `threads - 1` workers are spawned). `threads == 1` spawns none and
    // runs every batch inline.
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t thread_count() const noexcept { return workers_.size() + 1; }

    // Run fn(i) for every i in [0, n); blocks until the batch drains. The
    // calling thread participates. The first exception thrown by any task is
    // rethrown here once all tasks finished. Calls from inside a task (nested
    // parallelism) are safe: they execute serially inline.
    void run(std::size_t n, const std::function<void(std::size_t)>& fn);

private:
    // One batch submission. Heap-allocated and shared between the submitting
    // thread and any workers that observed it, so a worker that was woken
    // for a batch but scheduled late can never act on recycled counters: a
    // stale batch's `next` is exhausted forever, which means the dangling
    // `fn` of a completed batch is provably never dereferenced again.
    struct Batch {
        const std::function<void(std::size_t)>* fn = nullptr;
        std::size_t size = 0;
        // The submitting thread's request context; workers adopt it while
        // draining this batch, so spans opened inside pool tasks attach to
        // the request that submitted the work (zero when untraced).
        obs::TraceContext trace_ctx;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> completed{0};
    };

    void worker_loop();
    // Claim-and-execute loop shared by workers and the submitting thread.
    void drain(Batch& batch);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::shared_ptr<Batch> batch_;   // guarded; null when idle
    std::uint64_t epoch_ = 0;        // guarded
    std::exception_ptr first_error_; // guarded
    bool stop_ = false;              // guarded
};

// --- Global pool -----------------------------------------------------------
//
// Lazily constructed on first use. Size: DRE_THREADS if set (clamped to
// >= 1; "1" means fully serial), else the number of CPUs actually available
// to this process (CPU affinity mask), not std::thread::hardware_concurrency()
// — in containers with a CPU quota the latter over-reports and an oversized
// pool thrashes instead of speeding anything up.

// CPUs usable by this process: the affinity-mask population count on Linux,
// falling back to hardware_concurrency() (>= 1) elsewhere.
std::size_t available_cpus();

// The configured parallelism (>= 1). Initializes the pool if needed.
std::size_t thread_count();

// Reconfigure the global pool (benches and determinism tests switch between
// serial and parallel in-process). `n == 0` restores the environment/hardware
// default. Must not be called from inside a parallel region.
void set_thread_count(std::size_t n);

ThreadPool& global_pool();

// True while the calling thread executes a pool task (nested calls inline).
bool in_parallel_region() noexcept;

// --- Loops -----------------------------------------------------------------

// fn(i) for i in [0, n). Use for coarse-grained items (a bootstrap
// replicate, a policy evaluation, a bench run).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

// fn(begin, end) over contiguous sub-ranges covering [0, n). Use for
// fine-grained per-element loops; the grain is an implementation detail
// because correct callers only perform slot-disjoint writes.
//
// `min_grain` bounds the smallest sub-range dispatched to the pool; tune it
// to the per-item cost. The default (kDefaultGrain) suits cheap per-element
// work; callers whose items are individually expensive (a bootstrap
// replicate, a k-NN query batch) should pass a small grain so the chunk
// count exceeds the thread count and the pool can load-balance. Chunk
// geometry never affects results — callers only perform slot-disjoint
// writes — so the grain is a pure performance knob.
inline constexpr std::size_t kDefaultGrain = 256;
void parallel_for_chunked(std::size_t n,
                          const std::function<void(std::size_t, std::size_t)>& fn,
                          std::size_t min_grain = kDefaultGrain);

// Materialize fn(i) for i in [0, n) in index order.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
    static_assert(std::is_default_constructible_v<R>,
                  "parallel_map result type must be default-constructible");
    std::vector<R> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

// --- Deterministic reductions ---------------------------------------------
//
// Partial results are computed per fixed-size chunk (kReduceChunk) and
// combined in chunk order, so the value depends only on the input. For
// inputs of at most one chunk they degenerate to the plain serial fold.

// Mean-only Welford state mirroring stats::Accumulator's add/merge
// arithmetic exactly (dre_par cannot depend on dre_stats: dre_stats links
// against this library). Public because the out-of-core evaluation path
// (core/streaming.cpp) reproduces chunked_mean by folding the same states
// over chunks it never holds simultaneously — sharing the arithmetic here
// is what makes the two paths bit-identical.
struct MeanState {
    std::size_t n = 0;
    double mean = 0.0;

    void add(double x) noexcept {
        ++n;
        mean += (x - mean) / static_cast<double>(n);
    }
    void merge(const MeanState& other) noexcept {
        if (other.n == 0) return;
        if (n == 0) {
            *this = other;
            return;
        }
        const auto total = static_cast<double>(n + other.n);
        mean = (mean * static_cast<double>(n) +
                other.mean * static_cast<double>(other.n)) /
               total;
        n += other.n;
    }
};

// Ordered chunk-wise sum (left fold within chunks, chunk partials combined
// left to right).
double chunked_sum(std::span<const double> xs);

// Ordered chunk-wise mean using Welford updates within chunks and pairwise
// combination across chunks; identical to stats::mean for
// xs.size() <= kReduceChunk. Requires a non-empty input.
double chunked_mean(std::span<const double> xs);

} // namespace dre::par

#endif // DRE_CORE_PARALLEL_H
