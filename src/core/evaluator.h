// One-call evaluation harness: run the full estimator suite on a trace and
// compare candidate policies ("Which policy is the best?" — Figure 1).
#ifndef DRE_CORE_EVALUATOR_H
#define DRE_CORE_EVALUATOR_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/diagnostics.h"
#include "core/estimators.h"
#include "core/policy.h"
#include "core/propensity.h"
#include "core/qhat.h"
#include "core/reward_model.h"
#include "obs/report.h"
#include "stats/rng.h"
#include "trace/trace.h"

namespace dre::core {

struct EvaluationConfig {
    RewardModelKind reward_model = RewardModelKind::kTabular;
    // When true, re-estimate logging propensities from the trace instead of
    // trusting the logged ones (paper §2.1's "in practice" caveat).
    bool estimate_propensities = false;
    EstimatorOptions estimator_options;
    // Fit the reward model on a split disjoint from the evaluation tuples
    // (avoids the optimistic bias of fitting and evaluating on the same data).
    bool cross_fit = false;
    double cross_fit_train_fraction = 0.5;
    // Bootstrap CI settings (0 replicates disables CIs).
    int ci_replicates = 0;
    double ci_level = 0.95;
};

struct PolicyEvaluation {
    EstimateResult dm;
    EstimateResult ips;
    EstimateResult snips;
    EstimateResult dr;
    EstimateResult switch_dr;
    OverlapDiagnostics overlap;
    std::optional<stats::ConfidenceInterval> dr_ci;

    // The headline number: DR (paper's recommendation).
    double value() const noexcept { return dr.value; }
};

class Evaluator {
public:
    Evaluator(Trace trace, EvaluationConfig config, stats::Rng rng);

    // Evaluate one candidate policy.
    PolicyEvaluation evaluate(const Policy& new_policy) const;

    // Evaluate with an explicit caller-owned RNG instead of the shared
    // mutable stream, so many threads can evaluate on one shared Evaluator
    // concurrently and the result depends only on the arguments. With
    // cross_fit and estimate_propensities off, the constructor never draws
    // from its RNG, so `evaluate_seeded(p, Rng(seed))` on a cached
    // Evaluator reproduces `Evaluator(trace, config, Rng(seed)).evaluate(p)`
    // byte for byte — the serve layer's determinism contract rests on this.
    // Negative ci_replicates/ci_level inherit the config; non-negative
    // values override per call, so one cached instance answers requests
    // with different --ci settings.
    PolicyEvaluation evaluate_seeded(const Policy& new_policy, stats::Rng rng,
                                     int ci_replicates = -1,
                                     double ci_level = -1.0) const;

    // Evaluate several candidates and return the index of the DR-best one.
    // Candidates are evaluated concurrently (dre::par); each gets its own
    // split RNG stream keyed by its index, so the result is bit-identical
    // for any DRE_THREADS setting.
    struct Comparison {
        std::vector<PolicyEvaluation> evaluations;
        std::size_t best_index = 0;
    };
    Comparison compare(const std::vector<const Policy*>& policies) const;

    const Trace& evaluation_trace() const noexcept { return evaluation_trace_; }
    const RewardModel& reward_model() const;

    // The shared q̂[tuple × decision] matrix: the fitted model evaluated
    // once at every (evaluation tuple, decision) pair in the constructor.
    // All model-based estimators in evaluate()/compare() read from it
    // instead of re-querying the model, with bit-identical results.
    const PredictionMatrix& prediction_matrix() const noexcept { return qhat_; }

private:
    PolicyEvaluation evaluate_with(const Policy& new_policy, stats::Rng& rng,
                                   int ci_replicates, double ci_level) const;

    EvaluationConfig config_;
    mutable stats::Rng rng_;
    Trace evaluation_trace_;     // tuples the estimators average over
    std::unique_ptr<RewardModel> model_;
    PredictionMatrix qhat_;      // q̂ over evaluation_trace_ × decisions
};

// The canonical result document for one policy evaluation: a "policy
// <spec>" section with the five estimates (DR rendered with its CI when
// present) and a "diagnostics" section with the overlap numbers. This is
// what dre_eval prints and what a serve Result frame carries, so server
// responses are byte-diffable against CLI stdout by construction.
obs::Report make_policy_report(std::string_view policy_spec,
                               const PolicyEvaluation& result);

} // namespace dre::core

#endif // DRE_CORE_EVALUATOR_H
