#include "core/estimators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/summary.h"

namespace dre::core {
namespace {

void check_inputs(const Trace& trace, const Policy& new_policy,
                  const RewardModel* model) {
    validate_trace(trace);
    if (trace.empty()) throw std::invalid_argument("estimator: empty trace");
    if (trace.num_decisions() > new_policy.num_decisions())
        throw std::invalid_argument("estimator: trace uses decisions outside policy space");
    if (model && model->num_decisions() != new_policy.num_decisions())
        throw std::invalid_argument("estimator: model/policy decision-space mismatch");
}

double model_value_under_policy(const RewardModel& model, const Policy& policy,
                                const ClientContext& context) {
    const std::vector<double> probs = policy.action_probabilities(context);
    double value = 0.0;
    for (std::size_t d = 0; d < probs.size(); ++d) {
        if (probs[d] == 0.0) continue;
        value += probs[d] * model.predict(context, static_cast<Decision>(d));
    }
    return value;
}

EstimateResult average_result(std::vector<double> per_tuple, std::string name) {
    EstimateResult result;
    result.value = stats::mean(per_tuple);
    result.per_tuple = std::move(per_tuple);
    result.estimator = std::move(name);
    return result;
}

} // namespace

double EstimateResult::variance_of_mean() const {
    if (per_tuple.size() < 2) return 0.0;
    return stats::sample_variance(per_tuple) / static_cast<double>(per_tuple.size());
}

EstimateResult direct_method(const Trace& trace, const Policy& new_policy,
                             const RewardModel& model) {
    check_inputs(trace, new_policy, &model);
    std::vector<double> per_tuple;
    per_tuple.reserve(trace.size());
    for (const auto& t : trace)
        per_tuple.push_back(model_value_under_policy(model, new_policy, t.context));
    return average_result(std::move(per_tuple), "DM");
}

std::vector<double> importance_weights(const Trace& trace, const Policy& new_policy) {
    check_inputs(trace, new_policy, nullptr);
    std::vector<double> weights;
    weights.reserve(trace.size());
    for (const auto& t : trace)
        weights.push_back(new_policy.probability(t.context, t.decision) / t.propensity);
    return weights;
}

EstimateResult inverse_propensity(const Trace& trace, const Policy& new_policy) {
    const std::vector<double> weights = importance_weights(trace, new_policy);
    std::vector<double> per_tuple(trace.size());
    for (std::size_t k = 0; k < trace.size(); ++k)
        per_tuple[k] = weights[k] * trace[k].reward;
    return average_result(std::move(per_tuple), "IPS");
}

EstimateResult clipped_ips(const Trace& trace, const Policy& new_policy,
                           const EstimatorOptions& options) {
    if (!(options.weight_clip > 0.0))
        throw std::invalid_argument("clipped_ips: weight_clip must be > 0");
    const std::vector<double> weights = importance_weights(trace, new_policy);
    std::vector<double> per_tuple(trace.size());
    for (std::size_t k = 0; k < trace.size(); ++k)
        per_tuple[k] = std::min(weights[k], options.weight_clip) * trace[k].reward;
    return average_result(std::move(per_tuple), "clipped-IPS");
}

EstimateResult self_normalized_ips(const Trace& trace, const Policy& new_policy) {
    const std::vector<double> weights = importance_weights(trace, new_policy);
    double weighted_reward = 0.0, total_weight = 0.0;
    for (std::size_t k = 0; k < trace.size(); ++k) {
        weighted_reward += weights[k] * trace[k].reward;
        total_weight += weights[k];
    }
    EstimateResult result;
    result.estimator = "SNIPS";
    if (total_weight <= 0.0) {
        // New policy has no overlap at all with the logged decisions.
        result.value = 0.0;
        result.per_tuple.assign(trace.size(), 0.0);
        return result;
    }
    result.value = weighted_reward / total_weight;
    // Per-tuple contributions relative to the global normalization, scaled
    // so that mean(per_tuple) == value.
    result.per_tuple.resize(trace.size());
    const double scale = static_cast<double>(trace.size()) / total_weight;
    for (std::size_t k = 0; k < trace.size(); ++k)
        result.per_tuple[k] = scale * weights[k] * trace[k].reward;
    return result;
}

EstimateResult doubly_robust(const Trace& trace, const Policy& new_policy,
                             const RewardModel& model) {
    check_inputs(trace, new_policy, &model);
    std::vector<double> per_tuple;
    per_tuple.reserve(trace.size());
    for (const auto& t : trace) {
        const double dm_part = model_value_under_policy(model, new_policy, t.context);
        const double weight =
            new_policy.probability(t.context, t.decision) / t.propensity;
        const double correction =
            weight * (t.reward - model.predict(t.context, t.decision));
        per_tuple.push_back(dm_part + correction);
    }
    return average_result(std::move(per_tuple), "DR");
}

EstimateResult clipped_doubly_robust(const Trace& trace, const Policy& new_policy,
                                     const RewardModel& model,
                                     const EstimatorOptions& options) {
    if (!(options.weight_clip > 0.0))
        throw std::invalid_argument("clipped_doubly_robust: weight_clip must be > 0");
    check_inputs(trace, new_policy, &model);
    std::vector<double> per_tuple;
    per_tuple.reserve(trace.size());
    for (const auto& t : trace) {
        const double dm_part = model_value_under_policy(model, new_policy, t.context);
        const double weight = std::min(
            new_policy.probability(t.context, t.decision) / t.propensity,
            options.weight_clip);
        per_tuple.push_back(dm_part +
                            weight * (t.reward - model.predict(t.context, t.decision)));
    }
    return average_result(std::move(per_tuple), "clipped-DR");
}

EstimateResult switch_doubly_robust(const Trace& trace, const Policy& new_policy,
                                    const RewardModel& model,
                                    const EstimatorOptions& options) {
    if (!(options.switch_threshold > 0.0))
        throw std::invalid_argument("switch_doubly_robust: threshold must be > 0");
    check_inputs(trace, new_policy, &model);
    std::vector<double> per_tuple;
    per_tuple.reserve(trace.size());
    for (const auto& t : trace) {
        const double dm_part = model_value_under_policy(model, new_policy, t.context);
        const double weight =
            new_policy.probability(t.context, t.decision) / t.propensity;
        double contribution = dm_part;
        if (weight <= options.switch_threshold)
            contribution += weight * (t.reward - model.predict(t.context, t.decision));
        per_tuple.push_back(contribution);
    }
    return average_result(std::move(per_tuple), "SWITCH-DR");
}

ReplayEstimate matching_replay(const Trace& trace, const Policy& new_policy) {
    check_inputs(trace, new_policy, nullptr);
    double matched_sum = 0.0, total_sum = 0.0;
    std::size_t matches = 0;
    for (const auto& t : trace) {
        total_sum += t.reward;
        const std::vector<double> probs = new_policy.action_probabilities(t.context);
        const auto argmax = static_cast<Decision>(
            std::max_element(probs.begin(), probs.end()) - probs.begin());
        if (argmax == t.decision) {
            matched_sum += t.reward;
            ++matches;
        }
    }
    ReplayEstimate estimate;
    estimate.matches = matches;
    estimate.match_rate =
        static_cast<double>(matches) / static_cast<double>(trace.size());
    estimate.value = matches > 0
                         ? matched_sum / static_cast<double>(matches)
                         : total_sum / static_cast<double>(trace.size());
    return estimate;
}

EstimateResult self_normalized_doubly_robust(const Trace& trace,
                                             const Policy& new_policy,
                                             const RewardModel& model) {
    check_inputs(trace, new_policy, &model);
    const std::size_t n = trace.size();
    std::vector<double> dm_parts(n), corrections(n), weights(n);
    double total_weight = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        const LoggedTuple& t = trace[k];
        dm_parts[k] = model_value_under_policy(model, new_policy, t.context);
        weights[k] = new_policy.probability(t.context, t.decision) / t.propensity;
        corrections[k] = weights[k] * (t.reward - model.predict(t.context, t.decision));
        total_weight += weights[k];
    }
    EstimateResult result;
    result.estimator = "SN-DR";
    result.per_tuple.resize(n);
    if (total_weight <= 0.0) {
        // No overlap: fall back to the pure model estimate.
        result.value = stats::mean(dm_parts);
        result.per_tuple = std::move(dm_parts);
        return result;
    }
    const double scale = static_cast<double>(n) / total_weight;
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        result.per_tuple[k] = dm_parts[k] + scale * corrections[k];
        total += result.per_tuple[k];
    }
    result.value = total / static_cast<double>(n);
    return result;
}

} // namespace dre::core
