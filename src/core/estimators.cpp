#include "core/estimators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parallel.h"
#include "obs/obs.h"
#include "simd/simd.h"
#include "stats/summary.h"

namespace dre::core {
namespace {

void check_inputs(const Trace& trace, const Policy& new_policy,
                  const RewardModel* model) {
    validate_trace(trace);
    if (trace.empty()) throw std::invalid_argument("estimator: empty trace");
    if (trace.num_decisions() > new_policy.num_decisions())
        throw std::invalid_argument("estimator: trace uses decisions outside policy space");
    if (model && model->num_decisions() != new_policy.num_decisions())
        throw std::invalid_argument("estimator: model/policy decision-space mismatch");
}

void check_matrix(const Trace& trace, const Policy& new_policy,
                  const PredictionMatrix& qhat) {
    validate_trace(trace);
    if (trace.empty()) throw std::invalid_argument("estimator: empty trace");
    if (trace.num_decisions() > new_policy.num_decisions())
        throw std::invalid_argument("estimator: trace uses decisions outside policy space");
    if (qhat.num_decisions() != new_policy.num_decisions())
        throw std::invalid_argument("estimator: matrix/policy decision-space mismatch");
    if (qhat.num_tuples() != trace.size())
        throw std::invalid_argument("estimator: matrix built from a different trace");
}

// Reusable per-thread probability buffer for the estimator loops. Each
// parallel task sees its own copy (thread_local), so the hot loops never
// allocate a distribution per tuple. value_under_policy fills it and
// leaves trace[k]'s distribution behind, letting callers read
// probs[t.decision] instead of paying a second policy evaluation.
std::vector<double>& probs_scratch() {
    thread_local std::vector<double> scratch;
    return scratch;
}

// The model-based estimators are written once against a generic q̂ accessor
// and instantiated twice: reading the RewardModel directly, or reading a
// PredictionMatrix row. Both instantiations execute dre::simd's canonical
// fixed-8-lane weighted sum (simd.h): the matrix path through the
// dispatched kernel over the contiguous decision-major row, the model path
// as the equivalent scalar lane loop that only queries the model at
// nonzero probabilities (a zero-probability decision contributes exactly
// +0.0 either way — the two spellings are bit-identical, and so are all
// dispatch levels).
template <typename Q>
double value_under_policy(const Policy& policy, const ClientContext& context,
                          std::size_t k, const Q& q,
                          std::vector<double>& probs) {
    policy.action_probabilities_into(context, probs);
    const std::size_t n = probs.size();
    std::uint64_t skips = 0;
    double value;
    if (const double* row = q.row(k)) {
        value = simd::ops().weighted_sum_skip_zero(probs.data(), row, n, &skips);
    } else {
        double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
        for (std::size_t d = 0; d < n; ++d) {
            const double p = probs[d];
            if (p == 0.0) {
                ++skips;
                continue;
            }
            acc[d & 7] += p * q(k, context, d);
        }
        value = ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
                ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    }
    // One flush per tuple (not per decision): a per-item sum, so the total
    // is identical for any thread count or chunking.
    if (skips != 0) DRE_COUNTER_ADD("estimators.zero_prob_skips", skips);
    return value;
}

// Accessor over the live model (the pre-matrix code path, verbatim).
struct ModelQ {
    const RewardModel* model;
    double operator()(std::size_t, const ClientContext& context,
                      std::size_t d) const {
        return model->predict(context, static_cast<Decision>(d));
    }
    // No contiguous row: value_under_policy takes the scalar lane loop.
    const double* row(std::size_t) const { return nullptr; }
};

// Accessor over the precomputed matrix; the context is ignored because the
// row was computed from exactly that tuple's context.
struct MatrixQ {
    const PredictionMatrix* qhat;
    double operator()(std::size_t k, const ClientContext&, std::size_t d) const {
        return qhat->at(k, d);
    }
    const double* row(std::size_t k) const { return qhat->row(k); }
};

// Fill per_tuple[k] = fn(k, trace[k]) for every tuple, in parallel. Each
// task writes only its own slots and fn is a pure function of (k, tuple),
// so the result is identical for any thread count.
template <typename Fn>
std::vector<double> per_tuple_map(const Trace& trace, const Fn& fn) {
    std::vector<double> per_tuple(trace.size());
    par::parallel_for_chunked(trace.size(),
                              [&](std::size_t begin, std::size_t end) {
                                  for (std::size_t k = begin; k < end; ++k)
                                      per_tuple[k] = fn(k, trace[k]);
                              });
    return per_tuple;
}

EstimateResult average_result(std::vector<double> per_tuple, std::string name) {
    EstimateResult result;
    // Ordered chunk-wise mean: deterministic for any thread count, and
    // bit-identical to stats::mean below par::kReduceChunk elements.
    result.value = par::chunked_mean(per_tuple);
    result.per_tuple = std::move(per_tuple);
    result.estimator = std::move(name);
    return result;
}

template <typename Q>
EstimateResult direct_method_impl(const Trace& trace, const Policy& new_policy,
                                  const Q& q) {
    return average_result(
        per_tuple_map(trace,
                      [&](std::size_t k, const LoggedTuple& t) {
                          return value_under_policy(new_policy, t.context, k, q,
                                                    probs_scratch());
                      }),
        "DM");
}

template <typename Q>
EstimateResult doubly_robust_impl(const Trace& trace, const Policy& new_policy,
                                  const Q& q) {
    return average_result(
        per_tuple_map(trace,
                      [&](std::size_t k, const LoggedTuple& t) {
                          // probs[t.decision] == probability(t.context,
                          // t.decision) by the Policy contract; reusing the
                          // row value_under_policy just filled saves a
                          // second policy evaluation per tuple.
                          std::vector<double>& probs = probs_scratch();
                          const double dm_part = value_under_policy(
                              new_policy, t.context, k, q, probs);
                          const double weight =
                              probs[static_cast<std::size_t>(t.decision)] /
                              t.propensity;
                          return dm_part +
                                 weight * (t.reward -
                                           q(k, t.context,
                                             static_cast<std::size_t>(t.decision)));
                      }),
        "DR");
}

template <typename Q>
EstimateResult clipped_doubly_robust_impl(const Trace& trace,
                                          const Policy& new_policy, const Q& q,
                                          const EstimatorOptions& options) {
    return average_result(
        per_tuple_map(trace,
                      [&](std::size_t k, const LoggedTuple& t) {
                          std::vector<double>& probs = probs_scratch();
                          const double dm_part = value_under_policy(
                              new_policy, t.context, k, q, probs);
                          const double raw_weight =
                              probs[static_cast<std::size_t>(t.decision)] /
                              t.propensity;
                          if (raw_weight > options.weight_clip)
                              DRE_COUNTER_INC("estimators.weight_clipped");
                          const double weight =
                              std::min(raw_weight, options.weight_clip);
                          return dm_part +
                                 weight * (t.reward -
                                           q(k, t.context,
                                             static_cast<std::size_t>(t.decision)));
                      }),
        "clipped-DR");
}

template <typename Q>
EstimateResult switch_doubly_robust_impl(const Trace& trace,
                                         const Policy& new_policy, const Q& q,
                                         const EstimatorOptions& options) {
    return average_result(
        per_tuple_map(trace,
                      [&](std::size_t k, const LoggedTuple& t) {
                          std::vector<double>& probs = probs_scratch();
                          const double dm_part = value_under_policy(
                              new_policy, t.context, k, q, probs);
                          const double weight =
                              probs[static_cast<std::size_t>(t.decision)] /
                              t.propensity;
                          double contribution = dm_part;
                          if (weight <= options.switch_threshold) {
                              contribution +=
                                  weight *
                                  (t.reward -
                                   q(k, t.context,
                                     static_cast<std::size_t>(t.decision)));
                          } else {
                              DRE_COUNTER_INC("estimators.switch_model_fallbacks");
                          }
                          return contribution;
                      }),
        "SWITCH-DR");
}

template <typename Q>
EstimateResult self_normalized_doubly_robust_impl(const Trace& trace,
                                                  const Policy& new_policy,
                                                  const Q& q) {
    const std::size_t n = trace.size();
    std::vector<double> dm_parts(n), corrections(n), weights(n);
    par::parallel_for_chunked(n, [&](std::size_t begin, std::size_t end) {
        std::vector<double>& probs = probs_scratch();
        for (std::size_t k = begin; k < end; ++k) {
            const LoggedTuple& t = trace[k];
            dm_parts[k] = value_under_policy(new_policy, t.context, k, q, probs);
            weights[k] =
                probs[static_cast<std::size_t>(t.decision)] / t.propensity;
            corrections[k] =
                weights[k] *
                (t.reward -
                 q(k, t.context, static_cast<std::size_t>(t.decision)));
        }
    });
    const double total_weight = par::chunked_sum(weights);
    EstimateResult result;
    result.estimator = "SN-DR";
    result.per_tuple.resize(n);
    if (total_weight <= 0.0) {
        // No overlap: fall back to the pure model estimate.
        result.value = par::chunked_mean(dm_parts);
        result.per_tuple = std::move(dm_parts);
        return result;
    }
    const double scale = static_cast<double>(n) / total_weight;
    par::parallel_for_chunked(n, [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k)
            result.per_tuple[k] = dm_parts[k] + scale * corrections[k];
    });
    result.value = par::chunked_sum(result.per_tuple) / static_cast<double>(n);
    return result;
}

} // namespace

double EstimateResult::variance_of_mean() const {
    if (per_tuple.size() < 2) return 0.0;
    return stats::sample_variance(per_tuple) / static_cast<double>(per_tuple.size());
}

EstimateResult direct_method(const Trace& trace, const Policy& new_policy,
                             const RewardModel& model) {
    check_inputs(trace, new_policy, &model);
    return direct_method_impl(trace, new_policy, ModelQ{&model});
}

EstimateResult direct_method(const Trace& trace, const Policy& new_policy,
                             const PredictionMatrix& qhat) {
    check_matrix(trace, new_policy, qhat);
    return direct_method_impl(trace, new_policy, MatrixQ{&qhat});
}

std::vector<double> importance_weights(const Trace& trace, const Policy& new_policy) {
    check_inputs(trace, new_policy, nullptr);
    return per_tuple_map(trace, [&](std::size_t, const LoggedTuple& t) {
        return new_policy.probability(t.context, t.decision) / t.propensity;
    });
}

EstimateResult inverse_propensity(const Trace& trace, const Policy& new_policy) {
    check_inputs(trace, new_policy, nullptr);
    return average_result(
        per_tuple_map(trace,
                      [&](std::size_t, const LoggedTuple& t) {
                          return new_policy.probability(t.context, t.decision) /
                                 t.propensity * t.reward;
                      }),
        "IPS");
}

EstimateResult clipped_ips(const Trace& trace, const Policy& new_policy,
                           const EstimatorOptions& options) {
    if (!(options.weight_clip > 0.0))
        throw std::invalid_argument("clipped_ips: weight_clip must be > 0");
    check_inputs(trace, new_policy, nullptr);
    return average_result(
        per_tuple_map(trace,
                      [&](std::size_t, const LoggedTuple& t) {
                          const double weight =
                              new_policy.probability(t.context, t.decision) /
                              t.propensity;
                          if (weight > options.weight_clip)
                              DRE_COUNTER_INC("estimators.weight_clipped");
                          return std::min(weight, options.weight_clip) * t.reward;
                      }),
        "clipped-IPS");
}

EstimateResult self_normalized_ips(const Trace& trace, const Policy& new_policy) {
    const std::vector<double> weights = importance_weights(trace, new_policy);
    std::vector<double> weighted_rewards(trace.size());
    par::parallel_for_chunked(trace.size(),
                              [&](std::size_t begin, std::size_t end) {
                                  for (std::size_t k = begin; k < end; ++k)
                                      weighted_rewards[k] =
                                          weights[k] * trace[k].reward;
                              });
    const double weighted_reward = par::chunked_sum(weighted_rewards);
    const double total_weight = par::chunked_sum(weights);
    EstimateResult result;
    result.estimator = "SNIPS";
    if (total_weight <= 0.0) {
        // New policy has no overlap at all with the logged decisions.
        result.value = 0.0;
        result.per_tuple.assign(trace.size(), 0.0);
        return result;
    }
    result.value = weighted_reward / total_weight;
    // Per-tuple contributions relative to the global normalization, scaled
    // so that mean(per_tuple) == value.
    result.per_tuple.resize(trace.size());
    const double scale = static_cast<double>(trace.size()) / total_weight;
    par::parallel_for_chunked(trace.size(),
                              [&](std::size_t begin, std::size_t end) {
                                  for (std::size_t k = begin; k < end; ++k)
                                      result.per_tuple[k] =
                                          scale * weighted_rewards[k];
                              });
    return result;
}

EstimateResult doubly_robust(const Trace& trace, const Policy& new_policy,
                             const RewardModel& model) {
    check_inputs(trace, new_policy, &model);
    return doubly_robust_impl(trace, new_policy, ModelQ{&model});
}

EstimateResult doubly_robust(const Trace& trace, const Policy& new_policy,
                             const PredictionMatrix& qhat) {
    check_matrix(trace, new_policy, qhat);
    return doubly_robust_impl(trace, new_policy, MatrixQ{&qhat});
}

EstimateResult clipped_doubly_robust(const Trace& trace, const Policy& new_policy,
                                     const RewardModel& model,
                                     const EstimatorOptions& options) {
    if (!(options.weight_clip > 0.0))
        throw std::invalid_argument("clipped_doubly_robust: weight_clip must be > 0");
    check_inputs(trace, new_policy, &model);
    return clipped_doubly_robust_impl(trace, new_policy, ModelQ{&model}, options);
}

EstimateResult clipped_doubly_robust(const Trace& trace, const Policy& new_policy,
                                     const PredictionMatrix& qhat,
                                     const EstimatorOptions& options) {
    if (!(options.weight_clip > 0.0))
        throw std::invalid_argument("clipped_doubly_robust: weight_clip must be > 0");
    check_matrix(trace, new_policy, qhat);
    return clipped_doubly_robust_impl(trace, new_policy, MatrixQ{&qhat}, options);
}

EstimateResult switch_doubly_robust(const Trace& trace, const Policy& new_policy,
                                    const RewardModel& model,
                                    const EstimatorOptions& options) {
    if (!(options.switch_threshold > 0.0))
        throw std::invalid_argument("switch_doubly_robust: threshold must be > 0");
    check_inputs(trace, new_policy, &model);
    return switch_doubly_robust_impl(trace, new_policy, ModelQ{&model}, options);
}

EstimateResult switch_doubly_robust(const Trace& trace, const Policy& new_policy,
                                    const PredictionMatrix& qhat,
                                    const EstimatorOptions& options) {
    if (!(options.switch_threshold > 0.0))
        throw std::invalid_argument("switch_doubly_robust: threshold must be > 0");
    check_matrix(trace, new_policy, qhat);
    return switch_doubly_robust_impl(trace, new_policy, MatrixQ{&qhat}, options);
}

ReplayEstimate matching_replay(const Trace& trace, const Policy& new_policy) {
    check_inputs(trace, new_policy, nullptr);
    // Matched flags computed in parallel (slot-disjoint); the small
    // reductions over them stay serial and deterministic.
    std::vector<double> matched(trace.size());
    par::parallel_for_chunked(
        trace.size(), [&](std::size_t begin, std::size_t end) {
            std::vector<double>& probs = probs_scratch();
            for (std::size_t k = begin; k < end; ++k) {
                new_policy.action_probabilities_into(trace[k].context, probs);
                const auto argmax = static_cast<Decision>(
                    std::max_element(probs.begin(), probs.end()) - probs.begin());
                matched[k] = argmax == trace[k].decision ? 1.0 : 0.0;
            }
        });
    double matched_sum = 0.0, total_sum = 0.0;
    std::size_t matches = 0;
    for (std::size_t k = 0; k < trace.size(); ++k) {
        total_sum += trace[k].reward;
        if (matched[k] != 0.0) {
            matched_sum += trace[k].reward;
            ++matches;
        }
    }
    ReplayEstimate estimate;
    estimate.matches = matches;
    estimate.match_rate =
        static_cast<double>(matches) / static_cast<double>(trace.size());
    estimate.value = matches > 0
                         ? matched_sum / static_cast<double>(matches)
                         : total_sum / static_cast<double>(trace.size());
    return estimate;
}

EstimateResult self_normalized_doubly_robust(const Trace& trace,
                                             const Policy& new_policy,
                                             const RewardModel& model) {
    check_inputs(trace, new_policy, &model);
    return self_normalized_doubly_robust_impl(trace, new_policy, ModelQ{&model});
}

EstimateResult self_normalized_doubly_robust(const Trace& trace,
                                             const Policy& new_policy,
                                             const PredictionMatrix& qhat) {
    check_matrix(trace, new_policy, qhat);
    return self_normalized_doubly_robust_impl(trace, new_policy, MatrixQ{&qhat});
}

void fill_estimator_chunk(const Trace& chunk, const Policy& new_policy,
                          const PredictionMatrix& qhat,
                          const EstimatorOptions& options, EstimatorChunk& out) {
    if (!(options.switch_threshold > 0.0))
        throw std::invalid_argument("fill_estimator_chunk: threshold must be > 0");
    check_matrix(chunk, new_policy, qhat);
    const std::size_t n = chunk.size();
    out.dm.resize(n);
    out.ips.resize(n);
    out.dr.resize(n);
    out.switch_dr.resize(n);
    out.weights.resize(n);
    const MatrixQ q{&qhat};
    // Serial by design: the caller (evaluate_streaming) already runs one
    // chunk per pool task. Each expression below is copied verbatim from
    // the per-estimator loops above, so per-tuple values match bit-for-bit.
    std::vector<double>& probs = probs_scratch();
    for (std::size_t k = 0; k < n; ++k) {
        const LoggedTuple& t = chunk[k];
        const double dm_part =
            value_under_policy(new_policy, t.context, k, q, probs);
        const double weight =
            probs[static_cast<std::size_t>(t.decision)] / t.propensity;
        const double qd = q(k, t.context, static_cast<std::size_t>(t.decision));
        out.dm[k] = dm_part;
        out.weights[k] = weight;
        out.ips[k] = weight * t.reward;
        out.dr[k] = dm_part + weight * (t.reward - qd);
        if (weight <= options.switch_threshold) {
            out.switch_dr[k] = dm_part + weight * (t.reward - qd);
        } else {
            DRE_COUNTER_INC("estimators.switch_model_fallbacks");
            out.switch_dr[k] = dm_part;
        }
    }
}

} // namespace dre::core
