#include "core/drift.h"

#include <stdexcept>

namespace dre::core {

DriftReport detect_reward_drift(const Trace& trace, const DriftOptions& options) {
    validate_trace(trace);
    if (trace.empty())
        throw std::invalid_argument("detect_reward_drift: empty trace");
    const std::vector<double> rewards = trace.rewards();
    const stats::ChangepointResult result =
        stats::pelt(rewards, options.penalty, options.min_segment_length);
    DriftReport report;
    report.changepoints = result.changepoints;
    report.segment_means = result.segment_means;
    return report;
}

Trace with_drift_segments(const Trace& trace, const DriftReport& report) {
    Trace out;
    out.reserve(trace.size());
    std::size_t segment = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        while (segment < report.changepoints.size() &&
               i >= report.changepoints[segment])
            ++segment;
        LoggedTuple t = trace[i];
        t.state = static_cast<std::int32_t>(segment);
        out.add(std::move(t));
    }
    return out;
}

} // namespace dre::core
