// Per-subpopulation ("per-segment") off-policy analysis.
//
// Operators rarely stop at a global average: a new policy that wins overall
// can still regress a region, an ISP, or a device class — and §2.2.1's
// pitfalls (sparse subpopulations like "clients in city X using server Y")
// bite hardest per-segment. This module slices a trace by an arbitrary
// grouping function and runs the DR estimator per group, flagging groups
// whose effective sample size is too small to trust.
#ifndef DRE_CORE_SUBGROUP_H
#define DRE_CORE_SUBGROUP_H

#include <functional>
#include <map>
#include <string>

#include "core/diagnostics.h"
#include "core/estimators.h"
#include "core/policy.h"
#include "core/reward_model.h"
#include "trace/trace.h"

namespace dre::core {

// Maps a tuple to its group key (e.g., its ASN, city, or device class).
using GroupFn = std::function<std::int64_t(const LoggedTuple&)>;

struct SubgroupResult {
    std::int64_t group = 0;
    std::size_t tuples = 0;
    EstimateResult dr;
    OverlapDiagnostics overlap;
    // True when the group's effective sample size clears the configured
    // floor; otherwise the estimate is reported but flagged untrustworthy
    // (the Fig. 5 sparsity problem, per segment).
    bool reliable = false;
};

struct SubgroupOptions {
    double min_effective_sample_size = 30.0;
};

// DR per group. The reward model is shared (fit on the full trace by the
// caller — per-group refitting would starve small groups even further).
// Groups appear in ascending key order.
std::vector<SubgroupResult> subgroup_analysis(const Trace& trace,
                                              const Policy& new_policy,
                                              const RewardModel& model,
                                              const GroupFn& group_fn,
                                              const SubgroupOptions& options = {});

// Convenience grouping: by the i-th categorical feature.
GroupFn group_by_categorical(std::size_t index);

// The largest per-group regression relative to a baseline policy:
// max over groups of (baseline group DR - candidate group DR), considering
// only groups reliable under both policies. Positive = some segment loses.
double worst_group_regression(const Trace& trace, const Policy& baseline,
                              const Policy& candidate, const RewardModel& model,
                              const GroupFn& group_fn,
                              const SubgroupOptions& options = {});

} // namespace dre::core

#endif // DRE_CORE_SUBGROUP_H
