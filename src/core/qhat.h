// Shared prediction matrix q̂[tuple × decision] (the DM/DR hot path).
//
// Every model-based estimator (DM, DR, clipped/SWITCH/SN-DR) evaluates the
// reward model at the same (context, decision) pairs: each trace tuple ×
// each decision. Running the estimator suite — and especially bootstrap
// replicates over it — therefore re-queries the model with identical
// arguments many times over. PredictionMatrix precomputes the full matrix
// once per (model, trace) pair so every later consumer is a cache lookup.
//
// The matrix stores the model's outputs verbatim, and the matrix-based
// estimator overloads consume them in the same order with the same
// arithmetic as the direct model path — results are bit-identical, only
// faster.
#ifndef DRE_CORE_QHAT_H
#define DRE_CORE_QHAT_H

#include <cstddef>
#include <vector>

#include "core/reward_model.h"
#include "trace/trace.h"

namespace dre::core {

class PredictionMatrix {
public:
    PredictionMatrix() = default;

    // Fill q̂[k][d] = model.predict(trace[k].context, d) for every tuple k
    // and decision d. Tuples are filled concurrently (dre::par); each slot
    // is written exactly once by a pure function of (model, tuple, d), so
    // the matrix is identical for any thread count.
    static PredictionMatrix build(const RewardModel& model, const Trace& trace);

    // q̂ for (tuple index, decision) — bounds unchecked on the hot path.
    double at(std::size_t tuple, std::size_t decision) const noexcept {
        return values_[tuple * num_decisions_ + decision];
    }

    // Row view: q̂[tuple][0..num_decisions).
    const double* row(std::size_t tuple) const noexcept {
        return values_.data() + tuple * num_decisions_;
    }

    std::size_t num_tuples() const noexcept { return num_tuples_; }
    std::size_t num_decisions() const noexcept { return num_decisions_; }
    bool empty() const noexcept { return values_.empty(); }

private:
    std::size_t num_tuples_ = 0;
    std::size_t num_decisions_ = 0;
    std::vector<double> values_; // row-major [tuple][decision]
};

} // namespace dre::core

#endif // DRE_CORE_QHAT_H
