#include "core/world_state.h"

#include <stdexcept>

#include "stats/summary.h"

namespace dre::core {

Trace apply_state_transition(const Trace& trace, const StateTransitionFn& transition,
                             std::int32_t target_state) {
    if (!transition)
        throw std::invalid_argument("apply_state_transition: null transition");
    Trace out;
    out.reserve(trace.size());
    for (const auto& t : trace) {
        LoggedTuple copy = t;
        copy.reward = transition(t.reward, t.state, target_state);
        copy.state = target_state;
        out.add(std::move(copy));
    }
    return out;
}

EstimateResult doubly_robust_state_corrected(const Trace& trace,
                                             const Policy& new_policy,
                                             const RewardModel& corrected_model,
                                             const StateTransitionFn& transition,
                                             std::int32_t target_state) {
    const Trace corrected = apply_state_transition(trace, transition, target_state);
    EstimateResult result = doubly_robust(corrected, new_policy, corrected_model);
    result.estimator = "DR-state-corrected";
    return result;
}

EstimateResult doubly_robust_state_matched(const Trace& trace,
                                           const Policy& new_policy,
                                           const RewardModel& model,
                                           std::int32_t target_state) {
    const Trace matched = trace.with_state(target_state);
    if (matched.empty())
        throw std::invalid_argument(
            "doubly_robust_state_matched: no tuples logged in the target state");
    EstimateResult result = doubly_robust(matched, new_policy, model);
    result.estimator = "DR-state-matched";
    return result;
}

void AffineStateTransition::fit(std::span<const double> from_rewards,
                                std::span<const double> to_rewards) {
    if (from_rewards.size() != to_rewards.size())
        throw std::invalid_argument("AffineStateTransition::fit: size mismatch");
    if (from_rewards.size() < 2)
        throw std::invalid_argument("AffineStateTransition::fit: need >= 2 pairs");
    // Simple least squares: slope = cov(x,y)/var(x), offset = my - slope*mx.
    const double mx = stats::mean(from_rewards);
    const double my = stats::mean(to_rewards);
    double sxy = 0.0, sxx = 0.0;
    for (std::size_t i = 0; i < from_rewards.size(); ++i) {
        sxy += (from_rewards[i] - mx) * (to_rewards[i] - my);
        sxx += (from_rewards[i] - mx) * (from_rewards[i] - mx);
    }
    slope_ = sxx > 1e-12 ? sxy / sxx : 1.0;
    offset_ = my - slope_ * mx;
    fitted_ = true;
}

double AffineStateTransition::operator()(double reward, std::int32_t,
                                         std::int32_t) const {
    if (!fitted_) throw std::logic_error("AffineStateTransition used before fit");
    return slope_ * reward + offset_;
}

} // namespace dre::core
