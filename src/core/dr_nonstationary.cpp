#include "core/dr_nonstationary.h"

#include <stdexcept>

namespace dre::core {
namespace {

void check_inputs(const Trace& trace, const HistoryPolicy& new_policy,
                  const RewardModel& model) {
    validate_trace(trace);
    if (trace.empty())
        throw std::invalid_argument("doubly_robust_nonstationary: empty trace");
    if (trace.num_decisions() > new_policy.num_decisions())
        throw std::invalid_argument(
            "doubly_robust_nonstationary: trace uses decisions outside policy space");
    if (model.num_decisions() != new_policy.num_decisions())
        throw std::invalid_argument(
            "doubly_robust_nonstationary: model/policy decision-space mismatch");
}

} // namespace

NonstationaryEstimate doubly_robust_nonstationary(const Trace& trace,
                                                  const HistoryPolicy& new_policy,
                                                  const RewardModel& model,
                                                  stats::Rng& rng) {
    check_inputs(trace, new_policy, model);

    Trace matched_history; // g_k: tuples where the decisions agreed
    double total = 0.0;    // M
    for (std::size_t k = 0; k < trace.size(); ++k) {
        const LoggedTuple& t = trace[k];
        const std::vector<double> probs =
            new_policy.action_probabilities(t.context, matched_history.tuples());
        const auto sampled = static_cast<Decision>(rng.categorical(probs));
        if (sampled != t.decision) continue; // step 3: skip this client

        // Step 2: per-client DR update (paper Eq. 2 conditioned on g_k).
        double dm_part = 0.0;
        for (std::size_t d = 0; d < probs.size(); ++d) {
            if (probs[d] == 0.0) continue;
            dm_part += probs[d] * model.predict(t.context, static_cast<Decision>(d));
        }
        const double weight =
            probs[static_cast<std::size_t>(t.decision)] / t.propensity;
        total += dm_part + weight * (t.reward - model.predict(t.context, t.decision));
        matched_history.add(t);
    }

    NonstationaryEstimate estimate;
    estimate.matched = matched_history.size();
    estimate.match_rate =
        static_cast<double>(estimate.matched) / static_cast<double>(trace.size());
    estimate.value =
        estimate.matched == 0 ? 0.0 : total / static_cast<double>(estimate.matched);
    return estimate;
}

NonstationaryEstimate doubly_robust_nonstationary_averaged(
    const Trace& trace, const HistoryPolicy& new_policy, const RewardModel& model,
    stats::Rng& rng, int replicates) {
    if (replicates <= 0)
        throw std::invalid_argument(
            "doubly_robust_nonstationary_averaged: replicates must be > 0");
    double value_sum = 0.0;
    std::size_t matched_sum = 0;
    int used = 0;
    for (int r = 0; r < replicates; ++r) {
        const NonstationaryEstimate e =
            doubly_robust_nonstationary(trace, new_policy, model, rng);
        matched_sum += e.matched;
        if (e.matched == 0) continue;
        value_sum += e.value;
        ++used;
    }
    NonstationaryEstimate out;
    out.matched = matched_sum / static_cast<std::size_t>(replicates);
    out.match_rate = static_cast<double>(matched_sum) /
                     (static_cast<double>(replicates) * static_cast<double>(trace.size()));
    out.value = used == 0 ? 0.0 : value_sum / used;
    return out;
}

double doubly_robust_ignoring_history(const Trace& trace,
                                      const HistoryPolicy& new_policy,
                                      const RewardModel& model) {
    check_inputs(trace, new_policy, model);
    double total = 0.0;
    for (std::size_t k = 0; k < trace.size(); ++k) {
        const LoggedTuple& t = trace[k];
        // The careless evaluator conditions the new policy on the *logged*
        // prefix — a history that mu_new would never have generated.
        const std::vector<double> probs =
            new_policy.action_probabilities(t.context, trace.tuples().subspan(0, k));
        double dm_part = 0.0;
        for (std::size_t d = 0; d < probs.size(); ++d) {
            if (probs[d] == 0.0) continue;
            dm_part += probs[d] * model.predict(t.context, static_cast<Decision>(d));
        }
        const double weight =
            probs[static_cast<std::size_t>(t.decision)] / t.propensity;
        total += dm_part + weight * (t.reward - model.predict(t.context, t.decision));
    }
    return total / static_cast<double>(trace.size());
}

} // namespace dre::core
