// Automated pitfall detection for logged traces — §4.1 as a linter.
//
// The paper's central warning is that trace-driven evaluation fails
// *silently*: the logs carry no banner saying "collected by a deterministic
// policy" or "the world shifted halfway through". audit_trace() runs the
// checks a careful analyst would run by hand and returns structured
// findings, one per detected pitfall:
//
//   invalid-propensity      logged propensities outside (0, 1]
//   non-finite-reward       NaN/Inf rewards (poisons every estimator sum)
//   non-finite-context      NaN/Inf numeric context features
//   decision-out-of-range   decision ids outside the trace's decision space
//   deterministic-logging   every propensity is 1 — no off-policy support
//   thin-support            propensities close enough to 0 to blow up IPS
//   low-ess                 effective sample size collapses for the target
//   zero-overlap            most tuples carry zero weight for the target
//   propensity-mismatch     mean importance weight far from 1
//   reward-drift            change-points in the reward stream (§4.1 world
//                           state / §4.3 remedy)
//   context-shift           the client population moved between the first
//                           and second half of the trace
//   logging-policy-drift    the decision mix moved between halves (a single
//                           logged propensity can't describe both regimes)
//   within-decision-shift   a decision's own rewards moved between halves
//                           (coupling or state change the context misses)
//
// Findings are advisory: each carries the measured statistic so the caller
// can apply their own thresholds. The dre_eval CLI exposes this as --audit.
//
// The structural codes (invalid-propensity, non-finite-reward,
// non-finite-context, decision-out-of-range) are the trace/validate.h
// reason codes verbatim — the same strings the hardened load and streaming
// paths put in a QuarantineReport, so a quarantined run and an audit of
// the same trace agree on what was wrong.
#ifndef DRE_CORE_AUDIT_H
#define DRE_CORE_AUDIT_H

#include <string>
#include <vector>

#include "core/policy.h"
#include "trace/trace.h"

namespace dre::core {

enum class AuditSeverity { kInfo, kWarning, kCritical };

const char* to_string(AuditSeverity severity) noexcept;

struct AuditFinding {
    AuditSeverity severity = AuditSeverity::kInfo;
    std::string code;    // stable machine-readable id, e.g. "low-ess"
    std::string message; // human-readable explanation with the numbers
    double metric = 0.0; // the statistic that triggered the finding
};

struct AuditOptions {
    double thin_support_propensity = 1e-3; // min propensity before warning
    double min_ess_fraction = 0.05;        // ESS/n below this -> warning
    double max_zero_weight_fraction = 0.75;
    double max_mean_weight_deviation = 0.25; // |E[w] - 1| above -> warning
    double shift_p_value = 0.01;   // Mann-Whitney threshold for half-splits
    double decision_mix_tv = 0.15; // total-variation threshold between halves
    std::size_t min_tuples = 50;   // below this, only structural checks run
};

// Run every applicable check. The target policy is optional: without one,
// the overlap/weight checks are skipped (they are target-specific).
// Findings are ordered most severe first. An empty result means the trace
// passed every check — not that the evaluation is guaranteed sound.
std::vector<AuditFinding> audit_trace(const Trace& trace,
                                      const Policy* target = nullptr,
                                      const AuditOptions& options = {});

} // namespace dre::core

#endif // DRE_CORE_AUDIT_H
