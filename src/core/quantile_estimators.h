// Off-policy estimation of reward *distributions*, not just means.
//
// Networking evaluation often cares about tails (p95 page-load time, p99
// latency SLOs) more than averages. The importance-weighted empirical CDF
//   F^(r) = sum_k w_k 1{r_k <= r} / sum_k w_k,   w_k = mu_new/mu_old
// estimates the reward CDF under the new policy from the logged trace;
// quantiles and CVaR follow. This extends the paper's framework from
// V(mu_new) = E[r] to quantile(r, q) and tail means.
#ifndef DRE_CORE_QUANTILE_ESTIMATORS_H
#define DRE_CORE_QUANTILE_ESTIMATORS_H

#include <vector>

#include "core/policy.h"
#include "trace/trace.h"

namespace dre::core {

// Weighted empirical distribution of rewards under the new policy.
class OffPolicyDistribution {
public:
    // Throws std::invalid_argument on an empty trace or when the new policy
    // has zero overlap with every logged decision (no weight mass).
    OffPolicyDistribution(const Trace& trace, const Policy& new_policy);

    // Importance-weighted CDF value P(r <= x | mu_new).
    double cdf(double x) const;

    // Importance-weighted quantile, q in [0, 1].
    double quantile(double q) const;

    // Mean of the worst (lowest-reward) `tail_fraction` of the distribution
    // (CVaR at level tail_fraction). tail_fraction in (0, 1].
    double cvar_lower(double tail_fraction) const;

    // Total importance weight (diagnostic; ~n when policies overlap well).
    double total_weight() const noexcept { return total_weight_; }
    std::size_t support_size() const noexcept { return points_.size(); }

private:
    struct WeightedPoint {
        double reward;
        double weight;
        double cumulative; // cumulative weight up to and including this point
    };
    std::vector<WeightedPoint> points_; // sorted by reward, zero weights dropped
    double total_weight_ = 0.0;
};

// Convenience wrappers.
double off_policy_quantile(const Trace& trace, const Policy& new_policy, double q);
double off_policy_cvar(const Trace& trace, const Policy& new_policy,
                       double tail_fraction);

} // namespace dre::core

#endif // DRE_CORE_QUANTILE_ESTIMATORS_H
