#include "core/diagnostics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.h"
#include "stats/summary.h"

namespace dre::core {

OverlapDiagnostics overlap_diagnostics(const Trace& trace, const Policy& new_policy) {
    const std::vector<double> weights = importance_weights(trace, new_policy);
    OverlapDiagnostics diag;
    diag.n = weights.size();
    double sum = 0.0, sum_sq = 0.0;
    std::size_t zeros = 0;
    for (double w : weights) {
        sum += w;
        sum_sq += w * w;
        diag.max_weight = std::max(diag.max_weight, w);
        if (w == 0.0) ++zeros;
    }
    diag.mean_weight = sum / static_cast<double>(weights.size());
    diag.effective_sample_size = sum_sq > 0.0 ? sum * sum / sum_sq : 0.0;
    diag.effective_sample_fraction =
        diag.effective_sample_size / static_cast<double>(weights.size());
    const double var = stats::variance(weights);
    diag.weight_cv =
        diag.mean_weight > 0.0 ? std::sqrt(var) / diag.mean_weight : 0.0;
    diag.zero_weight_fraction =
        static_cast<double>(zeros) / static_cast<double>(weights.size());
    DRE_GAUGE_SET("estimators.effective_sample_size", diag.effective_sample_size);
    DRE_GAUGE_SET("estimators.effective_sample_fraction",
                  diag.effective_sample_fraction);
    return diag;
}

MatchDiagnostics match_diagnostics(const Trace& trace, const Policy& new_policy) {
    validate_trace(trace);
    if (trace.empty()) throw std::invalid_argument("match_diagnostics: empty trace");
    MatchDiagnostics diag;
    for (const auto& t : trace) {
        const std::vector<double> probs = new_policy.action_probabilities(t.context);
        const auto argmax = static_cast<Decision>(
            std::max_element(probs.begin(), probs.end()) - probs.begin());
        if (argmax == t.decision) ++diag.matches;
    }
    diag.match_rate =
        static_cast<double>(diag.matches) / static_cast<double>(trace.size());
    return diag;
}

stats::ConfidenceInterval estimate_confidence_interval(const EstimateResult& result,
                                                       stats::Rng& rng,
                                                       int replicates, double level) {
    if (result.per_tuple.empty())
        throw std::invalid_argument(
            "estimate_confidence_interval: no per-tuple contributions");
    return stats::bootstrap_mean_ci(result.per_tuple, rng, replicates, level);
}

stats::ConfidenceInterval empirical_bernstein_interval(const EstimateResult& result,
                                                       double level) {
    if (result.per_tuple.size() < 2)
        throw std::invalid_argument(
            "empirical_bernstein_interval: need >= 2 contributions");
    if (level <= 0.0 || level >= 1.0)
        throw std::invalid_argument("empirical_bernstein_interval: bad level");
    const auto n = static_cast<double>(result.per_tuple.size());
    const double delta = 1.0 - level;
    const double variance = stats::sample_variance(result.per_tuple);
    double lo = result.per_tuple.front(), hi = result.per_tuple.front();
    for (double x : result.per_tuple) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    const double range = hi - lo;
    const double log_term = std::log(3.0 / delta);
    const double radius =
        std::sqrt(2.0 * variance * log_term / n) + 3.0 * range * log_term / n;
    const double mean = stats::mean(result.per_tuple);
    stats::ConfidenceInterval ci;
    ci.point = mean;
    ci.lower = mean - radius;
    ci.upper = mean + radius;
    ci.level = level;
    return ci;
}

} // namespace dre::core
