// Out-of-core streaming evaluation (the dre::store integration point),
// hardened against injected and real faults.
//
// `evaluate_streaming` runs the full Evaluator estimator suite (DM, IPS,
// SNIPS, DR, SWITCH-DR, overlap diagnostics, DR bootstrap CI) over a
// TupleSource without ever materializing the trace: tuples are pulled one
// reduction chunk (par::kReduceChunk) at a time, each chunk builds its own
// PredictionMatrix block and per-tuple estimator contributions, and the
// chunk partials are folded *in chunk order* into the running totals.
//
// Determinism contract (DESIGN.md §9): the chunk geometry is the global
// tuple index — independent of thread count, row-group size, and shard
// split — and every reduction uses exactly the arithmetic of the in-memory
// path (par::MeanState partials merged left-to-right, left-fold sums,
// serial-order overlap folds, and the chunk-keyed bootstrap of
// stats::ChunkedMeanBootstrap). Point estimates AND bootstrap CIs are
// therefore bit-identical to Evaluator::evaluate on the same tuples, for
// any DRE_THREADS and any shard layout. Memory is O(chunks-in-flight ×
// chunk), not O(trace).
//
// Failure handling (DESIGN.md §10): `evaluate_streaming_guarded` adds
// three failure modes on top of the same arithmetic.
//
//   kStrict      today's behavior: fail-stop. The first I/O error,
//                corruption, or injected fault (after the source's retry
//                policy runs) aborts the run with an exception, and a
//                structurally invalid tuple aborts it too (the per-chunk
//                estimator validates its input).
//   kQuarantine  damaged row groups (via TupleSource::read_tolerant) and
//                structurally invalid tuples (trace/validate.h) are
//                *skipped* and recorded in a QuarantineReport. Estimator
//                denominators are the surviving-tuple counts — MeanState
//                means, the SNIPS ratio, overlap diagnostics, and the
//                bootstrap all run over exactly the evaluated tuples, so
//                the estimates are exact for the surviving sub-trace, not
//                silently deflated by the missing rows.
//   kDegrade     kQuarantine, plus the result is coverage-qualified: the
//                DR bootstrap CI half-widths are divided by the coverage
//                fraction (evaluated/total), a deterministic widening that
//                makes a low-coverage run advertise its own uncertainty.
//
// The quarantine machinery is itself deterministic: faults fire by logical
// index (dre::fault), chunk-level records merge in chunk order, and the
// QuarantineReport (including its canonical to_text() rendering) is
// byte-identical across thread counts for a given fault schedule.
//
// Checkpoint/resume: with StreamingOptions::checkpoint_path set, the run
// writes its complete reduction state (chunk cursor, MeanStates, overlap
// folds, bootstrap replicate sums + base-generator words, quarantine
// report) to an atomic tmp+rename file after every wave. A killed run
// restarted with resume=true continues from the last completed wave and
// produces bit-identical results — the state is restored verbatim and the
// chunk geometry is absolute. The checkpoint validates a config hash
// (tuple count, chunk size, estimator options, CI settings, failure mode,
// bootstrap seed) and refuses to resume a mismatched run; the caller is
// responsible for passing the same source/model/policy.
#ifndef DRE_CORE_STREAMING_H
#define DRE_CORE_STREAMING_H

#include <atomic>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/evaluator.h"
#include "core/policy.h"
#include "core/reward_model.h"
#include "stats/rng.h"
#include "trace/trace.h"

namespace dre::core {

// One contiguous run of tuples a tolerant read could not produce.
// `reason` is a stable reason-code literal (store::StoreError::reason_code
// or trace/validate.h reason_code); `shard` is -1 when unattributable.
struct TupleReadFailure {
    std::uint64_t begin = 0;
    std::uint64_t count = 0;
    const char* reason = "unknown";
    std::string detail;
    std::int64_t shard = -1;
};

// Random-access tuple supplier. Implementations must be safe for
// concurrent read() calls from pool threads (the store-backed source and
// the in-memory adapter below both are).
class TupleSource {
public:
    virtual ~TupleSource() = default;
    virtual std::uint64_t num_tuples() const = 0;
    virtual std::size_t num_decisions() const = 0;
    // Append tuples [begin, begin + count) to `out` (cleared first).
    virtual void read(std::uint64_t begin, std::uint64_t count,
                      std::vector<LoggedTuple>& out) const = 0;
    // Fault-tolerant read: append the tuples that could be produced (in
    // global order) and record the ranges that could not in `failures`
    // (appended). The default is all-or-nothing — it delegates to read()
    // and lets exceptions propagate; sources with sub-range recovery
    // (StoreTupleSource) override it.
    virtual void read_tolerant(std::uint64_t begin, std::uint64_t count,
                               std::vector<LoggedTuple>& out,
                               std::vector<TupleReadFailure>& failures) const {
        (void)failures;
        read(begin, count, out);
    }
};

// Adapter over an in-memory Trace (reference semantics — the trace must
// outlive the source). Used by tests to prove streaming == in-memory.
class TraceTupleSource final : public TupleSource {
public:
    explicit TraceTupleSource(const Trace& trace) : trace_(&trace) {}
    std::uint64_t num_tuples() const override { return trace_->size(); }
    std::size_t num_decisions() const override {
        return trace_->num_decisions();
    }
    void read(std::uint64_t begin, std::uint64_t count,
              std::vector<LoggedTuple>& out) const override;

private:
    const Trace* trace_;
};

enum class FailureMode { kStrict = 0, kQuarantine = 1, kDegrade = 2 };

const char* to_string(FailureMode mode) noexcept;
// Parses "strict" / "quarantine" / "degrade"; throws std::invalid_argument
// otherwise. Shared by the CLI (--on-error) and tests.
FailureMode parse_failure_mode(std::string_view text);

// One quarantined run of tuples (contiguous, same reason).
struct QuarantineRecord {
    std::uint64_t begin = 0; // global tuple index
    std::uint64_t count = 0;
    std::string reason;      // stable reason code
    std::int64_t shard = -1; // originating shard, -1 if unattributable
};

// What a tolerant run skipped and why. Counts are exact; `records` is
// capped at kMaxRecords (overflow is counted in records_dropped). All
// fields, including record order, are deterministic for a given fault
// schedule and independent of DRE_THREADS.
struct QuarantineReport {
    static constexpr std::size_t kMaxRecords = 4096;

    std::uint64_t tuples_total = 0;     // tuples the source advertised
    std::uint64_t tuples_evaluated = 0; // tuples that reached the estimators
    std::uint64_t tuples_quarantined = 0;
    std::uint64_t chunks_quarantined = 0; // whole chunks lost to chunk faults
    std::map<std::string, std::uint64_t> reason_counts;
    std::map<std::int64_t, std::uint64_t> shard_counts; // -1 = unattributed
    std::vector<QuarantineRecord> records;
    std::uint64_t records_dropped = 0;

    bool empty() const noexcept { return tuples_quarantined == 0; }
    // Fraction of the trace that was evaluated (1.0 for a clean run).
    double coverage() const noexcept;
    // Record one quarantined range (updates every counter; coalesces with
    // the previous record when contiguous with the same reason and shard).
    void add(std::uint64_t begin, std::uint64_t count,
             const std::string& reason, std::int64_t shard);
    // Fold `other` (a later chunk's report) into this one, in chunk order.
    void merge(const QuarantineReport& other);
    // Canonical text rendering — deterministic and byte-diffable across
    // runs and thread counts (the CI chaos-smoke job diffs these).
    std::string to_text() const;
};

struct StreamingOptions {
    EstimatorOptions estimator_options;
    // Bootstrap CI settings for the DR estimate (0 replicates disables the
    // CI, mirroring EvaluationConfig).
    int ci_replicates = 0;
    double ci_level = 0.95;
    // Chunks resident per pipeline wave (each ≤ par::kReduceChunk tuples).
    // 0 = auto (4 × pool threads). Bounds peak memory; never affects
    // results.
    std::size_t wave_chunks = 0;
    // Failure handling (see file comment). kStrict preserves the original
    // evaluate_streaming behavior bit-for-bit.
    FailureMode on_error = FailureMode::kStrict;
    // Retry budget for transient stream.chunk faults (the per-shard store
    // retry policy is configured on the source, not here).
    int chunk_max_attempts = 3;
    // Non-empty: write the reduction state here after every wave (atomic
    // tmp+rename) so an interrupted run can resume.
    std::string checkpoint_path;
    // Resume from checkpoint_path if the file exists (missing file =>
    // fresh run; present-but-mismatched => std::runtime_error).
    bool resume = false;
    // Cooperative interruption (SIGINT/SIGTERM handlers set this): checked
    // once per wave, *after* the wave's in-order merge and checkpoint
    // flush, so a stop always leaves a complete, resumable state on disk.
    // The in-flight wave is drained, never abandoned mid-chunk. When the
    // flag is seen with work remaining, StreamingInterrupted is thrown.
    const std::atomic<bool>* interrupt = nullptr;
};

// Raised when StreamingOptions::interrupt turned true with chunks still
// unprocessed. By construction the last completed wave was merged and (if
// checkpoint_path is set) flushed, so rerunning with resume=true continues
// bit-identically from where the interrupt landed.
class StreamingInterrupted : public std::runtime_error {
public:
    StreamingInterrupted(std::uint64_t chunks_completed,
                         std::uint64_t chunks_total)
        : std::runtime_error("streaming evaluation interrupted after " +
                             std::to_string(chunks_completed) + "/" +
                             std::to_string(chunks_total) + " chunks"),
          chunks_completed_(chunks_completed), chunks_total_(chunks_total) {}

    std::uint64_t chunks_completed() const noexcept {
        return chunks_completed_;
    }
    std::uint64_t chunks_total() const noexcept { return chunks_total_; }

private:
    std::uint64_t chunks_completed_;
    std::uint64_t chunks_total_;
};

struct StreamingResult {
    PolicyEvaluation evaluation;
    QuarantineReport quarantine;
};

// Streams `source` through `model` and `policy` with full failure
// handling. The model must already be fitted (fit on a bounded sample for
// true out-of-core runs, or reuse Evaluator::reward_model() when comparing
// paths). Under kStrict with no checkpoint, the evaluation matches
// Evaluator::evaluate bit-for-bit except that the per-tuple contribution
// vectors are left empty — they are exactly what streaming refuses to
// materialize. Under the tolerant modes the estimates are exact over the
// surviving tuples; throws if *every* tuple is quarantined.
StreamingResult evaluate_streaming_guarded(const TupleSource& source,
                                           const RewardModel& model,
                                           const Policy& policy,
                                           const StreamingOptions& options,
                                           stats::Rng rng);

// Strict-mode convenience wrapper: exactly the historical API. Equivalent
// to evaluate_streaming_guarded(...).evaluation with options.on_error
// forced to kStrict.
PolicyEvaluation evaluate_streaming(const TupleSource& source,
                                    const RewardModel& model,
                                    const Policy& policy,
                                    const StreamingOptions& options,
                                    stats::Rng rng);

} // namespace dre::core

#endif // DRE_CORE_STREAMING_H
