// Out-of-core streaming evaluation (the dre::store integration point).
//
// `evaluate_streaming` runs the full Evaluator estimator suite (DM, IPS,
// SNIPS, DR, SWITCH-DR, overlap diagnostics, DR bootstrap CI) over a
// TupleSource without ever materializing the trace: tuples are pulled one
// reduction chunk (par::kReduceChunk) at a time, each chunk builds its own
// PredictionMatrix block and per-tuple estimator contributions, and the
// chunk partials are folded *in chunk order* into the running totals.
//
// Determinism contract (DESIGN.md §9): the chunk geometry is the global
// tuple index — independent of thread count, row-group size, and shard
// split — and every reduction uses exactly the arithmetic of the in-memory
// path (par::MeanState partials merged left-to-right, left-fold sums,
// serial-order overlap folds, and the chunk-keyed bootstrap of
// stats::ChunkedMeanBootstrap). Point estimates AND bootstrap CIs are
// therefore bit-identical to Evaluator::evaluate on the same tuples, for
// any DRE_THREADS and any shard layout. Memory is O(chunks-in-flight ×
// chunk), not O(trace).
#ifndef DRE_CORE_STREAMING_H
#define DRE_CORE_STREAMING_H

#include <cstdint>
#include <vector>

#include "core/evaluator.h"
#include "core/policy.h"
#include "core/reward_model.h"
#include "stats/rng.h"
#include "trace/trace.h"

namespace dre::core {

// Random-access tuple supplier. Implementations must be safe for
// concurrent read() calls from pool threads (the store-backed source and
// the in-memory adapter below both are).
class TupleSource {
public:
    virtual ~TupleSource() = default;
    virtual std::uint64_t num_tuples() const = 0;
    virtual std::size_t num_decisions() const = 0;
    // Append tuples [begin, begin + count) to `out` (cleared first).
    virtual void read(std::uint64_t begin, std::uint64_t count,
                      std::vector<LoggedTuple>& out) const = 0;
};

// Adapter over an in-memory Trace (reference semantics — the trace must
// outlive the source). Used by tests to prove streaming == in-memory.
class TraceTupleSource final : public TupleSource {
public:
    explicit TraceTupleSource(const Trace& trace) : trace_(&trace) {}
    std::uint64_t num_tuples() const override { return trace_->size(); }
    std::size_t num_decisions() const override {
        return trace_->num_decisions();
    }
    void read(std::uint64_t begin, std::uint64_t count,
              std::vector<LoggedTuple>& out) const override;

private:
    const Trace* trace_;
};

struct StreamingOptions {
    EstimatorOptions estimator_options;
    // Bootstrap CI settings for the DR estimate (0 replicates disables the
    // CI, mirroring EvaluationConfig).
    int ci_replicates = 0;
    double ci_level = 0.95;
    // Chunks resident per pipeline wave (each ≤ par::kReduceChunk tuples).
    // 0 = auto (4 × pool threads). Bounds peak memory; never affects
    // results.
    std::size_t wave_chunks = 0;
};

// Streams `source` through `model` and `policy`. The model must already be
// fitted (fit on a bounded sample for true out-of-core runs, or reuse
// Evaluator::reward_model() when comparing paths). The returned
// PolicyEvaluation matches Evaluator::evaluate bit-for-bit except that the
// per-tuple contribution vectors are left empty — they are exactly what
// streaming refuses to materialize.
PolicyEvaluation evaluate_streaming(const TupleSource& source,
                                    const RewardModel& model,
                                    const Policy& policy,
                                    const StreamingOptions& options,
                                    stats::Rng rng);

} // namespace dre::core

#endif // DRE_CORE_STREAMING_H
