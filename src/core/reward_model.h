// Reward models r^(c, d) — the Direct-Method ingredient (paper §3).
//
// "DM uses a reward model r^(c,d) to predict the reward of any client c and
//  decision d." Model misspecification is the paper's first pitfall
// (§2.2.1); we therefore provide several model families with different
// bias/variance trade-offs, all fit from logged traces.
#ifndef DRE_CORE_REWARD_MODEL_H
#define DRE_CORE_REWARD_MODEL_H

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "stats/knn.h"
#include "stats/regression.h"
#include "trace/trace.h"
#include "trace/types.h"

namespace dre::core {

class RewardModel {
public:
    virtual ~RewardModel() = default;

    // Predicted reward r^(c, d).
    virtual double predict(const ClientContext& context, Decision d) const = 0;

    // Fill out[0..num_decisions) with predict(context, d) for every d —
    // the q̂ row-fill hot path (qhat.cpp, streaming). The default loops
    // predict(); models whose per-context work is worth hoisting out of
    // the decision loop (fingerprinting, flattening, one-hot encoding)
    // override it. Overrides must return bit-identical values to the
    // default loop — PredictionMatrix's "same arithmetic, only faster"
    // contract depends on it.
    virtual void predict_row(const ClientContext& context, double* out) const {
        const std::size_t n = num_decisions();
        for (std::size_t d = 0; d < n; ++d)
            out[d] = predict(context, static_cast<Decision>(d));
    }

    // Fill `count` consecutive rows (row i starts at out + i *
    // num_decisions()) for contexts[0..count) — the bulk q̂ fill. The
    // default loops predict_row; models with per-decision state worth
    // keeping cache-resident across many contexts (e.g. one KD-tree per
    // decision) override it with a decision-major fill. Same contract as
    // predict_row: overrides must be bit-identical to the default loop.
    virtual void predict_rows(const ClientContext* const* contexts,
                              std::size_t count, double* out) const {
        const std::size_t n = num_decisions();
        for (std::size_t i = 0; i < count; ++i)
            predict_row(*contexts[i], out + i * n);
    }

    virtual std::size_t num_decisions() const noexcept = 0;

protected:
    RewardModel() = default;
    RewardModel(const RewardModel&) = default;
    RewardModel& operator=(const RewardModel&) = default;
};

// Same prediction for everything — the degenerate model. With value 0 it
// turns the DR estimator into plain IPS, which the unit tests exploit.
class ConstantRewardModel final : public RewardModel {
public:
    ConstantRewardModel(std::size_t num_decisions, double value);

    double predict(const ClientContext&, Decision) const override { return value_; }
    void predict_row(const ClientContext&, double* out) const override {
        for (std::size_t d = 0; d < num_decisions_; ++d) out[d] = value_;
    }
    std::size_t num_decisions() const noexcept override { return num_decisions_; }

private:
    std::size_t num_decisions_;
    double value_;
};

// Wraps a ground-truth function; used in tests/ablations as the "perfectly
// specified model" limit where DR should match DM exactly.
class OracleRewardModel final : public RewardModel {
public:
    using Fn = std::function<double(const ClientContext&, Decision)>;

    OracleRewardModel(std::size_t num_decisions, Fn fn);

    double predict(const ClientContext& context, Decision d) const override;
    std::size_t num_decisions() const noexcept override { return num_decisions_; }

private:
    std::size_t num_decisions_;
    Fn fn_;
};

// Tabular model: mean logged reward per (context fingerprint, decision)
// cell, falling back to the per-decision mean, then the global mean.
// Zero-bias where data exists; useless off the observed support — exactly
// the failure mode Fig. 4/Fig. 5 illustrate.
class TabularRewardModel final : public RewardModel {
public:
    explicit TabularRewardModel(std::size_t num_decisions);

    void fit(const Trace& trace);

    double predict(const ClientContext& context, Decision d) const override;
    // Fingerprints the context once instead of once per decision.
    void predict_row(const ClientContext& context, double* out) const override;
    std::size_t num_decisions() const noexcept override { return num_decisions_; }

    // Number of populated (context, decision) cells.
    std::size_t cells() const noexcept { return cell_means_.size(); }

private:
    struct MeanCount {
        double mean = 0.0;
        std::size_t count = 0;
        void add(double x) {
            ++count;
            mean += (x - mean) / static_cast<double>(count);
        }
    };

    std::size_t num_decisions_;
    std::unordered_map<std::uint64_t, MeanCount> cell_means_; // key mixes d
    std::vector<MeanCount> decision_means_;
    MeanCount global_mean_;
    bool fitted_ = false;
};

// One ridge regression per decision over flattened numeric features.
class LinearRewardModel final : public RewardModel {
public:
    explicit LinearRewardModel(std::size_t num_decisions, double l2 = 1e-4);

    void fit(const Trace& trace);

    double predict(const ClientContext& context, Decision d) const override;
    // Flattens the context once instead of once per decision.
    void predict_row(const ClientContext& context, double* out) const override;
    std::size_t num_decisions() const noexcept override { return num_decisions_; }

private:
    std::size_t num_decisions_;
    double l2_;
    std::vector<stats::LinearRegression> per_decision_;
    std::vector<bool> has_model_;
    double global_mean_ = 0.0;
    bool fitted_ = false;
};

// One k-NN regressor per decision (the paper's Fig. 7c DM model).
//
// With `one_hot_categoricals` (default), categorical features are expanded
// to indicator vectors before computing distances, so two different ASNs
// are equidistant instead of "close" when their integer codes happen to be.
class KnnRewardModel final : public RewardModel {
public:
    KnnRewardModel(std::size_t num_decisions, std::size_t k = 5,
                   bool one_hot_categoricals = true);

    void fit(const Trace& trace);

    double predict(const ClientContext& context, Decision d) const override;
    // One-hot-encodes the context once instead of once per decision — the
    // encode() allocation used to dominate small-k row fills.
    void predict_row(const ClientContext& context, double* out) const override;
    // Decision-major bulk fill: encodes a batch of contexts up front, then
    // answers all of them against one per-decision KD-tree before moving
    // to the next, so each tree's blocks stay cache-resident for the whole
    // batch instead of being evicted num_decisions times per tuple.
    void predict_rows(const ClientContext* const* contexts, std::size_t count,
                      double* out) const override;
    std::size_t num_decisions() const noexcept override { return num_decisions_; }

private:
    std::vector<double> encode(const ClientContext& context) const;

    std::size_t num_decisions_;
    std::size_t k_;
    bool one_hot_;
    std::vector<std::int32_t> cardinalities_; // per categorical dim
    std::vector<stats::KnnRegressor> per_decision_;
    std::vector<bool> has_model_;
    double global_mean_ = 0.0;
    bool fitted_ = false;
};

// Model families selectable by the one-call Evaluator.
enum class RewardModelKind { kTabular, kLinear, kKnn };

std::unique_ptr<RewardModel> fit_reward_model(RewardModelKind kind,
                                              std::size_t num_decisions,
                                              const Trace& trace);

} // namespace dre::core

#endif // DRE_CORE_REWARD_MODEL_H
