#include "core/audit.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/diagnostics.h"
#include "core/drift.h"
#include "stats/hypothesis.h"
#include "trace/validate.h"

namespace dre::core {

namespace {

std::string format(const char* fmt, double a, double b = 0.0) {
    char buffer[256];
    std::snprintf(buffer, sizeof buffer, fmt, a, b);
    return buffer;
}

void add(std::vector<AuditFinding>& findings, AuditSeverity severity,
         std::string code, std::string message, double metric) {
    findings.push_back(
        {severity, std::move(code), std::move(message), metric});
}

// Pull column `get` for tuples [begin, end).
template <typename Getter>
std::vector<double> column(const Trace& trace, std::size_t begin, std::size_t end,
                           Getter get) {
    std::vector<double> out;
    out.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) out.push_back(get(trace[i]));
    return out;
}

// Structural defects via the shared trace/validate.h classifier, reported
// under its reason codes (propensities are handled by check_propensities
// below, which adds IPS-specific context to the same code).
void check_structure(const Trace& trace, std::vector<AuditFinding>& findings) {
    const auto counts = count_defects(trace, trace.num_decisions());
    const struct {
        const char* code;
        const char* what;
    } kStructural[] = {
        {reason_code(TupleDefect::kNonFiniteReward),
         "NaN/Inf rewards poison every estimator sum"},
        {reason_code(TupleDefect::kNonFiniteContext),
         "NaN/Inf context features break reward models and matching"},
        {reason_code(TupleDefect::kDecisionOutOfRange),
         "decisions outside the trace's decision space index nothing"},
    };
    for (const auto& s : kStructural) {
        const auto it = counts.find(s.code);
        if (it == counts.end()) continue;
        add(findings, AuditSeverity::kCritical, s.code,
            format("%.0f tuples are structurally invalid (",
                   static_cast<double>(it->second)) +
                s.code + "): " + s.what,
            static_cast<double>(it->second));
    }
}

void check_propensities(const Trace& trace, const AuditOptions& options,
                        std::vector<AuditFinding>& findings) {
    double min_p = 1.0;
    std::size_t invalid = 0;
    std::size_t ones = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const double p = trace[i].propensity;
        if (!(p > 0.0) || p > 1.0 || !std::isfinite(p)) {
            ++invalid;
            continue;
        }
        min_p = std::min(min_p, p);
        if (p == 1.0) ++ones;
    }
    if (invalid > 0) {
        add(findings, AuditSeverity::kCritical, "invalid-propensity",
            format("%.0f tuples have propensities outside (0, 1]; IPS/DR "
                   "weights are undefined for them",
                   static_cast<double>(invalid)),
            static_cast<double>(invalid));
        return;
    }
    if (ones == trace.size()) {
        add(findings, AuditSeverity::kCritical, "deterministic-logging",
            "every propensity is exactly 1: the logging policy never "
            "randomized, so no other policy has support in this trace",
            1.0);
        return;
    }
    if (min_p < options.thin_support_propensity) {
        add(findings, AuditSeverity::kWarning, "thin-support",
            format("minimum logged propensity is %.2e; importance weights up "
                   "to %.1f are possible — expect heavy-tailed IPS",
                   min_p, 1.0 / min_p),
            min_p);
    }
}

void check_overlap(const Trace& trace, const Policy& target,
                   const AuditOptions& options,
                   std::vector<AuditFinding>& findings) {
    const OverlapDiagnostics overlap = overlap_diagnostics(trace, target);
    if (overlap.effective_sample_fraction < options.min_ess_fraction) {
        add(findings, AuditSeverity::kWarning, "low-ess",
            format("effective sample size is %.1f (%.1f%% of the trace); "
                   "weighted estimates rest on a handful of tuples",
                   overlap.effective_sample_size,
                   100.0 * overlap.effective_sample_fraction),
            overlap.effective_sample_fraction);
    }
    if (overlap.zero_weight_fraction > options.max_zero_weight_fraction) {
        add(findings, AuditSeverity::kWarning, "zero-overlap",
            format("%.1f%% of tuples carry zero weight under the target "
                   "policy — the logging policy almost never agreed with it",
                   100.0 * overlap.zero_weight_fraction),
            overlap.zero_weight_fraction);
    }
    const double deviation = std::fabs(overlap.mean_weight - 1.0);
    if (deviation > options.max_mean_weight_deviation) {
        add(findings, AuditSeverity::kWarning, "propensity-mismatch",
            format("mean importance weight is %.2f (should be ~1): logged "
                   "propensities are inconsistent with the observed decisions "
                   "or the target lacks support",
                   overlap.mean_weight),
            overlap.mean_weight);
    }
}

void check_drift(const Trace& trace, std::vector<AuditFinding>& findings) {
    const DriftReport drift = detect_reward_drift(trace);
    if (drift.drift_detected()) {
        add(findings, AuditSeverity::kWarning, "reward-drift",
            format("reward change-points split the trace into %.0f regimes; "
                   "a single pooled estimate mixes different worlds "
                   "(state-match per segment instead)",
                   static_cast<double>(drift.num_segments())),
            static_cast<double>(drift.num_segments()));
    }
}

void check_context_shift(const Trace& trace, const AuditOptions& options,
                         std::vector<AuditFinding>& findings) {
    const std::size_t half = trace.size() / 2;
    const std::size_t dims = trace[0].context.numeric.size();
    for (std::size_t f = 0; f < dims; ++f) {
        const auto get = [f](const LoggedTuple& t) { return t.context.numeric[f]; };
        const auto first = column(trace, 0, half, get);
        const auto second = column(trace, half, trace.size(), get);
        const double p = stats::mann_whitney_u(first, second).p_value_two_sided;
        if (p < options.shift_p_value) {
            add(findings, AuditSeverity::kWarning, "context-shift",
                format("numeric feature %.0f shifts between the trace halves "
                       "(rank-sum p = %.4f): the client population is "
                       "non-stationary",
                       static_cast<double>(f), p),
                p);
        }
    }
}

void check_decision_mix(const Trace& trace, const AuditOptions& options,
                        std::vector<AuditFinding>& findings) {
    const std::size_t half = trace.size() / 2;
    const std::size_t decisions = trace.num_decisions();
    std::vector<double> first(decisions, 0.0), second(decisions, 0.0);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        auto& counts = i < half ? first : second;
        counts[static_cast<std::size_t>(trace[i].decision)] += 1.0;
    }
    double tv = 0.0;
    for (std::size_t d = 0; d < decisions; ++d)
        tv += 0.5 * std::fabs(first[d] / static_cast<double>(half) -
                              second[d] / static_cast<double>(trace.size() - half));
    if (tv > options.decision_mix_tv) {
        add(findings, AuditSeverity::kWarning, "logging-policy-drift",
            format("the decision mix moves by %.2f total variation between "
                   "the trace halves: the logging policy changed mid-trace "
                   "(history-dependent? retuned?), so treat the logged "
                   "propensities as per-tuple, not global",
                   tv),
            tv);
    }
}

void check_within_decision_shift(const Trace& trace, const AuditOptions& options,
                                 std::vector<AuditFinding>& findings) {
    // For each decision with enough support in both halves, compare its own
    // rewards across halves. A shift the context doesn't explain is the
    // §4.1 coupling / world-state signature.
    const std::size_t half = trace.size() / 2;
    const std::size_t decisions = trace.num_decisions();
    for (std::size_t d = 0; d < decisions; ++d) {
        std::vector<double> first, second;
        for (std::size_t i = 0; i < trace.size(); ++i) {
            if (static_cast<std::size_t>(trace[i].decision) != d) continue;
            (i < half ? first : second).push_back(trace[i].reward);
        }
        if (first.size() < 20 || second.size() < 20) continue;
        const double p = stats::mann_whitney_u(first, second).p_value_two_sided;
        if (p < options.shift_p_value) {
            add(findings, AuditSeverity::kWarning, "within-decision-shift",
                format("decision %.0f's own rewards shift between the trace "
                       "halves (rank-sum p = %.4f): system state or "
                       "decision-reward coupling is moving underneath the "
                       "logs",
                       static_cast<double>(d), p),
                p);
        }
    }
}

} // namespace

const char* to_string(AuditSeverity severity) noexcept {
    switch (severity) {
        case AuditSeverity::kInfo: return "info";
        case AuditSeverity::kWarning: return "warning";
        case AuditSeverity::kCritical: return "critical";
    }
    return "unknown";
}

std::vector<AuditFinding> audit_trace(const Trace& trace, const Policy* target,
                                      const AuditOptions& options) {
    if (trace.empty())
        throw std::invalid_argument("audit_trace needs a non-empty trace");

    std::vector<AuditFinding> findings;
    check_structure(trace, findings);
    check_propensities(trace, options, findings);
    // A critical structural defect (invalid or degenerate propensities)
    // makes the statistical machinery itself unsound — the library's other
    // entry points would rightly refuse this trace — so stop here.
    const bool critical = std::any_of(
        findings.begin(), findings.end(), [](const AuditFinding& f) {
            return f.severity == AuditSeverity::kCritical;
        });

    // Statistical checks need valid data and enough of it to say anything.
    if (!critical && trace.size() >= options.min_tuples) {
        if (target != nullptr) check_overlap(trace, *target, options, findings);
        check_drift(trace, findings);
        check_context_shift(trace, options, findings);
        check_decision_mix(trace, options, findings);
        check_within_decision_shift(trace, options, findings);
    }

    std::stable_sort(findings.begin(), findings.end(),
                     [](const AuditFinding& a, const AuditFinding& b) {
                         return static_cast<int>(a.severity) >
                                static_cast<int>(b.severity);
                     });
    return findings;
}

} // namespace dre::core
