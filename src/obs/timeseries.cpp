#include "obs/timeseries.h"

#include <chrono>

#include "obs/span.h"

namespace dre::obs {
namespace {

double rate_per_sec(std::uint64_t delta, double dt_ms) {
    return dt_ms > 0.0 ? static_cast<double>(delta) / (dt_ms / 1e3) : 0.0;
}

} // namespace

TimeSeriesRing::TimeSeriesRing(std::size_t capacity, Clock clock)
    : capacity_(capacity == 0 ? 1 : capacity), clock_(std::move(clock)) {
    if (!clock_) clock_ = [] { return now_ns() / 1000000u; };
    ring_.resize(capacity_);
}

TimeSeriesRing::~TimeSeriesRing() { stop(); }

std::uint64_t TimeSeriesRing::interval_ms() const noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    return interval_ms_;
}

void TimeSeriesRing::sample_once() {
    // A disabled build keeps the ring mechanics (timestamps, wrap, the
    // Timeseries frame) but derives no values — some metrics are registered
    // by direct registry() calls rather than the gated macros, and the
    // "telemetry compiles out" contract covers those too.
#if DRE_OBS_ENABLED
    Registry& reg = registry();
    // Scrape outside the ring mutex; the registry has its own.
    const auto counters = reg.counters();
    const auto gauges = reg.gauges();
    const auto histograms = reg.histogram_snapshots();
    const auto spans = reg.span_duration_snapshots();
#else
    const std::vector<CounterSample> counters;
    const std::vector<GaugeSample> gauges;
    const std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
    const std::vector<std::pair<std::string, HistogramSnapshot>> spans;
#endif

    std::lock_guard<std::mutex> lock(mutex_);
    TimeSeriesSample sample;
    sample.t_ms = clock_();
    const double dt_ms =
        have_previous_ ? static_cast<double>(sample.t_ms - previous_t_ms_)
                       : 0.0;

    for (const CounterSample& c : counters) {
        const auto it = previous_counters_.find(c.name);
        const std::uint64_t prev =
            it == previous_counters_.end() ? 0 : it->second;
        const std::uint64_t delta = c.value >= prev ? c.value - prev : 0;
        sample.values.emplace_back(c.name + ".rate",
                                   have_previous_ ? rate_per_sec(delta, dt_ms)
                                                  : 0.0);
        previous_counters_[c.name] = c.value;
    }
    for (const GaugeSample& g : gauges)
        sample.values.emplace_back(g.name, g.value);
    for (const auto& [name, snapshot] : histograms) {
        const auto it = previous_histograms_.find(name);
        const HistogramSnapshot window = it == previous_histograms_.end()
                                             ? snapshot
                                             : snapshot.delta_since(it->second);
        sample.values.emplace_back(
            name + ".rate",
            have_previous_ ? rate_per_sec(window.count, dt_ms) : 0.0);
        sample.values.emplace_back(name + ".p50", window.p50());
        sample.values.emplace_back(name + ".p99", window.p99());
        previous_histograms_[name] = snapshot;
    }
    for (const auto& [name, snapshot] : spans) {
        const auto it = previous_spans_.find(name);
        const HistogramSnapshot window = it == previous_spans_.end()
                                             ? snapshot
                                             : snapshot.delta_since(it->second);
        sample.values.emplace_back(
            "span." + name + ".rate",
            have_previous_ ? rate_per_sec(window.count, dt_ms) : 0.0);
        sample.values.emplace_back("span." + name + ".p50_ms",
                                   window.p50() / 1e6);
        sample.values.emplace_back("span." + name + ".p99_ms",
                                   window.p99() / 1e6);
        previous_spans_[name] = snapshot;
    }
    have_previous_ = true;
    previous_t_ms_ = sample.t_ms;

    const std::size_t slot = (start_ + size_) % capacity_;
    ring_[slot] = std::move(sample);
    if (size_ < capacity_) {
        ++size_;
    } else {
        start_ = (start_ + 1) % capacity_; // overwrote the oldest
    }
}

void TimeSeriesRing::start(std::uint64_t interval_ms) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (sampler_.joinable() || interval_ms == 0) return;
        interval_ms_ = interval_ms;
        stop_requested_ = false;
        sampler_ = std::thread([this] { sampler_loop(); });
    }
}

void TimeSeriesRing::stop() {
    std::thread joinable;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!sampler_.joinable()) return;
        stop_requested_ = true;
        stop_cv_.notify_all();
        joinable = std::move(sampler_);
        interval_ms_ = 0;
    }
    joinable.join();
}

void TimeSeriesRing::sampler_loop() {
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (stop_requested_) return;
            stop_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                              [this] { return stop_requested_; });
            if (stop_requested_) return;
        }
        sample_once();
    }
}

std::vector<TimeSeriesSample> TimeSeriesRing::snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TimeSeriesSample> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(start_ + i) % capacity_]);
    return out;
}

} // namespace dre::obs
