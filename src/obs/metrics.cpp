#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace dre::obs {
namespace {

// Relaxed compare-exchange accumulate for atomic doubles (sum/min/max are
// scrape-side statistics, not synchronization).
void atomic_add(std::atomic<double>& target, double delta) noexcept {
    double current = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
}

void atomic_min(std::atomic<double>& target, double value) noexcept {
    double current = target.load(std::memory_order_relaxed);
    while (value < current && !target.compare_exchange_weak(
                                  current, value, std::memory_order_relaxed)) {
    }
}

void atomic_max(std::atomic<double>& target, double value) noexcept {
    double current = target.load(std::memory_order_relaxed);
    while (value > current && !target.compare_exchange_weak(
                                  current, value, std::memory_order_relaxed)) {
    }
}

} // namespace

std::size_t Histogram::bucket_index(double value) noexcept {
    if (!(value >= 1.0)) return 0; // negatives/NaN land in the floor bucket
    const double clamped =
        std::min(value, static_cast<double>(std::numeric_limits<std::uint64_t>::max() / 2));
    const auto integral = static_cast<std::uint64_t>(clamped);
    const auto width = static_cast<std::size_t>(std::bit_width(integral));
    return std::min(width, kBuckets - 1);
}

void Histogram::record(double value) noexcept {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomic_add(sum_, value);
    if (!any_.load(std::memory_order_relaxed)) {
        // First-record race: both threads fall through to min/max updates,
        // which are idempotent once seeded.
        double expected_min = 0.0, expected_max = 0.0;
        min_.compare_exchange_strong(expected_min, value,
                                     std::memory_order_relaxed);
        max_.compare_exchange_strong(expected_max, value,
                                     std::memory_order_relaxed);
        any_.store(true, std::memory_order_relaxed);
    }
    atomic_min(min_, value);
    atomic_max(max_, value);
}

double Histogram::min() const noexcept {
    return any_.load(std::memory_order_relaxed)
               ? min_.load(std::memory_order_relaxed)
               : 0.0;
}

double Histogram::max() const noexcept {
    return any_.load(std::memory_order_relaxed)
               ? max_.load(std::memory_order_relaxed)
               : 0.0;
}

double Histogram::mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double p) const noexcept {
    p = std::clamp(p, 0.0, 1.0);
    std::array<std::uint64_t, kBuckets> counts;
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
        total += counts[i];
    }
    if (total == 0) return 0.0;
    // Rank of the p-quantile observation (1-based), then linear
    // interpolation within its bucket's [lo, hi) range.
    const double rank = p * static_cast<double>(total - 1) + 1.0;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        if (counts[i] == 0) continue;
        if (static_cast<double>(cumulative + counts[i]) < rank) {
            cumulative += counts[i];
            continue;
        }
        const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
        const double hi = i == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(i));
        const double within =
            (rank - static_cast<double>(cumulative)) / static_cast<double>(counts[i]);
        const double estimate = lo + within * (hi - lo);
        return std::clamp(estimate, min(), max());
    }
    return max();
}

void Histogram::reset() noexcept {
    for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
    any_.store(false, std::memory_order_relaxed);
}

Registry& Registry::instance() {
    // Leaked on purpose: instrumentation sites cache references in
    // function-local statics, which may run during static destruction.
    static Registry* const registry = new Registry();
    return *registry;
}

namespace {

template <typename Map>
auto& find_or_create(Map& map, std::string_view name) {
    auto it = map.find(name);
    if (it == map.end()) {
        it = map.emplace(std::string(name),
                         std::make_unique<typename Map::mapped_type::element_type>())
                 .first;
    }
    return *it->second;
}

} // namespace

Counter& Registry::counter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    return find_or_create(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    return find_or_create(gauges_, name);
}

Histogram& Registry::histogram(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    return find_or_create(histograms_, name);
}

SpanStat& Registry::span_stat(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    return find_or_create(span_stats_, name);
}

void Registry::reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, counter] : counters_) counter->reset();
    for (auto& [name, gauge] : gauges_) gauge->reset();
    for (auto& [name, histogram] : histograms_) histogram->reset();
    for (auto& [name, span] : span_stats_) span->reset();
}

std::vector<CounterSample> Registry::counters() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<CounterSample> out;
    out.reserve(counters_.size());
    for (const auto& [name, counter] : counters_)
        out.push_back({name, counter->value()});
    return out;
}

std::vector<GaugeSample> Registry::gauges() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<GaugeSample> out;
    out.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_)
        out.push_back({name, gauge->value()});
    return out;
}

std::vector<HistogramSample> Registry::histograms() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<HistogramSample> out;
    out.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
        HistogramSample sample;
        sample.name = name;
        sample.count = histogram->count();
        sample.sum = histogram->sum();
        sample.min = histogram->min();
        sample.max = histogram->max();
        sample.mean = histogram->mean();
        sample.p50 = histogram->p50();
        sample.p90 = histogram->p90();
        sample.p99 = histogram->p99();
        out.push_back(std::move(sample));
    }
    return out;
}

std::vector<SpanSample> Registry::spans() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SpanSample> out;
    out.reserve(span_stats_.size());
    for (const auto& [name, span] : span_stats_) {
        SpanSample sample;
        sample.name = name;
        sample.count = span->count.load(std::memory_order_relaxed);
        const auto total =
            static_cast<double>(span->total_ns.load(std::memory_order_relaxed));
        sample.total_ms = total / 1e6;
        sample.mean_ms =
            sample.count == 0 ? 0.0 : total / 1e6 / static_cast<double>(sample.count);
        sample.p50_ms = span->duration_ns.quantile(0.50) / 1e6;
        sample.p99_ms = span->duration_ns.quantile(0.99) / 1e6;
        out.push_back(std::move(sample));
    }
    return out;
}

} // namespace dre::obs
