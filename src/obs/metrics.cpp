#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace dre::obs {
namespace {

// Relaxed compare-exchange accumulate for atomic doubles (sum/min/max are
// scrape-side statistics, not synchronization).
void atomic_add(std::atomic<double>& target, double delta) noexcept {
    double current = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
}

void atomic_min(std::atomic<double>& target, double value) noexcept {
    double current = target.load(std::memory_order_relaxed);
    while (value < current && !target.compare_exchange_weak(
                                  current, value, std::memory_order_relaxed)) {
    }
}

void atomic_max(std::atomic<double>& target, double value) noexcept {
    double current = target.load(std::memory_order_relaxed);
    while (value > current && !target.compare_exchange_weak(
                                  current, value, std::memory_order_relaxed)) {
    }
}

} // namespace

double HistogramSnapshot::bucket_lo(std::size_t i) noexcept {
    return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
}

double HistogramSnapshot::bucket_hi(std::size_t i) noexcept {
    return i == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(i));
}

double HistogramSnapshot::quantile(double p) const noexcept {
    p = std::clamp(p, 0.0, 1.0);
    std::uint64_t total = 0;
    for (const std::uint64_t c : buckets) total += c;
    if (total == 0) return 0.0;
    // Rank of the p-quantile observation (1-based). Within the winning
    // bucket, observations sit at midpoint positions (k - 0.5 for the k-th),
    // so a bucket that contains the rank interpolates around its occupants
    // instead of reporting the bucket's upper bound.
    const double rank = p * static_cast<double>(total - 1) + 1.0;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0) continue;
        if (static_cast<double>(cumulative + buckets[i]) < rank) {
            cumulative += buckets[i];
            continue;
        }
        const double lo = bucket_lo(i);
        const double hi = bucket_hi(i);
        const double within = std::clamp(
            (rank - static_cast<double>(cumulative) - 0.5) /
                static_cast<double>(buckets[i]),
            0.0, 1.0);
        const double estimate = lo + within * (hi - lo);
        return has_extremes ? std::clamp(estimate, min, max) : estimate;
    }
    return has_extremes ? max : bucket_hi(buckets.size() - 1);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) noexcept {
    const bool was_empty = count == 0;
    for (std::size_t i = 0; i < buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    count += other.count;
    sum += other.sum;
    if (other.count == 0) return; // nothing to fold into the extremes
    if (was_empty) {
        min = other.min;
        max = other.max;
        has_extremes = other.has_extremes;
    } else {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
        has_extremes = has_extremes && other.has_extremes;
    }
}

HistogramSnapshot HistogramSnapshot::delta_since(
    const HistogramSnapshot& earlier) const noexcept {
    HistogramSnapshot out;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        out.buckets[i] =
            buckets[i] >= earlier.buckets[i] ? buckets[i] - earlier.buckets[i]
                                             : 0;
        out.count += out.buckets[i];
    }
    out.sum = sum - earlier.sum;
    // A window's true extremes are unknowable from cumulative state; leave
    // has_extremes false so quantile() relies on bucket interpolation only.
    return out;
}

std::size_t Histogram::bucket_index(double value) noexcept {
    if (!(value >= 1.0)) return 0; // negatives/NaN land in the floor bucket
    const double clamped =
        std::min(value, static_cast<double>(std::numeric_limits<std::uint64_t>::max() / 2));
    const auto integral = static_cast<std::uint64_t>(clamped);
    const auto width = static_cast<std::size_t>(std::bit_width(integral));
    return std::min(width, kBuckets - 1);
}

void Histogram::record(double value) noexcept {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomic_add(sum_, value);
    if (!any_.load(std::memory_order_relaxed)) {
        // First-record race: both threads fall through to min/max updates,
        // which are idempotent once seeded.
        double expected_min = 0.0, expected_max = 0.0;
        min_.compare_exchange_strong(expected_min, value,
                                     std::memory_order_relaxed);
        max_.compare_exchange_strong(expected_max, value,
                                     std::memory_order_relaxed);
        any_.store(true, std::memory_order_relaxed);
    }
    atomic_min(min_, value);
    atomic_max(max_, value);
}

double Histogram::min() const noexcept {
    return any_.load(std::memory_order_relaxed)
               ? min_.load(std::memory_order_relaxed)
               : 0.0;
}

double Histogram::max() const noexcept {
    return any_.load(std::memory_order_relaxed)
               ? max_.load(std::memory_order_relaxed)
               : 0.0;
}

double Histogram::mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

HistogramSnapshot Histogram::snapshot() const noexcept {
    HistogramSnapshot out;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
        out.count += out.buckets[i];
    }
    out.sum = sum_.load(std::memory_order_relaxed);
    out.has_extremes = any_.load(std::memory_order_relaxed);
    if (out.has_extremes) {
        out.min = min_.load(std::memory_order_relaxed);
        out.max = max_.load(std::memory_order_relaxed);
    }
    return out;
}

void Histogram::reset() noexcept {
    for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
    any_.store(false, std::memory_order_relaxed);
}

Registry& Registry::instance() {
    // Leaked on purpose: instrumentation sites cache references in
    // function-local statics, which may run during static destruction.
    static Registry* const registry = new Registry();
    return *registry;
}

namespace {

template <typename Map>
auto& find_or_create(Map& map, std::string_view name) {
    auto it = map.find(name);
    if (it == map.end()) {
        it = map.emplace(std::string(name),
                         std::make_unique<typename Map::mapped_type::element_type>())
                 .first;
    }
    return *it->second;
}

} // namespace

Counter& Registry::counter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    return find_or_create(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    return find_or_create(gauges_, name);
}

Histogram& Registry::histogram(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    return find_or_create(histograms_, name);
}

SpanStat& Registry::span_stat(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    return find_or_create(span_stats_, name);
}

void Registry::reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, counter] : counters_) counter->reset();
    for (auto& [name, gauge] : gauges_) gauge->reset();
    for (auto& [name, histogram] : histograms_) histogram->reset();
    for (auto& [name, span] : span_stats_) span->reset();
}

std::vector<CounterSample> Registry::counters() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<CounterSample> out;
    out.reserve(counters_.size());
    for (const auto& [name, counter] : counters_)
        out.push_back({name, counter->value()});
    return out;
}

std::vector<GaugeSample> Registry::gauges() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<GaugeSample> out;
    out.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_)
        out.push_back({name, gauge->value()});
    return out;
}

std::vector<HistogramSample> Registry::histograms() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<HistogramSample> out;
    out.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
        HistogramSample sample;
        sample.name = name;
        sample.count = histogram->count();
        sample.sum = histogram->sum();
        sample.min = histogram->min();
        sample.max = histogram->max();
        sample.mean = histogram->mean();
        sample.p50 = histogram->p50();
        sample.p90 = histogram->p90();
        sample.p99 = histogram->p99();
        out.push_back(std::move(sample));
    }
    return out;
}

std::vector<SpanSample> Registry::spans() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SpanSample> out;
    out.reserve(span_stats_.size());
    for (const auto& [name, span] : span_stats_) {
        SpanSample sample;
        sample.name = name;
        sample.count = span->count.load(std::memory_order_relaxed);
        const auto total =
            static_cast<double>(span->total_ns.load(std::memory_order_relaxed));
        sample.total_ms = total / 1e6;
        sample.mean_ms =
            sample.count == 0 ? 0.0 : total / 1e6 / static_cast<double>(sample.count);
        sample.p50_ms = span->duration_ns.quantile(0.50) / 1e6;
        sample.p99_ms = span->duration_ns.quantile(0.99) / 1e6;
        out.push_back(std::move(sample));
    }
    return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
Registry::histogram_snapshots() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, HistogramSnapshot>> out;
    out.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_)
        out.emplace_back(name, histogram->snapshot());
    return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
Registry::span_duration_snapshots() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, HistogramSnapshot>> out;
    out.reserve(span_stats_.size());
    for (const auto& [name, span] : span_stats_)
        out.emplace_back(name, span->duration_ns.snapshot());
    return out;
}

} // namespace dre::obs
