// Report sink for `dre::obs`.
//
// Two pieces:
//
//  * JsonWriter — a minimal streaming JSON serializer (objects, arrays,
//    escaped strings, automatic commas). Shared by the registry report, the
//    chrome-trace exporter, and the bench harness writer so every JSON
//    artifact in the repo comes out of one implementation.
//
//  * Report — an ordered section -> key -> value document with two
//    renderers: aligned human-readable text (the one format shared by the
//    dre_eval CLI and the examples) and JSON. `Report::from_registry()`
//    snapshots every registered metric; `registry_json()` is the raw nested
//    form written by `--obs-out`.
#ifndef DRE_OBS_REPORT_H
#define DRE_OBS_REPORT_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace dre::obs {

class JsonWriter {
public:
    // Appends to `out` (not owned).
    explicit JsonWriter(std::string* out) : out_(out) {}

    void begin_object();
    void end_object();
    void begin_array();
    void end_array();
    void key(std::string_view name);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(bool v);
    void value(std::string_view v);
    // Splice a pre-serialized JSON document in value position.
    void raw_value(std::string_view json);

    static std::string escape(std::string_view text);

private:
    void comma_for_value();

    std::string* out_;
    // One entry per open container: whether it already holds an element.
    std::vector<bool> has_element_;
    bool after_key_ = false;
};

// Ordered two-level document. Section "" holds top-level scalars (emitted
// before the named sections in JSON; skipped as a heading in text).
class Report {
public:
    void set(std::string_view section, std::string_view key, double value);
    void set(std::string_view section, std::string_view key, std::uint64_t value);
    void set(std::string_view section, std::string_view key, std::int64_t value);
    void set(std::string_view section, std::string_view key, int value) {
        set(section, key, static_cast<std::int64_t>(value));
    }
    void set(std::string_view section, std::string_view key, bool value);
    void set(std::string_view section, std::string_view key, std::string_view value);
    void set(std::string_view section, std::string_view key, const char* value) {
        set(section, key, std::string_view(value));
    }
    // Pre-serialized JSON (e.g. registry_json()) emitted verbatim in JSON
    // output; rendered as "<json>" placeholder-free text is skipped.
    void set_raw_json(std::string_view section, std::string_view key,
                      std::string raw);

    std::string to_json() const;
    // Aligned text: "section:" headings, "  key  value" rows. print() emits
    // exactly these bytes — the serve Result payload carries to_text() so a
    // server response can be byte-diffed against the CLI's stdout.
    std::string to_text() const;
    void print(std::FILE* out = stdout) const;
    bool write_json_file(const std::string& path) const;

    // Snapshot of every registered metric (counters, gauges, histograms,
    // span profile), one Report section per metric kind.
    static Report from_registry();

private:
    struct Value {
        enum class Kind { kDouble, kInt, kUint, kBool, kString, kRawJson };
        Kind kind = Kind::kDouble;
        double d = 0.0;
        std::int64_t i = 0;
        std::uint64_t u = 0;
        bool b = false;
        std::string s;
    };
    struct Section {
        std::string name;
        std::vector<std::pair<std::string, Value>> entries;
    };

    Section& section(std::string_view name);
    void set_value(std::string_view section_name, std::string_view key, Value v);

    std::vector<Section> sections_;
};

// The whole registry as nested JSON:
//   {"obs_enabled": ..., "counters": {...}, "gauges": {...},
//    "histograms": {name: {count,sum,min,max,mean,p50,p90,p99}},
//    "spans": {name: {count,total_ms,mean_ms,p50_ms,p99_ms}}}
std::string registry_json();
bool write_registry_json_file(const std::string& path);

} // namespace dre::obs

#endif // DRE_OBS_REPORT_H
