#include "obs/report.h"

#include <cinttypes>
#include <cmath>
#include <cstring>

#include "obs/metrics.h"

#ifndef DRE_OBS_ENABLED
#define DRE_OBS_ENABLED 1
#endif

namespace dre::obs {
namespace {

void append_double(std::string* out, double v) {
    if (!std::isfinite(v)) {
        // JSON has no Infinity/NaN literals.
        out->append("null");
        return;
    }
    char buffer[40];
    // Shortest round-trippable-enough form; integers print without ".0".
    if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
        std::fabs(v) < 1e15) {
        std::snprintf(buffer, sizeof(buffer), "%" PRId64,
                      static_cast<std::int64_t>(v));
    } else {
        std::snprintf(buffer, sizeof(buffer), "%.10g", v);
    }
    out->append(buffer);
}

} // namespace

std::string JsonWriter::escape(std::string_view text) {
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buffer[8];
                    std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buffer;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

void JsonWriter::comma_for_value() {
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (!has_element_.empty()) {
        if (has_element_.back()) out_->push_back(',');
        has_element_.back() = true;
    }
}

void JsonWriter::begin_object() {
    comma_for_value();
    out_->push_back('{');
    has_element_.push_back(false);
}

void JsonWriter::end_object() {
    has_element_.pop_back();
    out_->push_back('}');
}

void JsonWriter::begin_array() {
    comma_for_value();
    out_->push_back('[');
    has_element_.push_back(false);
}

void JsonWriter::end_array() {
    has_element_.pop_back();
    out_->push_back(']');
}

void JsonWriter::key(std::string_view name) {
    if (!has_element_.empty()) {
        if (has_element_.back()) out_->push_back(',');
        has_element_.back() = true;
    }
    out_->push_back('"');
    out_->append(escape(name));
    out_->append("\":");
    after_key_ = true;
}

void JsonWriter::value(double v) {
    comma_for_value();
    append_double(out_, v);
}

void JsonWriter::value(std::uint64_t v) {
    comma_for_value();
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "%" PRIu64, v);
    out_->append(buffer);
}

void JsonWriter::value(std::int64_t v) {
    comma_for_value();
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "%" PRId64, v);
    out_->append(buffer);
}

void JsonWriter::value(bool v) {
    comma_for_value();
    out_->append(v ? "true" : "false");
}

void JsonWriter::value(std::string_view v) {
    comma_for_value();
    out_->push_back('"');
    out_->append(escape(v));
    out_->push_back('"');
}

void JsonWriter::raw_value(std::string_view json) {
    comma_for_value();
    out_->append(json);
}

// --- Report ----------------------------------------------------------------

Report::Section& Report::section(std::string_view name) {
    for (Section& s : sections_)
        if (s.name == name) return s;
    sections_.push_back({std::string(name), {}});
    return sections_.back();
}

void Report::set_value(std::string_view section_name, std::string_view key,
                       Value v) {
    Section& s = section(section_name);
    for (auto& [existing, value] : s.entries) {
        if (existing == key) {
            value = std::move(v);
            return;
        }
    }
    s.entries.emplace_back(std::string(key), std::move(v));
}

void Report::set(std::string_view section, std::string_view key, double value) {
    Value v;
    v.kind = Value::Kind::kDouble;
    v.d = value;
    set_value(section, key, std::move(v));
}

void Report::set(std::string_view section, std::string_view key,
                 std::uint64_t value) {
    Value v;
    v.kind = Value::Kind::kUint;
    v.u = value;
    set_value(section, key, std::move(v));
}

void Report::set(std::string_view section, std::string_view key,
                 std::int64_t value) {
    Value v;
    v.kind = Value::Kind::kInt;
    v.i = value;
    set_value(section, key, std::move(v));
}

void Report::set(std::string_view section, std::string_view key, bool value) {
    Value v;
    v.kind = Value::Kind::kBool;
    v.b = value;
    set_value(section, key, std::move(v));
}

void Report::set(std::string_view section, std::string_view key,
                 std::string_view value) {
    Value v;
    v.kind = Value::Kind::kString;
    v.s = std::string(value);
    set_value(section, key, std::move(v));
}

void Report::set_raw_json(std::string_view section, std::string_view key,
                          std::string raw) {
    Value v;
    v.kind = Value::Kind::kRawJson;
    v.s = std::move(raw);
    set_value(section, key, std::move(v));
}

std::string Report::to_json() const {
    std::string out;
    JsonWriter json(&out);
    const auto emit = [&](const Value& v) {
        switch (v.kind) {
            case Value::Kind::kDouble: json.value(v.d); break;
            case Value::Kind::kInt: json.value(v.i); break;
            case Value::Kind::kUint: json.value(v.u); break;
            case Value::Kind::kBool: json.value(v.b); break;
            case Value::Kind::kString: json.value(std::string_view(v.s)); break;
            case Value::Kind::kRawJson: json.raw_value(v.s); break;
        }
    };
    json.begin_object();
    // Top-level scalars (section "") first, then named sections as objects.
    for (const Section& s : sections_) {
        if (!s.name.empty()) continue;
        for (const auto& [key, value] : s.entries) {
            json.key(key);
            emit(value);
        }
    }
    for (const Section& s : sections_) {
        if (s.name.empty()) continue;
        json.key(s.name);
        json.begin_object();
        for (const auto& [key, value] : s.entries) {
            json.key(key);
            emit(value);
        }
        json.end_object();
    }
    json.end_object();
    out.push_back('\n');
    return out;
}

std::string Report::to_text() const {
    std::string out;
    char row[512];
    const auto append_row = [&](const char* format, const std::string& key,
                                auto value) {
        std::snprintf(row, sizeof(row), format, key.c_str(), value);
        out += row;
    };
    for (const Section& s : sections_) {
        if (!s.name.empty()) {
            out += '\n';
            out += s.name;
            out += ":\n";
        }
        for (const auto& [key, value] : s.entries) {
            switch (value.kind) {
                case Value::Kind::kDouble:
                    append_row("  %-28s %10.4f\n", key, value.d);
                    break;
                case Value::Kind::kInt:
                    append_row("  %-28s %10" PRId64 "\n", key, value.i);
                    break;
                case Value::Kind::kUint:
                    append_row("  %-28s %10" PRIu64 "\n", key, value.u);
                    break;
                case Value::Kind::kBool:
                    append_row("  %-28s %10s\n", key, value.b ? "yes" : "no");
                    break;
                case Value::Kind::kString:
                    append_row("  %-28s %s\n", key, value.s.c_str());
                    break;
                case Value::Kind::kRawJson:
                    break; // machine-only payload
            }
        }
    }
    return out;
}

void Report::print(std::FILE* out) const {
    const std::string text = to_text();
    std::fwrite(text.data(), 1, text.size(), out);
}

bool Report::write_json_file(const std::string& path) const {
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) return false;
    const std::string json = to_json();
    const bool ok = std::fwrite(json.data(), 1, json.size(), file) == json.size();
    return std::fclose(file) == 0 && ok;
}

Report Report::from_registry() {
    Report report;
    report.set("", "obs_enabled", DRE_OBS_ENABLED != 0);
    const Registry& reg = registry();
    for (const CounterSample& c : reg.counters())
        report.set("counters", c.name, std::uint64_t{c.value});
    for (const GaugeSample& g : reg.gauges()) report.set("gauges", g.name, g.value);
    for (const HistogramSample& h : reg.histograms()) {
        report.set("histograms", h.name + ".count", std::uint64_t{h.count});
        report.set("histograms", h.name + ".mean", h.mean);
        report.set("histograms", h.name + ".p99", h.p99);
        report.set("histograms", h.name + ".max", h.max);
    }
    for (const SpanSample& s : reg.spans()) {
        report.set("spans", s.name + ".count", std::uint64_t{s.count});
        report.set("spans", s.name + ".total_ms", s.total_ms);
        report.set("spans", s.name + ".mean_ms", s.mean_ms);
        report.set("spans", s.name + ".p99_ms", s.p99_ms);
    }
    return report;
}

std::string registry_json() {
    const Registry& reg = registry();
    std::string out;
    JsonWriter json(&out);
    json.begin_object();
    json.key("obs_enabled");
    json.value(DRE_OBS_ENABLED != 0);
    json.key("counters");
    json.begin_object();
    for (const CounterSample& c : reg.counters()) {
        json.key(c.name);
        json.value(std::uint64_t{c.value});
    }
    json.end_object();
    json.key("gauges");
    json.begin_object();
    for (const GaugeSample& g : reg.gauges()) {
        json.key(g.name);
        json.value(g.value);
    }
    json.end_object();
    json.key("histograms");
    json.begin_object();
    for (const HistogramSample& h : reg.histograms()) {
        json.key(h.name);
        json.begin_object();
        json.key("count");
        json.value(std::uint64_t{h.count});
        json.key("sum");
        json.value(h.sum);
        json.key("min");
        json.value(h.min);
        json.key("max");
        json.value(h.max);
        json.key("mean");
        json.value(h.mean);
        json.key("p50");
        json.value(h.p50);
        json.key("p90");
        json.value(h.p90);
        json.key("p99");
        json.value(h.p99);
        json.end_object();
    }
    json.end_object();
    json.key("spans");
    json.begin_object();
    for (const SpanSample& s : reg.spans()) {
        json.key(s.name);
        json.begin_object();
        json.key("count");
        json.value(std::uint64_t{s.count});
        json.key("total_ms");
        json.value(s.total_ms);
        json.key("mean_ms");
        json.value(s.mean_ms);
        json.key("p50_ms");
        json.value(s.p50_ms);
        json.key("p99_ms");
        json.value(s.p99_ms);
        json.end_object();
    }
    json.end_object();
    json.end_object();
    out.push_back('\n');
    return out;
}

bool write_registry_json_file(const std::string& path) {
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) return false;
    const std::string json = registry_json();
    const bool ok = std::fwrite(json.data(), 1, json.size(), file) == json.size();
    return std::fclose(file) == 0 && ok;
}

} // namespace dre::obs
