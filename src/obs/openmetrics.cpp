#include "obs/openmetrics.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

#include "obs/metrics.h"

namespace dre::obs {
namespace {

void append_double(std::string* out, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    *out += buf;
}

void append_u64(std::string* out, std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    *out += buf;
}

void append_type(std::string* out, const std::string& name, const char* type) {
    *out += "# TYPE ";
    *out += name;
    *out += ' ';
    *out += type;
    *out += '\n';
}

// One histogram family from a snapshot: cumulative le buckets up to the
// highest occupied one, +Inf, then _sum and _count.
void append_histogram(std::string* out, const std::string& name,
                      const HistogramSnapshot& snapshot) {
    append_type(out, name, "histogram");
    std::size_t last = 0;
    for (std::size_t i = 0; i < snapshot.buckets.size(); ++i)
        if (snapshot.buckets[i] != 0) last = i;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= last && snapshot.count != 0; ++i) {
        cumulative += snapshot.buckets[i];
        *out += name;
        *out += "_bucket{le=\"";
        append_double(out, HistogramSnapshot::bucket_hi(i));
        *out += "\"} ";
        append_u64(out, cumulative);
        *out += '\n';
    }
    *out += name;
    *out += "_bucket{le=\"+Inf\"} ";
    append_u64(out, snapshot.count);
    *out += '\n';
    *out += name;
    *out += "_sum ";
    append_double(out, snapshot.sum);
    *out += '\n';
    *out += name;
    *out += "_count ";
    append_u64(out, snapshot.count);
    *out += '\n';
}

} // namespace

std::string openmetrics_name(std::string_view registry_name) {
    std::string out = "dre_";
    out.reserve(registry_name.size() + 4);
    for (const char c : registry_name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

std::string render_openmetrics() {
    Registry& reg = registry();
    std::string out;
    out.reserve(4096);

    for (const CounterSample& c : reg.counters()) {
        const std::string name = openmetrics_name(c.name);
        append_type(&out, name, "counter");
        out += name;
        out += "_total ";
        append_u64(&out, c.value);
        out += '\n';
    }
    for (const GaugeSample& g : reg.gauges()) {
        const std::string name = openmetrics_name(g.name);
        append_type(&out, name, "gauge");
        out += name;
        out += ' ';
        append_double(&out, g.value);
        out += '\n';
    }
    for (const auto& [raw_name, snapshot] : reg.histogram_snapshots())
        append_histogram(&out, openmetrics_name(raw_name), snapshot);
    for (const auto& [raw_name, snapshot] : reg.span_duration_snapshots())
        append_histogram(&out, openmetrics_name("span." + raw_name + "_ns"),
                         snapshot);

    out += "# EOF\n";
    return out;
}

} // namespace dre::obs
