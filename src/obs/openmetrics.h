// OpenMetrics text exposition for the `dre::obs` registry (DESIGN.md §13).
//
// render_openmetrics() serializes every registered metric in the
// OpenMetrics 1.0 text format, so a Prometheus-compatible scraper pointed
// at `dre_serve --metrics-port` ingests the registry directly:
//
//   * naming: registry names are dotted ("serve.request_ms"); the
//     exposition prefixes "dre_" and maps every non-[a-zA-Z0-9_] byte to
//     '_' ("dre_serve_request_ms"). Units stay encoded in the name suffix
//     (_ms, _ns, _bytes) exactly as registered.
//   * counters export as `# TYPE <name> counter` with the `_total` sample
//     suffix; gauges as plain gauges.
//   * histograms export cumulative `le` buckets on the registry's
//     power-of-two boundaries (only up to the highest occupied bucket,
//     plus "+Inf"), then `_sum` and `_count`.
//   * span profiles export as `dre_span_<name>_ns` histograms of the span
//     duration in nanoseconds.
//
// The document ends with the mandatory `# EOF` terminator. All data comes
// from registry snapshots — rendering never blocks an instrumentation site
// beyond the registry map mutex.
#ifndef DRE_OBS_OPENMETRICS_H
#define DRE_OBS_OPENMETRICS_H

#include <string>
#include <string_view>

namespace dre::obs {

// "serve.request_ms" -> "dre_serve_request_ms".
std::string openmetrics_name(std::string_view registry_name);

// The full exposition document for the process-global registry.
std::string render_openmetrics();

} // namespace dre::obs

#endif // DRE_OBS_OPENMETRICS_H
