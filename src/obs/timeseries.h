// TimeSeriesRing — fixed-capacity recent history of every registered
// metric (DESIGN.md §13).
//
// Each sample() pass walks the registry and derives one row of named
// scalar series from cumulative state:
//
//   counter  c  ->  "<name>.rate"  events/sec over the window since the
//                   previous sample (0 on the first pass)
//   gauge    g  ->  "<name>"       the instantaneous value
//   histogram h ->  "<name>.rate"  records/sec over the window, plus
//                   "<name>.p50" / "<name>.p99" of the *windowed* delta
//                   histogram (cumulative snapshots diffed, so the
//                   quantiles describe the last interval, not all time)
//   span     s  ->  same as histogram over the span's duration in ms:
//                   "span.<name>.rate" / ".p50_ms" / ".p99_ms"
//
// Rows land in a ring of `capacity` samples (oldest overwritten); the
// serve layer exposes snapshot() through the Timeseries wire frame and
// dre_top renders it. The clock is injectable — tests drive sample_once()
// with a fake millisecond clock and assert fill/wrap/monotonicity without
// sleeping — and start()/stop() run the same sampling on a background
// interval thread for production use.
#ifndef DRE_OBS_TIMESERIES_H
#define DRE_OBS_TIMESERIES_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace dre::obs {

struct TimeSeriesSample {
    std::uint64_t t_ms = 0; // clock reading when the sample was taken
    // Sorted by name (std::map iteration order at build time).
    std::vector<std::pair<std::string, double>> values;
};

class TimeSeriesRing {
public:
    // Milliseconds on an arbitrary monotonic epoch. The default clock is
    // obs::now_ns()/1e6.
    using Clock = std::function<std::uint64_t()>;

    explicit TimeSeriesRing(std::size_t capacity, Clock clock = {});
    ~TimeSeriesRing(); // stop()s the sampler thread if running
    TimeSeriesRing(const TimeSeriesRing&) = delete;
    TimeSeriesRing& operator=(const TimeSeriesRing&) = delete;

    std::size_t capacity() const noexcept { return capacity_; }
    // The interval passed to start() (0 before start / after stop).
    std::uint64_t interval_ms() const noexcept;

    // Take one sample now (any thread; serialized internally).
    void sample_once();

    // Spawn the sampler thread, one sample_once() per interval. No-op if
    // already running.
    void start(std::uint64_t interval_ms);
    void stop();

    // Ring contents, oldest first.
    std::vector<TimeSeriesSample> snapshot() const;

private:
    void sampler_loop();

    const std::size_t capacity_;
    Clock clock_;

    mutable std::mutex mutex_;
    std::vector<TimeSeriesSample> ring_; // ring_[(start_ + i) % capacity_]
    std::size_t start_ = 0;
    std::size_t size_ = 0;

    // Previous cumulative state, for window deltas and rates.
    bool have_previous_ = false;
    std::uint64_t previous_t_ms_ = 0;
    std::map<std::string, std::uint64_t> previous_counters_;
    std::map<std::string, HistogramSnapshot> previous_histograms_;
    std::map<std::string, HistogramSnapshot> previous_spans_;

    std::condition_variable stop_cv_;
    bool stop_requested_ = false;
    std::uint64_t interval_ms_ = 0;
    std::thread sampler_;
};

} // namespace dre::obs

#endif // DRE_OBS_TIMESERIES_H
