// Metric primitives for `dre::obs`: named counters, gauges, and histograms
// behind a process-global registry.
//
// Design constraints (see DESIGN.md §8):
//
//  * The hot path pays one relaxed atomic per event. Counters shard their
//    cells per thread slot (cache-line padded), so concurrent increments
//    from the dre::par pool never bounce a line between cores; the shards
//    are summed only on scrape.
//  * Observability is read-only with respect to results: nothing in this
//    header produces a value the evaluation pipeline consumes, so the
//    DRE_THREADS=1-vs-8 bit-identity contract is untouched.
//  * Metric objects are registered once and never destroyed (the registry
//    leaks by design), so instrumentation sites may cache `Counter&`
//    references in function-local statics without lifetime hazards.
//
// Instrumentation sites should use the DRE_COUNTER_* / DRE_GAUGE_SET /
// DRE_HIST_RECORD macros from obs/obs.h, which compile to nothing when the
// library is configured with DRE_OBS_ENABLED=0.
#ifndef DRE_OBS_METRICS_H
#define DRE_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dre::obs {

// Number of cache-line-padded cells per counter. Threads hash onto cells by
// a process-unique slot id, so up to kShards threads increment without any
// sharing; beyond that, slots wrap and contention stays bounded.
inline constexpr std::size_t kShards = 16;

// The calling thread's shard slot (assigned on first use, stable for the
// thread's lifetime).
inline std::size_t shard_index() noexcept {
    static std::atomic<std::size_t> next_slot{0};
    thread_local const std::size_t slot =
        next_slot.fetch_add(1, std::memory_order_relaxed) % kShards;
    return slot;
}

// Monotonically increasing event count.
class Counter {
public:
    Counter() = default;
    Counter(const Counter&) = delete;
    Counter& operator=(const Counter&) = delete;

    void add(std::uint64_t n = 1) noexcept {
        shards_[shard_index()].value.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const noexcept {
        std::uint64_t total = 0;
        for (const Cell& cell : shards_)
            total += cell.value.load(std::memory_order_relaxed);
        return total;
    }

    void reset() noexcept {
        for (Cell& cell : shards_) cell.value.store(0, std::memory_order_relaxed);
    }

private:
    struct alignas(64) Cell {
        std::atomic<std::uint64_t> value{0};
    };
    std::array<Cell, kShards> shards_{};
};

// Last-writer-wins instantaneous value (tuples/sec, queue depth, ESS).
class Gauge {
public:
    Gauge() = default;
    Gauge(const Gauge&) = delete;
    Gauge& operator=(const Gauge&) = delete;

    void set(double value) noexcept {
        value_.store(value, std::memory_order_relaxed);
    }
    double value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

// Shared bucket geometry for Histogram and HistogramSnapshot: bucket 0
// covers [0, 1); bucket i >= 1 covers [2^(i-1), 2^i).
inline constexpr std::size_t kHistogramBuckets = 64;

// A plain-data copy of a Histogram's state at one scrape instant.
// Snapshots are what the OpenMetrics exposition renders (cumulative `le`
// buckets need a consistent view) and what the time-series ring diffs:
// `delta_since(previous)` yields the window's histogram, whose quantiles
// are the windowed p50/p99. Quantiles place the target rank at bucket
// midpoints (rank - 0.5 within the winning bucket), so a bucket holding
// exactly the quantile observation interpolates instead of reporting the
// bucket's upper bound; when the snapshot carries observed extremes
// (direct snapshots do, window deltas cannot) the estimate is additionally
// clamped to [min, max].
struct HistogramSnapshot {
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0, max = 0.0;
    bool has_extremes = false; // min/max are trustworthy observed values

    static double bucket_lo(std::size_t i) noexcept;
    static double bucket_hi(std::size_t i) noexcept;

    double mean() const noexcept {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
    // Approximate p-quantile (p in [0, 1]); 0 when empty.
    double quantile(double p) const noexcept;
    double p50() const noexcept { return quantile(0.50); }
    double p90() const noexcept { return quantile(0.90); }
    double p99() const noexcept { return quantile(0.99); }

    // Fold `other` into this snapshot (bucket-wise sums; extremes combine
    // only if both sides have them).
    void merge(const HistogramSnapshot& other) noexcept;
    // The histogram of observations recorded after `earlier` was taken
    // (counter-style subtraction; extremes are unknowable for a window).
    HistogramSnapshot delta_since(const HistogramSnapshot& earlier) const noexcept;
};

// Power-of-two exponential histogram over non-negative values (bucket
// geometry above). Quantiles are estimates with bounded relative error,
// not exact order statistics — cheap enough to record from concurrent hot
// paths.
class Histogram {
public:
    static constexpr std::size_t kBuckets = kHistogramBuckets;

    Histogram() = default;
    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

    void record(double value) noexcept;

    std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
    double min() const noexcept;
    double max() const noexcept;
    double mean() const noexcept;
    // Consistent-enough copy of the current state (each field is read
    // relaxed; the snapshot is a statistics view, not a synchronization).
    HistogramSnapshot snapshot() const noexcept;
    // Approximate p-quantile (p in [0, 1]); 0 when empty. Same estimate as
    // snapshot().quantile(p).
    double quantile(double p) const noexcept { return snapshot().quantile(p); }
    // Named quantile accessors, so consumers (the serve Stats reply, the
    // loadgen summary, the report sink) share one definition of "p99"
    // instead of each hard-coding the probability.
    double p50() const noexcept { return quantile(0.50); }
    double p90() const noexcept { return quantile(0.90); }
    double p99() const noexcept { return quantile(0.99); }
    void reset() noexcept;

private:
    static std::size_t bucket_index(double value) noexcept;

    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0};
    std::atomic<double> max_{0.0};
    std::atomic<bool> any_{false};
};

// Aggregated profile for one span name: count / total / duration histogram
// (mean and p99 derive from these on scrape).
struct SpanStat {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_ns{0};
    Histogram duration_ns;

    void record(std::uint64_t ns) noexcept {
        count.fetch_add(1, std::memory_order_relaxed);
        total_ns.fetch_add(ns, std::memory_order_relaxed);
        duration_ns.record(static_cast<double>(ns));
    }
    void reset() noexcept {
        count.store(0, std::memory_order_relaxed);
        total_ns.store(0, std::memory_order_relaxed);
        duration_ns.reset();
    }
};

// --- Scrape-time snapshots -------------------------------------------------

struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
};

struct GaugeSample {
    std::string name;
    double value = 0.0;
};

struct HistogramSample {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0, min = 0.0, max = 0.0, mean = 0.0;
    double p50 = 0.0, p90 = 0.0, p99 = 0.0;
};

struct SpanSample {
    std::string name;
    std::uint64_t count = 0;
    double total_ms = 0.0, mean_ms = 0.0, p50_ms = 0.0, p99_ms = 0.0;
};

// Process-global name -> metric map. Lookup takes a mutex, so
// instrumentation sites cache the returned reference in a function-local
// static (the DRE_* macros do this) and the steady-state cost is the metric
// update alone. Metrics live for the life of the process; reset() zeroes
// values but never invalidates references.
class Registry {
public:
    static Registry& instance();

    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    Histogram& histogram(std::string_view name);
    SpanStat& span_stat(std::string_view name);

    // Zero every metric (objects and references stay valid).
    void reset();

    // Sorted-by-name snapshots for the report sink.
    std::vector<CounterSample> counters() const;
    std::vector<GaugeSample> gauges() const;
    std::vector<HistogramSample> histograms() const;
    std::vector<SpanSample> spans() const;

    // Full-bucket snapshots for the OpenMetrics exposition and the
    // time-series ring (which diffs consecutive snapshots for windowed
    // quantiles). span_duration_snapshots covers each span profile's
    // duration histogram (values in nanoseconds).
    std::vector<std::pair<std::string, HistogramSnapshot>>
    histogram_snapshots() const;
    std::vector<std::pair<std::string, HistogramSnapshot>>
    span_duration_snapshots() const;

private:
    Registry() = default;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
    std::map<std::string, std::unique_ptr<SpanStat>, std::less<>> span_stats_;
};

inline Registry& registry() { return Registry::instance(); }

} // namespace dre::obs

#endif // DRE_OBS_METRICS_H
