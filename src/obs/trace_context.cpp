#include "obs/trace_context.h"

#include <atomic>

namespace dre::obs {
namespace {

thread_local TraceContext t_current{};

std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

TraceContext current_trace_context() noexcept { return t_current; }

std::uint64_t next_trace_id() noexcept {
    static std::atomic<std::uint64_t> counter{0};
    for (;;) {
        const std::uint64_t id =
            splitmix64(counter.fetch_add(1, std::memory_order_relaxed));
        if (id != 0) return id; // splitmix64 maps exactly one input to 0
    }
}

ScopedTraceContext::ScopedTraceContext(TraceContext ctx) noexcept
    : previous_(t_current) {
    t_current = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { t_current = previous_; }

} // namespace dre::obs
