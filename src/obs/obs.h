// Umbrella header for `dre::obs` — the instrumentation entry point.
//
// Include this (not metrics.h/span.h directly) from instrumented code and
// use the macros below. Each macro resolves its metric once per call site
// via a function-local static reference, so the steady-state hot-path cost
// is a single relaxed atomic op (counters/gauges) or two clock reads plus
// three relaxed atomics (spans).
//
// Compile-time gate: build with -DDRE_OBS_ENABLED=0 (CMake option
// DRE_OBS_ENABLED=OFF) and every macro expands to a no-op statement — no
// registry, no atomics, no clock reads. Library code must only touch obs
// through these macros (or inside `#if DRE_OBS_ENABLED` blocks) so the
// disabled build stays clean.
//
// Determinism contract: obs is strictly read-only with respect to results.
// Counters that feed the cross-thread-count fingerprint must be per-item
// deterministic (per-query / per-tuple / per-replicate sums); anything that
// depends on chunk geometry or timing (pool queue depths, idle time, span
// durations) is diagnostics-only and must never enter a byte-diffed file.
#ifndef DRE_OBS_OBS_H
#define DRE_OBS_OBS_H

#ifndef DRE_OBS_ENABLED
#define DRE_OBS_ENABLED 1
#endif

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/span.h"
#include "obs/trace_context.h"

#if DRE_OBS_ENABLED

#define DRE_OBS_CONCAT_INNER(a, b) a##b
#define DRE_OBS_CONCAT(a, b) DRE_OBS_CONCAT_INNER(a, b)

// Add `n` to the named counter. Name must be a string literal.
#define DRE_COUNTER_ADD(name, n)                                              \
    do {                                                                      \
        static ::dre::obs::Counter& DRE_OBS_CONCAT(dre_obs_counter_,          \
                                                   __LINE__) =                \
            ::dre::obs::registry().counter(name);                             \
        DRE_OBS_CONCAT(dre_obs_counter_, __LINE__)                            \
            .add(static_cast<std::uint64_t>(n));                              \
    } while (0)

#define DRE_COUNTER_INC(name) DRE_COUNTER_ADD(name, 1)

// Set the named gauge to `v` (double).
#define DRE_GAUGE_SET(name, v)                                                \
    do {                                                                      \
        static ::dre::obs::Gauge& DRE_OBS_CONCAT(dre_obs_gauge_, __LINE__) =  \
            ::dre::obs::registry().gauge(name);                               \
        DRE_OBS_CONCAT(dre_obs_gauge_, __LINE__)                              \
            .set(static_cast<double>(v));                                     \
    } while (0)

// Record `v` (double) into the named histogram.
#define DRE_HIST_RECORD(name, v)                                              \
    do {                                                                      \
        static ::dre::obs::Histogram& DRE_OBS_CONCAT(dre_obs_hist_,           \
                                                     __LINE__) =              \
            ::dre::obs::registry().histogram(name);                           \
        DRE_OBS_CONCAT(dre_obs_hist_, __LINE__)                               \
            .record(static_cast<double>(v));                                  \
    } while (0)

// RAII span covering the rest of the enclosing scope. One per scope per
// line; the name must be a string literal.
#define DRE_SPAN(name)                                                        \
    static ::dre::obs::SpanStat& DRE_OBS_CONCAT(dre_obs_span_stat_,           \
                                                __LINE__) =                   \
        ::dre::obs::registry().span_stat(name);                               \
    ::dre::obs::ScopedSpan DRE_OBS_CONCAT(dre_obs_span_, __LINE__)(           \
        name, DRE_OBS_CONCAT(dre_obs_span_stat_, __LINE__))

#else // !DRE_OBS_ENABLED

#define DRE_COUNTER_ADD(name, n) \
    do {                         \
        (void)sizeof(n);         \
    } while (0)
#define DRE_COUNTER_INC(name) ((void)0)
#define DRE_GAUGE_SET(name, v) \
    do {                       \
        (void)sizeof(v);       \
    } while (0)
#define DRE_HIST_RECORD(name, v) \
    do {                         \
        (void)sizeof(v);         \
    } while (0)
#define DRE_SPAN(name) ((void)0)

#endif // DRE_OBS_ENABLED

#endif // DRE_OBS_OBS_H
