#include "obs/span.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>

#include "obs/report.h"

namespace dre::obs {
namespace {

// Hard cap per thread so a forgotten --trace-out on a week-long run cannot
// exhaust memory; overflow is counted, never silently swallowed.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

std::atomic<bool> g_trace_enabled{false};

struct ThreadBuffer {
    std::mutex mutex;
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
    std::uint64_t dropped = 0;
};

// All thread buffers ever created. Buffers are shared_ptr-held both here
// and in each thread's TLS slot, so a pool thread exiting never invalidates
// an exporter's view. Leaked on purpose (see Registry::instance).
struct BufferList {
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    std::uint32_t next_tid = 0;
};

BufferList& buffer_list() {
    static BufferList* const list = new BufferList();
    return *list;
}

ThreadBuffer& local_buffer() {
    thread_local const std::shared_ptr<ThreadBuffer> buffer = [] {
        auto created = std::make_shared<ThreadBuffer>();
        BufferList& list = buffer_list();
        std::lock_guard<std::mutex> lock(list.mutex);
        created->tid = list.next_tid++;
        list.buffers.push_back(created);
        return created;
    }();
    return *buffer;
}

// Open traced spans on this thread, innermost last. Only touched while
// tracing is on (ScopedSpan guards with its span_id_ == 0 sentinel).
thread_local std::vector<std::uint64_t> t_span_stack;

std::uint64_t allocate_span_id() noexcept {
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

void push_event(const TraceEvent& event) noexcept {
    ThreadBuffer& buffer = local_buffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    if (buffer.events.size() >= kMaxEventsPerThread) {
        ++buffer.dropped;
        return;
    }
    TraceEvent stamped = event;
    stamped.tid = buffer.tid;
    buffer.events.push_back(stamped);
}

} // namespace

std::uint64_t now_ns() noexcept {
    static const std::chrono::steady_clock::time_point anchor =
        std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - anchor)
            .count());
}

void set_trace_enabled(bool enabled) noexcept {
    g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

bool trace_enabled() noexcept {
    return g_trace_enabled.load(std::memory_order_relaxed);
}

std::uint64_t current_span_id() noexcept {
    return t_span_stack.empty() ? 0 : t_span_stack.back();
}

std::uint64_t ScopedSpan::begin_traced_span(
    std::uint64_t* parent_span_id) noexcept {
    *parent_span_id = current_span_id();
    const std::uint64_t id = allocate_span_id();
    t_span_stack.push_back(id);
    return id;
}

void ScopedSpan::end_traced_span() noexcept {
    if (!t_span_stack.empty()) t_span_stack.pop_back();
}

void record_trace_event(const char* name, std::uint64_t start_ns,
                        std::uint64_t end_ns) noexcept {
    record_trace_event(name, start_ns, end_ns,
                       current_trace_context().trace_id, allocate_span_id(),
                       current_span_id());
}

void record_trace_event(const char* name, std::uint64_t start_ns,
                        std::uint64_t end_ns, std::uint64_t trace_id,
                        std::uint64_t span_id,
                        std::uint64_t parent_span_id) noexcept {
    TraceEvent event;
    event.name = name;
    event.start_ns = start_ns;
    event.end_ns = end_ns;
    event.trace_id = trace_id;
    event.span_id = span_id;
    event.parent_span_id = parent_span_id;
    push_event(event);
}

std::vector<TraceEvent> trace_events() {
    std::vector<TraceEvent> out;
    BufferList& list = buffer_list();
    std::lock_guard<std::mutex> list_lock(list.mutex);
    for (const auto& buffer : list.buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  if (a.tid != b.tid) return a.tid < b.tid;
                  if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                  return a.end_ns > b.end_ns; // enclosing span first
              });
    return out;
}

void clear_trace_events() {
    BufferList& list = buffer_list();
    std::lock_guard<std::mutex> list_lock(list.mutex);
    for (const auto& buffer : list.buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        buffer->events.clear();
        buffer->dropped = 0;
    }
}

namespace {

std::string hex_id(std::uint64_t id) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%" PRIx64, id);
    return buf;
}

} // namespace

std::string chrome_trace_json() {
    const std::vector<TraceEvent> events = trace_events();
    std::string out;
    out.reserve(events.size() * 160 + 64);
    JsonWriter json(&out);
    json.begin_object();
    json.key("displayTimeUnit");
    json.value(std::string_view("ms"));
    json.key("traceEvents");
    json.begin_array();
    for (const TraceEvent& event : events) {
        json.begin_object();
        json.key("name");
        json.value(std::string_view(event.name));
        json.key("ph");
        json.value(std::string_view("X"));
        json.key("pid");
        json.value(std::int64_t{0});
        json.key("tid");
        json.value(static_cast<std::int64_t>(event.tid));
        json.key("ts");
        json.value(static_cast<double>(event.start_ns) / 1e3);
        json.key("dur");
        json.value(static_cast<double>(event.end_ns - event.start_ns) / 1e3);
        // Ids as hex strings: u64 values do not survive a JSON consumer's
        // double conversion intact.
        json.key("args");
        json.begin_object();
        json.key("trace_id");
        json.value(std::string_view(hex_id(event.trace_id)));
        json.key("span_id");
        json.value(std::string_view(hex_id(event.span_id)));
        json.key("parent_span_id");
        json.value(std::string_view(hex_id(event.parent_span_id)));
        json.end_object();
        json.end_object();
    }
    json.end_array();
    json.end_object();
    out.push_back('\n');
    return out;
}

bool write_chrome_trace_file(const std::string& path) {
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) return false;
    const std::string json = chrome_trace_json();
    const bool ok = std::fwrite(json.data(), 1, json.size(), file) == json.size();
    return std::fclose(file) == 0 && ok;
}

} // namespace dre::obs
