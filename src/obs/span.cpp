#include "obs/span.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>

#include "obs/report.h"

namespace dre::obs {
namespace {

// Hard cap per thread so a forgotten --trace-out on a week-long run cannot
// exhaust memory; overflow is counted, never silently swallowed.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

std::atomic<bool> g_trace_enabled{false};

struct ThreadBuffer {
    std::mutex mutex;
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
    std::uint64_t dropped = 0;
};

// All thread buffers ever created. Buffers are shared_ptr-held both here
// and in each thread's TLS slot, so a pool thread exiting never invalidates
// an exporter's view. Leaked on purpose (see Registry::instance).
struct BufferList {
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    std::uint32_t next_tid = 0;
};

BufferList& buffer_list() {
    static BufferList* const list = new BufferList();
    return *list;
}

ThreadBuffer& local_buffer() {
    thread_local const std::shared_ptr<ThreadBuffer> buffer = [] {
        auto created = std::make_shared<ThreadBuffer>();
        BufferList& list = buffer_list();
        std::lock_guard<std::mutex> lock(list.mutex);
        created->tid = list.next_tid++;
        list.buffers.push_back(created);
        return created;
    }();
    return *buffer;
}

} // namespace

std::uint64_t now_ns() noexcept {
    static const std::chrono::steady_clock::time_point anchor =
        std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - anchor)
            .count());
}

void set_trace_enabled(bool enabled) noexcept {
    g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

bool trace_enabled() noexcept {
    return g_trace_enabled.load(std::memory_order_relaxed);
}

void record_trace_event(const char* name, std::uint64_t start_ns,
                        std::uint64_t end_ns) noexcept {
    ThreadBuffer& buffer = local_buffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    if (buffer.events.size() >= kMaxEventsPerThread) {
        ++buffer.dropped;
        return;
    }
    buffer.events.push_back({name, buffer.tid, start_ns, end_ns});
}

std::vector<TraceEvent> trace_events() {
    std::vector<TraceEvent> out;
    BufferList& list = buffer_list();
    std::lock_guard<std::mutex> list_lock(list.mutex);
    for (const auto& buffer : list.buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  if (a.tid != b.tid) return a.tid < b.tid;
                  if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                  return a.end_ns > b.end_ns; // enclosing span first
              });
    return out;
}

void clear_trace_events() {
    BufferList& list = buffer_list();
    std::lock_guard<std::mutex> list_lock(list.mutex);
    for (const auto& buffer : list.buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        buffer->events.clear();
        buffer->dropped = 0;
    }
}

std::string chrome_trace_json() {
    const std::vector<TraceEvent> events = trace_events();
    std::string out;
    out.reserve(events.size() * 96 + 64);
    JsonWriter json(&out);
    json.begin_object();
    json.key("displayTimeUnit");
    json.value(std::string_view("ms"));
    json.key("traceEvents");
    json.begin_array();
    for (const TraceEvent& event : events) {
        json.begin_object();
        json.key("name");
        json.value(std::string_view(event.name));
        json.key("ph");
        json.value(std::string_view("X"));
        json.key("pid");
        json.value(std::int64_t{0});
        json.key("tid");
        json.value(static_cast<std::int64_t>(event.tid));
        json.key("ts");
        json.value(static_cast<double>(event.start_ns) / 1e3);
        json.key("dur");
        json.value(static_cast<double>(event.end_ns - event.start_ns) / 1e3);
        json.end_object();
    }
    json.end_array();
    json.end_object();
    out.push_back('\n');
    return out;
}

bool write_chrome_trace_file(const std::string& path) {
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) return false;
    const std::string json = chrome_trace_json();
    const bool ok = std::fwrite(json.data(), 1, json.size(), file) == json.size();
    return std::fclose(file) == 0 && ok;
}

} // namespace dre::obs
