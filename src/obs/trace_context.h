// Request-scoped trace identity for `dre::obs` (DESIGN.md §13).
//
// A TraceContext names the request a piece of work belongs to. The serve
// dispatcher installs one (client-supplied or server-generated) before it
// runs an evaluation; every span the evaluation opens — including spans on
// dre::par pool workers, which inherit the submitter's context — records
// the trace_id alongside its timing, so one request's span tree can be
// filtered out of a whole process's chrome://tracing export.
//
// The context is plain data with thread-local storage and no macro gate:
// it compiles identically with DRE_OBS_ENABLED=0 (the type is cheap and
// the serve layer simply never installs a non-zero context there, so the
// wire fields stay zero). trace_id 0 means "untraced".
#ifndef DRE_OBS_TRACE_CONTEXT_H
#define DRE_OBS_TRACE_CONTEXT_H

#include <cstdint>

namespace dre::obs {

struct TraceContext {
    std::uint64_t trace_id = 0; // 0 = untraced

    explicit operator bool() const noexcept { return trace_id != 0; }
};

// The calling thread's current context ({0} when none is installed).
TraceContext current_trace_context() noexcept;

// A process-unique, non-zero trace id (an atomic counter through a
// splitmix64 finalizer, so ids look random but never collide or repeat).
std::uint64_t next_trace_id() noexcept;

// Installs `ctx` as the calling thread's context for the enclosing scope
// and restores the previous one on destruction. Scopes nest; pool workers
// use this to adopt the submitting thread's context for one batch.
class ScopedTraceContext {
public:
    explicit ScopedTraceContext(TraceContext ctx) noexcept;
    ~ScopedTraceContext();
    ScopedTraceContext(const ScopedTraceContext&) = delete;
    ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

private:
    TraceContext previous_;
};

} // namespace dre::obs

#endif // DRE_OBS_TRACE_CONTEXT_H
