// Scoped tracing for `dre::obs`.
//
// `DRE_SPAN("knn.query")` (obs/obs.h) opens an RAII span: on destruction the
// duration is folded into the span's aggregated profile (count / total /
// histogram -> mean / p99 on scrape), and — only when tracing has been
// switched on with set_trace_enabled(true) — a trace event is appended to a
// per-thread buffer. Each event carries the request's TraceContext plus a
// span_id / parent_span_id pair maintained on a thread-local span stack, so
// the export reconstructs per-request span trees: filter on trace_id, link
// children to parents. The buffers export as chrome://tracing JSON (load
// trace.json at chrome://tracing or ui.perfetto.dev; the ids ride in each
// event's "args").
//
// Cost model: profile recording is three relaxed atomics plus two
// steady_clock reads per span, so spans belong around coarse units (a query
// batch, an estimator pass, a bootstrap chunk), never per tuple. Trace
// events additionally take a span-id allocation and an uncontended
// per-thread mutex, paid only while tracing is on.
#ifndef DRE_OBS_SPAN_H
#define DRE_OBS_SPAN_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace dre::obs {

// Nanoseconds since the first call in this process (steady clock).
std::uint64_t now_ns() noexcept;

// Global switch for trace-event collection (the aggregated span profile is
// always on). Off by default; `dre_eval --trace-out`, `dre_serve
// --trace-out`, and the bench harnesses flip it.
void set_trace_enabled(bool enabled) noexcept;
bool trace_enabled() noexcept;

struct TraceEvent {
    const char* name = nullptr; // string literal from the DRE_SPAN site
    std::uint32_t tid = 0;      // process-local thread id (not the OS tid)
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
    std::uint64_t trace_id = 0;       // owning request; 0 = untraced work
    std::uint64_t span_id = 0;        // unique per event, never 0 once traced
    std::uint64_t parent_span_id = 0; // enclosing open span; 0 = tree root
};

// The innermost open traced span on the calling thread (0 when none) — the
// parent that a manually recorded event should link to.
std::uint64_t current_span_id() noexcept;

// Append one completed span to the calling thread's buffer, stamping the
// current TraceContext, a fresh span_id, and parent = current_span_id().
// For one-off events (queue wait) that have no enclosing ScopedSpan scope;
// instrumentation goes through ScopedSpan.
void record_trace_event(const char* name, std::uint64_t start_ns,
                        std::uint64_t end_ns) noexcept;

// Fully-specified form used by ScopedSpan, which allocated its ids at
// construction so children observed the right parent.
void record_trace_event(const char* name, std::uint64_t start_ns,
                        std::uint64_t end_ns, std::uint64_t trace_id,
                        std::uint64_t span_id,
                        std::uint64_t parent_span_id) noexcept;

// Snapshot of all threads' events, sorted by (tid, start, -end) so a parent
// span always precedes its children.
std::vector<TraceEvent> trace_events();

// Drop all buffered events (the buffers themselves persist).
void clear_trace_events();

// chrome://tracing JSON ({"traceEvents": [...]}, complete "X" events,
// timestamps in microseconds, trace/span ids as hex strings in "args").
std::string chrome_trace_json();
bool write_chrome_trace_file(const std::string& path);

// RAII span. Use via DRE_SPAN so the SpanStat lookup happens once per call
// site; `name` must outlive the process (string literals do).
class ScopedSpan {
public:
    ScopedSpan(const char* name, SpanStat& stat) noexcept
        : name_(name), stat_(stat), start_ns_(now_ns()) {
        if (trace_enabled()) {
            trace_id_ = current_trace_context().trace_id;
            span_id_ = begin_traced_span(&parent_span_id_);
        }
    }
    ~ScopedSpan() {
        const std::uint64_t end = now_ns();
        stat_.record(end - start_ns_);
        // span_id_ stays 0 when tracing was off at construction, so a
        // mid-span toggle can never unbalance the thread's span stack.
        if (span_id_ != 0) {
            record_trace_event(name_, start_ns_, end, trace_id_, span_id_,
                               parent_span_id_);
            end_traced_span();
        }
    }
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
    // Pushes a fresh span id onto the calling thread's span stack and
    // returns it; *parent_span_id receives the previous top (0 at root).
    static std::uint64_t begin_traced_span(
        std::uint64_t* parent_span_id) noexcept;
    static void end_traced_span() noexcept;

    const char* name_;
    SpanStat& stat_;
    std::uint64_t start_ns_;
    std::uint64_t trace_id_ = 0;
    std::uint64_t span_id_ = 0;
    std::uint64_t parent_span_id_ = 0;
};

} // namespace dre::obs

#endif // DRE_OBS_SPAN_H
