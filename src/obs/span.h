// Scoped tracing for `dre::obs`.
//
// `DRE_SPAN("knn.query")` (obs/obs.h) opens an RAII span: on destruction the
// duration is folded into the span's aggregated profile (count / total /
// histogram -> mean / p99 on scrape), and — only when tracing has been
// switched on with set_trace_enabled(true) — a (name, tid, start, end)
// event is appended to a per-thread trace buffer. The buffers export as
// chrome://tracing JSON (load trace.json at chrome://tracing or
// ui.perfetto.dev).
//
// Cost model: profile recording is three relaxed atomics plus two
// steady_clock reads per span, so spans belong around coarse units (a query
// batch, an estimator pass, a bootstrap chunk), never per tuple. Trace
// events additionally take an uncontended per-thread mutex, paid only while
// tracing is on.
#ifndef DRE_OBS_SPAN_H
#define DRE_OBS_SPAN_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dre::obs {

// Nanoseconds since the first call in this process (steady clock).
std::uint64_t now_ns() noexcept;

// Global switch for trace-event collection (the aggregated span profile is
// always on). Off by default; `dre_eval --trace-out` and the bench
// harnesses flip it.
void set_trace_enabled(bool enabled) noexcept;
bool trace_enabled() noexcept;

struct TraceEvent {
    const char* name = nullptr; // string literal from the DRE_SPAN site
    std::uint32_t tid = 0;      // process-local thread id (not the OS tid)
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
};

// Append one completed span to the calling thread's buffer (obs internal;
// instrumentation goes through ScopedSpan).
void record_trace_event(const char* name, std::uint64_t start_ns,
                        std::uint64_t end_ns) noexcept;

// Snapshot of all threads' events, sorted by (tid, start, -end) so a parent
// span always precedes its children.
std::vector<TraceEvent> trace_events();

// Drop all buffered events (the buffers themselves persist).
void clear_trace_events();

// chrome://tracing JSON ({"traceEvents": [...]}, complete "X" events,
// timestamps in microseconds).
std::string chrome_trace_json();
bool write_chrome_trace_file(const std::string& path);

// RAII span. Use via DRE_SPAN so the SpanStat lookup happens once per call
// site; `name` must outlive the process (string literals do).
class ScopedSpan {
public:
    ScopedSpan(const char* name, SpanStat& stat) noexcept
        : name_(name), stat_(stat), start_ns_(now_ns()) {}
    ~ScopedSpan() {
        const std::uint64_t end = now_ns();
        stat_.record(end - start_ns_);
        if (trace_enabled()) record_trace_event(name_, start_ns_, end);
    }
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
    const char* name_;
    SpanStat& stat_;
    std::uint64_t start_ns_;
};

} // namespace dre::obs

#endif // DRE_OBS_SPAN_H
