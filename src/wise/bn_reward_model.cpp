#include "wise/bn_reward_model.h"

#include <algorithm>
#include <stdexcept>

#include "wise/scenario.h"

namespace dre::wise {

BnRewardModel::BnRewardModel(std::size_t num_decisions, Encoder encoder,
                             std::vector<std::int32_t> variable_cardinalities,
                             std::size_t reward_buckets)
    : num_decisions_(num_decisions),
      encoder_(std::move(encoder)),
      cardinalities_(std::move(variable_cardinalities)),
      reward_buckets_(reward_buckets) {
    if (num_decisions_ == 0)
        throw std::invalid_argument("BnRewardModel: empty decision space");
    if (!encoder_) throw std::invalid_argument("BnRewardModel: null encoder");
    if (cardinalities_.empty())
        throw std::invalid_argument("BnRewardModel: no variables");
    if (reward_buckets_ < 2)
        throw std::invalid_argument("BnRewardModel: need >= 2 reward buckets");
}

std::size_t BnRewardModel::bucket_of(double reward) const {
    if (reward_hi_ <= reward_lo_) return 0;
    const double t = (reward - reward_lo_) / (reward_hi_ - reward_lo_);
    const auto bucket =
        static_cast<long long>(t * static_cast<double>(reward_buckets_));
    return static_cast<std::size_t>(std::clamp<long long>(
        bucket, 0, static_cast<long long>(reward_buckets_) - 1));
}

void BnRewardModel::fit(const Trace& trace) {
    validate_trace(trace);
    if (trace.empty()) throw std::invalid_argument("BnRewardModel::fit: empty trace");

    reward_lo_ = trace[0].reward;
    reward_hi_ = trace[0].reward;
    for (const auto& t : trace) {
        reward_lo_ = std::min(reward_lo_, t.reward);
        reward_hi_ = std::max(reward_hi_, t.reward);
    }

    // Rows: encoder variables ++ reward bucket.
    std::vector<Assignment> rows;
    rows.reserve(trace.size());
    bucket_means_.assign(reward_buckets_, 0.0);
    std::vector<std::size_t> bucket_counts(reward_buckets_, 0);
    for (const auto& t : trace) {
        Assignment row = encoder_(t.context, t.decision);
        if (row.size() != cardinalities_.size())
            throw std::invalid_argument("BnRewardModel: encoder arity mismatch");
        const std::size_t bucket = bucket_of(t.reward);
        row.push_back(static_cast<std::int32_t>(bucket));
        rows.push_back(std::move(row));
        bucket_means_[bucket] += t.reward;
        ++bucket_counts[bucket];
    }
    for (std::size_t b = 0; b < reward_buckets_; ++b) {
        if (bucket_counts[b] > 0) {
            bucket_means_[b] /= static_cast<double>(bucket_counts[b]);
        } else {
            // Empty bucket: use its midpoint.
            const double width =
                (reward_hi_ - reward_lo_) / static_cast<double>(reward_buckets_);
            bucket_means_[b] = reward_lo_ + (static_cast<double>(b) + 0.5) * width;
        }
    }

    std::vector<std::int32_t> all_cardinalities = cardinalities_;
    all_cardinalities.push_back(static_cast<std::int32_t>(reward_buckets_));
    network_ = std::make_unique<BayesianNetwork>(
        learn_chow_liu_tree(rows, all_cardinalities));
}

double BnRewardModel::predict(const ClientContext& context, Decision d) const {
    if (!network_) throw std::logic_error("BnRewardModel::predict before fit");
    if (d < 0 || static_cast<std::size_t>(d) >= num_decisions_)
        throw std::out_of_range("BnRewardModel::predict: decision out of range");
    const Assignment encoded = encoder_(context, d);
    std::map<std::size_t, std::int32_t> evidence;
    for (std::size_t v = 0; v < encoded.size(); ++v) evidence[v] = encoded[v];
    const std::vector<double> posterior =
        network_->posterior(cardinalities_.size(), evidence);
    double expectation = 0.0;
    for (std::size_t b = 0; b < posterior.size(); ++b)
        expectation += posterior[b] * bucket_means_[b];
    return expectation;
}

const BayesianNetwork& BnRewardModel::network() const {
    if (!network_) throw std::logic_error("BnRewardModel::network before fit");
    return *network_;
}

BnRewardModel make_wise_bn_model(std::size_t num_isps, std::size_t reward_buckets) {
    return BnRewardModel(
        kNumDecisions,
        [](const ClientContext& context, Decision d) -> Assignment {
            return {context.categorical.at(0),
                    static_cast<std::int32_t>(frontend_of(d)),
                    static_cast<std::int32_t>(backend_of(d))};
        },
        {static_cast<std::int32_t>(num_isps), static_cast<std::int32_t>(kNumFrontends),
         static_cast<std::int32_t>(kNumBackends)},
        reward_buckets);
}

} // namespace dre::wise
