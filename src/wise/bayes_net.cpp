#include "wise/bayes_net.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <limits>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>

#include "obs/obs.h"

namespace dre::wise {
namespace {

// Cap on the full-joint enumeration state space (reference path) and on any
// single variable-elimination factor: both fail loudly instead of thrashing.
constexpr double kStateSpaceCap = 2e7;

// A factor over a sorted set of variables, table in row-major order with
// the *last* variable fastest. Used only inside posterior().
struct Factor {
    std::vector<std::size_t> vars; // ascending
    std::vector<double> table;
};

// FNV-1a over the (query_var, evidence...) serialization.
struct PosteriorKeyHash {
    std::size_t operator()(const std::vector<std::int64_t>& key) const noexcept {
        std::uint64_t h = 0xcbf29ce484222325ull;
        for (std::int64_t v : key) {
            h ^= static_cast<std::uint64_t>(v);
            h *= 0x100000001b3ull;
        }
        return static_cast<std::size_t>(h);
    }
};

} // namespace

// Memoized posterior results. Concurrent readers (reward-model predictions
// inside dre::par loops) take the shared lock; the first thread to answer a
// query inserts under the exclusive lock. Cached values are bit-identical
// to a fresh computation, so hits never perturb determinism.
struct BayesianNetwork::PosteriorCache {
    mutable std::shared_mutex mutex;
    std::unordered_map<std::vector<std::int64_t>, std::vector<double>,
                       PosteriorKeyHash>
        map;
    // Per-network hit/miss accounting (the registry's cbn.* counters are
    // process-global). Relaxed: scrape-side statistics only.
    std::atomic<std::size_t> hits{0};
    std::atomic<std::size_t> misses{0};
};

BayesianNetwork::BayesianNetwork(std::vector<std::int32_t> cardinalities)
    : cardinalities_(std::move(cardinalities)),
      parents_(cardinalities_.size()),
      cpt_(cardinalities_.size()),
      posterior_cache_(std::make_shared<PosteriorCache>()) {
    if (cardinalities_.empty())
        throw std::invalid_argument("BayesianNetwork: no variables");
    for (std::int32_t c : cardinalities_)
        if (c <= 0)
            throw std::invalid_argument("BayesianNetwork: cardinality must be > 0");
    recompute_topological_order();
}

std::int32_t BayesianNetwork::cardinality(std::size_t var) const {
    if (var >= cardinalities_.size())
        throw std::out_of_range("BayesianNetwork::cardinality");
    return cardinalities_[var];
}

void BayesianNetwork::set_parents(std::size_t var, std::vector<std::size_t> parents) {
    if (var >= cardinalities_.size())
        throw std::out_of_range("BayesianNetwork::set_parents");
    for (std::size_t p : parents) {
        if (p >= cardinalities_.size())
            throw std::invalid_argument("BayesianNetwork: unknown parent");
        if (p == var)
            throw std::invalid_argument("BayesianNetwork: self-parent");
    }
    const std::vector<std::size_t> saved = std::move(parents_[var]);
    parents_[var] = std::move(parents);
    try {
        recompute_topological_order(); // throws on cycle
    } catch (...) {
        parents_[var] = saved;
        throw;
    }
    fitted_ = false;
    invalidate_posterior_cache();
}

const std::vector<std::size_t>& BayesianNetwork::parents(std::size_t var) const {
    if (var >= parents_.size()) throw std::out_of_range("BayesianNetwork::parents");
    return parents_[var];
}

void BayesianNetwork::recompute_topological_order() {
    const std::size_t n = cardinalities_.size();
    std::vector<int> state(n, 0); // 0 unvisited, 1 visiting, 2 done
    std::vector<std::size_t> order;
    order.reserve(n);
    // DFS over parent edges: parents come before children.
    std::function<void(std::size_t)> visit = [&](std::size_t v) {
        if (state[v] == 1)
            throw std::invalid_argument("BayesianNetwork: cycle detected");
        if (state[v] == 2) return;
        state[v] = 1;
        for (std::size_t p : parents_[v]) visit(p);
        state[v] = 2;
        order.push_back(v);
    };
    for (std::size_t v = 0; v < n; ++v) visit(v);
    topo_order_ = std::move(order);
}

void BayesianNetwork::check_assignment(const Assignment& assignment) const {
    if (assignment.size() != cardinalities_.size())
        throw std::invalid_argument("BayesianNetwork: assignment arity mismatch");
    for (std::size_t v = 0; v < assignment.size(); ++v)
        if (assignment[v] < 0 || assignment[v] >= cardinalities_[v])
            throw std::invalid_argument("BayesianNetwork: value out of range");
}

std::size_t BayesianNetwork::parent_configuration(std::size_t var,
                                                  const Assignment& assignment) const {
    std::size_t config = 0;
    for (std::size_t p : parents_[var]) {
        config = config * static_cast<std::size_t>(cardinalities_[p]) +
                 static_cast<std::size_t>(assignment[p]);
    }
    return config;
}

void BayesianNetwork::fit(const std::vector<Assignment>& rows, double laplace) {
    if (rows.empty()) throw std::invalid_argument("BayesianNetwork::fit: no rows");
    if (laplace < 0.0)
        throw std::invalid_argument("BayesianNetwork::fit: negative smoothing");
    for (const auto& row : rows) check_assignment(row);

    for (std::size_t var = 0; var < cardinalities_.size(); ++var) {
        std::size_t configs = 1;
        for (std::size_t p : parents_[var])
            configs *= static_cast<std::size_t>(cardinalities_[p]);
        const auto k = static_cast<std::size_t>(cardinalities_[var]);
        std::vector<double> counts(configs * k, laplace);
        for (const auto& row : rows) {
            const std::size_t config = parent_configuration(var, row);
            counts[config * k + static_cast<std::size_t>(row[var])] += 1.0;
        }
        // Normalize per configuration.
        for (std::size_t c = 0; c < configs; ++c) {
            double total = 0.0;
            for (std::size_t v = 0; v < k; ++v) total += counts[c * k + v];
            if (total <= 0.0) {
                for (std::size_t v = 0; v < k; ++v)
                    counts[c * k + v] = 1.0 / static_cast<double>(k);
            } else {
                for (std::size_t v = 0; v < k; ++v) counts[c * k + v] /= total;
            }
        }
        cpt_[var] = std::move(counts);
    }
    fitted_ = true;
    invalidate_posterior_cache();
}

double BayesianNetwork::conditional_probability(std::size_t var,
                                                const Assignment& assignment) const {
    if (!fitted_) throw std::logic_error("BayesianNetwork used before fit");
    check_assignment(assignment);
    if (var >= cardinalities_.size())
        throw std::out_of_range("BayesianNetwork::conditional_probability");
    const auto k = static_cast<std::size_t>(cardinalities_[var]);
    const std::size_t config = parent_configuration(var, assignment);
    return cpt_[var][config * k + static_cast<std::size_t>(assignment[var])];
}

double BayesianNetwork::joint_probability(const Assignment& assignment) const {
    double probability = 1.0;
    for (std::size_t var = 0; var < cardinalities_.size(); ++var)
        probability *= conditional_probability(var, assignment);
    return probability;
}

Assignment BayesianNetwork::sample(stats::Rng& rng) const {
    if (!fitted_) throw std::logic_error("BayesianNetwork used before fit");
    Assignment assignment(cardinalities_.size(), 0);
    for (std::size_t var : topo_order_) {
        const auto k = static_cast<std::size_t>(cardinalities_[var]);
        const std::size_t config = parent_configuration(var, assignment);
        const std::span<const double> probs(cpt_[var].data() + config * k, k);
        assignment[var] = static_cast<std::int32_t>(rng.categorical(probs));
    }
    return assignment;
}

void BayesianNetwork::check_query(
    std::size_t query_var,
    const std::map<std::size_t, std::int32_t>& evidence) const {
    if (!fitted_) throw std::logic_error("BayesianNetwork used before fit");
    if (query_var >= cardinalities_.size())
        throw std::out_of_range("BayesianNetwork::posterior");
    for (const auto& [var, value] : evidence) {
        if (var >= cardinalities_.size())
            throw std::invalid_argument("BayesianNetwork: unknown evidence variable");
        if (value < 0 || value >= cardinalities_[var])
            throw std::invalid_argument("BayesianNetwork: evidence value out of range");
    }
}

void BayesianNetwork::invalidate_posterior_cache() {
    DRE_COUNTER_INC("cbn.cache_invalidations");
    posterior_cache_ = std::make_shared<PosteriorCache>();
}

std::size_t BayesianNetwork::posterior_cache_size() const {
    const std::shared_ptr<PosteriorCache> cache = posterior_cache_;
    std::shared_lock<std::shared_mutex> lock(cache->mutex);
    return cache->map.size();
}

BayesianNetwork::CacheStats BayesianNetwork::posterior_cache_stats() const {
    const std::shared_ptr<PosteriorCache> cache = posterior_cache_;
    CacheStats stats;
    stats.hits = cache->hits.load(std::memory_order_relaxed);
    stats.misses = cache->misses.load(std::memory_order_relaxed);
    std::shared_lock<std::shared_mutex> lock(cache->mutex);
    stats.size = cache->map.size();
    return stats;
}

std::vector<double> BayesianNetwork::posterior_enumerate(
    std::size_t query_var,
    const std::map<std::size_t, std::int32_t>& evidence) const {
    check_query(query_var, evidence);

    // Enumerate the full joint over the free variables (small networks).
    std::vector<std::size_t> free_vars;
    for (std::size_t v = 0; v < cardinalities_.size(); ++v)
        if (v != query_var && !evidence.contains(v)) free_vars.push_back(v);
    double state_space = static_cast<double>(cardinalities_[query_var]);
    for (std::size_t v : free_vars) state_space *= cardinalities_[v];
    if (state_space > kStateSpaceCap)
        throw std::runtime_error("BayesianNetwork::posterior: state space too large");

    Assignment assignment(cardinalities_.size(), 0);
    for (const auto& [var, value] : evidence)
        if (var != query_var) assignment[var] = value;

    const auto kq = static_cast<std::size_t>(cardinalities_[query_var]);
    std::vector<double> unnormalized(kq, 0.0);
    // Recursive enumeration over free variables.
    std::function<void(std::size_t)> enumerate = [&](std::size_t index) {
        if (index == free_vars.size()) {
            for (std::size_t q = 0; q < kq; ++q) {
                assignment[query_var] = static_cast<std::int32_t>(q);
                unnormalized[q] += joint_probability(assignment);
            }
            return;
        }
        const std::size_t var = free_vars[index];
        for (std::int32_t v = 0; v < cardinalities_[var]; ++v) {
            assignment[var] = v;
            enumerate(index + 1);
        }
    };
    enumerate(0);

    double total = 0.0;
    for (double u : unnormalized) total += u;
    if (total <= 0.0)
        throw std::runtime_error("BayesianNetwork::posterior: zero-probability evidence");
    for (double& u : unnormalized) u /= total;
    return unnormalized;
}

std::vector<double> BayesianNetwork::posterior(
    std::size_t query_var,
    const std::map<std::size_t, std::int32_t>& evidence) const {
    check_query(query_var, evidence);
    const std::size_t n = cardinalities_.size();

    // --- Memo lookup ------------------------------------------------------
    std::vector<std::int64_t> key;
    key.reserve(1 + 2 * evidence.size());
    key.push_back(static_cast<std::int64_t>(query_var));
    for (const auto& [var, value] : evidence) { // std::map: sorted, canonical
        if (var == query_var) continue;         // evidence on the query is ignored
        key.push_back(static_cast<std::int64_t>(var));
        key.push_back(static_cast<std::int64_t>(value));
    }
    const std::shared_ptr<PosteriorCache> cache = posterior_cache_;
    {
        std::shared_lock<std::shared_mutex> lock(cache->mutex);
        const auto it = cache->map.find(key);
        if (it != cache->map.end()) {
            cache->hits.fetch_add(1, std::memory_order_relaxed);
            DRE_COUNTER_INC("cbn.cache_hits");
            return it->second;
        }
    }
    cache->misses.fetch_add(1, std::memory_order_relaxed);
    DRE_COUNTER_INC("cbn.cache_misses");
    DRE_SPAN("cbn.posterior_ve");

    // --- Variable elimination --------------------------------------------
    // Evidence-reduced values per variable; kFree marks a free variable.
    constexpr std::int32_t kFree = -1;
    std::vector<std::int32_t> fixed(n, kFree);
    for (const auto& [var, value] : evidence)
        if (var != query_var) fixed[var] = value;

    const auto card = [&](std::size_t v) {
        return static_cast<std::size_t>(cardinalities_[v]);
    };

    // Index of `values` into a factor's table (vars ascending, last fastest).
    const auto table_index = [&](const Factor& f,
                                 const std::vector<std::int32_t>& values) {
        std::size_t idx = 0;
        for (std::size_t v : f.vars)
            idx = idx * card(v) + static_cast<std::size_t>(values[v]);
        return idx;
    };

    // Build a factor over the free variables of `scope` (ascending) by
    // evaluating `eval` at every combination, odometer order (last fastest).
    std::vector<std::int32_t> values(n, 0);
    for (std::size_t v = 0; v < n; ++v)
        if (fixed[v] != kFree) values[v] = fixed[v];
    const auto make_factor = [&](std::vector<std::size_t> scope,
                                 const auto& eval) {
        Factor f;
        f.vars = std::move(scope);
        double size = 1.0;
        for (std::size_t v : f.vars) size *= static_cast<double>(card(v));
        if (size > kStateSpaceCap)
            throw std::runtime_error(
                "BayesianNetwork::posterior: state space too large");
        f.table.resize(static_cast<std::size_t>(size));
        DRE_HIST_RECORD("cbn.ve_factor_cells", f.table.size());
        for (std::size_t v : f.vars) values[v] = 0;
        for (std::size_t idx = 0; idx < f.table.size(); ++idx) {
            f.table[idx] = eval(values);
            // Advance the odometer over f.vars, last variable fastest.
            for (std::size_t pos = f.vars.size(); pos-- > 0;) {
                const std::size_t v = f.vars[pos];
                if (static_cast<std::size_t>(++values[v]) < card(v)) break;
                values[v] = 0;
            }
        }
        return f;
    };

    // One evidence-reduced CPT factor per variable.
    std::vector<Factor> factors;
    factors.reserve(n);
    for (std::size_t v = 0; v < n; ++v) {
        std::vector<std::size_t> scope;
        for (std::size_t p : parents_[v])
            if (fixed[p] == kFree) scope.push_back(p);
        if (fixed[v] == kFree) scope.push_back(v);
        std::sort(scope.begin(), scope.end());
        scope.erase(std::unique(scope.begin(), scope.end()), scope.end());
        factors.push_back(make_factor(
            std::move(scope), [&](const std::vector<std::int32_t>& vals) {
                std::size_t config = 0;
                for (std::size_t p : parents_[v])
                    config = config * card(p) + static_cast<std::size_t>(vals[p]);
                return cpt_[v][config * card(v) + static_cast<std::size_t>(vals[v])];
            }));
    }

    std::vector<std::size_t> to_eliminate;
    for (std::size_t v = 0; v < n; ++v)
        if (v != query_var && fixed[v] == kFree) to_eliminate.push_back(v);

    while (!to_eliminate.empty()) {
        // Min-width heuristic: eliminate the variable whose product factor
        // (union of adjacent scopes minus the variable) is smallest; ties
        // broken by variable index, so the elimination order — and hence the
        // floating-point result — is fully deterministic.
        std::size_t best_var = 0, best_pos = 0;
        double best_width = std::numeric_limits<double>::infinity();
        for (std::size_t pos = 0; pos < to_eliminate.size(); ++pos) {
            const std::size_t u = to_eliminate[pos];
            std::vector<std::size_t> joint;
            for (const Factor& f : factors) {
                if (std::find(f.vars.begin(), f.vars.end(), u) == f.vars.end())
                    continue;
                joint.insert(joint.end(), f.vars.begin(), f.vars.end());
            }
            std::sort(joint.begin(), joint.end());
            joint.erase(std::unique(joint.begin(), joint.end()), joint.end());
            double width = 1.0;
            for (std::size_t v : joint)
                if (v != u) width *= static_cast<double>(card(v));
            if (width < best_width) {
                best_width = width;
                best_var = u;
                best_pos = pos;
            }
        }
        const std::size_t u = best_var;
        to_eliminate.erase(to_eliminate.begin() +
                           static_cast<std::ptrdiff_t>(best_pos));

        // Gather the factors adjacent to u (in list order — deterministic
        // product order), multiply, and sum u out.
        std::vector<Factor> adjacent, remaining;
        for (Factor& f : factors) {
            if (std::find(f.vars.begin(), f.vars.end(), u) != f.vars.end())
                adjacent.push_back(std::move(f));
            else
                remaining.push_back(std::move(f));
        }
        std::vector<std::size_t> product_scope;
        for (const Factor& f : adjacent)
            product_scope.insert(product_scope.end(), f.vars.begin(),
                                 f.vars.end());
        std::sort(product_scope.begin(), product_scope.end());
        product_scope.erase(
            std::unique(product_scope.begin(), product_scope.end()),
            product_scope.end());

        Factor summed;
        for (std::size_t v : product_scope)
            if (v != u) summed.vars.push_back(v);
        double out_size = 1.0;
        for (std::size_t v : summed.vars)
            out_size *= static_cast<double>(card(v));
        if (out_size * static_cast<double>(card(u)) > kStateSpaceCap)
            throw std::runtime_error(
                "BayesianNetwork::posterior: state space too large");
        summed.table.assign(static_cast<std::size_t>(out_size), 0.0);
        DRE_HIST_RECORD("cbn.ve_factor_cells", summed.table.size());

        // Odometer over the product scope (u included); each cell of the
        // product accumulates into the u-summed output slot.
        for (std::size_t v : product_scope) values[v] = 0;
        double cells = out_size * static_cast<double>(card(u));
        for (std::size_t cell = 0; cell < static_cast<std::size_t>(cells);
             ++cell) {
            double product = 1.0;
            for (const Factor& f : adjacent) product *= f.table[table_index(f, values)];
            summed.table[table_index(summed, values)] += product;
            for (std::size_t pos = product_scope.size(); pos-- > 0;) {
                const std::size_t v = product_scope[pos];
                if (static_cast<std::size_t>(++values[v]) < card(v)) break;
                values[v] = 0;
            }
        }
        factors = std::move(remaining);
        factors.push_back(std::move(summed));
    }

    // Multiply the survivors (scopes are {query_var} or empty) and normalize.
    const auto kq = card(query_var);
    std::vector<double> result(kq, 1.0);
    for (const Factor& f : factors) {
        if (f.vars.empty()) {
            for (double& r : result) r *= f.table[0];
        } else {
            for (std::size_t q = 0; q < kq; ++q) result[q] *= f.table[q];
        }
    }
    double total = 0.0;
    for (double r : result) total += r;
    if (total <= 0.0)
        throw std::runtime_error("BayesianNetwork::posterior: zero-probability evidence");
    for (double& r : result) r /= total;

    {
        std::unique_lock<std::shared_mutex> lock(cache->mutex);
        cache->map.emplace(key, result);
    }
    return result;
}

double mutual_information(const std::vector<Assignment>& rows, std::size_t a,
                          std::size_t b, std::int32_t cardinality_a,
                          std::int32_t cardinality_b) {
    if (rows.empty()) throw std::invalid_argument("mutual_information: no rows");
    const auto ka = static_cast<std::size_t>(cardinality_a);
    const auto kb = static_cast<std::size_t>(cardinality_b);
    std::vector<double> joint(ka * kb, 0.0), pa(ka, 0.0), pb(kb, 0.0);
    const double weight = 1.0 / static_cast<double>(rows.size());
    for (const auto& row : rows) {
        const auto va = static_cast<std::size_t>(row[a]);
        const auto vb = static_cast<std::size_t>(row[b]);
        if (va >= ka || vb >= kb)
            throw std::invalid_argument("mutual_information: value out of range");
        joint[va * kb + vb] += weight;
        pa[va] += weight;
        pb[vb] += weight;
    }
    double mi = 0.0;
    for (std::size_t i = 0; i < ka; ++i)
        for (std::size_t j = 0; j < kb; ++j) {
            const double pij = joint[i * kb + j];
            if (pij > 0.0) mi += pij * std::log(pij / (pa[i] * pb[j]));
        }
    return std::max(mi, 0.0);
}

BayesianNetwork learn_chow_liu_tree(const std::vector<Assignment>& rows,
                                    std::vector<std::int32_t> cardinalities,
                                    double laplace) {
    if (rows.empty()) throw std::invalid_argument("learn_chow_liu_tree: no rows");
    const std::size_t n = cardinalities.size();
    BayesianNetwork network(cardinalities);
    if (n > 1) {
        // Prim's algorithm on the complete MI graph, rooted at variable 0.
        std::vector<bool> in_tree(n, false);
        std::vector<double> best_mi(n, -1.0);
        std::vector<std::size_t> best_parent(n, 0);
        in_tree[0] = true;
        for (std::size_t v = 1; v < n; ++v) {
            best_mi[v] = mutual_information(rows, 0, v, cardinalities[0],
                                            cardinalities[v]);
            best_parent[v] = 0;
        }
        for (std::size_t added = 1; added < n; ++added) {
            std::size_t pick = n;
            for (std::size_t v = 0; v < n; ++v)
                if (!in_tree[v] && (pick == n || best_mi[v] > best_mi[pick]))
                    pick = v;
            in_tree[pick] = true;
            network.set_parents(pick, {best_parent[pick]});
            for (std::size_t v = 0; v < n; ++v) {
                if (in_tree[v]) continue;
                const double mi = mutual_information(rows, pick, v,
                                                     cardinalities[pick],
                                                     cardinalities[v]);
                if (mi > best_mi[v]) {
                    best_mi[v] = mi;
                    best_parent[v] = pick;
                }
            }
        }
    }
    network.fit(rows, laplace);
    return network;
}

double bic_score(const std::vector<Assignment>& rows,
                 const std::vector<std::int32_t>& cardinalities,
                 const std::vector<std::vector<std::size_t>>& parents) {
    if (rows.empty()) throw std::invalid_argument("bic_score: no rows");
    if (parents.size() != cardinalities.size())
        throw std::invalid_argument("bic_score: arity mismatch");
    const auto n = static_cast<double>(rows.size());
    double score = 0.0;
    for (std::size_t var = 0; var < cardinalities.size(); ++var) {
        // Count (parent config, value) occurrences.
        std::size_t configs = 1;
        for (std::size_t p : parents[var])
            configs *= static_cast<std::size_t>(cardinalities[p]);
        const auto k = static_cast<std::size_t>(cardinalities[var]);
        std::vector<double> counts(configs * k, 0.0);
        std::vector<double> config_totals(configs, 0.0);
        for (const auto& row : rows) {
            std::size_t config = 0;
            for (std::size_t p : parents[var])
                config = config * static_cast<std::size_t>(cardinalities[p]) +
                         static_cast<std::size_t>(row[p]);
            counts[config * k + static_cast<std::size_t>(row[var])] += 1.0;
            config_totals[config] += 1.0;
        }
        // Max-likelihood log-likelihood contribution.
        for (std::size_t c = 0; c < configs; ++c) {
            if (config_totals[c] == 0.0) continue;
            for (std::size_t v = 0; v < k; ++v) {
                const double count = counts[c * k + v];
                if (count > 0.0)
                    score += count * std::log(count / config_totals[c]);
            }
        }
        // Complexity penalty.
        score -= 0.5 * std::log(n) * static_cast<double>(configs * (k - 1));
    }
    return score;
}

BayesianNetwork learn_hill_climbing(const std::vector<Assignment>& rows,
                                    std::vector<std::int32_t> cardinalities,
                                    const HillClimbOptions& options) {
    if (rows.empty())
        throw std::invalid_argument("learn_hill_climbing: no rows");
    const std::size_t n = cardinalities.size();
    std::vector<std::vector<std::size_t>> parents(n);
    double current = bic_score(rows, cardinalities, parents);

    // Cycle check on a candidate parent map (DFS).
    const auto acyclic = [&](const std::vector<std::vector<std::size_t>>& ps) {
        std::vector<int> state(n, 0);
        std::function<bool(std::size_t)> visit = [&](std::size_t v) -> bool {
            if (state[v] == 1) return false;
            if (state[v] == 2) return true;
            state[v] = 1;
            for (std::size_t p : ps[v])
                if (!visit(p)) return false;
            state[v] = 2;
            return true;
        };
        for (std::size_t v = 0; v < n; ++v)
            if (!visit(v)) return false;
        return true;
    };

    for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
        double best_gain = 1e-9;
        std::vector<std::vector<std::size_t>> best_parents;
        const auto consider = [&](std::vector<std::vector<std::size_t>> candidate) {
            if (!acyclic(candidate)) return;
            const double score = bic_score(rows, cardinalities, candidate);
            if (score - current > best_gain) {
                best_gain = score - current;
                best_parents = std::move(candidate);
            }
        };
        for (std::size_t child = 0; child < n; ++child) {
            // Single-edge additions and removals.
            for (std::size_t parent = 0; parent < n; ++parent) {
                if (parent == child) continue;
                const auto it = std::find(parents[child].begin(),
                                          parents[child].end(), parent);
                std::vector<std::vector<std::size_t>> candidate = parents;
                if (it == parents[child].end()) {
                    if (parents[child].size() >= options.max_parents) continue;
                    candidate[child].push_back(parent);
                } else {
                    candidate[child].erase(candidate[child].begin() +
                                           (it - parents[child].begin()));
                }
                consider(std::move(candidate));
            }
            // Paired additions: v-structures (e.g. XOR-like interactions)
            // give no gain from either parent alone, so greedy single-edge
            // search cannot discover them — try both at once.
            if (parents[child].size() + 2 > options.max_parents) continue;
            for (std::size_t p1 = 0; p1 < n; ++p1) {
                if (p1 == child) continue;
                if (std::find(parents[child].begin(), parents[child].end(), p1) !=
                    parents[child].end())
                    continue;
                for (std::size_t p2 = p1 + 1; p2 < n; ++p2) {
                    if (p2 == child) continue;
                    if (std::find(parents[child].begin(), parents[child].end(),
                                  p2) != parents[child].end())
                        continue;
                    std::vector<std::vector<std::size_t>> candidate = parents;
                    candidate[child].push_back(p1);
                    candidate[child].push_back(p2);
                    consider(std::move(candidate));
                }
            }
        }
        if (best_parents.empty()) break;
        parents = std::move(best_parents);
        current += best_gain;
    }

    BayesianNetwork network(cardinalities);
    for (std::size_t v = 0; v < n; ++v)
        if (!parents[v].empty()) network.set_parents(v, parents[v]);
    network.fit(rows, options.laplace);
    return network;
}

} // namespace dre::wise
