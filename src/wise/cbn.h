// A small causal-Bayesian-network-style predictor in the spirit of
// WISE (Tariq et al. [38]).
//
// WISE learns a CBN over discrete configuration variables and predicts a
// continuous response variable (request response time) for what-if
// configurations. We model the response node's conditional expectation
// with a *hierarchical conditional table*: parents are selected greedily by
// explained variance, and prediction for an assignment backs off along the
// parent order until it reaches a cell with enough data.
//
// This back-off is precisely how the paper's Fig. 4 pathology arises: with
// a small trace the full-interaction cell (ISP-1, FE-1, BE-2) is starved,
// the model falls back to a coarser conditional ("requests on FE-1 are
// slow") and mispredicts the what-if combination.
#ifndef DRE_WISE_CBN_H
#define DRE_WISE_CBN_H

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace dre::wise {

// A categorical assignment: value per variable, values in [0, cardinality).
using Assignment = std::vector<std::int32_t>;

struct CbnOptions {
    // Cells with fewer samples than this are considered unreliable and
    // trigger back-off to the next-coarser conditional.
    std::size_t min_cell_samples = 30;
    // Stop adding parents once the incremental variance reduction drops
    // below this fraction of total variance.
    double min_gain_fraction = 0.01;
    // Cap on the number of parents (the WISE paper prunes aggressively).
    std::size_t max_parents = 4;
};

class CbnResponseModel {
public:
    explicit CbnResponseModel(std::vector<std::int32_t> cardinalities,
                              CbnOptions options = {});

    // Learn structure (parent order) and conditional tables from data.
    void fit(const std::vector<Assignment>& rows, std::span<const double> response);

    // E^[response | assignment] with hierarchical back-off.
    double predict(const Assignment& assignment) const;

    // Selected parents in greedy order (for tests / introspection).
    const std::vector<std::size_t>& parent_order() const noexcept {
        return parent_order_;
    }

    // Number of samples in the deepest cell used to answer `assignment`
    // (diagnostic: 0 means global-mean fallback).
    std::size_t support(const Assignment& assignment) const;

    bool fitted() const noexcept { return fitted_; }

private:
    struct Cell {
        double mean = 0.0;
        std::size_t count = 0;
        void add(double x) {
            ++count;
            mean += (x - mean) / static_cast<double>(count);
        }
    };
    // Level L table: keyed by the first L parents' values.
    using Table = std::unordered_map<std::uint64_t, Cell>;

    std::uint64_t key_for(const Assignment& assignment, std::size_t depth) const;
    void check_assignment(const Assignment& assignment) const;

    std::vector<std::int32_t> cardinalities_;
    CbnOptions options_;
    std::vector<std::size_t> parent_order_;
    std::vector<Table> tables_; // tables_[L-1] conditions on first L parents
    double global_mean_ = 0.0;
    std::size_t n_ = 0;
    bool fitted_ = false;
};

} // namespace dre::wise

#endif // DRE_WISE_CBN_H
