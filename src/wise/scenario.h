// The Fig. 4 / Fig. 7a scenario: CDN request routing with an incomplete
// learned causal model.
//
// World: requests from 2 ISPs choose a frontend (FE-1/FE-2) and a backend
// (BE-1/BE-2); a request's decision is the (FE, BE) pair, i.e. 4 decisions.
// Ground truth: "the response time of a request from ISP-1 is high only
// when it uses BE-1 and FE-1"; everything else is short.
//
// Trace (paper §4.2): "500 clients for each measurement (arrow) in Figure 4,
// and 5 clients for each remaining choice of backend and frontend". The new
// policy keeps the same traffic pattern "except that 50% of ISP-1 clients
// use FE-1 and BE-2".
//
// The WISE-style evaluator (DM over a CbnResponseModel) mispredicts the
// starved (ISP-1, FE-1, BE-2) cell; DR repairs it with the 5 logged clients.
#ifndef DRE_WISE_SCENARIO_H
#define DRE_WISE_SCENARIO_H

#include <memory>

#include "core/environment.h"
#include "core/policy.h"
#include "core/reward_model.h"
#include "stats/rng.h"
#include "wise/cbn.h"

namespace dre::wise {

// Decisions: (frontend, backend) pairs.
inline constexpr std::size_t kNumFrontends = 2;
inline constexpr std::size_t kNumBackends = 2;
inline constexpr std::size_t kNumDecisions = kNumFrontends * kNumBackends;

Decision encode_decision(std::size_t frontend, std::size_t backend);
std::size_t frontend_of(Decision d);
std::size_t backend_of(Decision d);

struct WiseWorldConfig {
    std::size_t num_isps = 2;
    double short_response_ms = 50.0;
    double long_response_ms = 250.0;
    double noise_sigma = 10.0; // Gaussian response-time noise
};

// Environment: context = {isp} (categorical); reward = -response_time/100.
class RequestRoutingEnv final : public core::Environment {
public:
    explicit RequestRoutingEnv(WiseWorldConfig config);

    ClientContext sample_context(stats::Rng& rng) const override;
    Reward sample_reward(const ClientContext& context, Decision d,
                         stats::Rng& rng) const override;
    double expected_reward(const ClientContext& context, Decision d,
                           stats::Rng& rng, int samples) const override;
    std::size_t num_decisions() const noexcept override { return kNumDecisions; }

    double mean_response_ms(std::int32_t isp, Decision d) const;
    const WiseWorldConfig& config() const noexcept { return config_; }

private:
    WiseWorldConfig config_;
};

// Old policy: per ISP, weight 500 on the "observed arrow" decision and 5 on
// each other decision (normalized) — reproducing the trace skew.
std::shared_ptr<core::Policy> make_logging_policy(std::size_t num_isps,
                                                  double observed_weight = 500.0,
                                                  double rare_weight = 5.0);

// New policy: same as logging, except 50% of ISP-1 clients use (FE-1, BE-2)
// with the remaining mass scaled down proportionally.
std::shared_ptr<core::Policy> make_new_policy(std::size_t num_isps,
                                              double shifted_fraction = 0.5,
                                              double observed_weight = 500.0,
                                              double rare_weight = 5.0);

// WISE's reward model: a CBN over (isp, frontend, backend) fit on the trace,
// adapted to the RewardModel interface (predicts reward = -RT/100).
class WiseCbnRewardModel final : public core::RewardModel {
public:
    explicit WiseCbnRewardModel(CbnOptions options = {});

    void fit(const Trace& trace);

    double predict(const ClientContext& context, Decision d) const override;
    std::size_t num_decisions() const noexcept override { return kNumDecisions; }

    const CbnResponseModel& cbn() const;

private:
    CbnOptions options_;
    std::unique_ptr<CbnResponseModel> model_;
};

} // namespace dre::wise

#endif // DRE_WISE_SCENARIO_H
