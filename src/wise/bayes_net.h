// Discrete Bayesian network with explicit CPTs — the general machinery
// behind WISE-style what-if reasoning [38].
//
// Features: arbitrary DAG structure with cycle detection, CPT estimation
// from data (Laplace-smoothed), ancestral sampling, exact posterior
// inference by variable elimination with a memoized query cache (plus the
// original full-joint enumeration as a reference implementation), and
// Chow-Liu tree structure learning (maximum mutual-information spanning
// tree) for learning structure from traces.
#ifndef DRE_WISE_BAYES_NET_H
#define DRE_WISE_BAYES_NET_H

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "stats/rng.h"
#include "wise/cbn.h" // Assignment

namespace dre::wise {

class BayesianNetwork {
public:
    // One node per variable; cardinalities fixed at construction.
    explicit BayesianNetwork(std::vector<std::int32_t> cardinalities);

    std::size_t num_variables() const noexcept { return cardinalities_.size(); }
    std::int32_t cardinality(std::size_t var) const;

    // Replace `var`'s parent set. Throws std::invalid_argument if this
    // would create a cycle or reference an unknown variable.
    void set_parents(std::size_t var, std::vector<std::size_t> parents);
    const std::vector<std::size_t>& parents(std::size_t var) const;

    // Estimate all CPTs from complete-data rows with Laplace smoothing.
    void fit(const std::vector<Assignment>& rows, double laplace = 1.0);

    // P(var = value | parent values taken from `assignment`).
    double conditional_probability(std::size_t var, const Assignment& assignment) const;

    // Joint probability of a complete assignment.
    double joint_probability(const Assignment& assignment) const;

    // Ancestral sample of a complete assignment.
    Assignment sample(stats::Rng& rng) const;

    // Exact posterior P(query_var | evidence) by variable elimination
    // (min-width elimination order, deterministic index tie-break), with
    // results memoized per (query_var, evidence) — repeated what-if queries
    // (the reward-model hot path) are answered from the cache. The cache is
    // invalidated by fit() / set_parents() and is safe to populate from
    // concurrent readers. Throws std::runtime_error if an intermediate
    // factor would exceed the state-space cap.
    std::vector<double> posterior(std::size_t query_var,
                                  const std::map<std::size_t, std::int32_t>& evidence) const;

    // Reference implementation: exact posterior by enumeration of the full
    // joint over the free variables. Used by the equivalence tests and the
    // kernel benchmarks; same validation and error behaviour as the
    // original posterior(). Throws std::runtime_error if the state space
    // exceeds the (tiny) enumeration cap.
    std::vector<double> posterior_enumerate(
        std::size_t query_var,
        const std::map<std::size_t, std::int32_t>& evidence) const;

    // Number of memoized posterior queries (diagnostics / tests).
    std::size_t posterior_cache_size() const;

    // Hit/miss accounting for the posterior memo cache. Counts accumulate
    // across posterior() calls and reset — together with the cache itself —
    // on fit() / set_parents().
    struct CacheStats {
        std::size_t hits = 0;
        std::size_t misses = 0;
        std::size_t size = 0;
    };
    CacheStats posterior_cache_stats() const;

    // Variables in a valid topological order.
    const std::vector<std::size_t>& topological_order() const noexcept {
        return topo_order_;
    }

    bool fitted() const noexcept { return fitted_; }

private:
    struct PosteriorCache; // shared_mutex-guarded memo map (bayes_net.cpp)

    std::size_t parent_configuration(std::size_t var,
                                     const Assignment& assignment) const;
    void recompute_topological_order();
    void check_assignment(const Assignment& assignment) const;
    void check_query(std::size_t query_var,
                     const std::map<std::size_t, std::int32_t>& evidence) const;
    void invalidate_posterior_cache();

    std::vector<std::int32_t> cardinalities_;
    std::vector<std::vector<std::size_t>> parents_;
    // cpt_[var][parent_config * cardinality + value] = probability.
    std::vector<std::vector<double>> cpt_;
    std::vector<std::size_t> topo_order_;
    bool fitted_ = false;
    // Replaced wholesale (never mutated through a shared handle) on
    // fit()/set_parents(), so copies of the network each keep a cache
    // consistent with their own parameters.
    std::shared_ptr<PosteriorCache> posterior_cache_;
};

// Chow-Liu structure learning: the maximum-spanning tree over pairwise
// mutual information, rooted at variable 0. Returns a fitted network.
BayesianNetwork learn_chow_liu_tree(const std::vector<Assignment>& rows,
                                    std::vector<std::int32_t> cardinalities,
                                    double laplace = 1.0);

// Empirical mutual information (nats) between columns a and b of `rows`.
double mutual_information(const std::vector<Assignment>& rows, std::size_t a,
                          std::size_t b, std::int32_t cardinality_a,
                          std::int32_t cardinality_b);

// BIC score of a fitted-structure candidate: log-likelihood of the data
// under maximum-likelihood CPTs minus (log n / 2) * #free parameters.
// Higher is better.
double bic_score(const std::vector<Assignment>& rows,
                 const std::vector<std::int32_t>& cardinalities,
                 const std::vector<std::vector<std::size_t>>& parents);

struct HillClimbOptions {
    std::size_t max_parents = 3;
    int max_iterations = 200;
    double laplace = 1.0; // smoothing for the returned network's CPTs
};

// Greedy hill climbing over DAGs: repeatedly apply the single edge
// addition/removal that most improves the BIC score until no move helps.
// More expressive than the Chow-Liu tree (captures multi-parent
// interactions such as Fig. 4's ISP x FE x BE response cell) at higher
// fitting cost. Returns a fitted network.
BayesianNetwork learn_hill_climbing(const std::vector<Assignment>& rows,
                                    std::vector<std::int32_t> cardinalities,
                                    const HillClimbOptions& options = {});

} // namespace dre::wise

#endif // DRE_WISE_BAYES_NET_H
