// A Bayesian-network reward model: discretize the reward into buckets,
// learn a Chow-Liu tree over (context categoricals..., decision parts...,
// reward-bucket), and predict rewards as the posterior-expected bucket
// midpoint. A second WISE-style Direct-Method model whose bias comes from
// the tree's structural restriction (each variable gets one parent) rather
// than from cell back-off — useful for model-family comparisons.
#ifndef DRE_WISE_BN_REWARD_MODEL_H
#define DRE_WISE_BN_REWARD_MODEL_H

#include <memory>
#include <vector>

#include "core/reward_model.h"
#include "trace/trace.h"
#include "wise/bayes_net.h"

namespace dre::wise {

class BnRewardModel final : public core::RewardModel {
public:
    // The scenario must provide how a (context, decision) pair maps onto
    // the BN's categorical variables (all but the final reward-bucket one).
    using Encoder = std::function<Assignment(const ClientContext&, Decision)>;

    BnRewardModel(std::size_t num_decisions, Encoder encoder,
                  std::vector<std::int32_t> variable_cardinalities,
                  std::size_t reward_buckets = 8);

    void fit(const Trace& trace);

    double predict(const ClientContext& context, Decision d) const override;
    std::size_t num_decisions() const noexcept override { return num_decisions_; }

    const BayesianNetwork& network() const;

private:
    std::size_t bucket_of(double reward) const;

    std::size_t num_decisions_;
    Encoder encoder_;
    std::vector<std::int32_t> cardinalities_; // without the bucket variable
    std::size_t reward_buckets_;
    double reward_lo_ = 0.0;
    double reward_hi_ = 1.0;
    std::vector<double> bucket_means_; // mean observed reward per bucket
    std::unique_ptr<BayesianNetwork> network_;
};

// Encoder for the Fig. 4 world: (isp, frontend, backend).
BnRewardModel make_wise_bn_model(std::size_t num_isps, std::size_t reward_buckets = 8);

} // namespace dre::wise

#endif // DRE_WISE_BN_REWARD_MODEL_H
