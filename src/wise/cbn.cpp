#include "wise/cbn.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dre::wise {
namespace {

// Residual sum of squares when grouping `rows` by the variables in `group`.
double grouped_rss(const std::vector<Assignment>& rows,
                   std::span<const double> response,
                   const std::vector<std::size_t>& group) {
    struct Agg {
        double sum = 0.0, sum_sq = 0.0;
        std::size_t count = 0;
    };
    std::unordered_map<std::uint64_t, Agg> cells;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::uint64_t key = 0xcbf29ce484222325ull;
        for (std::size_t v : group) {
            key ^= static_cast<std::uint64_t>(rows[i][v]) + 0x9e3779b9u;
            key *= 0x100000001b3ull;
        }
        Agg& agg = cells[key];
        agg.sum += response[i];
        agg.sum_sq += response[i] * response[i];
        ++agg.count;
    }
    double rss = 0.0;
    for (const auto& [key, agg] : cells) {
        (void)key;
        rss += agg.sum_sq - agg.sum * agg.sum / static_cast<double>(agg.count);
    }
    return rss;
}

} // namespace

CbnResponseModel::CbnResponseModel(std::vector<std::int32_t> cardinalities,
                                   CbnOptions options)
    : cardinalities_(std::move(cardinalities)), options_(options) {
    if (cardinalities_.empty())
        throw std::invalid_argument("CbnResponseModel: no variables");
    for (std::int32_t c : cardinalities_)
        if (c <= 0)
            throw std::invalid_argument("CbnResponseModel: cardinality must be > 0");
    if (options_.max_parents == 0)
        throw std::invalid_argument("CbnResponseModel: max_parents must be > 0");
}

void CbnResponseModel::check_assignment(const Assignment& assignment) const {
    if (assignment.size() != cardinalities_.size())
        throw std::invalid_argument("CbnResponseModel: assignment arity mismatch");
    for (std::size_t v = 0; v < assignment.size(); ++v)
        if (assignment[v] < 0 || assignment[v] >= cardinalities_[v])
            throw std::invalid_argument("CbnResponseModel: value out of range");
}

std::uint64_t CbnResponseModel::key_for(const Assignment& assignment,
                                        std::size_t depth) const {
    std::uint64_t key = 0xcbf29ce484222325ull;
    for (std::size_t level = 0; level < depth; ++level) {
        key ^= static_cast<std::uint64_t>(assignment[parent_order_[level]]) +
               0x9e3779b9u;
        key *= 0x100000001b3ull;
    }
    return key;
}

void CbnResponseModel::fit(const std::vector<Assignment>& rows,
                           std::span<const double> response) {
    if (rows.empty()) throw std::invalid_argument("CbnResponseModel::fit: no rows");
    if (rows.size() != response.size())
        throw std::invalid_argument("CbnResponseModel::fit: size mismatch");
    for (const auto& row : rows) check_assignment(row);

    n_ = rows.size();
    global_mean_ = 0.0;
    for (double r : response) global_mean_ += r;
    global_mean_ /= static_cast<double>(n_);
    double total_variance = 0.0;
    for (double r : response)
        total_variance += (r - global_mean_) * (r - global_mean_);

    // Greedy forward parent selection by RSS reduction.
    parent_order_.clear();
    std::vector<bool> used(cardinalities_.size(), false);
    double current_rss = total_variance;
    while (parent_order_.size() <
           std::min(options_.max_parents, cardinalities_.size())) {
        double best_rss = current_rss;
        std::size_t best_var = cardinalities_.size();
        for (std::size_t v = 0; v < cardinalities_.size(); ++v) {
            if (used[v]) continue;
            std::vector<std::size_t> candidate = parent_order_;
            candidate.push_back(v);
            const double rss = grouped_rss(rows, response, candidate);
            if (rss < best_rss) {
                best_rss = rss;
                best_var = v;
            }
        }
        if (best_var == cardinalities_.size()) break;
        const double gain = current_rss - best_rss;
        if (gain < options_.min_gain_fraction * std::max(total_variance, 1e-12))
            break;
        parent_order_.push_back(best_var);
        used[best_var] = true;
        current_rss = best_rss;
    }

    // Build hierarchical conditional tables along the parent order.
    tables_.assign(parent_order_.size(), {});
    for (std::size_t i = 0; i < rows.size(); ++i)
        for (std::size_t depth = 1; depth <= parent_order_.size(); ++depth)
            tables_[depth - 1][key_for(rows[i], depth)].add(response[i]);

    fitted_ = true;
}

double CbnResponseModel::predict(const Assignment& assignment) const {
    if (!fitted_) throw std::logic_error("CbnResponseModel::predict before fit");
    check_assignment(assignment);
    // Back off from the deepest conditional to coarser ones until a cell has
    // enough support.
    for (std::size_t depth = parent_order_.size(); depth >= 1; --depth) {
        const auto it = tables_[depth - 1].find(key_for(assignment, depth));
        if (it != tables_[depth - 1].end() &&
            it->second.count >= options_.min_cell_samples)
            return it->second.mean;
    }
    return global_mean_;
}

std::size_t CbnResponseModel::support(const Assignment& assignment) const {
    if (!fitted_) throw std::logic_error("CbnResponseModel::support before fit");
    check_assignment(assignment);
    for (std::size_t depth = parent_order_.size(); depth >= 1; --depth) {
        const auto it = tables_[depth - 1].find(key_for(assignment, depth));
        if (it != tables_[depth - 1].end() &&
            it->second.count >= options_.min_cell_samples)
            return it->second.count;
    }
    return 0;
}

} // namespace dre::wise
