#include "wise/scenario.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace dre::wise {

Decision encode_decision(std::size_t frontend, std::size_t backend) {
    if (frontend >= kNumFrontends || backend >= kNumBackends)
        throw std::out_of_range("encode_decision");
    return static_cast<Decision>(frontend * kNumBackends + backend);
}

std::size_t frontend_of(Decision d) {
    if (d < 0 || static_cast<std::size_t>(d) >= kNumDecisions)
        throw std::out_of_range("frontend_of");
    return static_cast<std::size_t>(d) / kNumBackends;
}

std::size_t backend_of(Decision d) {
    if (d < 0 || static_cast<std::size_t>(d) >= kNumDecisions)
        throw std::out_of_range("backend_of");
    return static_cast<std::size_t>(d) % kNumBackends;
}

RequestRoutingEnv::RequestRoutingEnv(WiseWorldConfig config) : config_(config) {
    if (config_.num_isps == 0)
        throw std::invalid_argument("RequestRoutingEnv: need at least one ISP");
    if (config_.short_response_ms <= 0.0 ||
        config_.long_response_ms <= config_.short_response_ms)
        throw std::invalid_argument("RequestRoutingEnv: bad response times");
}

double RequestRoutingEnv::mean_response_ms(std::int32_t isp, Decision d) const {
    if (isp < 0 || static_cast<std::size_t>(isp) >= config_.num_isps)
        throw std::out_of_range("RequestRoutingEnv: isp out of range");
    // Ground truth (paper): ISP-1's response time is high only on
    // (FE-1, BE-1); all other combinations, and all other ISPs, are short.
    const bool long_path =
        isp == 0 && frontend_of(d) == 0 && backend_of(d) == 0;
    return long_path ? config_.long_response_ms : config_.short_response_ms;
}

ClientContext RequestRoutingEnv::sample_context(stats::Rng& rng) const {
    ClientContext context;
    context.categorical = {
        static_cast<std::int32_t>(rng.uniform_index(config_.num_isps))};
    return context;
}

Reward RequestRoutingEnv::sample_reward(const ClientContext& context, Decision d,
                                        stats::Rng& rng) const {
    const double response =
        mean_response_ms(context.categorical.at(0), d) +
        rng.normal(0.0, config_.noise_sigma);
    return -response / 100.0;
}

double RequestRoutingEnv::expected_reward(const ClientContext& context, Decision d,
                                          stats::Rng&, int) const {
    return -mean_response_ms(context.categorical.at(0), d) / 100.0;
}

namespace {

// Which decision an ISP's observed traffic uses (the Fig. 4 "arrows"):
// ISP-1 traffic is routed over (FE-1, BE-1); ISP-2 over (FE-2, BE-2).
Decision observed_decision_for(std::int32_t isp) {
    const std::size_t side = static_cast<std::size_t>(isp) % 2;
    return encode_decision(side, side);
}

std::vector<double> skewed_distribution(std::int32_t isp, double observed_weight,
                                        double rare_weight) {
    std::vector<double> weights(kNumDecisions, rare_weight);
    weights[static_cast<std::size_t>(observed_decision_for(isp))] = observed_weight;
    double total = 0.0;
    for (double w : weights) total += w;
    for (double& w : weights) w /= total;
    return weights;
}

class SkewedPolicy final : public core::Policy {
public:
    SkewedPolicy(std::size_t num_isps, double observed_weight, double rare_weight,
                 double shifted_fraction)
        : num_isps_(num_isps),
          observed_weight_(observed_weight),
          rare_weight_(rare_weight),
          shifted_fraction_(shifted_fraction) {
        if (observed_weight_ <= 0.0 || rare_weight_ <= 0.0)
            throw std::invalid_argument("SkewedPolicy: weights must be > 0");
        if (shifted_fraction_ < 0.0 || shifted_fraction_ > 1.0)
            throw std::invalid_argument("SkewedPolicy: fraction outside [0,1]");
    }

    std::vector<double> action_probabilities(
        const ClientContext& context) const override {
        const std::int32_t isp = context.categorical.at(0);
        if (isp < 0 || static_cast<std::size_t>(isp) >= num_isps_)
            throw std::out_of_range("SkewedPolicy: isp out of range");
        std::vector<double> probs =
            skewed_distribution(isp, observed_weight_, rare_weight_);
        if (shifted_fraction_ > 0.0 && isp == 0) {
            // "50% of ISP-1 clients use FE-1 and BE-2"; remaining mass keeps
            // the old proportions.
            const auto target = static_cast<std::size_t>(encode_decision(0, 1));
            for (double& p : probs) p *= (1.0 - shifted_fraction_);
            probs[target] += shifted_fraction_;
        }
        return probs;
    }

    std::size_t num_decisions() const noexcept override { return kNumDecisions; }

private:
    std::size_t num_isps_;
    double observed_weight_;
    double rare_weight_;
    double shifted_fraction_;
};

} // namespace

std::shared_ptr<core::Policy> make_logging_policy(std::size_t num_isps,
                                                  double observed_weight,
                                                  double rare_weight) {
    return std::make_shared<SkewedPolicy>(num_isps, observed_weight, rare_weight,
                                          0.0);
}

std::shared_ptr<core::Policy> make_new_policy(std::size_t num_isps,
                                              double shifted_fraction,
                                              double observed_weight,
                                              double rare_weight) {
    return std::make_shared<SkewedPolicy>(num_isps, observed_weight, rare_weight,
                                          shifted_fraction);
}

WiseCbnRewardModel::WiseCbnRewardModel(CbnOptions options) : options_(options) {}

void WiseCbnRewardModel::fit(const Trace& trace) {
    validate_trace(trace);
    if (trace.empty()) throw std::invalid_argument("WiseCbnRewardModel: empty trace");
    std::int32_t max_isp = 0;
    for (const auto& t : trace)
        max_isp = std::max(max_isp, t.context.categorical.at(0));

    std::vector<Assignment> rows;
    rows.reserve(trace.size());
    std::vector<double> response;
    response.reserve(trace.size());
    for (const auto& t : trace) {
        rows.push_back({t.context.categorical.at(0),
                        static_cast<std::int32_t>(frontend_of(t.decision)),
                        static_cast<std::int32_t>(backend_of(t.decision))});
        response.push_back(t.reward);
    }
    model_ = std::make_unique<CbnResponseModel>(
        std::vector<std::int32_t>{max_isp + 1,
                                  static_cast<std::int32_t>(kNumFrontends),
                                  static_cast<std::int32_t>(kNumBackends)},
        options_);
    model_->fit(rows, response);
}

double WiseCbnRewardModel::predict(const ClientContext& context, Decision d) const {
    if (!model_) throw std::logic_error("WiseCbnRewardModel::predict before fit");
    const Assignment assignment = {context.categorical.at(0),
                                   static_cast<std::int32_t>(frontend_of(d)),
                                   static_cast<std::int32_t>(backend_of(d))};
    return model_->predict(assignment);
}

const CbnResponseModel& WiseCbnRewardModel::cbn() const {
    if (!model_) throw std::logic_error("WiseCbnRewardModel::cbn before fit");
    return *model_;
}

} // namespace dre::wise
