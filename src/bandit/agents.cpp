#include "bandit/agents.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dre::bandit {

namespace {

void require_arms(std::size_t num_decisions) {
    if (num_decisions == 0)
        throw std::invalid_argument("bandit agent needs at least one decision");
}

void require_valid_decision(Decision d, std::size_t num_decisions) {
    if (d < 0 || static_cast<std::size_t>(d) >= num_decisions)
        throw std::invalid_argument("decision out of range in agent update");
}

// Greedy-with-floor distribution: probability (1 - epsilon) on the
// empirical-best arm plus epsilon spread uniformly. Unpulled arms are
// treated as tied-best at +infinity so they get tried early; ties go to the
// lowest index (deterministic given the stats).
std::vector<double> epsilon_distribution(const std::vector<ArmStats>& arms,
                                         double epsilon) {
    const std::size_t k = arms.size();
    std::size_t best = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < k; ++a) {
        const double score = arms[a].pulls == 0
                                 ? std::numeric_limits<double>::infinity()
                                 : arms[a].mean;
        if (score > best_score) {
            best_score = score;
            best = a;
        }
    }
    std::vector<double> probs(k, epsilon / static_cast<double>(k));
    probs[best] += 1.0 - epsilon;
    return probs;
}

} // namespace

// ---- UniformAgent -----------------------------------------------------

UniformAgent::UniformAgent(std::size_t num_decisions)
    : num_decisions_(num_decisions) {
    require_arms(num_decisions);
}

std::vector<double> UniformAgent::action_probabilities(const ClientContext&) {
    return std::vector<double>(num_decisions_, 1.0 / static_cast<double>(num_decisions_));
}

// ---- EpsilonGreedyAgent ------------------------------------------------

EpsilonGreedyAgent::EpsilonGreedyAgent(std::size_t num_decisions, double epsilon)
    : arms_(num_decisions), epsilon_(epsilon) {
    require_arms(num_decisions);
    if (!(epsilon >= 0.0 && epsilon <= 1.0))
        throw std::invalid_argument("epsilon must lie in [0, 1]");
}

std::vector<double> EpsilonGreedyAgent::action_probabilities(const ClientContext&) {
    return epsilon_distribution(arms_, epsilon_);
}

void EpsilonGreedyAgent::update(const ClientContext&, Decision d, Reward r) {
    require_valid_decision(d, arms_.size());
    arms_[static_cast<std::size_t>(d)].add(r);
}

// ---- EpsilonDecayAgent ---------------------------------------------------

EpsilonDecayAgent::EpsilonDecayAgent(std::size_t num_decisions,
                                     const Schedule& schedule)
    : arms_(num_decisions), schedule_(schedule) {
    require_arms(num_decisions);
    if (!(schedule.initial >= 0.0 && schedule.initial <= 1.0) ||
        !(schedule.floor >= 0.0 && schedule.floor <= 1.0) || schedule.power < 0.0)
        throw std::invalid_argument("bad epsilon-decay schedule");
}

double EpsilonDecayAgent::current_epsilon() const noexcept {
    const double t = static_cast<double>(t_ + 1);
    return std::clamp(schedule_.initial / std::pow(t, schedule_.power),
                      schedule_.floor, 1.0);
}

std::vector<double> EpsilonDecayAgent::action_probabilities(const ClientContext&) {
    return epsilon_distribution(arms_, current_epsilon());
}

void EpsilonDecayAgent::update(const ClientContext&, Decision d, Reward r) {
    require_valid_decision(d, arms_.size());
    arms_[static_cast<std::size_t>(d)].add(r);
    ++t_;
}

// ---- BoltzmannAgent ------------------------------------------------------

BoltzmannAgent::BoltzmannAgent(std::size_t num_decisions, double temperature)
    : arms_(num_decisions), temperature_(temperature) {
    require_arms(num_decisions);
    if (!(temperature > 0.0))
        throw std::invalid_argument("temperature must be positive");
}

std::vector<double> BoltzmannAgent::action_probabilities(const ClientContext&) {
    const std::size_t k = arms_.size();
    std::vector<double> probs(k);
    double max_score = -std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < k; ++a)
        max_score = std::max(max_score, arms_[a].mean / temperature_);
    double total = 0.0;
    for (std::size_t a = 0; a < k; ++a) {
        probs[a] = std::exp(arms_[a].mean / temperature_ - max_score);
        total += probs[a];
    }
    for (double& p : probs) p /= total;
    return probs;
}

void BoltzmannAgent::update(const ClientContext&, Decision d, Reward r) {
    require_valid_decision(d, arms_.size());
    arms_[static_cast<std::size_t>(d)].add(r);
}

// ---- Ucb1Agent -----------------------------------------------------------

Ucb1Agent::Ucb1Agent(std::size_t num_decisions, double exploration_coef)
    : arms_(num_decisions), exploration_coef_(exploration_coef) {
    require_arms(num_decisions);
    if (exploration_coef < 0.0)
        throw std::invalid_argument("exploration coefficient must be >= 0");
}

std::size_t Ucb1Agent::best_arm() const {
    // Round-robin through unpulled arms first.
    for (std::size_t a = 0; a < arms_.size(); ++a)
        if (arms_[a].pulls == 0) return a;
    std::size_t best = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    const double log_t = std::log(static_cast<double>(std::max<std::size_t>(t_, 1)));
    for (std::size_t a = 0; a < arms_.size(); ++a) {
        const double bonus = exploration_coef_ *
            std::sqrt(2.0 * log_t / static_cast<double>(arms_[a].pulls));
        const double score = arms_[a].mean + bonus;
        if (score > best_score) {
            best_score = score;
            best = a;
        }
    }
    return best;
}

std::vector<double> Ucb1Agent::action_probabilities(const ClientContext&) {
    std::vector<double> probs(arms_.size(), 0.0);
    probs[best_arm()] = 1.0;
    return probs;
}

void Ucb1Agent::update(const ClientContext&, Decision d, Reward r) {
    require_valid_decision(d, arms_.size());
    arms_[static_cast<std::size_t>(d)].add(r);
    ++t_;
}

// ---- Exp3Agent -----------------------------------------------------------

Exp3Agent::Exp3Agent(std::size_t num_decisions, double gamma, double reward_min,
                     double reward_max)
    : log_weights_(num_decisions, 0.0),
      gamma_(gamma),
      reward_min_(reward_min),
      reward_max_(reward_max) {
    require_arms(num_decisions);
    if (!(gamma > 0.0 && gamma <= 1.0))
        throw std::invalid_argument("EXP3 gamma must lie in (0, 1]");
    if (!(reward_max > reward_min))
        throw std::invalid_argument("EXP3 needs reward_max > reward_min");
}

std::vector<double> Exp3Agent::distribution() const {
    const std::size_t k = log_weights_.size();
    const double max_lw = *std::max_element(log_weights_.begin(), log_weights_.end());
    std::vector<double> probs(k);
    double total = 0.0;
    for (std::size_t a = 0; a < k; ++a) {
        probs[a] = std::exp(log_weights_[a] - max_lw);
        total += probs[a];
    }
    for (std::size_t a = 0; a < k; ++a)
        probs[a] = (1.0 - gamma_) * probs[a] / total + gamma_ / static_cast<double>(k);
    return probs;
}

std::vector<double> Exp3Agent::action_probabilities(const ClientContext&) {
    return distribution();
}

void Exp3Agent::update(const ClientContext&, Decision d, Reward r) {
    const std::size_t k = log_weights_.size();
    require_valid_decision(d, k);
    const double scaled =
        std::clamp((r - reward_min_) / (reward_max_ - reward_min_), 0.0, 1.0);
    const double p = distribution()[static_cast<std::size_t>(d)];
    // Importance-weighted reward estimate; only the played arm moves.
    log_weights_[static_cast<std::size_t>(d)] +=
        gamma_ * scaled / (p * static_cast<double>(k));
}

// ---- GaussianThompsonAgent ------------------------------------------------

GaussianThompsonAgent::GaussianThompsonAgent(std::size_t num_decisions,
                                             const Options& options)
    : arms_(num_decisions), options_(options), draw_rng_(options.seed) {
    require_arms(num_decisions);
    if (!(options.noise_sigma > 0.0) || !(options.prior_strength > 0.0) ||
        options.propensity_samples < 1)
        throw std::invalid_argument("bad Thompson options");
}

std::vector<double> GaussianThompsonAgent::action_probabilities(const ClientContext&) {
    const std::size_t k = arms_.size();
    // Posterior of arm a: N(m_a, s_a^2) with the prior acting as
    // prior_strength pseudo-observations at prior_mean.
    std::vector<double> post_mean(k), post_sd(k);
    for (std::size_t a = 0; a < k; ++a) {
        const double n = static_cast<double>(arms_[a].pulls);
        const double n_eff = n + options_.prior_strength;
        post_mean[a] =
            (options_.prior_strength * options_.prior_mean + n * arms_[a].mean) / n_eff;
        post_sd[a] = options_.noise_sigma / std::sqrt(n_eff);
    }
    std::vector<double> wins(k, 0.0);
    for (int s = 0; s < options_.propensity_samples; ++s) {
        std::size_t best = 0;
        double best_draw = -std::numeric_limits<double>::infinity();
        for (std::size_t a = 0; a < k; ++a) {
            const double draw = post_mean[a] + post_sd[a] * draw_rng_.normal();
            if (draw > best_draw) {
                best_draw = draw;
                best = a;
            }
        }
        wins[best] += 1.0;
    }
    // Half a pseudo-win per arm keeps propensities strictly positive, so a
    // rare decision can never be logged with propensity exactly 0.
    const double denom = static_cast<double>(options_.propensity_samples) +
                         0.5 * static_cast<double>(k);
    for (std::size_t a = 0; a < k; ++a) wins[a] = (wins[a] + 0.5) / denom;
    return wins;
}

void GaussianThompsonAgent::update(const ClientContext&, Decision d, Reward r) {
    require_valid_decision(d, arms_.size());
    arms_[static_cast<std::size_t>(d)].add(r);
}

// ---- ContextualAgent -------------------------------------------------------

ContextualAgent::ContextualAgent(Factory factory, KeyFn key)
    : factory_(std::move(factory)), key_(std::move(key)) {
    if (!factory_) throw std::invalid_argument("ContextualAgent needs a factory");
    if (!key_)
        key_ = [](const ClientContext& c) { return context_fingerprint(c); };
    prototype_ = factory_();
    if (!prototype_) throw std::invalid_argument("factory returned null agent");
}

std::size_t ContextualAgent::num_decisions() const noexcept {
    return prototype_->num_decisions();
}

ExplorationAgent& ContextualAgent::agent_for(const ClientContext& context) {
    const std::uint64_t key = key_(context);
    auto it = per_context_.find(key);
    if (it == per_context_.end()) {
        auto agent = factory_();
        if (!agent || agent->num_decisions() != prototype_->num_decisions())
            throw std::logic_error("factory produced an inconsistent agent");
        it = per_context_.emplace(key, std::move(agent)).first;
    }
    return *it->second;
}

std::vector<double> ContextualAgent::action_probabilities(const ClientContext& context) {
    return agent_for(context).action_probabilities(context);
}

void ContextualAgent::update(const ClientContext& context, Decision d, Reward r) {
    agent_for(context).update(context, d, r);
}

} // namespace dre::bandit
