#include "bandit/run.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/policy.h"

namespace dre::bandit {

BanditRunResult run_bandit(const core::Environment& env, ExplorationAgent& agent,
                           std::size_t n, stats::Rng& rng) {
    if (n == 0) throw std::invalid_argument("run_bandit needs n > 0");
    if (agent.num_decisions() != env.num_decisions())
        throw std::invalid_argument("agent/environment decision-space mismatch");

    BanditRunResult result;
    result.trace.reserve(n);
    result.arm_counts.assign(agent.num_decisions(), 0);
    result.min_logged_propensity = std::numeric_limits<double>::infinity();

    double reward_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        ClientContext context = env.sample_context(rng);
        const std::vector<double> probs = agent.action_probabilities(context);
        core::validate_distribution(probs, agent.num_decisions());
        const auto d = static_cast<Decision>(rng.categorical(probs));
        const Reward r = env.sample_reward(context, d, rng);
        agent.update(context, d, r);

        LoggedTuple tuple;
        tuple.context = std::move(context);
        tuple.decision = d;
        tuple.reward = r;
        tuple.propensity = probs[static_cast<std::size_t>(d)];
        result.min_logged_propensity =
            std::min(result.min_logged_propensity, tuple.propensity);
        result.trace.add(std::move(tuple));

        ++result.arm_counts[static_cast<std::size_t>(d)];
        reward_sum += r;
    }
    result.average_reward = reward_sum / static_cast<double>(n);
    return result;
}

double best_fixed_arm_value(const core::Environment& env, std::size_t clients,
                            stats::Rng& rng) {
    if (clients == 0) throw std::invalid_argument("need clients > 0");
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < env.num_decisions(); ++a) {
        const auto arm = static_cast<Decision>(a);
        core::DeterministicPolicy fixed(env.num_decisions(),
                                        [arm](const ClientContext&) { return arm; });
        best = std::max(best, core::true_policy_value(env, fixed, clients, rng));
    }
    return best;
}

} // namespace dre::bandit
