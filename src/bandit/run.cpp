#include "bandit/run.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/policy.h"

namespace dre::bandit {

BanditRunResult run_bandit(const core::Environment& env, ExplorationAgent& agent,
                           std::size_t n, stats::Rng& rng) {
    return run_bandit(env, agent, n, rng, BanditRunOptions{});
}

BanditRunResult run_bandit(const core::Environment& env, ExplorationAgent& agent,
                           std::size_t n, stats::Rng& rng,
                           const BanditRunOptions& options) {
    if (n == 0) throw std::invalid_argument("run_bandit needs n > 0");
    if (agent.num_decisions() != env.num_decisions())
        throw std::invalid_argument("agent/environment decision-space mismatch");

    const std::size_t wave_size = options.wave_size == 0 ? n : options.wave_size;
    const bool track_regret = !std::isnan(options.regret_baseline);

    BanditRunResult result;
    result.trace.reserve(n);
    result.arm_counts.assign(agent.num_decisions(), 0);
    result.min_logged_propensity = std::numeric_limits<double>::infinity();

    double reward_sum = 0.0;
    double wave_sum = 0.0;
    std::size_t wave_steps = 0;
    double regret_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        ClientContext context = env.sample_context(rng);
        const std::vector<double> probs = agent.action_probabilities(context);
        core::validate_distribution(probs, agent.num_decisions());
        const auto d = static_cast<Decision>(rng.categorical(probs));
        const Reward r = env.sample_reward(context, d, rng);
        agent.update(context, d, r);

        LoggedTuple tuple;
        tuple.context = std::move(context);
        tuple.decision = d;
        tuple.reward = r;
        tuple.propensity = probs[static_cast<std::size_t>(d)];
        result.min_logged_propensity =
            std::min(result.min_logged_propensity, tuple.propensity);
        result.trace.add(std::move(tuple));

        ++result.arm_counts[static_cast<std::size_t>(d)];
        reward_sum += r;
        wave_sum += r;
        ++wave_steps;
        if (track_regret) regret_sum += options.regret_baseline - r;
        if (wave_steps == wave_size || i + 1 == n) {
            result.wave_rewards.push_back(wave_sum /
                                          static_cast<double>(wave_steps));
            if (track_regret) result.cumulative_regret.push_back(regret_sum);
            wave_sum = 0.0;
            wave_steps = 0;
        }
    }
    result.average_reward = reward_sum / static_cast<double>(n);
    if (track_regret) result.total_regret = regret_sum;
    return result;
}

double best_fixed_arm_value(const core::Environment& env, std::size_t clients,
                            stats::Rng& rng) {
    if (clients == 0) throw std::invalid_argument("need clients > 0");
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < env.num_decisions(); ++a) {
        const auto arm = static_cast<Decision>(a);
        core::DeterministicPolicy fixed(env.num_decisions(),
                                        [arm](const ClientContext&) { return arm; });
        best = std::max(best, core::true_policy_value(env, fixed, clients, rng));
    }
    return best;
}

} // namespace dre::bandit
