// Driving an exploration agent against a ground-truth environment.
//
// run_bandit() is the online "data collection phase" of Figure 1 when the
// logging policy is itself learning: at every step it samples the decision
// from exactly the distribution the agent reports and logs that entry as
// the tuple's propensity. The resulting Trace is directly consumable by
// every estimator in core/ — which is the whole point: exploration
// strategies differ not only in the reward they give up while learning but
// in how evaluable the trace they leave behind is.
#ifndef DRE_BANDIT_RUN_H
#define DRE_BANDIT_RUN_H

#include <cstddef>
#include <limits>
#include <vector>

#include "bandit/agents.h"
#include "core/environment.h"
#include "stats/rng.h"
#include "trace/trace.h"

namespace dre::bandit {

struct BanditRunOptions {
    // Steps per reporting wave for `wave_rewards` (0 = one wave covering
    // the whole run). The final wave may be short when n % wave_size != 0.
    std::size_t wave_size = 0;
    // Per-step value of the comparison policy (usually best_fixed_arm_value).
    // NaN disables the regret series: cumulative_regret stays empty and
    // total_regret stays NaN.
    double regret_baseline = std::numeric_limits<double>::quiet_NaN();
};

struct BanditRunResult {
    Trace trace;                          // logged tuples with exact propensities
    std::vector<std::size_t> arm_counts;  // pulls per decision
    double average_reward = 0.0;          // realized mean reward of the run
    double min_logged_propensity = 0.0;   // support left for off-policy reuse
    // Mean realized reward per reporting wave (see BanditRunOptions::wave_size).
    std::vector<double> wave_rewards;
    // Running sum of (regret_baseline - reward) after each wave, and its
    // final entry; both populated only when a baseline was supplied. The
    // per-step regret of a run is total_regret / n.
    std::vector<double> cumulative_regret;
    double total_regret = std::numeric_limits<double>::quiet_NaN();
};

// Play `agent` for `n` sequential clients drawn from `env`. Decisions are
// sampled from the agent's reported distribution; the agent is updated with
// each observed reward. Throws std::invalid_argument for n == 0 or a
// decision-space mismatch between agent and environment. The two-argument
// overload delegates with default options; results (trace, counts, averages)
// are bit-identical between the two — options only add reporting series.
BanditRunResult run_bandit(const core::Environment& env, ExplorationAgent& agent,
                           std::size_t n, stats::Rng& rng);
BanditRunResult run_bandit(const core::Environment& env, ExplorationAgent& agent,
                           std::size_t n, stats::Rng& rng,
                           const BanditRunOptions& options);

// Value of the best *fixed* decision: max_d E_c E[r | c, d], estimated with
// `clients` Monte-Carlo context draws. The per-step regret of a run is
// best_fixed_arm_value(...) - result.average_reward.
double best_fixed_arm_value(const core::Environment& env, std::size_t clients,
                            stats::Rng& rng);

} // namespace dre::bandit

#endif // DRE_BANDIT_RUN_H
