// Driving an exploration agent against a ground-truth environment.
//
// run_bandit() is the online "data collection phase" of Figure 1 when the
// logging policy is itself learning: at every step it samples the decision
// from exactly the distribution the agent reports and logs that entry as
// the tuple's propensity. The resulting Trace is directly consumable by
// every estimator in core/ — which is the whole point: exploration
// strategies differ not only in the reward they give up while learning but
// in how evaluable the trace they leave behind is.
#ifndef DRE_BANDIT_RUN_H
#define DRE_BANDIT_RUN_H

#include <cstddef>
#include <vector>

#include "bandit/agents.h"
#include "core/environment.h"
#include "stats/rng.h"
#include "trace/trace.h"

namespace dre::bandit {

struct BanditRunResult {
    Trace trace;                          // logged tuples with exact propensities
    std::vector<std::size_t> arm_counts;  // pulls per decision
    double average_reward = 0.0;          // realized mean reward of the run
    double min_logged_propensity = 0.0;   // support left for off-policy reuse
};

// Play `agent` for `n` sequential clients drawn from `env`. Decisions are
// sampled from the agent's reported distribution; the agent is updated with
// each observed reward. Throws std::invalid_argument for n == 0 or a
// decision-space mismatch between agent and environment.
BanditRunResult run_bandit(const core::Environment& env, ExplorationAgent& agent,
                           std::size_t n, stats::Rng& rng);

// Value of the best *fixed* decision: max_d E_c E[r | c, d], estimated with
// `clients` Monte-Carlo context draws. The per-step regret of a run is
// best_fixed_arm_value(...) - result.average_reward.
double best_fixed_arm_value(const core::Environment& env, std::size_t clients,
                            stats::Rng& rng);

} // namespace dre::bandit

#endif // DRE_BANDIT_RUN_H
