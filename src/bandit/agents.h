// Online exploration agents — the §4.1 remedy made concrete.
//
// The paper's first recommendation for the randomness pitfall is to
// "introduce (perhaps judicious amounts of) randomization in the decisions"
// so that logged traces carry the support that IPS/DR need. This module
// provides the classic multi-armed-bandit exploration strategies as
// *logging agents*: each one plays decisions sequentially, learns from the
// observed rewards, and — crucially — exposes the exact distribution it
// samples from, so every logged tuple records a correct propensity.
//
// The agents differ in how much evaluability they preserve:
//   * UniformAgent / EpsilonGreedyAgent / EpsilonDecayAgent — explicit
//     randomization with known floors; full support by construction.
//   * BoltzmannAgent / Exp3Agent — softmax-style distributions; support
//     decays smoothly as the agent converges.
//   * GaussianThompsonAgent — posterior sampling; propensities estimated by
//     Monte Carlo over posterior draws (and then sampled *from* those
//     estimates so the logged propensity is exact w.r.t. the sampler).
//   * Ucb1Agent — deterministic; the logged "propensity" is a point mass,
//     which deliberately breaks downstream IPS/DR. It is here so the
//     exploration ablation can measure exactly what determinism costs.
//
// All agents are context-free (classic bandits) — they maintain one set of
// per-arm statistics. ContextualAgent lifts any of them to a per-context
// bandit by keeping an independent copy per context fingerprint.
#ifndef DRE_BANDIT_AGENTS_H
#define DRE_BANDIT_AGENTS_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "stats/rng.h"
#include "trace/types.h"

namespace dre::bandit {

// Sequential decision-maker with correct logged propensities.
//
// Unlike core::Policy, an agent is *stateful*: action_probabilities()
// reflects everything learned so far and update() feeds back the observed
// reward. The contract that makes off-policy reuse sound is: the caller
// must sample the decision from exactly the vector returned by
// action_probabilities() and log that vector's entry as the propensity
// (run_bandit() in run.h does this).
class ExplorationAgent {
public:
    virtual ~ExplorationAgent() = default;

    // The distribution the agent wants to sample from *now*. Always
    // num_decisions() non-negative entries summing to 1.
    virtual std::vector<double> action_probabilities(const ClientContext& context) = 0;

    // Feed back the observed reward for a decision the agent took.
    virtual void update(const ClientContext& context, Decision d, Reward r) = 0;

    virtual std::size_t num_decisions() const noexcept = 0;

    // Short strategy label for tables ("ucb1", "exp3", ...).
    virtual std::string_view name() const noexcept = 0;

protected:
    ExplorationAgent() = default;
    ExplorationAgent(const ExplorationAgent&) = default;
    ExplorationAgent& operator=(const ExplorationAgent&) = default;
};

// Per-arm running statistics shared by the context-free agents.
struct ArmStats {
    std::size_t pulls = 0;
    double mean = 0.0;

    void add(double reward) {
        ++pulls;
        mean += (reward - mean) / static_cast<double>(pulls);
    }
};

// Uniform random play — maximal evaluability, maximal exploration cost.
class UniformAgent final : public ExplorationAgent {
public:
    explicit UniformAgent(std::size_t num_decisions);

    std::vector<double> action_probabilities(const ClientContext&) override;
    void update(const ClientContext&, Decision, Reward) override {}
    std::size_t num_decisions() const noexcept override { return num_decisions_; }
    std::string_view name() const noexcept override { return "uniform"; }

private:
    std::size_t num_decisions_;
};

// Fixed-epsilon greedy on empirical means. epsilon/k is the hard propensity
// floor every logged tuple is guaranteed to respect.
class EpsilonGreedyAgent final : public ExplorationAgent {
public:
    EpsilonGreedyAgent(std::size_t num_decisions, double epsilon);

    std::vector<double> action_probabilities(const ClientContext&) override;
    void update(const ClientContext&, Decision d, Reward r) override;
    std::size_t num_decisions() const noexcept override { return arms_.size(); }
    std::string_view name() const noexcept override { return "eps-greedy"; }

    const std::vector<ArmStats>& arms() const noexcept { return arms_; }

private:
    std::vector<ArmStats> arms_;
    double epsilon_;
};

// Decaying epsilon: eps_t = max(floor, initial / t^power), t = 1, 2, ...
// The "judicious" schedule — exploration cost shrinks over time while the
// floor keeps propensities bounded away from zero forever.
class EpsilonDecayAgent final : public ExplorationAgent {
public:
    struct Schedule {
        double initial = 1.0;  // eps at t=1
        double power = 0.5;    // decay exponent (0.5 -> 1/sqrt(t))
        double floor = 0.01;   // never explore less than this
    };

    EpsilonDecayAgent(std::size_t num_decisions, const Schedule& schedule);

    std::vector<double> action_probabilities(const ClientContext&) override;
    void update(const ClientContext&, Decision d, Reward r) override;
    std::size_t num_decisions() const noexcept override { return arms_.size(); }
    std::string_view name() const noexcept override { return "eps-decay"; }

    // Epsilon that the *next* action_probabilities() call will use.
    double current_epsilon() const noexcept;

private:
    std::vector<ArmStats> arms_;
    Schedule schedule_;
    std::size_t t_ = 0; // completed steps
};

// Softmax over empirical means: mu(a) ∝ exp(mean_a / temperature).
class BoltzmannAgent final : public ExplorationAgent {
public:
    BoltzmannAgent(std::size_t num_decisions, double temperature);

    std::vector<double> action_probabilities(const ClientContext&) override;
    void update(const ClientContext&, Decision d, Reward r) override;
    std::size_t num_decisions() const noexcept override { return arms_.size(); }
    std::string_view name() const noexcept override { return "boltzmann"; }

private:
    std::vector<ArmStats> arms_;
    double temperature_;
};

// UCB1 (Auer et al. 2002): deterministic argmax of mean + c*sqrt(2 ln t / n).
// Unpulled arms are tried first (round-robin). Logged propensities are point
// masses — excellent regret, *zero* off-policy support.
class Ucb1Agent final : public ExplorationAgent {
public:
    explicit Ucb1Agent(std::size_t num_decisions, double exploration_coef = 1.0);

    std::vector<double> action_probabilities(const ClientContext&) override;
    void update(const ClientContext&, Decision d, Reward r) override;
    std::size_t num_decisions() const noexcept override { return arms_.size(); }
    std::string_view name() const noexcept override { return "ucb1"; }

private:
    std::size_t best_arm() const;

    std::vector<ArmStats> arms_;
    double exploration_coef_;
    std::size_t t_ = 0;
};

// EXP3 (Auer et al. 2002, adversarial bandits). Rewards are clamped to the
// configured [reward_min, reward_max] and rescaled to [0,1] internally.
// gamma is the uniform-mixing coefficient — also the propensity floor
// (gamma/k) every logged tuple respects.
class Exp3Agent final : public ExplorationAgent {
public:
    Exp3Agent(std::size_t num_decisions, double gamma, double reward_min,
              double reward_max);

    std::vector<double> action_probabilities(const ClientContext&) override;
    void update(const ClientContext&, Decision d, Reward r) override;
    std::size_t num_decisions() const noexcept override { return log_weights_.size(); }
    std::string_view name() const noexcept override { return "exp3"; }

private:
    std::vector<double> distribution() const;

    std::vector<double> log_weights_; // kept in log space for stability
    double gamma_;
    double reward_min_;
    double reward_max_;
};

// Thompson sampling with a Gaussian model: arm a ~ N(posterior_mean_a,
// posterior_var_a); play the argmax of one joint draw. The action
// probabilities (probability each arm wins the draw) have no closed form,
// so they are estimated with `propensity_samples` Monte-Carlo draws and the
// decision is then sampled *from that estimate* — making the logged
// propensity exact with respect to the actual sampling distribution.
class GaussianThompsonAgent final : public ExplorationAgent {
public:
    struct Options {
        double prior_mean = 0.0;
        double prior_strength = 1.0;   // pseudo-observations behind the prior
        double noise_sigma = 1.0;      // assumed reward noise scale
        int propensity_samples = 512;  // MC draws for the win probabilities
        std::uint64_t seed = 7;        // internal posterior-draw RNG
    };

    GaussianThompsonAgent(std::size_t num_decisions, const Options& options);

    std::vector<double> action_probabilities(const ClientContext&) override;
    void update(const ClientContext&, Decision d, Reward r) override;
    std::size_t num_decisions() const noexcept override { return arms_.size(); }
    std::string_view name() const noexcept override { return "thompson"; }

private:
    std::vector<ArmStats> arms_;
    Options options_;
    stats::Rng draw_rng_;
};

// Lifts a context-free agent to a contextual one: an independent copy of
// the inner agent per context *key*. The default key is the full context
// fingerprint — right for discrete contexts (WISE/CFA-style); when the
// context carries continuous features, pass a key function that projects
// onto the discrete part (e.g. the client's zone), otherwise every request
// is a brand-new context and nothing is ever learned.
class ContextualAgent final : public ExplorationAgent {
public:
    using Factory = std::function<std::unique_ptr<ExplorationAgent>()>;
    using KeyFn = std::function<std::uint64_t(const ClientContext&)>;

    // `factory` must produce agents with a consistent num_decisions().
    explicit ContextualAgent(Factory factory, KeyFn key = {});

    std::vector<double> action_probabilities(const ClientContext& context) override;
    void update(const ClientContext& context, Decision d, Reward r) override;
    std::size_t num_decisions() const noexcept override;
    std::string_view name() const noexcept override { return "contextual"; }

    std::size_t num_contexts_seen() const noexcept { return per_context_.size(); }

private:
    ExplorationAgent& agent_for(const ClientContext& context);

    Factory factory_;
    KeyFn key_;
    mutable std::unordered_map<std::uint64_t, std::unique_ptr<ExplorationAgent>>
        per_context_;
    std::unique_ptr<ExplorationAgent> prototype_; // defines num_decisions()
};

} // namespace dre::bandit

#endif // DRE_BANDIT_AGENTS_H
