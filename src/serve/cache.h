// EvalCache — the cross-request read-only cache at the heart of dre::serve.
//
// The expensive inputs of an evaluation request are pure functions of the
// request's identity fields and the bytes on disk:
//
//   trace entry   (trace path)            → loaded Trace + open ShardedStore
//   policy        (trace path, spec)      → parsed/fitted Policy
//   evaluator     (trace path, model)     → fitted RewardModel + q̂
//                                           PredictionMatrix inside an
//                                           Evaluator
//
// None of them depends on the seed or CI settings: with cross_fit and
// estimate_propensities off, the Evaluator constructor never draws from
// its RNG, and Evaluator::evaluate_seeded takes the request's Rng(seed)
// and CI overrides per call. So one cached Evaluator answers every
// (policy, seed, ci) combination on its (trace, model) pair with results
// byte-identical to a fresh CLI run — that is the cache's correctness
// contract, and test_serve proves it.
//
// Concurrency: each keyed slot is built exactly once under std::call_once
// while other requesters for the same key block on that flag; a builder
// exception is captured into the slot and rethrown to every requester
// (deterministic failures are cached like deterministic successes —
// retrying a malformed spec cannot help). Completed slots are shared
// immutable state behind shared_ptr and a shared_mutex-guarded map, so
// steady-state lookups take only a reader lock. Hit/miss counters are kept
// as plain atomics (asserted by tests even when DRE_OBS_ENABLED=0) and
// mirrored into the obs registry (serve.cache.*).
#ifndef DRE_SERVE_CACHE_H
#define DRE_SERVE_CACHE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "core/evaluator.h"
#include "core/policy.h"
#include "store/sharded.h"
#include "trace/trace.h"

namespace dre::serve {

// A loaded trace plus the store that backs it. The ShardedStore member
// keeps the mmaps (or the shared pread GroupCache) alive and owned by the
// server for its whole lifetime — the "load once, serve many" half of the
// perf story. Null for CSV input, which has no store to keep open.
struct TraceEntry {
    std::shared_ptr<const store::ShardedStore> store;
    Trace trace;
};

struct CacheCounters {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
};

struct CacheStats {
    std::uint64_t trace_hits = 0, trace_misses = 0;
    std::uint64_t policy_hits = 0, policy_misses = 0;
    std::uint64_t evaluator_hits = 0, evaluator_misses = 0;
    std::uint64_t result_hits = 0, result_misses = 0;
};

// One finished non-degraded evaluation, kept for brownout cache-only
// serving: under overload the io thread can answer a repeat request with
// these exact bytes without queueing any compute.
struct CachedResult {
    std::string text;
    double dr = 0.0;
};

class EvalCache {
public:
    using TracePtr = std::shared_ptr<const TraceEntry>;
    using PolicyPtr = std::shared_ptr<const core::Policy>;
    using EvaluatorPtr = std::shared_ptr<const core::Evaluator>;

    // Each getter returns the cached value for `key`, building it at most
    // once via `build` (other threads with the same key wait for that one
    // build). `hit` reports whether the value pre-existed — the admission
    // layer forwards it to the client's Result frame.
    TracePtr trace(const std::string& key,
                   const std::function<TracePtr()>& build, bool* hit = nullptr);
    PolicyPtr policy(const std::string& key,
                     const std::function<PolicyPtr()>& build,
                     bool* hit = nullptr);
    EvaluatorPtr evaluator(const std::string& key,
                           const std::function<EvaluatorPtr()>& build,
                           bool* hit = nullptr);

    // Bounded LRU over finished full-fidelity results, keyed by the
    // server's job key (trace, policy, model, ci, seed). Unlike the slot
    // maps above this one is write-through and evicting — it exists so
    // brownout can serve *something exact* without compute, not to hold
    // every response ever produced.
    using ResultPtr = std::shared_ptr<const CachedResult>;
    ResultPtr result(const std::string& key); // null = miss
    void put_result(const std::string& key, ResultPtr value);

    CacheStats stats() const;

private:
    template <typename T>
    struct Slot {
        std::once_flag once;
        std::atomic<bool> ready{false};
        std::shared_ptr<const T> value;
        std::exception_ptr error;
    };

    template <typename T>
    struct SlotMap {
        mutable std::shared_mutex mutex;
        std::map<std::string, std::shared_ptr<Slot<T>>> slots;
        CacheCounters counters;

        std::shared_ptr<const T> get_or_build(
            const std::string& key,
            const std::function<std::shared_ptr<const T>()>& build, bool* hit,
            const char* hit_metric, const char* miss_metric);
    };

    SlotMap<TraceEntry> traces_;
    SlotMap<core::Policy> policies_;
    SlotMap<core::Evaluator> evaluators_;

    static constexpr std::size_t kResultCacheCapacity = 256;
    mutable std::mutex result_mutex_;
    std::list<std::string> result_lru_; // front = most recently used
    std::map<std::string, std::pair<ResultPtr, std::list<std::string>::iterator>>
        results_;
    CacheCounters result_counters_;
};

} // namespace dre::serve

#endif // DRE_SERVE_CACHE_H
