#include "serve/journal.h"

#include <chrono>
#include <cinttypes>

#include "obs/report.h"

namespace dre::serve {
namespace {

std::uint64_t wall_ms_now() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

std::string hex_id(std::uint64_t id) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%" PRIx64, id);
    return buf;
}

} // namespace

std::string journal_line_json(const JournalRecord& record,
                              std::uint64_t ts_ms) {
    std::string out;
    out.reserve(320);
    obs::JsonWriter json(&out);
    json.begin_object();
    json.key("ts_ms");
    json.value(ts_ms);
    json.key("trace_id");
    json.value(std::string_view(hex_id(record.trace_id)));
    json.key("trace");
    json.value(std::string_view(record.trace));
    json.key("policy");
    json.value(std::string_view(record.policy));
    json.key("model");
    json.value(std::string_view(record.model));
    json.key("seed");
    json.value(record.seed);
    json.key("ci");
    json.value(static_cast<std::uint64_t>(record.ci_replicates));
    json.key("outcome");
    json.value(std::string_view(record.error_code.empty() ? "ok" : "error"));
    json.key("error_code");
    json.value(std::string_view(record.error_code));
    json.key("error");
    json.value(std::string_view(record.error));
    json.key("total_ms");
    json.value(record.total_ms);
    json.key("queue_ms");
    json.value(record.queue_ms);
    json.key("cache_ms");
    json.value(record.cache_ms);
    json.key("compute_ms");
    json.value(record.compute_ms);
    json.key("serialize_ms");
    json.value(record.serialize_ms);
    json.key("trace_hit");
    json.value(record.trace_hit);
    json.key("policy_hit");
    json.value(record.policy_hit);
    json.key("evaluator_hit");
    json.value(record.evaluator_hit);
    json.key("coalesced");
    json.value(record.coalesced);
    json.key("degraded");
    json.value(record.degraded);
    json.key("waiters");
    json.value(record.waiters);
    json.key("quarantined");
    json.value(record.quarantined);
    json.end_object();
    return out;
}

RequestJournal::RequestJournal(const std::string& path, double threshold_ms)
    : threshold_ms_(threshold_ms) {
    file_ = std::fopen(path.c_str(), "a");
}

RequestJournal::~RequestJournal() {
    if (file_ != nullptr) std::fclose(file_);
}

void RequestJournal::log(const JournalRecord& record) {
    if (file_ == nullptr) return;
    if (record.error_code.empty() && record.total_ms < threshold_ms_) return;
    const std::string line = journal_line_json(record, wall_ms_now());
    std::lock_guard<std::mutex> lock(mutex_);
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
    lines_.fetch_add(1, std::memory_order_relaxed);
}

} // namespace dre::serve
