// MetricsHttpServer — the tiny HTTP side listener behind
// `dre_serve --metrics-port` (DESIGN.md §13).
//
// Deliberately not a web server: it answers exactly two GET paths and
// nothing else —
//
//   GET /metrics   the OpenMetrics exposition of the obs registry
//   GET /healthz   "ok\n" (liveness for probes and scripts)
//
// — each on its own short-lived connection (Connection: close), parsed
// from the request line only. It runs one poll-loop thread, mirroring the
// EvalServer io loop's wake-pipe shutdown pattern, and never touches the
// evaluation path: a scrape costs registry snapshots, nothing more.
//
// When the library is built with DRE_OBS_ENABLED=0 there is no registry
// worth scraping and the telemetry surface is compiled out; start() then
// refuses with std::runtime_error, and dre_serve reports the
// misconfiguration at startup instead of serving empty metrics.
#ifndef DRE_SERVE_METRICS_HTTP_H
#define DRE_SERVE_METRICS_HTTP_H

#include <atomic>
#include <cstdint>
#include <thread>

namespace dre::serve {

class MetricsHttpServer {
public:
    // `port` 0 = kernel-assigned (read back via port() after start()).
    // `request_timeout_ms` bounds the *whole* header read per connection —
    // the slow-loris guard: a peer trickling bytes (or stalling outright)
    // is cut off and closed once the budget elapses, so one bad client can
    // hold the single-threaded listener for at most this long.
    explicit MetricsHttpServer(std::uint16_t port,
                               int request_timeout_ms = 2000);
    ~MetricsHttpServer(); // stop_and_join() if running
    MetricsHttpServer(const MetricsHttpServer&) = delete;
    MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

    // Binds 127.0.0.1:<port> and spawns the listener thread. Throws
    // std::runtime_error on socket failure or when DRE_OBS_ENABLED=0.
    void start();
    std::uint16_t port() const noexcept { return port_; }
    void stop_and_join();

private:
    void loop();

    std::uint16_t requested_port_;
    int request_timeout_ms_;
    std::uint16_t port_ = 0;
    int listen_fd_ = -1;
    int wake_pipe_[2] = {-1, -1};
    std::atomic<bool> stop_{false};
    bool started_ = false;
    std::thread thread_;
};

} // namespace dre::serve

#endif // DRE_SERVE_METRICS_HTTP_H
