#include "serve/service.h"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "core/policy_learning.h"
#include "obs/obs.h"
#include "store/sharded.h"
#include "trace/csv.h"
#include "trace/validate.h"

namespace dre::serve {
namespace {

bool ends_with(const std::string& s, const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

// Mirrors dre_eval's input handling: CSV loads directly; .drt paths and
// shard prefixes open as a ShardedStore (kept alive in the TraceEntry).
TraceEntry load_entry(const std::string& path,
                      const store::StoreReaderOptions& options) {
    TraceEntry entry;
    if (ends_with(path, ".csv")) {
        entry.trace = read_csv_file(path);
    } else {
        std::vector<std::string> shards;
        if (ends_with(path, ".drt")) {
            shards = {path};
        } else {
            shards = store::find_shards(path);
            if (shards.empty())
                throw std::runtime_error("no .drt shards match prefix " + path);
        }
        auto sharded =
            std::make_shared<const store::ShardedStore>(shards, options);
        entry.trace = sharded->read_all();
        entry.store = std::move(sharded);
    }
    if (entry.trace.empty()) throw std::runtime_error("trace is empty");
    // Same structural gate as the CLI: the in-memory estimators need every
    // tuple sound, so a defective trace is rejected with the same census
    // message a dre_eval run would print.
    const auto defects =
        count_defects(entry.trace, entry.trace.num_decisions());
    if (!defects.empty()) {
        std::string census;
        for (const auto& [code, count] : defects) {
            if (!census.empty()) census += ", ";
            census += code + ": " + std::to_string(count);
        }
        throw std::runtime_error(
            "trace has defective tuples (" + census +
            "); use --streaming --on-error quarantine to skip them");
    }
    return entry;
}

} // namespace

ResultMsg EvalService::evaluate(const EvaluateMsg& request,
                                EvalPhases* phases) {
    DRE_SPAN("serve.evaluate");
    if (request.trace.empty())
        throw std::invalid_argument("empty trace path");
    if (request.policy.empty())
        throw std::invalid_argument("empty policy spec");
    // Validate the model name before touching the trace, so a bad request
    // fails fast and never caches anything under a malformed key.
    const core::RewardModelKind model_kind =
        core::parse_reward_model_kind(request.model);
    (void)model_kind;

#if DRE_OBS_ENABLED
    const std::uint64_t cache_start_ns = obs::now_ns();
#endif
    bool trace_hit = false;
    const EvalCache::TracePtr entry = cache_.trace(
        request.trace,
        [&] {
            DRE_SPAN("serve.load_trace");
            return std::make_shared<const TraceEntry>(
                load_entry(request.trace, options_.reader_options));
        },
        &trace_hit);
    const Trace& trace = entry->trace;

    bool policy_hit = false;
    const EvalCache::PolicyPtr policy = cache_.policy(
        request.trace + '\n' + request.policy,
        [&] {
            DRE_SPAN("serve.fit_policy");
            return EvalCache::PolicyPtr(core::parse_policy_spec(
                request.policy, trace, trace.num_decisions()));
        },
        &policy_hit);

    bool evaluator_hit = false;
    const EvalCache::EvaluatorPtr evaluator = cache_.evaluator(
        request.trace + '\n' + request.model,
        [&] {
            DRE_SPAN("serve.fit_evaluator");
            core::EvaluationConfig config;
            config.reward_model = core::parse_reward_model_kind(request.model);
            // cross_fit and estimate_propensities stay off, so this
            // constructor draws nothing from its RNG and the instance is
            // seed-independent — see cache.h. CI settings are per-call
            // overrides on evaluate_seeded, never baked in here.
            return std::make_shared<const core::Evaluator>(trace, config,
                                                           stats::Rng(1));
        },
        &evaluator_hit);

#if DRE_OBS_ENABLED
    const std::uint64_t compute_start_ns = obs::now_ns();
#endif
    const core::PolicyEvaluation result = evaluator->evaluate_seeded(
        *policy, stats::Rng(request.seed),
        static_cast<int>(request.ci_replicates), 0.95);
#if DRE_OBS_ENABLED
    const std::uint64_t render_start_ns = obs::now_ns();
#endif

    // The response is the CLI's stdout, byte for byte: header line, then
    // the shared report renderer.
    char header[96];
    std::snprintf(header, sizeof(header), "trace: %zu tuples, %zu decisions\n",
                  trace.size(), trace.num_decisions());
    ResultMsg out;
    out.text = header;
    out.text += core::make_policy_report(request.policy, result).to_text();
    out.dr = result.dr.value;
    out.cache_hit = evaluator_hit;
    DRE_COUNTER_INC("serve.requests_evaluated");
    if (phases != nullptr) {
        phases->trace_hit = trace_hit;
        phases->policy_hit = policy_hit;
        phases->evaluator_hit = evaluator_hit;
#if DRE_OBS_ENABLED
        const std::uint64_t end_ns = obs::now_ns();
        phases->cache_ms =
            static_cast<double>(compute_start_ns - cache_start_ns) / 1e6;
        phases->compute_ms =
            static_cast<double>(render_start_ns - compute_start_ns) / 1e6;
        phases->serialize_ms =
            static_cast<double>(end_ns - render_start_ns) / 1e6;
        DRE_HIST_RECORD("serve.cache_ms", phases->cache_ms);
        DRE_HIST_RECORD("serve.compute_ms", phases->compute_ms);
#endif
    }
    return out;
}

} // namespace dre::serve
