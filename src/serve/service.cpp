#include "serve/service.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "core/policy_learning.h"
#include "obs/obs.h"
#include "store/sharded.h"
#include "trace/csv.h"
#include "trace/validate.h"

namespace dre::serve {
namespace {

bool ends_with(const std::string& s, const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

// Mirrors dre_eval's input handling: CSV loads directly; .drt paths and
// shard prefixes open as a ShardedStore (kept alive in the TraceEntry).
TraceEntry load_entry(const std::string& path,
                      const store::StoreReaderOptions& options) {
    TraceEntry entry;
    if (ends_with(path, ".csv")) {
        entry.trace = read_csv_file(path);
    } else {
        std::vector<std::string> shards;
        if (ends_with(path, ".drt")) {
            shards = {path};
        } else {
            shards = store::find_shards(path);
            if (shards.empty())
                throw std::runtime_error("no .drt shards match prefix " + path);
        }
        auto sharded =
            std::make_shared<const store::ShardedStore>(shards, options);
        entry.trace = sharded->read_all();
        entry.store = std::move(sharded);
    }
    if (entry.trace.empty()) throw std::runtime_error("trace is empty");
    // Same structural gate as the CLI: the in-memory estimators need every
    // tuple sound, so a defective trace is rejected with the same census
    // message a dre_eval run would print.
    const auto defects =
        count_defects(entry.trace, entry.trace.num_decisions());
    if (!defects.empty()) {
        std::string census;
        for (const auto& [code, count] : defects) {
            if (!census.empty()) census += ", ";
            census += code + ": " + std::to_string(count);
        }
        throw std::runtime_error(
            "trace has defective tuples (" + census +
            "); use --streaming --on-error quarantine to skip them");
    }
    return entry;
}

void check_deadline(const DeadlineFn& deadline, const char* phase) {
    if (deadline && deadline()) throw DeadlineExceeded(phase);
}

// The shortest prefix that honors both the coverage target and dimensional
// compatibility: a fitted policy / q̂ matrix sized for the full trace's
// decision space must stay valid over the prefix, so the prefix is grown
// (deterministically — a pure function of the trace) until it contains the
// largest decision id the full trace has.
std::size_t degraded_prefix_len(const Trace& trace, double coverage) {
    const std::size_t n = trace.size();
    const auto target = static_cast<std::size_t>(
        std::ceil(std::clamp(coverage, 0.0, 1.0) * static_cast<double>(n)));
    std::size_t len = std::clamp<std::size_t>(target, 1, n);
    const std::size_t max_decision = trace.num_decisions() - 1;
    std::size_t need = n; // fallback: the full trace always qualifies
    for (std::size_t i = 0; i < n; ++i) {
        if (static_cast<std::size_t>(trace[i].decision) == max_decision) {
            need = i + 1;
            break;
        }
    }
    return std::max(len, need);
}

} // namespace

ResultMsg EvalService::evaluate(const EvaluateMsg& request,
                                EvalPhases* phases,
                                const DeadlineFn& deadline) {
    DRE_SPAN("serve.evaluate");
    if (request.trace.empty())
        throw std::invalid_argument("empty trace path");
    if (request.policy.empty())
        throw std::invalid_argument("empty policy spec");
    // Validate the model name before touching the trace, so a bad request
    // fails fast and never caches anything under a malformed key.
    const core::RewardModelKind model_kind =
        core::parse_reward_model_kind(request.model);
    (void)model_kind;

#if DRE_OBS_ENABLED
    const std::uint64_t cache_start_ns = obs::now_ns();
#endif
    bool trace_hit = false;
    const EvalCache::TracePtr entry = cache_.trace(
        request.trace,
        [&] {
            DRE_SPAN("serve.load_trace");
            return std::make_shared<const TraceEntry>(
                load_entry(request.trace, options_.reader_options));
        },
        &trace_hit);
    const Trace& trace = entry->trace;

    bool policy_hit = false;
    const EvalCache::PolicyPtr policy = cache_.policy(
        request.trace + '\n' + request.policy,
        [&] {
            DRE_SPAN("serve.fit_policy");
            return EvalCache::PolicyPtr(core::parse_policy_spec(
                request.policy, trace, trace.num_decisions()));
        },
        &policy_hit);

    bool evaluator_hit = false;
    const EvalCache::EvaluatorPtr evaluator = cache_.evaluator(
        request.trace + '\n' + request.model,
        [&] {
            DRE_SPAN("serve.fit_evaluator");
            core::EvaluationConfig config;
            config.reward_model = core::parse_reward_model_kind(request.model);
            // cross_fit and estimate_propensities stay off, so this
            // constructor draws nothing from its RNG and the instance is
            // seed-independent — see cache.h. CI settings are per-call
            // overrides on evaluate_seeded, never baked in here.
            return std::make_shared<const core::Evaluator>(trace, config,
                                                           stats::Rng(1));
        },
        &evaluator_hit);
    check_deadline(deadline, "cache");

#if DRE_OBS_ENABLED
    const std::uint64_t compute_start_ns = obs::now_ns();
#endif
    const core::PolicyEvaluation result = evaluator->evaluate_seeded(
        *policy, stats::Rng(request.seed),
        static_cast<int>(request.ci_replicates), 0.95);
    check_deadline(deadline, "compute");
#if DRE_OBS_ENABLED
    const std::uint64_t render_start_ns = obs::now_ns();
#endif

    // The response is the CLI's stdout, byte for byte: header line, then
    // the shared report renderer.
    char header[96];
    std::snprintf(header, sizeof(header), "trace: %zu tuples, %zu decisions\n",
                  trace.size(), trace.num_decisions());
    ResultMsg out;
    out.text = header;
    out.text += core::make_policy_report(request.policy, result).to_text();
    out.dr = result.dr.value;
    out.cache_hit = evaluator_hit;
    check_deadline(deadline, "serialize");
    DRE_COUNTER_INC("serve.requests_evaluated");
    if (phases != nullptr) {
        phases->trace_hit = trace_hit;
        phases->policy_hit = policy_hit;
        phases->evaluator_hit = evaluator_hit;
#if DRE_OBS_ENABLED
        const std::uint64_t end_ns = obs::now_ns();
        phases->cache_ms =
            static_cast<double>(compute_start_ns - cache_start_ns) / 1e6;
        phases->compute_ms =
            static_cast<double>(render_start_ns - compute_start_ns) / 1e6;
        phases->serialize_ms =
            static_cast<double>(end_ns - render_start_ns) / 1e6;
        DRE_HIST_RECORD("serve.cache_ms", phases->cache_ms);
        DRE_HIST_RECORD("serve.compute_ms", phases->compute_ms);
#endif
    }
    return out;
}

ResultMsg EvalService::evaluate_degraded(const EvaluateMsg& request,
                                         double coverage, EvalPhases* phases,
                                         const DeadlineFn& deadline) {
    DRE_SPAN("serve.evaluate_degraded");
    if (request.trace.empty())
        throw std::invalid_argument("empty trace path");
    if (request.policy.empty())
        throw std::invalid_argument("empty policy spec");
    const core::RewardModelKind model_kind =
        core::parse_reward_model_kind(request.model);
    (void)model_kind;

#if DRE_OBS_ENABLED
    const std::uint64_t cache_start_ns = obs::now_ns();
#endif
    bool trace_hit = false;
    const EvalCache::TracePtr entry = cache_.trace(
        request.trace,
        [&] {
            DRE_SPAN("serve.load_trace");
            return std::make_shared<const TraceEntry>(
                load_entry(request.trace, options_.reader_options));
        },
        &trace_hit);
    const Trace& trace = entry->trace;

    // The policy is the full-trace fit — sharing the cache key with the
    // full-fidelity path means brownout never pays a model fit, and the
    // target policy under test is identical in both modes.
    bool policy_hit = false;
    const EvalCache::PolicyPtr policy = cache_.policy(
        request.trace + '\n' + request.policy,
        [&] {
            DRE_SPAN("serve.fit_policy");
            return EvalCache::PolicyPtr(core::parse_policy_spec(
                request.policy, trace, trace.num_decisions()));
        },
        &policy_hit);

    const std::size_t len = degraded_prefix_len(trace, coverage);
    const double actual_coverage =
        static_cast<double>(len) / static_cast<double>(trace.size());

    // A brownout evaluator is its own cached artifact, keyed by the prefix
    // it evaluates — deterministic, so every degraded answer for this
    // (trace, model, coverage) is byte-identical across the fleet.
    bool evaluator_hit = false;
    const EvalCache::EvaluatorPtr evaluator = cache_.evaluator(
        request.trace + '\n' + request.model + "\n#brownout:" +
            std::to_string(len),
        [&] {
            DRE_SPAN("serve.fit_evaluator_degraded");
            core::EvaluationConfig config;
            config.reward_model = core::parse_reward_model_kind(request.model);
            Trace prefix(std::vector<LoggedTuple>(trace.begin(),
                                                  trace.begin() +
                                                      static_cast<std::ptrdiff_t>(len)));
            return std::make_shared<const core::Evaluator>(std::move(prefix),
                                                           config,
                                                           stats::Rng(1));
        },
        &evaluator_hit);
    check_deadline(deadline, "cache");

#if DRE_OBS_ENABLED
    const std::uint64_t compute_start_ns = obs::now_ns();
#endif
    core::PolicyEvaluation result = evaluator->evaluate_seeded(
        *policy, stats::Rng(request.seed),
        static_cast<int>(request.ci_replicates), 0.95);
    // Estimates already average over exactly the prefix tuples (the exact
    // denominator rescaling — no phantom mass from unevaluated tuples);
    // what is left is to widen the CI half-widths by 1/coverage, the same
    // transform the streaming degrade mode applies (core/streaming.cpp):
    // deterministic, monotone in the skipped mass, identity for a clean
    // run.
    if (result.dr_ci && actual_coverage > 0.0 && actual_coverage < 1.0) {
        stats::ConfidenceInterval& ci = *result.dr_ci;
        ci.lower = ci.point - (ci.point - ci.lower) / actual_coverage;
        ci.upper = ci.point + (ci.upper - ci.point) / actual_coverage;
    }
    check_deadline(deadline, "compute");
#if DRE_OBS_ENABLED
    const std::uint64_t render_start_ns = obs::now_ns();
#endif

    // Header stays the full trace's census (that is the trace the client
    // asked about); the trailing degraded: line carries what was actually
    // evaluated. The text is deliberately distinct from the full-fidelity
    // bytes — a degraded answer must never masquerade as the real one.
    char header[96];
    std::snprintf(header, sizeof(header), "trace: %zu tuples, %zu decisions\n",
                  trace.size(), trace.num_decisions());
    char footer[160];
    std::snprintf(footer, sizeof(footer),
                  "degraded: brownout evaluated %zu/%zu tuples "
                  "(coverage %.6f); DR CI half-widths widened by 1/coverage\n",
                  len, trace.size(), actual_coverage);
    ResultMsg out;
    out.text = header;
    out.text += core::make_policy_report(request.policy, result).to_text();
    out.text += footer;
    out.dr = result.dr.value;
    out.cache_hit = evaluator_hit;
    out.degraded = true;
    out.coverage = actual_coverage;
    check_deadline(deadline, "serialize");
    DRE_COUNTER_INC("serve.requests_evaluated");
    DRE_COUNTER_INC("serve.requests_degraded");
    if (phases != nullptr) {
        phases->trace_hit = trace_hit;
        phases->policy_hit = policy_hit;
        phases->evaluator_hit = evaluator_hit;
#if DRE_OBS_ENABLED
        const std::uint64_t end_ns = obs::now_ns();
        phases->cache_ms =
            static_cast<double>(compute_start_ns - cache_start_ns) / 1e6;
        phases->compute_ms =
            static_cast<double>(render_start_ns - compute_start_ns) / 1e6;
        phases->serialize_ms =
            static_cast<double>(end_ns - render_start_ns) / 1e6;
        DRE_HIST_RECORD("serve.cache_ms", phases->cache_ms);
        DRE_HIST_RECORD("serve.compute_ms", phases->compute_ms);
#endif
    }
    return out;
}

} // namespace dre::serve
