// Wire protocol for dre::serve (DESIGN.md §12).
//
// Every message is one length-prefixed frame:
//
//   offset  size  field
//   0       4     u32 LE: bytes that follow (kind + payload)
//   4       1     u8 message kind (MsgKind)
//   5       n-1   payload, message-specific
//
// Payload scalars are little-endian fixed-width integers; doubles travel
// as their IEEE-754 bit pattern in a u64 (bit-exact — the determinism
// contract extends to the wire); strings are u32 length + raw bytes (no
// terminator). The frame length covers the kind byte, so an empty-payload
// message (Stats request, Ping without token) has length 1. Frames above
// kMaxFrameBytes are a protocol error: the peer is malfunctioning or
// hostile, and the connection is dropped rather than buffered without
// bound.
//
// Message vocabulary (client → server unless noted):
//
//   Hello      version handshake; server echoes its own Hello
//   Evaluate   one evaluation request (trace, policy, model, ci, seed,
//              optional trace_id for request-scoped tracing)
//   Result     server → client: the rendered report + headline DR, plus
//              the request's trace_id and phase timing breakdown
//   Stats      empty request; server replies with a StatsReply frame
//              (also kind kStats) carrying counters and latency quantiles
//   Ping       liveness probe; server echoes the token back
//   Error      server → client: classified failure for one request
//   Timeseries empty request; server replies with a Timeseries frame
//              carrying the telemetry ring (see obs/timeseries.h)
//
// Compatibility rule for the telemetry fields added in protocol v1:
// they are *optional trailing fields*. Encoders always append them;
// decoders read them only when bytes remain and otherwise default them to
// zero — never an error — so a pre-telemetry client or server
// interoperates unchanged (trace ids are simply absent/zero).
//
// The structs below are plain decoded forms; encode_*/decode_* do the
// byte work. Decoding never trusts lengths: every read is bounds-checked
// and a malformed payload throws ProtocolError (the server answers with
// kBadFrame and closes, it never crashes).
#ifndef DRE_SERVE_PROTOCOL_H
#define DRE_SERVE_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace dre::serve {

inline constexpr std::uint32_t kProtocolVersion = 1;
inline constexpr std::size_t kMaxFrameBytes = 16u << 20; // 16 MiB

enum class MsgKind : std::uint8_t {
    kHello = 1,
    kEvaluate = 2,
    kResult = 3,
    kStats = 4,
    kPing = 5,
    kError = 6,
    kTimeseries = 7,
};

enum class ErrorCode : std::uint32_t {
    kBadRequest = 1, // unknown policy/model spec, malformed field
    kNotFound = 2,   // trace path missing or unreadable
    kOverloaded = 3, // admission control rejected: queue full, retry later
    kInternal = 4,   // anything else; message carries the what()
    kBadFrame = 5,   // frame failed to decode; connection will close
    kDeadlineExceeded = 6, // the request's deadline passed (shed at
                           // admission or expired in queue/compute/
                           // serialize); retrying with the same deadline
                           // is futile, the client should raise it
};

class ProtocolError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

// --- decoded messages ------------------------------------------------------

struct HelloMsg {
    std::uint32_t version = kProtocolVersion;
};

// One evaluation request. Mirrors the dre_eval CLI surface the service
// reproduces byte-for-byte: `dre_eval <trace> <policy> --model <model>
// [--ci <ci_replicates>] --seed <seed>`.
struct EvaluateMsg {
    std::string trace;           // path or shard prefix, server-side
    std::string policy;          // uniform | constant:<d> | greedy:<model>[:<epsilon>]
    std::string model = "tabular";
    std::uint32_t ci_replicates = 0;
    std::uint64_t seed = 1;
    // Optional trailing field: the client's trace id for request-scoped
    // tracing. 0 (or absent on the wire) lets the server generate one.
    std::uint64_t trace_id = 0;
    // Optional trailing field (protocol v1, resilience): wall-clock budget
    // for this request in milliseconds, measured from admission. 0 (or
    // absent) = no deadline. The server sheds the request at admission if
    // the budget is provably unmeetable, and answers kDeadlineExceeded the
    // moment the budget expires in any later phase.
    std::uint64_t deadline_ms = 0;
};

struct ResultMsg {
    std::string text; // exactly the CLI's stdout for the same request
    double dr = 0.0;  // headline number, for clients that skip parsing
    bool cache_hit = false; // evaluator came from the shared cache
    // Optional trailing telemetry (zeros when the server was built with
    // DRE_OBS_ENABLED=0 or spoke the pre-telemetry protocol). These are
    // diagnostics about *this* service of the request — deliberately not
    // part of `text`, which stays byte-identical to the dre_eval CLI.
    std::uint64_t trace_id = 0; // echoed (or server-assigned) request id
    double queue_ms = 0.0;      // admission -> dispatcher pickup
    double cache_ms = 0.0;      // trace/policy/evaluator cache stage
    double compute_ms = 0.0;    // evaluate_seeded proper
    double serialize_ms = 0.0;  // response render + frame encode
    // Optional trailing resilience block. A degraded Result was produced
    // under overload brownout: estimates come from a prefix sub-trace with
    // denominators rescaled exactly over the tuples actually evaluated and
    // DR CI half-widths widened by 1/coverage (the PR 5 degrade-mode
    // semantics) — never a silently skewed full-trace estimate. Clients
    // that verify byte-identity must exclude degraded frames (loadgen
    // does). coverage stays 1.0 for non-degraded responses.
    bool degraded = false;
    double coverage = 1.0; // evaluated tuples / full-trace tuples
};

struct StatsReplyMsg {
    std::uint64_t requests_total = 0;
    std::uint64_t rejected = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t queue_depth = 0;
    std::uint64_t evaluator_hits = 0;
    std::uint64_t evaluator_misses = 0;
    std::uint64_t policy_hits = 0;
    std::uint64_t policy_misses = 0;
    std::uint64_t trace_hits = 0;
    std::uint64_t trace_misses = 0;
    double p50_ms = 0.0;
    double p90_ms = 0.0;
    double p99_ms = 0.0;
    // Optional trailing telemetry: phase-level quantiles and the journal
    // line count (zeros from a pre-telemetry or obs-disabled server).
    std::uint64_t journal_lines = 0;
    double queue_p50_ms = 0.0;
    double queue_p99_ms = 0.0;
    double compute_p50_ms = 0.0;
    double compute_p99_ms = 0.0;
    // Optional trailing resilience counters (zeros from a pre-resilience
    // server): deadline outcomes, admission sheds, brownout responses
    // (degraded compute + cache-only), and idle sessions reaped by the
    // io-thread watchdog.
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t shed = 0;
    std::uint64_t brownout = 0;
    std::uint64_t sessions_reaped = 0;
};

struct PingMsg {
    std::uint64_t token = 0;
};

// --- Timeseries ------------------------------------------------------------
//
// An empty-payload kTimeseries frame asks for the server's telemetry ring;
// the reply (same kind) is columnar: per named series, the (t_ms, value)
// points present in the ring, oldest first. Series whose metric appeared
// mid-ring simply have fewer points.

struct TimeseriesPoint {
    std::uint64_t t_ms = 0;
    double value = 0.0;
};

struct TimeseriesSeries {
    std::string name;
    std::vector<TimeseriesPoint> points;
};

struct TimeseriesReplyMsg {
    std::uint64_t interval_ms = 0; // sampling interval (0 = sampler off)
    std::vector<TimeseriesSeries> series;
};

struct ErrorMsg {
    ErrorCode code = ErrorCode::kInternal;
    std::string message;
};

// --- payload primitives ----------------------------------------------------

// Append-only little-endian payload builder.
class WireWriter {
public:
    void u8(std::uint8_t v) { bytes_.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void f64(double v); // IEEE-754 bit pattern via u64
    void str(const std::string& s);
    const std::vector<unsigned char>& bytes() const noexcept { return bytes_; }

private:
    std::vector<unsigned char> bytes_;
};

// Bounds-checked reader over one payload; any underrun or oversized string
// throws ProtocolError.
class WireReader {
public:
    WireReader(const unsigned char* data, std::size_t size)
        : data_(data), size_(size) {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();
    bool done() const noexcept { return pos_ == size_; }
    // Trailing bytes after the last field are a framing bug.
    void expect_done() const;

private:
    void need(std::size_t n) const;
    const unsigned char* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

// --- frames ----------------------------------------------------------------

struct Frame {
    MsgKind kind = MsgKind::kError;
    std::vector<unsigned char> payload;
};

// One complete wire frame: length prefix + kind + payload.
std::vector<unsigned char> encode_frame(MsgKind kind,
                                        const std::vector<unsigned char>& payload);

// Incremental frame reassembly over a byte stream. feed() whatever recv
// produced; next() pops complete frames in order. Oversized or
// unknown-kind frames throw ProtocolError (the session is then closed).
class FrameDecoder {
public:
    void feed(const unsigned char* data, std::size_t size);
    std::optional<Frame> next();
    std::size_t buffered() const noexcept { return buffer_.size(); }

private:
    std::deque<unsigned char> buffer_;
};

// --- message encode/decode -------------------------------------------------

std::vector<unsigned char> encode_hello(const HelloMsg& m);
std::vector<unsigned char> encode_evaluate(const EvaluateMsg& m);
std::vector<unsigned char> encode_result(const ResultMsg& m);
std::vector<unsigned char> encode_stats_request();
std::vector<unsigned char> encode_stats_reply(const StatsReplyMsg& m);
std::vector<unsigned char> encode_ping(const PingMsg& m);
std::vector<unsigned char> encode_error(const ErrorMsg& m);
std::vector<unsigned char> encode_timeseries_request();
std::vector<unsigned char> encode_timeseries_reply(const TimeseriesReplyMsg& m);

HelloMsg decode_hello(const Frame& f);
EvaluateMsg decode_evaluate(const Frame& f);
ResultMsg decode_result(const Frame& f);
// A kStats frame is a request when its payload is empty, a reply otherwise.
bool is_stats_request(const Frame& f);
StatsReplyMsg decode_stats_reply(const Frame& f);
PingMsg decode_ping(const Frame& f);
ErrorMsg decode_error(const Frame& f);
// Same empty-payload convention as Stats.
bool is_timeseries_request(const Frame& f);
TimeseriesReplyMsg decode_timeseries_reply(const Frame& f);

const char* to_string(ErrorCode code) noexcept;

} // namespace dre::serve

#endif // DRE_SERVE_PROTOCOL_H
