// EvalServer — the long-running TCP evaluation service (DESIGN.md §12).
//
// Thread model, chosen for determinism first:
//
//   io thread         accept loop + poll over every session fd. Decodes
//                     frames and answers the cheap messages (Hello, Ping,
//                     Stats) inline; Evaluate requests go through the
//                     admission layer below. Never computes.
//   dispatcher thread pops admitted jobs strictly FIFO and runs each one
//                     to completion on the shared dre::par pool (the
//                     evaluation parallelizes internally via parallel_for).
//                     One job at a time, so concurrent clients can never
//                     interleave two evaluations' arithmetic — responses
//                     are byte-identical at any client concurrency by
//                     construction, not by locking discipline.
//
// Admission control + coalescing (all under one queue mutex):
//   * identical in-flight requests — same (trace, policy, model, ci, seed)
//     key, whether queued or currently computing — attach the new session
//     as a waiter on the existing job and share its single computation;
//   * otherwise, if the bounded queue is full, the client gets an
//     immediate Error{kOverloaded} backpressure reply;
//   * otherwise a new job enters the FIFO queue.
// The dispatcher removes a job from the in-flight map and claims its
// waiter list under the same mutex before replying, so a request that
// coalesces can never miss its response.
//
// Sessions are shared_ptr-owned; a session's fd is closed only in its
// destructor, after the io thread has dropped it AND every job holding it
// as a waiter has replied — no fd-reuse races between the poll loop and a
// worker write. Graceful shutdown (request_stop / stop_and_join) stops
// accepting, drains every queued job, replies to its waiters, and only
// then tears sessions down.
//
// Resilience layer (DESIGN.md §15):
//   * Deadlines — an Evaluate frame may carry deadline_ms; admission sheds
//     the request immediately when the queue's EWMA service time says the
//     budget is unmeetable, the dispatcher answers kDeadlineExceeded when
//     the budget expires in the queue, and the service checks it at the
//     cache/compute/serialize phase boundaries.
//   * Brownout — with brownout_watermark > 0, once the queue reaches the
//     watermark new unique requests stop being first-class: a repeat of a
//     finished request is answered inline from the response cache (exact
//     bytes, no compute, still on the io thread because it is cheap), and
//     anything else is queued as a *degraded* job evaluated over a
//     coverage-rescaled prefix sub-trace with honestly widened CIs and an
//     explicit degraded flag. The queue overflowing max_queue still means
//     kOverloaded.
//   * Watchdog — with idle_timeout_ms > 0 the io thread polls with a
//     finite timeout and reaps sessions that have no outstanding request
//     and no bytes for the timeout (half-open peers, stalled writers,
//     clients wedged mid-frame by a corrupted length prefix).
//   * Fault points serve.accept / serve.read / serve.write /
//     serve.dispatch let seeded chaos schedules exercise all of the above;
//     kind=slow degrades io to byte-at-a-time reads / tiny chunked writes
//     without changing any delivered byte.
//   * Exactly-once journal — every admitted request produces one terminal
//     journal line (ok, error, degraded, shed, deadline-exceeded, or
//     drained at shutdown), written before its reply frame.
#ifndef DRE_SERVE_SERVER_H
#define DRE_SERVE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "serve/journal.h"
#include "serve/metrics_http.h"
#include "serve/protocol.h"
#include "serve/service.h"

namespace dre::serve {

struct ServerOptions {
    std::uint16_t port = 0;  // 0 = kernel-assigned; read back via port()
    std::size_t max_queue = 64; // pending unique Evaluate jobs (0 = reject
                                // everything that cannot coalesce)
    EvalService::Options service;

    // Resilience knobs (DESIGN.md §15). All off by default.
    std::size_t brownout_watermark = 0; // queue depth at/above which new
                                        // unique requests brown out
                                        // (0 = brownout off)
    double brownout_coverage = 0.25; // target fraction of the trace a
                                     // degraded evaluation covers
    std::uint64_t idle_timeout_ms = 0; // io watchdog: reap sessions idle
                                       // this long with nothing in flight
                                       // (0 = watchdog off)

    // Telemetry pipeline (DESIGN.md §13). All off by default; none of it
    // touches the evaluation results.
    int metrics_port = -1; // OpenMetrics HTTP listener: -1 = off, 0 =
                           // kernel-assigned, else the port. Requires a
                           // DRE_OBS_ENABLED build — start() throws
                           // otherwise.
    std::string journal_path;          // JSONL request journal ("" = off)
    double journal_threshold_ms = 0.0; // log requests at/above this total
                                       // latency; errors always log
    std::uint64_t ts_interval_ms = 1000; // time-series sampling interval
                                         // (0 = sampler off; the ring still
                                         // answers Timeseries, just empty)
    std::size_t ts_capacity = 512; // samples retained in the ring
};

class EvalServer {
public:
    explicit EvalServer(ServerOptions options = {});
    ~EvalServer(); // stop_and_join() if still running
    EvalServer(const EvalServer&) = delete;
    EvalServer& operator=(const EvalServer&) = delete;

    // Binds 127.0.0.1:<port>, then spawns the io and dispatcher threads.
    // Throws std::runtime_error on any socket failure.
    void start();
    // The bound port (after start()); useful with options.port = 0.
    std::uint16_t port() const noexcept { return port_; }

    // Ask the server to stop: no new connections or admissions, queued
    // jobs still drain. Safe from any thread; returns immediately.
    void request_stop();
    // request_stop() + join both threads + close every session. After
    // this, every admitted request has been answered.
    void stop_and_join();

    EvalService& service() noexcept { return service_; }
    StatsReplyMsg stats_snapshot();

    // The metrics listener's bound port (0 unless options.metrics_port was
    // >= 0 and start() succeeded).
    std::uint16_t metrics_port() const noexcept;
    // The journal, if one was configured (for line counts in tests/tools).
    const RequestJournal* journal() const noexcept { return journal_.get(); }
    // The telemetry ring behind the Timeseries frame (tests/bench drive
    // sample_once() directly).
    obs::TimeSeriesRing& timeseries_ring() noexcept { return ring_; }
    // The ring pivoted into the wire form, oldest points first.
    TimeseriesReplyMsg timeseries_snapshot();

private:
    struct Session;
    struct Job;
    struct Waiter;

    void io_loop();
    void dispatch_loop();
    void handle_frame(const std::shared_ptr<Session>& session, const Frame& f);
    void admit(const std::shared_ptr<Session>& session, EvaluateMsg request);
    void send_frame(Session& session, const std::vector<unsigned char>& bytes);
    // Poke the io thread's wake pipe (safe from any thread): used on stop
    // and whenever a session is marked closed off the io thread, so the
    // poll loop reaps it without waiting for socket traffic.
    void wake_io();
    void journal_terminal(const EvaluateMsg& request, std::uint64_t trace_id,
                          const char* error_code, const std::string& error);

    ServerOptions options_;
    EvalService service_;
    obs::TimeSeriesRing ring_;
    std::unique_ptr<RequestJournal> journal_;
    std::unique_ptr<MetricsHttpServer> metrics_http_;

    int listen_fd_ = -1;
    int wake_pipe_[2] = {-1, -1};
    std::uint16_t port_ = 0;
    bool started_ = false;
    std::atomic<bool> stop_{false};
    // Set by the io thread as its last act. The dispatcher exits only once
    // stop is requested, the io thread can admit nothing more, AND the
    // queue is drained — otherwise a job admitted in the io thread's final
    // iteration could be dropped unanswered.
    std::atomic<bool> io_done_{false};
    std::thread io_thread_;
    std::thread dispatch_thread_;

    // Admission state (queue + in-flight coalescing map), one mutex.
    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<std::shared_ptr<Job>> queue_;
    std::map<std::string, std::shared_ptr<Job>> inflight_;

    std::vector<std::shared_ptr<Session>> sessions_; // io thread only

    std::atomic<std::uint64_t> requests_total_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> coalesced_{0};
    std::atomic<std::uint64_t> deadline_exceeded_{0};
    std::atomic<std::uint64_t> shed_{0};
    std::atomic<std::uint64_t> brownout_{0};
    std::atomic<std::uint64_t> sessions_reaped_{0};
    // EWMA of dispatcher job service time, microseconds; 0 until the first
    // job finishes. Written by the dispatcher, read by admission shedding.
    std::atomic<std::uint64_t> avg_job_us_{0};
    // Fault-point sequences. accept/read run on the io thread only but the
    // write sequence is shared between io-thread inline replies and
    // dispatcher result sends, so all stay atomic for simplicity.
    std::atomic<std::uint64_t> accept_seq_{0};
    std::atomic<std::uint64_t> read_seq_{0};
    std::atomic<std::uint64_t> write_seq_{0};
    std::atomic<std::uint64_t> dispatch_seq_{0};
    obs::Histogram& request_ms_;
};

} // namespace dre::serve

#endif // DRE_SERVE_SERVER_H
