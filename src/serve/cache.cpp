#include "serve/cache.h"

#include "obs/obs.h"

namespace dre::serve {

template <typename T>
std::shared_ptr<const T> EvalCache::SlotMap<T>::get_or_build(
    const std::string& key,
    const std::function<std::shared_ptr<const T>()>& build, bool* hit,
    const char* hit_metric, const char* miss_metric) {
    std::shared_ptr<Slot<T>> slot;
    {
        std::shared_lock<std::shared_mutex> read(mutex);
        auto it = slots.find(key);
        if (it != slots.end()) slot = it->second;
    }
    if (!slot) {
        std::unique_lock<std::shared_mutex> write(mutex);
        auto& entry = slots[key];
        if (!entry) entry = std::make_shared<Slot<T>>();
        slot = entry;
    }
    // A slot that finished building before we arrived is a hit; anything
    // else — including arriving while another thread builds — is a miss
    // (we still share that build via the once flag below).
    const bool was_ready = slot->ready.load(std::memory_order_acquire);
    if (hit != nullptr) *hit = was_ready;
    if (was_ready) {
        counters.hits.fetch_add(1, std::memory_order_relaxed);
        obs::registry().counter(hit_metric).add();
    } else {
        counters.misses.fetch_add(1, std::memory_order_relaxed);
        obs::registry().counter(miss_metric).add();
    }
    std::call_once(slot->once, [&] {
        // The exception (a malformed spec, a missing file) is captured
        // into the slot so the once flag still latches: every requester of
        // this key sees the same deterministic failure instead of one of
        // them retrying a build that cannot succeed.
        try {
            slot->value = build();
        } catch (...) {
            slot->error = std::current_exception();
        }
        slot->ready.store(true, std::memory_order_release);
    });
    if (slot->error) std::rethrow_exception(slot->error);
    return slot->value;
}

EvalCache::TracePtr EvalCache::trace(const std::string& key,
                                     const std::function<TracePtr()>& build,
                                     bool* hit) {
    return traces_.get_or_build(key, build, hit, "serve.cache.trace_hits",
                                "serve.cache.trace_misses");
}

EvalCache::PolicyPtr EvalCache::policy(const std::string& key,
                                       const std::function<PolicyPtr()>& build,
                                       bool* hit) {
    return policies_.get_or_build(key, build, hit, "serve.cache.policy_hits",
                                  "serve.cache.policy_misses");
}

EvalCache::EvaluatorPtr EvalCache::evaluator(
    const std::string& key, const std::function<EvaluatorPtr()>& build,
    bool* hit) {
    return evaluators_.get_or_build(key, build, hit,
                                    "serve.cache.evaluator_hits",
                                    "serve.cache.evaluator_misses");
}

EvalCache::ResultPtr EvalCache::result(const std::string& key) {
    std::lock_guard<std::mutex> lock(result_mutex_);
    const auto it = results_.find(key);
    if (it == results_.end()) {
        result_counters_.misses.fetch_add(1, std::memory_order_relaxed);
        obs::registry().counter("serve.cache.result_misses").add();
        return nullptr;
    }
    result_lru_.splice(result_lru_.begin(), result_lru_, it->second.second);
    result_counters_.hits.fetch_add(1, std::memory_order_relaxed);
    obs::registry().counter("serve.cache.result_hits").add();
    return it->second.first;
}

void EvalCache::put_result(const std::string& key, ResultPtr value) {
    std::lock_guard<std::mutex> lock(result_mutex_);
    const auto it = results_.find(key);
    if (it != results_.end()) {
        it->second.first = std::move(value);
        result_lru_.splice(result_lru_.begin(), result_lru_, it->second.second);
        return;
    }
    result_lru_.push_front(key);
    results_.emplace(key, std::make_pair(std::move(value), result_lru_.begin()));
    if (results_.size() > kResultCacheCapacity) {
        results_.erase(result_lru_.back());
        result_lru_.pop_back();
    }
}

CacheStats EvalCache::stats() const {
    CacheStats s;
    s.trace_hits = traces_.counters.hits.load(std::memory_order_relaxed);
    s.trace_misses = traces_.counters.misses.load(std::memory_order_relaxed);
    s.policy_hits = policies_.counters.hits.load(std::memory_order_relaxed);
    s.policy_misses = policies_.counters.misses.load(std::memory_order_relaxed);
    s.evaluator_hits =
        evaluators_.counters.hits.load(std::memory_order_relaxed);
    s.evaluator_misses =
        evaluators_.counters.misses.load(std::memory_order_relaxed);
    s.result_hits = result_counters_.hits.load(std::memory_order_relaxed);
    s.result_misses = result_counters_.misses.load(std::memory_order_relaxed);
    return s;
}

} // namespace dre::serve
