#include "serve/client.h"

#include <cmath>
#include <cstring>

#include "obs/obs.h"

#if defined(__unix__) || defined(__APPLE__)
#define DRE_SERVE_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define DRE_SERVE_HAVE_SOCKETS 0
#endif

namespace dre::serve {

#if DRE_SERVE_HAVE_SOCKETS

Client::Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        throw std::runtime_error(std::string("serve client: socket: ") +
                                 std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(fd_);
        fd_ = -1;
        throw std::runtime_error(
            std::string("serve client: connect to 127.0.0.1:") +
            std::to_string(port) + ": " + std::strerror(saved));
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    send_bytes(encode_hello({kProtocolVersion}));
    const Frame reply = read_frame();
    server_version_ = decode_hello(reply).version;
}

Client::~Client() {
    if (fd_ >= 0) ::close(fd_);
}

void Client::send_bytes(const std::vector<unsigned char>& bytes) {
    std::size_t done = 0;
    while (done < bytes.size()) {
        const ::ssize_t sent = ::send(fd_, bytes.data() + done,
                                      bytes.size() - done, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error(std::string("serve client: send: ") +
                                     std::strerror(errno));
        }
        done += static_cast<std::size_t>(sent);
    }
}

Frame Client::read_frame() {
    unsigned char buffer[64 * 1024];
    for (;;) {
        if (auto frame = decoder_.next()) return std::move(*frame);
        const ::ssize_t got = ::recv(fd_, buffer, sizeof(buffer), 0);
        if (got < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error(std::string("serve client: recv: ") +
                                     std::strerror(errno));
        }
        if (got == 0)
            throw std::runtime_error("serve client: server closed connection");
        decoder_.feed(buffer, static_cast<std::size_t>(got));
    }
}

ResultMsg Client::evaluate(const EvaluateMsg& request) {
    send_bytes(encode_evaluate(request));
    const Frame reply = read_frame();
    if (reply.kind == MsgKind::kError) {
        const ErrorMsg err = decode_error(reply);
        throw ServeError(err.code, err.message);
    }
    return decode_result(reply);
}

StatsReplyMsg Client::stats() {
    send_bytes(encode_stats_request());
    return decode_stats_reply(read_frame());
}

TimeseriesReplyMsg Client::timeseries() {
    send_bytes(encode_timeseries_request());
    return decode_timeseries_reply(read_frame());
}

PingMsg Client::ping(std::uint64_t token) {
    send_bytes(encode_ping({token}));
    return decode_ping(read_frame());
}

#else // !DRE_SERVE_HAVE_SOCKETS

Client::Client(std::uint16_t) {
    throw std::runtime_error("serve client: no socket support on this platform");
}
Client::~Client() = default;
void Client::send_bytes(const std::vector<unsigned char>&) {}
Frame Client::read_frame() { return {}; }
ResultMsg Client::evaluate(const EvaluateMsg&) { return {}; }
StatsReplyMsg Client::stats() { return {}; }
TimeseriesReplyMsg Client::timeseries() { return {}; }
PingMsg Client::ping(std::uint64_t) { return {}; }

#endif // DRE_SERVE_HAVE_SOCKETS

// --- RetryingClient --------------------------------------------------------
// Platform-independent: it only composes Client, which carries the socket
// guard itself.

namespace {

bool retryable_code(ErrorCode code) noexcept {
    switch (code) {
        case ErrorCode::kOverloaded:
        case ErrorCode::kInternal:
        case ErrorCode::kBadFrame:
            return true;
        case ErrorCode::kBadRequest:
        case ErrorCode::kNotFound:
        case ErrorCode::kDeadlineExceeded:
            return false;
    }
    return false;
}

} // namespace

RetryingClient::RetryingClient(std::uint16_t port, RetryPolicy policy)
    : port_(port), policy_(policy) {}

Client& RetryingClient::ensure_connected() {
    if (!client_) client_ = std::make_unique<Client>(port_);
    return *client_;
}

ResultMsg RetryingClient::evaluate(const EvaluateMsg& request) {
    const int max_attempts = policy_.max_attempts < 1 ? 1 : policy_.max_attempts;
    for (int attempt = 0;; ++attempt) {
        bool reconnect = false;
        try {
            return ensure_connected().evaluate(request);
        } catch (const ServeError& e) {
            // The error reply was well-formed, so the connection is fine —
            // except after kBadFrame, where the server closes the session.
            reconnect = e.code() == ErrorCode::kBadFrame;
            if (!retryable_code(e.code()) || attempt + 1 >= max_attempts) {
                throw;
            }
        } catch (const ProtocolError&) {
            reconnect = true;
            if (attempt + 1 >= max_attempts) throw;
        } catch (const std::runtime_error&) {
            // Transport-level: connect refused, send/recv error, server
            // closed the connection mid-reply.
            reconnect = true;
            if (attempt + 1 >= max_attempts) throw;
        }
        if (reconnect) client_.reset();
        const double backoff =
            policy_.backoff_base_ms *
            std::pow(policy_.backoff_multiplier, attempt);
        backoff_ms_ += backoff; // virtual: recorded, never slept
        ++retries_;
        DRE_COUNTER_INC("serve.retries");
        DRE_HIST_RECORD("serve.client.retry_backoff_ms", backoff);
    }
}

StatsReplyMsg RetryingClient::stats() { return ensure_connected().stats(); }

PingMsg RetryingClient::ping(std::uint64_t token) {
    return ensure_connected().ping(token);
}

} // namespace dre::serve
