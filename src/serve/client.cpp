#include "serve/client.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define DRE_SERVE_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define DRE_SERVE_HAVE_SOCKETS 0
#endif

namespace dre::serve {

#if DRE_SERVE_HAVE_SOCKETS

Client::Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        throw std::runtime_error(std::string("serve client: socket: ") +
                                 std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(fd_);
        fd_ = -1;
        throw std::runtime_error(
            std::string("serve client: connect to 127.0.0.1:") +
            std::to_string(port) + ": " + std::strerror(saved));
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    send_bytes(encode_hello({kProtocolVersion}));
    const Frame reply = read_frame();
    server_version_ = decode_hello(reply).version;
}

Client::~Client() {
    if (fd_ >= 0) ::close(fd_);
}

void Client::send_bytes(const std::vector<unsigned char>& bytes) {
    std::size_t done = 0;
    while (done < bytes.size()) {
        const ::ssize_t sent = ::send(fd_, bytes.data() + done,
                                      bytes.size() - done, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error(std::string("serve client: send: ") +
                                     std::strerror(errno));
        }
        done += static_cast<std::size_t>(sent);
    }
}

Frame Client::read_frame() {
    unsigned char buffer[64 * 1024];
    for (;;) {
        if (auto frame = decoder_.next()) return std::move(*frame);
        const ::ssize_t got = ::recv(fd_, buffer, sizeof(buffer), 0);
        if (got < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error(std::string("serve client: recv: ") +
                                     std::strerror(errno));
        }
        if (got == 0)
            throw std::runtime_error("serve client: server closed connection");
        decoder_.feed(buffer, static_cast<std::size_t>(got));
    }
}

ResultMsg Client::evaluate(const EvaluateMsg& request) {
    send_bytes(encode_evaluate(request));
    const Frame reply = read_frame();
    if (reply.kind == MsgKind::kError) {
        const ErrorMsg err = decode_error(reply);
        throw ServeError(err.code, err.message);
    }
    return decode_result(reply);
}

StatsReplyMsg Client::stats() {
    send_bytes(encode_stats_request());
    return decode_stats_reply(read_frame());
}

TimeseriesReplyMsg Client::timeseries() {
    send_bytes(encode_timeseries_request());
    return decode_timeseries_reply(read_frame());
}

PingMsg Client::ping(std::uint64_t token) {
    send_bytes(encode_ping({token}));
    return decode_ping(read_frame());
}

#else // !DRE_SERVE_HAVE_SOCKETS

Client::Client(std::uint16_t) {
    throw std::runtime_error("serve client: no socket support on this platform");
}
Client::~Client() = default;
void Client::send_bytes(const std::vector<unsigned char>&) {}
Frame Client::read_frame() { return {}; }
ResultMsg Client::evaluate(const EvaluateMsg&) { return {}; }
StatsReplyMsg Client::stats() { return {}; }
TimeseriesReplyMsg Client::timeseries() { return {}; }
PingMsg Client::ping(std::uint64_t) { return {}; }

#endif // DRE_SERVE_HAVE_SOCKETS

} // namespace dre::serve
