// EvalService — the evaluation engine behind the TCP server (and behind
// in-process tests, which exercise it without sockets).
//
// One instance owns the stores, traces, fitted models, and prediction
// matrices for every trace it has been asked about, via EvalCache. A
// request is answered by:
//
//   1. trace entry for the request path (load once; .drt stores stay open
//      so their mmaps / shared pread GroupCache are reused),
//   2. cached policy for (trace, policy spec) — greedy specs fit a reward
//      model, which is the expensive part,
//   3. cached Evaluator for (trace, model kind) — reward-model fit plus
//      the full q̂ PredictionMatrix build,
//   4. evaluate_seeded(policy, Rng(seed), ci, level) — the only per-request
//      compute: five estimator passes and (optionally) the bootstrap.
//
// The response text is the byte-exact stdout of
//   dre_eval <trace> <policy> --model <model> [--ci N] --seed S
// — same header line, same make_policy_report renderer, same RNG
// discipline — so a client can diff a server response against the CLI and
// the serve-smoke CI job does exactly that.
#ifndef DRE_SERVE_SERVICE_H
#define DRE_SERVE_SERVICE_H

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "serve/cache.h"
#include "serve/protocol.h"
#include "store/reader.h"

namespace dre::serve {

// Thrown when a request's deadline expires mid-evaluation. phase() names
// where the budget ran out ("cache", "compute", "serialize" from the
// service; the server adds "queue" and "admission"). The dispatcher maps
// this to Error{kDeadlineExceeded}.
class DeadlineExceeded : public std::runtime_error {
public:
    explicit DeadlineExceeded(std::string phase)
        : std::runtime_error("deadline exceeded in " + phase + " phase"),
          phase_(std::move(phase)) {}
    const std::string& phase() const noexcept { return phase_; }

private:
    std::string phase_;
};

// Injectable expiry predicate: returns true once the request's budget is
// spent. A default-constructed (empty) function means no deadline. Tests
// substitute counting lambdas to force expiry in a chosen phase without
// racing wall clocks.
using DeadlineFn = std::function<bool()>;

class EvalService {
public:
    struct Options {
        store::StoreReaderOptions reader_options;
    };

    // Per-request phase breakdown for telemetry (Result frame timing tail
    // and the journal). Filled only when the library is built with
    // DRE_OBS_ENABLED=1; otherwise everything stays zero, matching the
    // "wire fields become zeros" contract for disabled builds.
    struct EvalPhases {
        double cache_ms = 0.0;     // trace/policy/evaluator cache stage
        double compute_ms = 0.0;   // evaluate_seeded proper
        double serialize_ms = 0.0; // report render into ResultMsg::text
        bool trace_hit = false;
        bool policy_hit = false;
        bool evaluator_hit = false;
    };

    explicit EvalService(Options options = {}) : options_(options) {}

    // Throws std::invalid_argument for malformed specs (→ kBadRequest),
    // std::runtime_error for missing/corrupt/empty traces (→ kNotFound),
    // DeadlineExceeded when `deadline` reports expiry at a phase boundary
    // (→ kDeadlineExceeded), anything else → kInternal. Thread-safe;
    // concurrent calls share the caches and the builds inside them.
    ResultMsg evaluate(const EvaluateMsg& request, EvalPhases* phases = nullptr,
                       const DeadlineFn& deadline = {});

    // Brownout path: evaluates the request over a prefix sub-trace of
    // roughly `coverage` of the full trace (grown until the prefix spans
    // every decision id, so fitted policies/models stay dimensionally
    // compatible), with denominators rescaled exactly over the tuples
    // actually evaluated and DR CI half-widths widened by 1/coverage —
    // the PR 5 degrade-mode semantics. The Result carries degraded=true,
    // the achieved coverage, and a trailing "degraded:" text line; it is
    // deliberately NOT byte-comparable to the full-fidelity response.
    ResultMsg evaluate_degraded(const EvaluateMsg& request, double coverage,
                                EvalPhases* phases = nullptr,
                                const DeadlineFn& deadline = {});

    // Response cache pass-through for the server's brownout admission: the
    // dispatcher remembers every finished full-fidelity result under its
    // job key; under overload a repeat request is answered from here
    // without queueing.
    EvalCache::ResultPtr cached_result(const std::string& job_key) {
        return cache_.result(job_key);
    }
    void remember_result(const std::string& job_key, std::string text,
                         double dr) {
        cache_.put_result(job_key, std::make_shared<const CachedResult>(
                                       CachedResult{std::move(text), dr}));
    }

    CacheStats cache_stats() const { return cache_.stats(); }

private:
    Options options_;
    EvalCache cache_;
};

} // namespace dre::serve

#endif // DRE_SERVE_SERVICE_H
