// RequestJournal — structured JSONL slow-request/error log for dre_serve
// (DESIGN.md §13).
//
// One line per logged request, appended and flushed atomically under a
// mutex so concurrent dispatcher/io writers never interleave bytes. A
// record is written when the request errored OR its total latency met the
// threshold (threshold 0 journals everything). Each line is a single JSON
// object:
//
//   {"ts_ms": <unix wall ms>, "trace_id": "0x...", "trace": "...",
//    "policy": "...", "model": "...", "seed": N, "ci": N,
//    "outcome": "ok"|"error", "error_code": "...", "error": "...",
//    "total_ms": x, "queue_ms": x, "cache_ms": x, "compute_ms": x,
//    "serialize_ms": x, "trace_hit": b, "policy_hit": b,
//    "evaluator_hit": b, "coalesced": b, "degraded": b, "waiters": N,
//    "quarantined": N}
//
// Exactly-once contract: the server writes one terminal line per admitted
// request — completed, errored, shed, browned out, deadline-expired, or
// drained at shutdown — and writes it *before* the reply frame, so a
// client holding a response can always find the matching line on disk.
// (A threshold > 0 suppresses fast-success lines by design; accounting
// runs use threshold 0.)
//
// trace_id is hex text, not a JSON number: u64 ids do not survive a
// consumer's double conversion. Coalesced requests get one line per
// waiter (same timings, their own trace_id, "coalesced": true for the
// riders) so every request id can be found in the journal.
#ifndef DRE_SERVE_JOURNAL_H
#define DRE_SERVE_JOURNAL_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace dre::serve {

struct JournalRecord {
    std::uint64_t trace_id = 0;
    std::string trace, policy, model;
    std::uint64_t seed = 0;
    std::uint32_t ci_replicates = 0;
    double total_ms = 0.0;
    double queue_ms = 0.0;
    double cache_ms = 0.0;
    double compute_ms = 0.0;
    double serialize_ms = 0.0;
    bool trace_hit = false;
    bool policy_hit = false;
    bool evaluator_hit = false;
    bool coalesced = false;      // rode on another request's computation
    bool degraded = false;       // brownout: partial-coverage result
    std::uint64_t waiters = 1;   // sessions served by that computation
    std::uint64_t quarantined = 0; // defective tuples skipped (streaming)
    std::string error_code;      // empty = success
    std::string error;
};

class RequestJournal {
public:
    // Opens `path` for append. ok() reports whether the open succeeded;
    // a journal that failed to open drops every record (the server warns
    // once at startup instead of failing requests over diagnostics).
    RequestJournal(const std::string& path, double threshold_ms);
    ~RequestJournal();
    RequestJournal(const RequestJournal&) = delete;
    RequestJournal& operator=(const RequestJournal&) = delete;

    bool ok() const noexcept { return file_ != nullptr; }
    double threshold_ms() const noexcept { return threshold_ms_; }

    // Appends one line if the record qualifies (error, or total_ms >=
    // threshold). Thread-safe; flushes per line so a crash loses at most
    // the line being written.
    void log(const JournalRecord& record);

    std::uint64_t lines_written() const noexcept {
        return lines_.load(std::memory_order_relaxed);
    }

private:
    std::FILE* file_ = nullptr;
    double threshold_ms_;
    std::mutex mutex_;
    std::atomic<std::uint64_t> lines_{0};
};

// The JSON object for one record (exposed for tests; log() writes exactly
// this plus a newline).
std::string journal_line_json(const JournalRecord& record,
                              std::uint64_t ts_ms);

} // namespace dre::serve

#endif // DRE_SERVE_JOURNAL_H
