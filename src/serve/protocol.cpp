#include "serve/protocol.h"

#include <algorithm>
#include <cstring>

namespace dre::serve {

// --- WireWriter ------------------------------------------------------------

void WireWriter::u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
        bytes_.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
}

void WireWriter::u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
        bytes_.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
}

void WireWriter::f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void WireWriter::str(const std::string& s) {
    if (s.size() > kMaxFrameBytes)
        throw ProtocolError("serve: string exceeds frame limit");
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
}

// --- WireReader ------------------------------------------------------------

void WireReader::need(std::size_t n) const {
    if (size_ - pos_ < n)
        throw ProtocolError("serve: truncated payload (needed " +
                            std::to_string(n) + " more bytes, have " +
                            std::to_string(size_ - pos_) + ")");
}

std::uint8_t WireReader::u8() {
    need(1);
    return data_[pos_++];
}

std::uint32_t WireReader::u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
}

std::uint64_t WireReader::u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
}

double WireReader::f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string WireReader::str() {
    const std::uint32_t n = u32();
    if (n > kMaxFrameBytes)
        throw ProtocolError("serve: string length exceeds frame limit");
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
}

void WireReader::expect_done() const {
    if (pos_ != size_)
        throw ProtocolError("serve: " + std::to_string(size_ - pos_) +
                            " trailing payload bytes");
}

// --- frames ----------------------------------------------------------------

std::vector<unsigned char> encode_frame(
    MsgKind kind, const std::vector<unsigned char>& payload) {
    const std::size_t body = payload.size() + 1;
    if (body > kMaxFrameBytes)
        throw ProtocolError("serve: frame exceeds " +
                            std::to_string(kMaxFrameBytes) + " bytes");
    std::vector<unsigned char> out;
    out.reserve(4 + body);
    const auto n = static_cast<std::uint32_t>(body);
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<unsigned char>((n >> (8 * i)) & 0xff));
    out.push_back(static_cast<unsigned char>(kind));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

void FrameDecoder::feed(const unsigned char* data, std::size_t size) {
    buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<Frame> FrameDecoder::next() {
    if (buffer_.size() < 4) return std::nullopt;
    std::uint32_t body = 0;
    for (int i = 0; i < 4; ++i)
        body |= static_cast<std::uint32_t>(buffer_[static_cast<std::size_t>(i)])
                << (8 * i);
    if (body < 1 || body > kMaxFrameBytes)
        throw ProtocolError("serve: bad frame length " + std::to_string(body));
    if (buffer_.size() < 4u + body) return std::nullopt;
    buffer_.erase(buffer_.begin(), buffer_.begin() + 4);
    const auto raw_kind = buffer_.front();
    buffer_.pop_front();
    if (raw_kind < static_cast<unsigned char>(MsgKind::kHello) ||
        raw_kind > static_cast<unsigned char>(MsgKind::kTimeseries))
        throw ProtocolError("serve: unknown message kind " +
                            std::to_string(static_cast<unsigned>(raw_kind)));
    Frame f;
    f.kind = static_cast<MsgKind>(raw_kind);
    f.payload.assign(buffer_.begin(), buffer_.begin() + (body - 1));
    buffer_.erase(buffer_.begin(), buffer_.begin() + (body - 1));
    return f;
}

// --- message encode/decode -------------------------------------------------

namespace {

Frame require_kind(const Frame& f, MsgKind kind, const char* what) {
    if (f.kind != kind)
        throw ProtocolError(std::string("serve: expected ") + what + " frame");
    return f;
}

WireReader reader(const Frame& f) {
    return WireReader(f.payload.data(), f.payload.size());
}

} // namespace

std::vector<unsigned char> encode_hello(const HelloMsg& m) {
    WireWriter w;
    w.u32(m.version);
    return encode_frame(MsgKind::kHello, w.bytes());
}

HelloMsg decode_hello(const Frame& f) {
    require_kind(f, MsgKind::kHello, "Hello");
    WireReader r = reader(f);
    HelloMsg m;
    m.version = r.u32();
    r.expect_done();
    return m;
}

std::vector<unsigned char> encode_evaluate(const EvaluateMsg& m) {
    WireWriter w;
    w.str(m.trace);
    w.str(m.policy);
    w.str(m.model);
    w.u32(m.ci_replicates);
    w.u64(m.seed);
    w.u64(m.trace_id); // optional tail; old decoders never read this far
    w.u64(m.deadline_ms); // optional tail, after trace_id
    return encode_frame(MsgKind::kEvaluate, w.bytes());
}

EvaluateMsg decode_evaluate(const Frame& f) {
    require_kind(f, MsgKind::kEvaluate, "Evaluate");
    WireReader r = reader(f);
    EvaluateMsg m;
    m.trace = r.str();
    m.policy = r.str();
    m.model = r.str();
    m.ci_replicates = r.u32();
    m.seed = r.u64();
    // Optional tail: a pre-telemetry client's frame ends here, which
    // decodes as trace_id 0 — never an error. deadline_ms follows under
    // the same rule (absent = no deadline).
    if (!r.done()) m.trace_id = r.u64();
    if (!r.done()) m.deadline_ms = r.u64();
    r.expect_done();
    return m;
}

std::vector<unsigned char> encode_result(const ResultMsg& m) {
    WireWriter w;
    w.str(m.text);
    w.f64(m.dr);
    w.u8(m.cache_hit ? 1 : 0);
    w.u64(m.trace_id); // optional tail, all-or-nothing with the timings
    w.f64(m.queue_ms);
    w.f64(m.cache_ms);
    w.f64(m.compute_ms);
    w.f64(m.serialize_ms);
    w.u8(m.degraded ? 1 : 0); // optional resilience tail
    w.f64(m.coverage);
    return encode_frame(MsgKind::kResult, w.bytes());
}

ResultMsg decode_result(const Frame& f) {
    require_kind(f, MsgKind::kResult, "Result");
    WireReader r = reader(f);
    ResultMsg m;
    m.text = r.str();
    m.dr = r.f64();
    m.cache_hit = r.u8() != 0;
    if (!r.done()) {
        m.trace_id = r.u64();
        m.queue_ms = r.f64();
        m.cache_ms = r.f64();
        m.compute_ms = r.f64();
        m.serialize_ms = r.f64();
    }
    // Nested optional tail: pre-resilience frames end above and decode as
    // a non-degraded, full-coverage result.
    if (!r.done()) {
        m.degraded = r.u8() != 0;
        m.coverage = r.f64();
    }
    r.expect_done();
    return m;
}

std::vector<unsigned char> encode_stats_request() {
    return encode_frame(MsgKind::kStats, {});
}

bool is_stats_request(const Frame& f) {
    require_kind(f, MsgKind::kStats, "Stats");
    return f.payload.empty();
}

std::vector<unsigned char> encode_stats_reply(const StatsReplyMsg& m) {
    WireWriter w;
    w.u64(m.requests_total);
    w.u64(m.rejected);
    w.u64(m.coalesced);
    w.u64(m.queue_depth);
    w.u64(m.evaluator_hits);
    w.u64(m.evaluator_misses);
    w.u64(m.policy_hits);
    w.u64(m.policy_misses);
    w.u64(m.trace_hits);
    w.u64(m.trace_misses);
    w.f64(m.p50_ms);
    w.f64(m.p90_ms);
    w.f64(m.p99_ms);
    w.u64(m.journal_lines); // optional tail
    w.f64(m.queue_p50_ms);
    w.f64(m.queue_p99_ms);
    w.f64(m.compute_p50_ms);
    w.f64(m.compute_p99_ms);
    w.u64(m.deadline_exceeded); // optional resilience tail
    w.u64(m.shed);
    w.u64(m.brownout);
    w.u64(m.sessions_reaped);
    return encode_frame(MsgKind::kStats, w.bytes());
}

StatsReplyMsg decode_stats_reply(const Frame& f) {
    require_kind(f, MsgKind::kStats, "Stats");
    WireReader r = reader(f);
    StatsReplyMsg m;
    m.requests_total = r.u64();
    m.rejected = r.u64();
    m.coalesced = r.u64();
    m.queue_depth = r.u64();
    m.evaluator_hits = r.u64();
    m.evaluator_misses = r.u64();
    m.policy_hits = r.u64();
    m.policy_misses = r.u64();
    m.trace_hits = r.u64();
    m.trace_misses = r.u64();
    m.p50_ms = r.f64();
    m.p90_ms = r.f64();
    m.p99_ms = r.f64();
    if (!r.done()) {
        m.journal_lines = r.u64();
        m.queue_p50_ms = r.f64();
        m.queue_p99_ms = r.f64();
        m.compute_p50_ms = r.f64();
        m.compute_p99_ms = r.f64();
    }
    if (!r.done()) {
        m.deadline_exceeded = r.u64();
        m.shed = r.u64();
        m.brownout = r.u64();
        m.sessions_reaped = r.u64();
    }
    r.expect_done();
    return m;
}

std::vector<unsigned char> encode_ping(const PingMsg& m) {
    WireWriter w;
    w.u64(m.token);
    return encode_frame(MsgKind::kPing, w.bytes());
}

PingMsg decode_ping(const Frame& f) {
    require_kind(f, MsgKind::kPing, "Ping");
    WireReader r = reader(f);
    PingMsg m;
    m.token = r.u64();
    r.expect_done();
    return m;
}

std::vector<unsigned char> encode_error(const ErrorMsg& m) {
    WireWriter w;
    w.u32(static_cast<std::uint32_t>(m.code));
    w.str(m.message);
    return encode_frame(MsgKind::kError, w.bytes());
}

ErrorMsg decode_error(const Frame& f) {
    require_kind(f, MsgKind::kError, "Error");
    WireReader r = reader(f);
    ErrorMsg m;
    const std::uint32_t code = r.u32();
    if (code < static_cast<std::uint32_t>(ErrorCode::kBadRequest) ||
        code > static_cast<std::uint32_t>(ErrorCode::kDeadlineExceeded))
        throw ProtocolError("serve: unknown error code " + std::to_string(code));
    m.code = static_cast<ErrorCode>(code);
    m.message = r.str();
    r.expect_done();
    return m;
}

std::vector<unsigned char> encode_timeseries_request() {
    return encode_frame(MsgKind::kTimeseries, {});
}

bool is_timeseries_request(const Frame& f) {
    require_kind(f, MsgKind::kTimeseries, "Timeseries");
    return f.payload.empty();
}

std::vector<unsigned char> encode_timeseries_reply(const TimeseriesReplyMsg& m) {
    WireWriter w;
    w.u64(m.interval_ms);
    w.u32(static_cast<std::uint32_t>(m.series.size()));
    for (const TimeseriesSeries& series : m.series) {
        w.str(series.name);
        w.u32(static_cast<std::uint32_t>(series.points.size()));
        for (const TimeseriesPoint& point : series.points) {
            w.u64(point.t_ms);
            w.f64(point.value);
        }
    }
    return encode_frame(MsgKind::kTimeseries, w.bytes());
}

TimeseriesReplyMsg decode_timeseries_reply(const Frame& f) {
    require_kind(f, MsgKind::kTimeseries, "Timeseries");
    WireReader r = reader(f);
    TimeseriesReplyMsg m;
    m.interval_ms = r.u64();
    const std::uint32_t n_series = r.u32();
    // Every series costs at least a name length + point count on the wire,
    // so a bounds-checked reader naturally rejects absurd counts; reserve
    // conservatively anyway.
    m.series.reserve(std::min<std::uint32_t>(n_series, 4096));
    for (std::uint32_t s = 0; s < n_series; ++s) {
        TimeseriesSeries series;
        series.name = r.str();
        const std::uint32_t n_points = r.u32();
        series.points.reserve(std::min<std::uint32_t>(n_points, 65536));
        for (std::uint32_t p = 0; p < n_points; ++p) {
            TimeseriesPoint point;
            point.t_ms = r.u64();
            point.value = r.f64();
            series.points.push_back(point);
        }
        m.series.push_back(std::move(series));
    }
    r.expect_done();
    return m;
}

const char* to_string(ErrorCode code) noexcept {
    switch (code) {
        case ErrorCode::kBadRequest: return "bad-request";
        case ErrorCode::kNotFound: return "not-found";
        case ErrorCode::kOverloaded: return "overloaded";
        case ErrorCode::kInternal: return "internal";
        case ErrorCode::kBadFrame: return "bad-frame";
        case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    }
    return "unknown";
}

} // namespace dre::serve
