// Blocking client for the dre::serve protocol. One Client owns one TCP
// connection to a local EvalServer; calls are synchronous request/reply
// and a Client instance is not thread-safe (loadgen gives each client
// thread its own). An Error reply surfaces as a ServeError carrying the
// server's classification, so callers can tell backpressure
// (kOverloaded) apart from a bad request.
#ifndef DRE_SERVE_CLIENT_H
#define DRE_SERVE_CLIENT_H

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "serve/protocol.h"

namespace dre::serve {

class ServeError : public std::runtime_error {
public:
    ServeError(ErrorCode code, const std::string& message)
        : std::runtime_error(std::string(to_string(code)) + ": " + message),
          code_(code) {}
    ErrorCode code() const noexcept { return code_; }

private:
    ErrorCode code_;
};

class Client {
public:
    // Connects to 127.0.0.1:<port> and performs the Hello handshake.
    // Throws std::runtime_error on connection failure, ProtocolError on a
    // garbled handshake.
    explicit Client(std::uint16_t port);
    ~Client();
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    // Round-trips one Evaluate request. Throws ServeError on an Error
    // reply (kOverloaded = backpressure), ProtocolError on wire garbage.
    ResultMsg evaluate(const EvaluateMsg& request);
    StatsReplyMsg stats();
    // Server-side telemetry ring, pivoted per series (empty when the
    // server's sampler is off or the build has observability disabled).
    TimeseriesReplyMsg timeseries();
    PingMsg ping(std::uint64_t token);

    std::uint32_t server_version() const noexcept { return server_version_; }

private:
    void send_bytes(const std::vector<unsigned char>& bytes);
    Frame read_frame();

    int fd_ = -1;
    FrameDecoder decoder_;
    std::uint32_t server_version_ = 0;
};

// Client-side retry schedule. Mirrors store::StoreRetryPolicy: the backoff
// is *virtual* — computed as base * multiplier^attempt and recorded to the
// serve.client.retry_backoff_ms histogram, never slept — so retry behavior
// is deterministic and tests never wait on wall clocks. Safe because
// Evaluate is idempotent by construction: the server keys requests by
// (trace, policy, model, ci, seed), so a retried request coalesces onto or
// reproduces the identical computation.
struct RetryPolicy {
    int max_attempts = 3; // 1 = no retries
    double backoff_base_ms = 1.0;
    double backoff_multiplier = 2.0;
};

// A Client wrapper that reconnects and retries failed Evaluate calls.
//
// Retryable: connection failures (refused/reset/closed — the serve.accept,
// serve.read, serve.write fault kinds all land here), wire garbage
// (ProtocolError: the stream is broken, reconnect), and the server's
// kOverloaded / kInternal / kBadFrame error replies. NOT retryable:
// kBadRequest and kNotFound (deterministic — the cache latches the same
// failure), and kDeadlineExceeded (the budget is spent; retrying with the
// same deadline is futile). The underlying connection is created lazily
// and replaced after any transport-level failure.
class RetryingClient {
public:
    explicit RetryingClient(std::uint16_t port, RetryPolicy policy = {});

    // Evaluate with retries; rethrows the last failure when the attempt
    // budget is exhausted.
    ResultMsg evaluate(const EvaluateMsg& request);

    // Pass-throughs on the current connection (connect on demand, no
    // retry: these are diagnostics).
    StatsReplyMsg stats();
    PingMsg ping(std::uint64_t token);

    std::uint64_t retries() const noexcept { return retries_; }
    double virtual_backoff_ms() const noexcept { return backoff_ms_; }

private:
    Client& ensure_connected();

    std::uint16_t port_;
    RetryPolicy policy_;
    std::unique_ptr<Client> client_;
    std::uint64_t retries_ = 0;
    double backoff_ms_ = 0.0; // cumulative virtual backoff (never slept)
};

} // namespace dre::serve

#endif // DRE_SERVE_CLIENT_H
