// Blocking client for the dre::serve protocol. One Client owns one TCP
// connection to a local EvalServer; calls are synchronous request/reply
// and a Client instance is not thread-safe (loadgen gives each client
// thread its own). An Error reply surfaces as a ServeError carrying the
// server's classification, so callers can tell backpressure
// (kOverloaded) apart from a bad request.
#ifndef DRE_SERVE_CLIENT_H
#define DRE_SERVE_CLIENT_H

#include <cstdint>
#include <stdexcept>
#include <string>

#include "serve/protocol.h"

namespace dre::serve {

class ServeError : public std::runtime_error {
public:
    ServeError(ErrorCode code, const std::string& message)
        : std::runtime_error(std::string(to_string(code)) + ": " + message),
          code_(code) {}
    ErrorCode code() const noexcept { return code_; }

private:
    ErrorCode code_;
};

class Client {
public:
    // Connects to 127.0.0.1:<port> and performs the Hello handshake.
    // Throws std::runtime_error on connection failure, ProtocolError on a
    // garbled handshake.
    explicit Client(std::uint16_t port);
    ~Client();
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    // Round-trips one Evaluate request. Throws ServeError on an Error
    // reply (kOverloaded = backpressure), ProtocolError on wire garbage.
    ResultMsg evaluate(const EvaluateMsg& request);
    StatsReplyMsg stats();
    // Server-side telemetry ring, pivoted per series (empty when the
    // server's sampler is off or the build has observability disabled).
    TimeseriesReplyMsg timeseries();
    PingMsg ping(std::uint64_t token);

    std::uint32_t server_version() const noexcept { return server_version_; }

private:
    void send_bytes(const std::vector<unsigned char>& bytes);
    Frame read_frame();

    int fd_ = -1;
    FrameDecoder decoder_;
    std::uint32_t server_version_ = 0;
};

} // namespace dre::serve

#endif // DRE_SERVE_CLIENT_H
