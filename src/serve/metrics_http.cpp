#include "serve/metrics_http.h"

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/obs.h"
#include "obs/openmetrics.h"

#if defined(__unix__) || defined(__APPLE__)
#define DRE_SERVE_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define DRE_SERVE_HAVE_SOCKETS 0
#endif

namespace dre::serve {

#if DRE_SERVE_HAVE_SOCKETS

namespace {

[[noreturn]] void fail_errno(const char* what) {
    throw std::runtime_error(std::string("serve metrics: ") + what + ": " +
                             std::strerror(errno));
}

void send_all(int fd, const std::string& bytes) {
    std::size_t done = 0;
    while (done < bytes.size()) {
        const ::ssize_t sent = ::send(fd, bytes.data() + done,
                                      bytes.size() - done, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR) continue;
            return; // scrape client went away; nothing to clean up
        }
        done += static_cast<std::size_t>(sent);
    }
}

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
    std::string out = "HTTP/1.1 ";
    out += status;
    out += "\r\nContent-Type: ";
    out += content_type;
    out += "\r\nContent-Length: ";
    out += std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

// Read until the end of the request headers (or `timeout_ms` total / 8 KiB,
// whichever comes first) and answer based on the request line alone. The
// budget is for the whole header read, not per recv — a slow-loris peer
// trickling one byte per poll interval used to hold the single-threaded
// listener indefinitely; now it is cut off when the budget elapses and the
// partial request falls through to the 404 arm.
void serve_one_connection(int fd, int timeout_ms) {
    using clock = std::chrono::steady_clock;
    const clock::time_point deadline =
        clock::now() + std::chrono::milliseconds(timeout_ms);
    std::string request;
    char buffer[2048];
    while (request.size() < 8192 &&
           request.find("\r\n\r\n") == std::string::npos) {
        const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - clock::now());
        if (remaining.count() <= 0) {
            DRE_COUNTER_INC("serve.metrics_slow_loris_closed");
            break;
        }
        pollfd pfd{fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
        if (ready <= 0) break;
        const ::ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
        if (got <= 0) {
            if (got < 0 && errno == EINTR) continue;
            break;
        }
        request.append(buffer, static_cast<std::size_t>(got));
    }
    const std::size_t line_end = request.find("\r\n");
    const std::string line =
        line_end == std::string::npos ? request : request.substr(0, line_end);

    std::string response;
    if (line.rfind("GET /metrics", 0) == 0 &&
        (line.size() == 12 || line[12] == ' ' || line[12] == '?')) {
        response = http_response(
            "200 OK",
            "application/openmetrics-text; version=1.0.0; charset=utf-8",
            obs::render_openmetrics());
        DRE_COUNTER_INC("serve.metrics_scrapes");
    } else if (line.rfind("GET /healthz", 0) == 0 &&
               (line.size() == 12 || line[12] == ' ')) {
        response = http_response("200 OK", "text/plain; charset=utf-8", "ok\n");
    } else {
        response = http_response("404 Not Found", "text/plain; charset=utf-8",
                                 "only GET /metrics and GET /healthz\n");
    }
    send_all(fd, response);
}

} // namespace

MetricsHttpServer::MetricsHttpServer(std::uint16_t port, int request_timeout_ms)
    : requested_port_(port), request_timeout_ms_(request_timeout_ms) {}

MetricsHttpServer::~MetricsHttpServer() { stop_and_join(); }

void MetricsHttpServer::start() {
#if !DRE_OBS_ENABLED
    throw std::runtime_error(
        "serve metrics: built with DRE_OBS_ENABLED=OFF; the metrics "
        "listener has nothing to serve (rebuild with observability on)");
#else
    if (started_) throw std::runtime_error("serve metrics: already started");
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) fail_errno("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(requested_port_);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0)
        fail_errno("bind");
    if (::listen(listen_fd_, 16) != 0) fail_errno("listen");

    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
        0)
        fail_errno("getsockname");
    port_ = ntohs(addr.sin_port);

    if (::pipe(wake_pipe_) != 0) fail_errno("pipe");

    started_ = true;
    stop_.store(false);
    thread_ = std::thread([this] { loop(); });
#endif
}

void MetricsHttpServer::stop_and_join() {
    if (!started_) return;
    stop_.store(true);
    if (wake_pipe_[1] >= 0) {
        const char byte = 'x';
        [[maybe_unused]] const auto n = ::write(wake_pipe_[1], &byte, 1);
    }
    if (thread_.joinable()) thread_.join();
    for (int& fd : wake_pipe_) {
        if (fd >= 0) ::close(fd);
        fd = -1;
    }
    started_ = false;
}

void MetricsHttpServer::loop() {
    while (!stop_.load(std::memory_order_acquire)) {
        pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
        if (::poll(fds, 2, -1) < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (stop_.load(std::memory_order_acquire)) break;
        if ((fds[0].revents & POLLIN) == 0) continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) continue;
        // Scrapes are serial by design: one cheap response at a time keeps
        // the listener a single thread with no session state; the per-
        // connection timeout bounds how long one peer can occupy it.
        serve_one_connection(fd, request_timeout_ms_);
        ::close(fd);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
}

#else // !DRE_SERVE_HAVE_SOCKETS

MetricsHttpServer::MetricsHttpServer(std::uint16_t port, int request_timeout_ms)
    : requested_port_(port), request_timeout_ms_(request_timeout_ms) {}
MetricsHttpServer::~MetricsHttpServer() = default;
void MetricsHttpServer::start() {
    throw std::runtime_error("serve metrics: no socket support on this platform");
}
void MetricsHttpServer::stop_and_join() {}
void MetricsHttpServer::loop() {}

#endif // DRE_SERVE_HAVE_SOCKETS

} // namespace dre::serve
