#include "serve/server.h"

#include <chrono>
#include <cstring>
#include <stdexcept>

#include "obs/obs.h"

#if defined(__unix__) || defined(__APPLE__)
#define DRE_SERVE_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define DRE_SERVE_HAVE_SOCKETS 0
#endif

namespace dre::serve {

#if DRE_SERVE_HAVE_SOCKETS

namespace {

[[noreturn]] void fail_errno(const char* what) {
    throw std::runtime_error(std::string("serve: ") + what + ": " +
                             std::strerror(errno));
}

std::string job_key(const EvaluateMsg& m) {
    return m.trace + '\n' + m.policy + '\n' + m.model + '\n' +
           std::to_string(m.ci_replicates) + '\n' + std::to_string(m.seed);
}

} // namespace

struct EvalServer::Session {
    explicit Session(int fd) : fd(fd) {}
    ~Session() {
        if (fd >= 0) ::close(fd);
    }
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    const int fd;
    // Latched by whichever side sees the connection die; senders skip
    // closed sessions. The fd itself is closed only in the destructor
    // (i.e. after the io thread and every waiter list dropped their
    // shared_ptr), so a late writer can never hit a reused descriptor.
    std::atomic<bool> closed{false};
    FrameDecoder decoder;    // io thread only
    std::mutex write_mutex;  // serializes io-thread and dispatcher writes
};

struct EvalServer::Job {
    std::string key;
    EvaluateMsg request;
    std::vector<std::shared_ptr<Session>> waiters;
    std::chrono::steady_clock::time_point enqueued;
};

EvalServer::EvalServer(ServerOptions options)
    : options_(options),
      service_(options.service),
      request_ms_(obs::registry().histogram("serve.request_ms")) {}

EvalServer::~EvalServer() {
    if (started_) stop_and_join();
}

void EvalServer::start() {
    if (started_) throw std::runtime_error("serve: already started");
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) fail_errno("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0)
        fail_errno("bind");
    if (::listen(listen_fd_, 64) != 0) fail_errno("listen");

    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
        0)
        fail_errno("getsockname");
    port_ = ntohs(addr.sin_port);

    if (::pipe(wake_pipe_) != 0) fail_errno("pipe");

    started_ = true;
    stop_.store(false);
    io_done_.store(false);
    io_thread_ = std::thread([this] { io_loop(); });
    dispatch_thread_ = std::thread([this] { dispatch_loop(); });
}

void EvalServer::request_stop() {
    stop_.store(true);
    if (wake_pipe_[1] >= 0) {
        const char byte = 'x';
        [[maybe_unused]] const auto n = ::write(wake_pipe_[1], &byte, 1);
    }
    queue_cv_.notify_all();
}

void EvalServer::stop_and_join() {
    if (!started_) return;
    request_stop();
    if (io_thread_.joinable()) io_thread_.join();
    // The dispatcher drains the queue (replying to every waiter) before it
    // exits; sessions stay alive until after that join.
    if (dispatch_thread_.joinable()) dispatch_thread_.join();
    sessions_.clear();
    for (int& fd : wake_pipe_) {
        if (fd >= 0) ::close(fd);
        fd = -1;
    }
    started_ = false;
}

void EvalServer::send_frame(Session& session,
                            const std::vector<unsigned char>& bytes) {
    if (session.closed.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lock(session.write_mutex);
    std::size_t done = 0;
    while (done < bytes.size()) {
        const ::ssize_t sent =
            ::send(session.fd, bytes.data() + done, bytes.size() - done,
                   MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR) continue;
            session.closed.store(true, std::memory_order_release);
            return;
        }
        done += static_cast<std::size_t>(sent);
    }
    DRE_COUNTER_ADD("serve.bytes_sent", bytes.size());
}

void EvalServer::admit(const std::shared_ptr<Session>& session,
                       EvaluateMsg request) {
    requests_total_.fetch_add(1, std::memory_order_relaxed);
    DRE_COUNTER_INC("serve.requests_total");
    std::string key = job_key(request);
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        const auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            // Identical request queued or computing: share its one
            // computation. Attaching under the queue mutex pairs with the
            // dispatcher claiming waiters under the same mutex, so the
            // reply cannot be missed.
            it->second->waiters.push_back(session);
            coalesced_.fetch_add(1, std::memory_order_relaxed);
            DRE_COUNTER_INC("serve.requests_coalesced");
            return;
        }
        if (queue_.size() < options_.max_queue) {
            auto job = std::make_shared<Job>();
            job->key = std::move(key);
            job->request = std::move(request);
            job->waiters.push_back(session);
            job->enqueued = std::chrono::steady_clock::now();
            inflight_.emplace(job->key, job);
            queue_.push_back(std::move(job));
            DRE_GAUGE_SET("serve.queue_depth",
                          static_cast<double>(queue_.size()));
            queue_cv_.notify_one();
            return;
        }
    }
    // Backpressure: the bounded queue is full and this request matches
    // nothing in flight. Tell the client immediately instead of buffering
    // without bound.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    DRE_COUNTER_INC("serve.requests_rejected");
    send_frame(*session,
               encode_error({ErrorCode::kOverloaded,
                             "queue full (" +
                                 std::to_string(options_.max_queue) +
                                 " pending); retry later"}));
}

void EvalServer::handle_frame(const std::shared_ptr<Session>& session,
                              const Frame& f) {
    switch (f.kind) {
        case MsgKind::kHello: {
            (void)decode_hello(f); // any version; we answer with ours
            send_frame(*session, encode_hello({kProtocolVersion}));
            return;
        }
        case MsgKind::kPing: {
            send_frame(*session, encode_ping(decode_ping(f)));
            return;
        }
        case MsgKind::kStats: {
            if (!is_stats_request(f))
                throw ProtocolError("serve: client sent a Stats reply");
            send_frame(*session, encode_stats_reply(stats_snapshot()));
            return;
        }
        case MsgKind::kEvaluate: {
            admit(session, decode_evaluate(f));
            return;
        }
        case MsgKind::kResult:
        case MsgKind::kError:
            throw ProtocolError("serve: client sent a server-only frame");
    }
    throw ProtocolError("serve: unhandled message kind");
}

void EvalServer::io_loop() {
    std::vector<pollfd> fds;
    unsigned char buffer[64 * 1024];
    while (!stop_.load(std::memory_order_acquire)) {
        fds.clear();
        fds.push_back({listen_fd_, POLLIN, 0});
        fds.push_back({wake_pipe_[0], POLLIN, 0});
        for (const auto& session : sessions_)
            fds.push_back({session->fd, POLLIN, 0});

        if (::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1) < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (stop_.load(std::memory_order_acquire)) break;

        if ((fds[0].revents & POLLIN) != 0) {
            const int fd = ::accept(listen_fd_, nullptr, nullptr);
            if (fd >= 0) {
                const int one = 1;
                ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
                sessions_.push_back(std::make_shared<Session>(fd));
                DRE_COUNTER_INC("serve.connections_accepted");
            }
        }

        for (std::size_t i = 2; i < fds.size(); ++i) {
            const std::shared_ptr<Session>& session = sessions_[i - 2];
            if ((fds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
            const ::ssize_t got =
                ::recv(session->fd, buffer, sizeof(buffer), 0);
            if (got <= 0) {
                if (got < 0 && (errno == EINTR || errno == EAGAIN)) continue;
                session->closed.store(true, std::memory_order_release);
                continue;
            }
            DRE_COUNTER_ADD("serve.bytes_received",
                            static_cast<std::uint64_t>(got));
            try {
                session->decoder.feed(buffer,
                                      static_cast<std::size_t>(got));
                while (auto frame = session->decoder.next())
                    handle_frame(session, *frame);
            } catch (const ProtocolError& e) {
                send_frame(*session,
                           encode_error({ErrorCode::kBadFrame, e.what()}));
                session->closed.store(true, std::memory_order_release);
            }
        }

        // Drop closed sessions from the poll set; the shared_ptr (and so
        // the fd) lives on in any waiter list still holding it.
        std::erase_if(sessions_, [](const std::shared_ptr<Session>& s) {
            return s->closed.load(std::memory_order_acquire);
        });
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    io_done_.store(true, std::memory_order_release);
    queue_cv_.notify_all();
}

void EvalServer::dispatch_loop() {
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock, [&] {
                return !queue_.empty() ||
                       (stop_.load(std::memory_order_acquire) &&
                        io_done_.load(std::memory_order_acquire));
            });
            if (queue_.empty()) break; // stop requested, io quiet, drained
            job = queue_.front();
            queue_.pop_front();
            DRE_GAUGE_SET("serve.queue_depth",
                          static_cast<double>(queue_.size()));
        }

        // Compute outside every lock: one job at a time, internally
        // parallel on the dre::par pool.
        std::vector<unsigned char> reply;
        try {
            reply = encode_result(service_.evaluate(job->request));
        } catch (const std::invalid_argument& e) {
            reply = encode_error({ErrorCode::kBadRequest, e.what()});
        } catch (const std::runtime_error& e) {
            reply = encode_error({ErrorCode::kNotFound, e.what()});
        } catch (const std::exception& e) {
            reply = encode_error({ErrorCode::kInternal, e.what()});
        }

        // Claim the waiter list and retire the in-flight key under the
        // admission mutex: after this, an identical request starts a fresh
        // job instead of attaching to a finished one.
        std::vector<std::shared_ptr<Session>> waiters;
        {
            std::lock_guard<std::mutex> lock(queue_mutex_);
            waiters = std::move(job->waiters);
            inflight_.erase(job->key);
        }
        for (const auto& session : waiters) send_frame(*session, reply);

        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - job->enqueued)
                .count();
        request_ms_.record(ms);
    }
}

StatsReplyMsg EvalServer::stats_snapshot() {
    StatsReplyMsg m;
    m.requests_total = requests_total_.load(std::memory_order_relaxed);
    m.rejected = rejected_.load(std::memory_order_relaxed);
    m.coalesced = coalesced_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        m.queue_depth = queue_.size();
    }
    const CacheStats cache = service_.cache_stats();
    m.evaluator_hits = cache.evaluator_hits;
    m.evaluator_misses = cache.evaluator_misses;
    m.policy_hits = cache.policy_hits;
    m.policy_misses = cache.policy_misses;
    m.trace_hits = cache.trace_hits;
    m.trace_misses = cache.trace_misses;
    m.p50_ms = request_ms_.p50();
    m.p90_ms = request_ms_.p90();
    m.p99_ms = request_ms_.p99();
    return m;
}

#else // !DRE_SERVE_HAVE_SOCKETS

struct EvalServer::Session {};
struct EvalServer::Job {};

EvalServer::EvalServer(ServerOptions options)
    : options_(options),
      service_(options.service),
      request_ms_(obs::registry().histogram("serve.request_ms")) {}
EvalServer::~EvalServer() = default;
void EvalServer::start() {
    throw std::runtime_error("serve: no socket support on this platform");
}
void EvalServer::request_stop() {}
void EvalServer::stop_and_join() {}
void EvalServer::io_loop() {}
void EvalServer::dispatch_loop() {}
StatsReplyMsg EvalServer::stats_snapshot() { return {}; }

#endif // DRE_SERVE_HAVE_SOCKETS

} // namespace dre::serve
